//! `brasil_run` — compile and execute a BRASIL script from a file.
//!
//! ```sh
//! cargo run --release --example brasil_run -- scripts/swarm.brasil \
//!     [--agents 500] [--ticks 100] [--seed 7] [--workers 4] [--show-plan]
//! ```
//!
//! Agents start at deterministic random positions in a square sized to the
//! population; state fields start at 0. With `--workers N` the script runs
//! on the distributed runtime instead of the single-node engine.

use brace::common::{AgentId, DetRng, Vec2};
use brace::core::{Agent, Behavior, Simulation};
use brace::mapreduce::{ClusterConfig, ClusterSim};
use brasil::Script;
use std::sync::Arc;

struct Opts {
    path: String,
    agents: usize,
    ticks: u64,
    seed: u64,
    workers: usize,
    show_plan: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts { path: String::new(), agents: 500, ticks: 100, seed: 7, workers: 1, show_plan: false };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take =
            |what: &str| -> Result<String, String> { args.next().ok_or_else(|| format!("{what} needs a value")) };
        match a.as_str() {
            "--agents" => opts.agents = take("--agents")?.parse().map_err(|e| format!("--agents: {e}"))?,
            "--ticks" => opts.ticks = take("--ticks")?.parse().map_err(|e| format!("--ticks: {e}"))?,
            "--seed" => opts.seed = take("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--workers" => opts.workers = take("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?,
            "--show-plan" => opts.show_plan = true,
            "-h" | "--help" => return Err("usage".into()),
            path if !path.starts_with('-') && opts.path.is_empty() => opts.path = path.to_string(),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.path.is_empty() {
        return Err("missing script path".into());
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: brasil_run <script.brasil> [--agents N] [--ticks N] [--seed N] [--workers N] [--show-plan]"
            );
            std::process::exit(2);
        }
    };
    let source = std::fs::read_to_string(&opts.path).unwrap_or_else(|e| {
        eprintln!("error: reading {}: {e}", opts.path);
        std::process::exit(2);
    });
    let script = Script::compile(&source).unwrap_or_else(|e| {
        eprintln!("compile error: {e}");
        std::process::exit(1);
    });
    let class = script.classes()[0].clone();
    println!(
        "compiled `{}`: {} state, {} effect fields; visibility {}; non-local effects: {}",
        class.schema().name(),
        class.schema().num_states(),
        class.schema().num_effects(),
        class.schema().visibility(),
        class.schema().has_nonlocal_effects()
    );
    if opts.show_plan {
        println!("\n{}", brasil::pretty::class(&class));
    }
    let behavior = brasil::BrasilBehavior::new(class);
    let schema = behavior.schema().clone();

    // Deterministic population over a density-normalized square.
    let side = (opts.agents as f64 * 2.0).sqrt().max(1.0);
    let mut rng = DetRng::seed_from_u64(opts.seed);
    let agents: Vec<Agent> = (0..opts.agents)
        .map(|i| Agent::new(AgentId::new(i as u64), Vec2::new(rng.range(0.0, side), rng.range(0.0, side)), &schema))
        .collect();

    let t0 = std::time::Instant::now();
    let world = if opts.workers > 1 {
        let epoch_len = 10.min(opts.ticks.max(1));
        let ticks = opts.ticks / epoch_len * epoch_len;
        let cfg = ClusterConfig {
            workers: opts.workers,
            epoch_len,
            seed: opts.seed,
            space_x: (0.0, side),
            ..ClusterConfig::default()
        };
        let mut sim = ClusterSim::new(Arc::new(behavior), agents, cfg).expect("valid cluster");
        sim.run_ticks(ticks).expect("runs");
        let stats = sim.stats();
        println!(
            "ran {ticks} ticks on {} workers: {} messages, {} bytes over the network",
            opts.workers,
            stats.net.total_messages(),
            stats.net.total_bytes()
        );
        sim.collect_agents().expect("collect")
    } else {
        let mut sim = Simulation::builder(behavior).agents(agents).seed(opts.seed).build().expect("valid sim");
        sim.run(opts.ticks);
        println!("ran {} ticks single-node: {:.0} agent-ticks/s", opts.ticks, sim.metrics().throughput());
        sim.agents().to_vec()
    };
    let elapsed = t0.elapsed();

    // World summary.
    let (mut cx, mut cy) = (0.0, 0.0);
    for a in &world {
        cx += a.pos.x;
        cy += a.pos.y;
    }
    let n = world.len().max(1) as f64;
    println!("final world: {} agents, centroid ({:.2}, {:.2}), wall {:.2?}", world.len(), cx / n, cy / n, elapsed);
    for a in world.iter().take(3) {
        println!("  {}: pos {} state {:?}", a.id, a.pos, a.state);
    }
}
