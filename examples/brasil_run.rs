//! `brasil_run` — compile a BRASIL script from a file and run it as a
//! scenario on either backend.
//!
//! ```sh
//! cargo run --release --example brasil_run -- scripts/swarm.brasil \
//!     [--agents 500] [--ticks 100] [--seed 7] [--workers 4] [--show-plan]
//! ```
//!
//! Agents start at deterministic random positions in a square sized to the
//! population; state fields start at 0. The script becomes an anonymous
//! [`Scenario`], so `--workers N` is just a backend switch on the same
//! [`Runner`] call — no per-backend code.

use brace::common::{AgentId, DetRng, Result, Vec2};
use brace::core::{Agent, Behavior};
use brace::prelude::*;
use brace::scenario::ScenarioSetup;
use brasil::{CompiledClass, Script};
use std::sync::Arc;

struct Opts {
    path: String,
    agents: usize,
    ticks: u64,
    seed: u64,
    workers: usize,
    show_plan: bool,
}

fn parse_args() -> std::result::Result<Opts, String> {
    let mut opts = Opts { path: String::new(), agents: 500, ticks: 100, seed: 7, workers: 1, show_plan: false };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut take = |what: &str| -> std::result::Result<String, String> {
            args.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--agents" => opts.agents = take("--agents")?.parse().map_err(|e| format!("--agents: {e}"))?,
            "--ticks" => opts.ticks = take("--ticks")?.parse().map_err(|e| format!("--ticks: {e}"))?,
            "--seed" => opts.seed = take("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--workers" => opts.workers = take("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?,
            "--show-plan" => opts.show_plan = true,
            "-h" | "--help" => return Err("usage".into()),
            path if !path.starts_with('-') && opts.path.is_empty() => opts.path = path.to_string(),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.path.is_empty() {
        return Err("missing script path".into());
    }
    Ok(opts)
}

/// A user script as an anonymous scenario.
struct ScriptScenario {
    class: CompiledClass,
}

impl Scenario for ScriptScenario {
    fn name(&self) -> &'static str {
        "brasil-script"
    }
    fn description(&self) -> &'static str {
        "user-supplied BRASIL script"
    }
    fn default_population(&self) -> usize {
        500
    }
    fn build(&self, size: Option<usize>, seed: u64) -> Result<ScenarioSetup> {
        let n = size.unwrap_or(self.default_population());
        let behavior = brasil::BrasilBehavior::new(self.class.clone());
        let schema = behavior.schema().clone();
        // Deterministic population over a density-normalized square.
        let side = (n as f64 * 2.0).sqrt().max(1.0);
        let mut rng = DetRng::seed_from_u64(seed);
        let population: Vec<Agent> = (0..n)
            .map(|i| Agent::new(AgentId::new(i as u64), Vec2::new(rng.range(0.0, side), rng.range(0.0, side)), &schema))
            .collect();
        Ok(ScenarioSetup {
            behavior: Arc::new(behavior),
            population,
            index: IndexKind::KdTree,
            epoch_len: 10,
            space_x: (0.0, side),
        })
    }
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: brasil_run <script.brasil> [--agents N] [--ticks N] [--seed N] [--workers N] [--show-plan]"
            );
            std::process::exit(2);
        }
    };
    let source = std::fs::read_to_string(&opts.path).unwrap_or_else(|e| {
        eprintln!("error: reading {}: {e}", opts.path);
        std::process::exit(2);
    });
    let script = Script::compile(&source).unwrap_or_else(|e| {
        eprintln!("compile error: {e}");
        std::process::exit(1);
    });
    let class = script.classes()[0].clone();
    println!(
        "compiled `{}`: {} state, {} effect fields; visibility {}; non-local effects: {}",
        class.schema().name(),
        class.schema().num_states(),
        class.schema().num_effects(),
        class.schema().visibility(),
        class.schema().has_nonlocal_effects()
    );
    if opts.show_plan {
        println!("\n{}", brasil::pretty::class(&class));
    }

    let scenario = ScriptScenario { class };
    let backend = if opts.workers > 1 { Backend::cluster(opts.workers) } else { Backend::single() };
    let report =
        Runner::new(&scenario).seed(opts.seed).population(opts.agents).backend(backend).run(opts.ticks).unwrap_or_else(
            |e| {
                eprintln!("run error: {e}");
                std::process::exit(1);
            },
        );

    println!(
        "ran {} ticks on {}: {:.0} agent-ticks/s, checksum {:#018X}",
        report.ticks, report.backend, report.agents_per_sec, report.checksum
    );
    // World summary.
    let (mut cx, mut cy) = (0.0, 0.0);
    for a in &report.world {
        cx += a.pos.x;
        cy += a.pos.y;
    }
    let n = report.world.len().max(1) as f64;
    println!(
        "final world: {} agents, centroid ({:.2}, {:.2}), wall {:.2}s",
        report.world.len(),
        cx / n,
        cy / n,
        report.wall_secs
    );
    for a in report.world.iter().take(3) {
        println!("  {}: pos {} state {:?}", a.id, a.pos, a.state);
    }
}
