//! Effect inversion, end to end: compile the non-local predator script,
//! invert it automatically (Theorems 2/3), and show that the inverted
//! program computes the same simulation with one fewer communication round.
//!
//! ```sh
//! cargo run --release --example predator_inversion
//! ```

use brace::common::{AgentId, DetRng, Vec2};
use brace::core::{Agent, Behavior};
use brace::mapreduce::{ClusterConfig, ClusterSim};
use brace::models::scripts;
use brasil::{invert_effects, Script};
use std::sync::Arc;

fn main() {
    println!("--- the script (biting pushes `hurt` onto the victim: NON-LOCAL) ---");
    println!("{}", scripts::PREDATOR.trim());

    let script = Script::compile(scripts::PREDATOR).expect("compiles");
    let class = script.classes()[0].clone();
    println!("\nschema says non-local effects: {}", class.schema().has_nonlocal_effects());

    let inverted = brasil::optimize(invert_effects(class.clone()).expect("invertible"));
    println!("after inversion, non-local effects: {}", inverted.schema().has_nonlocal_effects());
    println!("\n--- compiled plan, before inversion ---\n{}", brasil::pretty::class(&class));
    println!(
        "--- compiled plan, after inversion (roles of `self` and `p` swapped) ---\n{}",
        brasil::pretty::class(&inverted)
    );

    // Run both forms on the cluster and compare.
    let population = |schema: &brace::core::AgentSchema| -> Vec<Agent> {
        let mut rng = DetRng::seed_from_u64(5);
        (0..1000)
            .map(|i| {
                let mut a = Agent::new(AgentId::new(i), Vec2::new(rng.range(0.0, 60.0), rng.range(0.0, 60.0)), schema);
                a.state[0] = rng.range(0.5, 1.5);
                a
            })
            .collect()
    };
    let run = |class: brasil::CompiledClass, label: &str| -> Vec<Agent> {
        let behavior = brasil::BrasilBehavior::new(class);
        let agents = population(behavior.schema());
        let cfg = ClusterConfig {
            workers: 4,
            epoch_len: 5,
            seed: 5,
            space_x: (0.0, 60.0),
            load_balance: false,
            ..ClusterConfig::default()
        };
        let mut sim = ClusterSim::new(Arc::new(behavior), agents, cfg).expect("cluster");
        sim.run_ticks(20).expect("runs");
        let stats = sim.stats();
        println!(
            "{label:<10} communication rounds/tick: {}   effect bytes: {:>8}   replica bytes: {:>9}",
            stats.comm_rounds_per_tick,
            stats.net.effects.bytes,
            stats.net.replica_bytes()
        );
        sim.collect_agents().expect("collect")
    };

    println!("\n--- distributed execution, 4 workers, 20 ticks ---");
    let world_nl = run(class, "non-local");
    let world_inv = run(inverted, "inverted");

    let mut max_rel = 0.0f64;
    for (a, b) in world_nl.iter().zip(&world_inv) {
        assert_eq!(a.id, b.id);
        for (x, y) in a.state.iter().zip(&b.state) {
            let scale = x.abs().max(y.abs()).max(1.0);
            max_rel = max_rel.max((x - y).abs() / scale);
        }
    }
    println!(
        "\nworlds agree: {} agents, max relative state difference {max_rel:.2e} \
         (float aggregation order only)",
        world_nl.len()
    );
}
