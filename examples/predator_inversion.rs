//! Effect inversion, end to end: compile the non-local predator script,
//! invert it automatically (Theorems 2/3), and show that the inverted
//! program computes the same simulation with one fewer communication round.
//!
//! ```sh
//! cargo run --release --example predator_inversion
//! ```
//!
//! Both forms run on a 4-worker cluster through the backend-erased
//! [`Runner`] — the compiled class is just a [`Scenario`] like any other,
//! so the comparison reads the communication schedule off
//! [`SimHandle::cluster_stats`] instead of hand-wiring `ClusterSim`.

use brace::common::{AgentId, DetRng, Result, Vec2};
use brace::core::{Agent, Behavior};
use brace::prelude::*;
use brace::scenario::ScenarioSetup;
use brasil::{invert_effects, CompiledClass, Script};
use std::sync::Arc;

/// A compiled BRASIL class as a scenario (sized square, random sizes).
struct CompiledPredator {
    name: &'static str,
    class: CompiledClass,
}

impl Scenario for CompiledPredator {
    fn name(&self) -> &'static str {
        self.name
    }
    fn description(&self) -> &'static str {
        "compiled Figure 5 predator script"
    }
    fn default_population(&self) -> usize {
        1_000
    }
    fn build(&self, size: Option<usize>, seed: u64) -> Result<ScenarioSetup> {
        let n = size.unwrap_or(self.default_population());
        let behavior = brasil::BrasilBehavior::new(self.class.clone());
        let schema = behavior.schema().clone();
        let mut rng = DetRng::seed_from_u64(seed);
        let population: Vec<Agent> = (0..n)
            .map(|i| {
                let mut a =
                    Agent::new(AgentId::new(i as u64), Vec2::new(rng.range(0.0, 60.0), rng.range(0.0, 60.0)), &schema);
                a.state[0] = rng.range(0.5, 1.5); // size
                a
            })
            .collect();
        Ok(ScenarioSetup {
            behavior: Arc::new(behavior),
            population,
            index: IndexKind::KdTree,
            epoch_len: 5,
            space_x: (0.0, 60.0),
        })
    }
}

fn main() {
    let source = brace::models::scripts::PREDATOR;
    println!("--- the script (biting pushes `hurt` onto the victim: NON-LOCAL) ---");
    println!("{}", source.trim());

    let script = Script::compile(source).expect("compiles");
    let class = script.classes()[0].clone();
    println!("\nschema says non-local effects: {}", class.schema().has_nonlocal_effects());

    let inverted = brasil::optimize(invert_effects(class.clone()).expect("invertible"));
    println!("after inversion, non-local effects: {}", inverted.schema().has_nonlocal_effects());
    println!("\n--- compiled plan, before inversion ---\n{}", brasil::pretty::class(&class));
    println!(
        "--- compiled plan, after inversion (roles of `self` and `p` swapped) ---\n{}",
        brasil::pretty::class(&inverted)
    );

    // Run both forms on the cluster through the one facade and compare.
    let run = |scenario: &CompiledPredator| -> Vec<Agent> {
        let mut sim = Runner::new(scenario).seed(5).backend(Backend::cluster(4)).launch().expect("cluster");
        sim.run(20).expect("runs");
        let stats = sim.cluster_stats().expect("cluster backend");
        println!(
            "{:<10} communication rounds/tick: {}   effect bytes: {:>8}   replica bytes: {:>9}",
            scenario.name(),
            stats.comm_rounds_per_tick,
            stats.net.effects.bytes,
            stats.net.replica_bytes()
        );
        sim.world().expect("collect")
    };

    println!("\n--- distributed execution, 4 workers, 20 ticks ---");
    let world_nl = run(&CompiledPredator { name: "non-local", class });
    let world_inv = run(&CompiledPredator { name: "inverted", class: inverted });

    let mut max_rel = 0.0f64;
    for (a, b) in world_nl.iter().zip(&world_inv) {
        assert_eq!(a.id, b.id);
        for (x, y) in a.state.iter().zip(&b.state) {
            let scale = x.abs().max(y.abs()).max(1.0);
            max_rel = max_rel.max((x - y).abs() / scale);
        }
    }
    println!(
        "\nworlds agree: {} agents, max relative state difference {max_rel:.2e} \
         (float aggregation order only)",
        world_nl.len()
    );
}
