//! The Couzin fish-school simulation on the distributed runtime, with the
//! load balancer chasing a migrating school.
//!
//! ```sh
//! cargo run --release --example fish_school
//! ```
//!
//! Every fish is informed of a +x travel direction (the migration
//! configuration), so the school marches out of the initial partitioning.
//! The example prints, per epoch, an ASCII density strip over the
//! partitioning axis together with the per-worker ownership counts — run it
//! twice (with/without `--no-lb`) and watch the boundaries follow the fish
//! or fail to.

use brace::mapreduce::{ClusterConfig, ClusterSim, LoadBalancer};
use brace::models::{FishBehavior, FishParams};
use std::sync::Arc;

fn main() {
    let lb = !std::env::args().any(|a| a == "--no-lb");
    let n = 2000;
    let params = FishParams {
        informed_a: 1.0,
        informed_b: 0.0,
        omega: 2.0,
        jitter: 0.02,
        school_radius: (n as f64 / std::f64::consts::PI / 0.5).sqrt(),
        ..FishParams::default()
    };
    let radius = params.school_radius;
    let behavior = FishBehavior::new(params);
    let pop = behavior.population(n, 7);
    let workers = 4;
    let cfg = ClusterConfig {
        workers,
        epoch_len: 10,
        seed: 7,
        space_x: (-radius, radius),
        load_balance: lb,
        balancer: LoadBalancer { imbalance_threshold: 1.2, migration_cost_ticks: 1.0, epoch_len: 10 },
        ..ClusterConfig::default()
    };
    println!(
        "{} fish, {workers} workers, load balancing {}",
        n,
        if lb { "ON" } else { "OFF (run with --no-lb to compare)" }
    );
    let mut sim = ClusterSim::new(Arc::new(behavior), pop, cfg).expect("valid cluster");
    for epoch in 0..20 {
        sim.run_epochs(1).expect("epoch runs");
        let stats = sim.stats();
        let owned = stats.agents_per_worker.last().cloned().unwrap_or_default();
        let bounds = sim.x_bounds().to_vec();
        // Density strip: 40 columns over the current boundary span.
        let world = sim.collect_agents().expect("collect");
        let (lo, hi) = (bounds[0], bounds[workers]);
        let mut strip = [0usize; 40];
        for a in &world {
            let t = ((a.pos.x - lo) / (hi - lo) * 40.0).clamp(0.0, 39.0) as usize;
            strip[t] += 1;
        }
        let max = strip.iter().copied().max().unwrap_or(1).max(1);
        let art: String = strip
            .iter()
            .map(|&c| match c * 8 / max {
                0 => ' ',
                1..=2 => '.',
                3..=5 => 'o',
                _ => '#',
            })
            .collect();
        println!(
            "epoch {epoch:>2} | [{art}] | owned per worker {owned:?} | imbalance {:.2} | repartitions {}",
            stats.last_imbalance(),
            stats.repartitions
        );
    }
    let stats = sim.stats();
    println!(
        "\nthroughput {:.0} agent-ticks/s; network: {} msgs, {} bytes ({} replica bytes)",
        stats.throughput(),
        stats.net.total_messages(),
        stats.net.total_bytes(),
        stats.net.replica_bytes(),
    );
}
