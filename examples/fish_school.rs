//! The Couzin fish-school migration on the distributed runtime, with the
//! load balancer chasing the school — driven through a **custom scenario**.
//!
//! ```sh
//! cargo run --release --example fish_school [--no-lb]
//! ```
//!
//! The registry's builtin `fish` uses the paper's two-informed-classes
//! configuration; the migration experiment wants every fish informed of
//! +x. Rather than hand-wiring `ClusterSim` (the old way), this example
//! defines a ten-line [`Scenario`] with the custom parameters and drives
//! it through the same [`Runner`]/[`SimHandle`] facade as everything else —
//! which is exactly how downstream users add workloads. The per-epoch
//! density strip reads the world through [`SimHandle`]'s observer-friendly
//! surface (`world`, `x_bounds`, `cluster_stats`).

use brace::common::Result;
use brace::models::{FishBehavior, FishParams};
use brace::prelude::*;
use brace::scenario::ScenarioSetup;
use std::sync::Arc;

/// The migration configuration: every fish informed of +x.
struct Migration;

impl Migration {
    fn params(n: usize) -> FishParams {
        FishParams {
            informed_a: 1.0,
            informed_b: 0.0,
            omega: 2.0,
            jitter: 0.02,
            school_radius: (n as f64 / std::f64::consts::PI / 0.5).sqrt(),
            ..FishParams::default()
        }
    }
}

impl Scenario for Migration {
    fn name(&self) -> &'static str {
        "fish-migration"
    }
    fn description(&self) -> &'static str {
        "fish school with every individual informed of +x (the Figures 7/8 load-balancing workload)"
    }
    fn default_population(&self) -> usize {
        2_000
    }
    fn build(&self, size: Option<usize>, seed: u64) -> Result<ScenarioSetup> {
        let n = size.unwrap_or(self.default_population());
        let behavior = FishBehavior::new(Self::params(n));
        let r = behavior.params().school_radius;
        let population = behavior.population(n, seed);
        Ok(ScenarioSetup {
            behavior: Arc::new(behavior),
            population,
            index: IndexKind::KdTree,
            epoch_len: 10,
            space_x: (-r, r),
        })
    }
}

fn main() {
    let lb = !std::env::args().any(|a| a == "--no-lb");
    let scenario = Migration;
    let workers = 4;

    // The scenario says *what* runs; the backend says *where*. The load
    // balancer is a placement knob, so it lives on the backend config
    // (seed/index/space_x/epoch_len are driven from the scenario at
    // launch, so their values here don't matter).
    let backend_cfg = brace::mapreduce::ClusterConfig {
        workers,
        load_balance: lb,
        balancer: brace::mapreduce::LoadBalancer { imbalance_threshold: 1.2, migration_cost_ticks: 1.0, epoch_len: 10 },
        ..Default::default()
    };

    println!(
        "{} fish, {workers} workers, load balancing {}",
        scenario.default_population(),
        if lb { "ON" } else { "OFF (run with --no-lb to compare)" }
    );
    let mut sim = Runner::new(&scenario).seed(7).backend(Backend::Cluster(backend_cfg)).launch().expect("launches");

    for epoch in 0..20 {
        sim.run(10).expect("epoch runs");
        let stats = sim.cluster_stats().expect("cluster backend");
        let owned = stats.agents_per_worker.last().cloned().unwrap_or_default();
        let bounds = sim.x_bounds().expect("cluster backend").to_vec();
        // Density strip: 40 columns over the current boundary span.
        let world = sim.world().expect("collect");
        let (lo, hi) = (bounds[0], bounds[workers]);
        let mut strip = [0usize; 40];
        for a in &world {
            let t = ((a.pos.x - lo) / (hi - lo) * 40.0).clamp(0.0, 39.0) as usize;
            strip[t] += 1;
        }
        let max = strip.iter().copied().max().unwrap_or(1).max(1);
        let art: String = strip
            .iter()
            .map(|&c| match c * 8 / max {
                0 => ' ',
                1..=2 => '.',
                3..=5 => 'o',
                _ => '#',
            })
            .collect();
        println!(
            "epoch {epoch:>2} | [{art}] | owned per worker {owned:?} | imbalance {:.2} | repartitions {}",
            stats.last_imbalance(),
            stats.repartitions
        );
    }
    let stats = sim.cluster_stats().expect("cluster backend");
    println!(
        "\nthroughput {:.0} agent-ticks/s; network: {} msgs, {} bytes ({} replica bytes)",
        stats.throughput(),
        stats.net.total_messages(),
        stats.net.total_bytes(),
        stats.net.replica_bytes(),
    );
}
