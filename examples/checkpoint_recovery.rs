//! Coordinated checkpoints and recovery by replay.
//!
//! ```sh
//! cargo run --release --example checkpoint_recovery
//! ```
//!
//! Runs the fish school on 3 workers with a checkpoint every 2 epochs,
//! kills the cluster's live state in epoch 5 (taking that epoch's results
//! — and any checkpoint it wrote — with it), recovers from the newest
//! surviving snapshot, replays, and proves the final world is identical to
//! a failure-free run. Checkpoints are also written to disk and reloaded.

use brace::mapreduce::{CheckpointStore, ClusterConfig, ClusterSim, FaultPlan};
use brace::models::{FishBehavior, FishParams};
use std::sync::Arc;

fn main() {
    let dir = std::env::temp_dir().join("brace-checkpoint-demo");
    let _ = std::fs::remove_dir_all(&dir);

    let make = || FishBehavior::new(FishParams { school_radius: 15.0, ..FishParams::default() });
    let pop = make().population(500, 17);
    let base = ClusterConfig {
        workers: 3,
        epoch_len: 5,
        seed: 17,
        space_x: (-15.0, 15.0),
        load_balance: false,
        checkpoint_every: Some(2),
        checkpoint_dir: Some(dir.clone()),
        ..ClusterConfig::default()
    };

    println!("failure-free reference run: 10 epochs of 5 ticks…");
    let mut clean = ClusterSim::new(Arc::new(make()), pop.clone(), base.clone()).expect("cluster");
    clean.run_epochs(10).expect("runs");
    let clean_world = clean.collect_agents().expect("collect");
    println!("  done: {} fish, {} checkpoints taken", clean_world.len(), clean.stats().checkpoints);

    println!("\nfaulty run: identical, but all live worker state is lost during epoch 5…");
    let cfg = ClusterConfig { fault: Some(FaultPlan::once(5)), ..base };
    let mut faulty = ClusterSim::new(Arc::new(make()), pop, cfg).expect("cluster");
    faulty.run_epochs(10).expect("runs (with recovery)");
    let stats = faulty.stats();
    println!(
        "  recovered: {} recovery, {} epochs replayed from the last coordinated checkpoint",
        stats.recoveries, stats.replayed_epochs
    );

    let recovered_world = faulty.collect_agents().expect("collect");
    assert_eq!(clean_world, recovered_world, "recovery must reproduce the failure-free world");
    println!("  final world is IDENTICAL to the failure-free run ({} agents)", recovered_world.len());

    let loaded = CheckpointStore::load_latest_from(&dir).expect("readable").expect("exists");
    println!(
        "\non-disk checkpoint: epoch {}, tick {}, {} worker snapshots, {} column bounds",
        loaded.epoch,
        loaded.tick,
        loaded.workers.len(),
        loaded.x_bounds.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
