//! Quickstart: pick a scenario from the registry, run it at any scale.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The registry knows every workload this repo ships — hand-coded models
//! and BRASIL scripts alike — and the [`Runner`] erases the backend: the
//! same scenario, the same seed, the same bits on one core or on a
//! simulated cluster. This example runs the BRASIL car-following script
//! single-node, then re-runs it on 4 workers and shows the worlds match.

use brace::prelude::*;

fn main() {
    // 1. The catalogue.
    let registry = Registry::builtin();
    println!("registered scenarios:");
    for s in registry.iter() {
        println!("  {:<16} {}", s.name(), s.description());
    }

    // 2. One scenario, single node. `run` builds the behavior (here:
    //    compiling the BRASIL script through lexer → parser → state-effect
    //    checker → planner → optimizer), generates the seeded population,
    //    runs 60 ticks, applies the scenario's own sanity checks and
    //    reports.
    let scenario = registry.get("brasil-car").expect("builtin");
    let single = Runner::new(scenario).seed(7).run(60).expect("single-node run");
    println!(
        "\nsingle node : {} cars, {} ticks, checksum {:#018X}, {:.0} agent-ticks/s",
        single.agents, single.ticks, single.checksum, single.agents_per_sec
    );

    // 3. The same scenario on a 4-worker cluster — one line of difference.
    let cluster = Runner::new(scenario).seed(7).backend(Backend::cluster(4)).run(60).expect("cluster run");
    println!(
        "cluster:4   : {} cars, {} ticks, checksum {:#018X}, {:.0} agent-ticks/s",
        cluster.agents, cluster.ticks, cluster.checksum, cluster.agents_per_sec
    );

    // 4. Write once, run anywhere — bit for bit.
    assert_eq!(single.checksum, cluster.checksum, "backends must agree");
    println!("\nworlds are bit-identical across backends ✓");

    // 5. A peek at the physics: the platoon stretched out and settled
    //    near the free-flow speed.
    let xs: Vec<f64> = single.world.iter().map(|a| a.pos.x).collect();
    let vels: Vec<f64> = single.world.iter().map(|a| a.state[0]).collect();
    let span = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max) - xs.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("platoon span {:.0} m, mean speed {:.2} m/s", span, vels.iter().sum::<f64>() / vels.len() as f64);
}
