//! Quickstart: write an agent in BRASIL, run it on the BRACE engine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The script is a one-lane car-following model: each car feels "pressure"
//! from the cars ahead of it within its visible range and relaxes toward a
//! free-flow speed otherwise. Thirty cars start bumper to bumper; watch the
//! platoon stretch out and settle.

use brace::common::{AgentId, Vec2};
use brace::core::{Agent, Behavior, Simulation};
use brasil::Script;

const SCRIPT: &str = r#"
class Car {
    // Position: update rule moves by the current speed; #range declares
    // both how far a car can see and how far it can move per tick.
    public state float x : x + vel #range[-40, 40];
    // Speed: relax toward 28 m/s, held back by pressure from leaders.
    public state float vel : clamp(vel + 0.25 * (28 - vel) - press / max(ahead, 1), 0, 36);
    private effect float press : sum;
    private effect float ahead : sum;
    public void run() {
        foreach (Car p : Extent<Car>) {
            if (p.x > x) {
                press <- clamp(40 - (p.x - x), 0, 40) * 0.2;
                ahead <- 1;
            }
        }
    }
}
"#;

fn main() {
    // 1. Compile the script: lexer → parser → state-effect checker →
    //    dataflow plan → optimizer.
    let script = Script::compile(SCRIPT).expect("valid BRASIL");
    let behavior = script.behavior("Car").expect("class Car");
    println!(
        "compiled class `{}`: visibility {}, reachability {}, non-local effects: {}",
        behavior.schema().name(),
        behavior.schema().visibility(),
        behavior.schema().reachability(),
        behavior.schema().has_nonlocal_effects(),
    );

    // 2. Build a population: 30 cars packed at 8 m spacing, 20 m/s.
    let schema = behavior.schema().clone();
    let agents: Vec<Agent> = (0..30)
        .map(|i| {
            let mut a = Agent::new(AgentId::new(i), Vec2::new(i as f64 * 8.0, 0.0), &schema);
            a.state[0] = 20.0; // vel
            a
        })
        .collect();

    // 3. Run: the engine turns each tick into a spatial self-join (KD-tree
    //    range probes), runs the query phase, aggregates effects, updates.
    let mut sim = Simulation::builder(behavior).agents(agents).seed(42).build().expect("valid config");
    for round in 0..6 {
        sim.run(10);
        let xs: Vec<f64> = sim.agents().iter().map(|a| a.pos.x).collect();
        let vels: Vec<f64> = sim.agents().iter().map(|a| a.state[0]).collect();
        let span =
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max) - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean_v = vels.iter().sum::<f64>() / vels.len() as f64;
        println!("tick {:>3}: platoon span {:6.1} m, mean speed {:5.2} m/s", (round + 1) * 10, span, mean_v);
    }
    println!("\nthroughput: {:.0} agent-ticks/s", sim.metrics().throughput());
}
