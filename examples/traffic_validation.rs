//! Traffic: the BRACE engine vs the hand-coded baseline, validated the way
//! the paper's Table 2 does it.
//!
//! ```sh
//! cargo run --release --example traffic_validation
//! ```
//!
//! Both engines integrate the same MITSIM-style physics (lane selection,
//! gap acceptance, car following) from the same initial road; the example
//! reports per-lane aggregate statistics side by side and their RMSPE.

use brace::core::Simulation;
use brace::models::validation::{compare, TrafficObserver};
use brace::models::{MitsimBaseline, TrafficBehavior, TrafficParams};

fn main() {
    let params = TrafficParams { segment: 8000.0, ..TrafficParams::default() };
    println!(
        "road: {:.0} m, {} lanes, lookahead {} m, ~{} vehicles",
        params.segment,
        params.lanes,
        params.lookahead,
        (params.segment * params.density) as usize * params.lanes
    );

    let behavior = TrafficBehavior::new(params.clone());
    let pop = behavior.population(12);
    let mut brace_sim = Simulation::builder(behavior).agents(pop).seed(12).build().expect("valid sim");
    let mut baseline = MitsimBaseline::new(params.clone(), 12);

    // Warm both engines past the start-up transient.
    print!("settling 150 ticks… ");
    brace_sim.run(150);
    baseline.run(150);
    println!("done");

    let mut obs_brace = TrafficObserver::new(&params, 50);
    let mut obs_base = TrafficObserver::new(&params, 50);
    for _ in 0..400 {
        obs_brace.observe_agents(&brace_sim.agents());
        obs_base.observe_baseline(&baseline);
        brace_sim.step();
        baseline.step();
    }

    println!("\nper-lane aggregates over 400 observed ticks (BRACE vs baseline):");
    println!(
        "{:<6}{:>14}{:>14}{:>14}{:>14}{:>12}{:>12}",
        "lane", "density", "density*", "velocity", "velocity*", "chg rate", "chg rate*"
    );
    for lane in 0..params.lanes {
        println!(
            "L{:<5}{:>14.5}{:>14.5}{:>14.2}{:>14.2}{:>12.2}{:>12.2}",
            lane + 1,
            obs_brace.mean_density(lane),
            obs_base.mean_density(lane),
            obs_brace.mean_velocity(lane),
            obs_base.mean_velocity(lane),
            obs_brace.mean_change_freq(lane),
            obs_base.mean_change_freq(lane),
        );
    }

    println!("\nRMSPE between the windowed series (Table 2 measure):");
    for row in compare(&obs_brace, &obs_base) {
        println!(
            "L{}: change freq {:>7.2}%   density {:>6.2}%   velocity {:>6.3}%",
            row.lane + 1,
            row.change_freq_rmspe * 100.0,
            row.density_rmspe * 100.0,
            row.velocity_rmspe * 100.0
        );
    }
    println!(
        "\nthe rightmost lane runs sparse (driver reluctance), so its relative errors run\n\
         highest — the effect the paper reports for its Lane 4."
    );
}
