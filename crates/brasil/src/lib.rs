//! # BRASIL — the Big Red Agent SImulation Language
//!
//! BRASIL is the paper's agent-centric scripting language (§4): an
//! object-oriented surface where each class is an agent, every field is
//! tagged `state` or `effect`, the query phase is the `run()` method, and
//! update rules are attached to state fields. Its restrictions — iteration
//! only via `foreach` over the extent, effects write-only inside loops,
//! update rules reading only the agent's own fields — are exactly what lets
//! scripts compile to a dataflow plan that the BRACE runtime can partition.
//!
//! Pipeline (one module per stage):
//!
//! ```text
//!   source ──lexer──► tokens ──parser──► AST ──analyze──► typed AST
//!          ──compile──► dataflow plan (plan.rs, the "monad-algebra-lite")
//!          ──optimize──► plan (a fixpoint pass pipeline: const folding,
//!                        CSE, dead code, effect inversion, visibility-
//!                        predicate pushdown, lane-kernel emission)
//!          ──exec──► a `brace_core::Behavior` the engine runs anywhere
//! ```
//!
//! The visibility `#range[lo, hi]` tags become the schema's visibility and
//! reachability bounds, which is where spatial-index selection happens: the
//! engine turns the `foreach` into an orthogonal range query. Weak-reference
//! visibility semantics (out-of-range reads resolve to NIL) are implemented
//! by NIL-propagating evaluation, and the equivalence of those semantics
//! with BRACE's replica filtering (the paper's Theorem 1) is asserted by
//! tests in `exec`.
//!
//! ## Example
//!
//! ```
//! use brasil::Script;
//! use brace_core::Behavior;
//!
//! let src = r#"
//!     class Fish {
//!         public state float x : x + vx #range[-1, 1];
//!         public state float y : y + vy #range[-1, 1];
//!         public state float vx : vx + avoidx / max(count, 1);
//!         public state float vy : vy + avoidy / max(count, 1);
//!         private effect float avoidx : sum;
//!         private effect float avoidy : sum;
//!         private effect int count : sum;
//!         public void run() {
//!             foreach (Fish p : Extent<Fish>) {
//!                 avoidx <- (x - p.x) / max(abs(x - p.x), 0.01);
//!                 avoidy <- (y - p.y) / max(abs(y - p.y), 0.01);
//!                 count <- 1;
//!             }
//!         }
//!     }
//! "#;
//! let script = Script::compile(src).expect("valid BRASIL");
//! let behavior = script.behavior("Fish").expect("class exists");
//! assert_eq!(behavior.schema().name(), "Fish");
//! ```

pub mod analyze;
pub mod ast;
pub mod exec;
pub mod optimize;
pub mod parser;
pub mod plan;
pub mod pretty;
pub mod token;

pub use analyze::analyze;
pub use exec::{BrasilBehavior, CompiledClass};
pub use optimize::{constant_fold, dead_code, invert_effects, optimize, Pass, PassReport, Pipeline, PipelineReport};
pub use parser::parse;

use brace_common::Result;

/// A compiled BRASIL script: one or more agent classes ready to run.
pub struct Script {
    classes: Vec<CompiledClass>,
}

impl Script {
    /// Lex, parse, analyze, compile and optimize `source`.
    pub fn compile(source: &str) -> Result<Script> {
        Self::compile_with(source, true)
    }

    /// Compile without the optimizer (for A/B measurements).
    pub fn compile_unoptimized(source: &str) -> Result<Script> {
        Self::compile_with(source, false)
    }

    fn compile_with(source: &str, optimize_plans: bool) -> Result<Script> {
        let program = parser::parse(source)?;
        let mut classes = Vec::with_capacity(program.classes.len());
        for class in &program.classes {
            let analyzed = analyze::analyze(class)?;
            let mut compiled = exec::compile(&analyzed)?;
            if optimize_plans {
                compiled = optimize::optimize(compiled);
            }
            classes.push(compiled);
        }
        Ok(Script { classes })
    }

    /// The compiled classes.
    pub fn classes(&self) -> &[CompiledClass] {
        &self.classes
    }

    /// Build a runnable [`BrasilBehavior`] for class `name`.
    pub fn behavior(&self, name: &str) -> Option<BrasilBehavior> {
        self.classes.iter().find(|c| c.schema().name() == name).map(|c| BrasilBehavior::new(c.clone()))
    }
}
