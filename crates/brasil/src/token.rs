//! Lexer for BRASIL.
//!
//! Hand-rolled scanner producing a flat token stream with line/column
//! positions for error reporting. BRASIL's surface is Java-like; the only
//! unusual tokens are the effect-assignment arrow `<-` and the constraint
//! tag `#range`.

use brace_common::{BraceError, Result};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and identifiers.
    Number(f64),
    Ident(String),
    // Keywords.
    Class,
    Public,
    Private,
    State,
    Effect,
    Const,
    Void,
    If,
    Else,
    Foreach,
    Extent,
    This,
    True,
    False,
    RangeTag, // `#range`
    // Punctuation.
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Colon,
    Comma,
    Dot,
    // Operators.
    Arrow, // `<-`
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Not,
    AndAnd,
    OrOr,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Class => write!(f, "class"),
            Tok::Public => write!(f, "public"),
            Tok::Private => write!(f, "private"),
            Tok::State => write!(f, "state"),
            Tok::Effect => write!(f, "effect"),
            Tok::Const => write!(f, "const"),
            Tok::Void => write!(f, "void"),
            Tok::If => write!(f, "if"),
            Tok::Else => write!(f, "else"),
            Tok::Foreach => write!(f, "foreach"),
            Tok::Extent => write!(f, "Extent"),
            Tok::This => write!(f, "this"),
            Tok::True => write!(f, "true"),
            Tok::False => write!(f, "false"),
            Tok::RangeTag => write!(f, "#range"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Semi => write!(f, ";"),
            Tok::Colon => write!(f, ":"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Arrow => write!(f, "<-"),
            Tok::Assign => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::EqEq => write!(f, "=="),
            Tok::Ne => write!(f, "!="),
            Tok::Not => write!(f, "!"),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its source position (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: u32,
    pub col: u32,
}

/// Tokenize `source`. `//` line comments and `/* */` block comments are
/// skipped.
pub fn lex(source: &str) -> Result<Vec<Spanned>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! err {
        ($($arg:tt)*) => {
            return Err(BraceError::Parse { line, col, message: format!($($arg)*) })
        };
    }

    let mut push = |tok: Tok, line: u32, col: u32| out.push(Spanned { tok, line, col });

    while i < bytes.len() {
        let c = bytes[i];
        let (tl, tc) = (line, col);
        let advance = |i: &mut usize, line: &mut u32, col: &mut u32, n: usize| {
            for _ in 0..n {
                if bytes[*i] == '\n' {
                    *line += 1;
                    *col = 1;
                } else {
                    *col += 1;
                }
                *i += 1;
            }
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => advance(&mut i, &mut line, &mut col, 1),
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    advance(&mut i, &mut line, &mut col, 1);
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                advance(&mut i, &mut line, &mut col, 2);
                loop {
                    if i + 1 >= bytes.len() {
                        err!("unterminated block comment");
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        advance(&mut i, &mut line, &mut col, 2);
                        break;
                    }
                    advance(&mut i, &mut line, &mut col, 1);
                }
            }
            '#' => {
                // Only `#range` exists.
                let word: String = bytes[i..].iter().take(6).collect();
                if word == "#range" {
                    push(Tok::RangeTag, tl, tc);
                    advance(&mut i, &mut line, &mut col, 6);
                } else {
                    err!("unknown directive starting with `#` (only `#range` is defined)");
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    // Don't swallow a method-call dot after digits (e.g. not
                    // expected in BRASIL, but keep the scanner strict: a
                    // second dot ends the number).
                    if bytes[i] == '.' && bytes[start..i].contains(&'.') {
                        break;
                    }
                    advance(&mut i, &mut line, &mut col, 1);
                }
                // Exponent part.
                if i < bytes.len() && (bytes[i] == 'e' || bytes[i] == 'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == '+' || bytes[j] == '-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        while i < j {
                            advance(&mut i, &mut line, &mut col, 1);
                        }
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            advance(&mut i, &mut line, &mut col, 1);
                        }
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                match text.parse::<f64>() {
                    Ok(n) => push(Tok::Number(n), tl, tc),
                    Err(_) => err!("malformed number `{text}`"),
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    advance(&mut i, &mut line, &mut col, 1);
                }
                let word: String = bytes[start..i].iter().collect();
                let tok = match word.as_str() {
                    "class" => Tok::Class,
                    "public" => Tok::Public,
                    "private" => Tok::Private,
                    "state" => Tok::State,
                    "effect" => Tok::Effect,
                    "const" => Tok::Const,
                    "void" => Tok::Void,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "foreach" => Tok::Foreach,
                    "Extent" => Tok::Extent,
                    "this" => Tok::This,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    _ => Tok::Ident(word),
                };
                push(tok, tl, tc);
            }
            _ => {
                let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
                let (tok, len) = match two.as_str() {
                    "<-" => (Tok::Arrow, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::Ne, 2),
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    _ => match c {
                        '{' => (Tok::LBrace, 1),
                        '}' => (Tok::RBrace, 1),
                        '(' => (Tok::LParen, 1),
                        ')' => (Tok::RParen, 1),
                        '[' => (Tok::LBracket, 1),
                        ']' => (Tok::RBracket, 1),
                        ';' => (Tok::Semi, 1),
                        ':' => (Tok::Colon, 1),
                        ',' => (Tok::Comma, 1),
                        '.' => (Tok::Dot, 1),
                        '=' => (Tok::Assign, 1),
                        '+' => (Tok::Plus, 1),
                        '-' => (Tok::Minus, 1),
                        '*' => (Tok::Star, 1),
                        '/' => (Tok::Slash, 1),
                        '%' => (Tok::Percent, 1),
                        '<' => (Tok::Lt, 1),
                        '>' => (Tok::Gt, 1),
                        '!' => (Tok::Not, 1),
                        _ => err!("unexpected character `{c}`"),
                    },
                };
                push(tok, tl, tc);
                advance(&mut i, &mut line, &mut col, len);
            }
        }
    }
    out.push(Spanned { tok: Tok::Eof, line, col });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("class Fish state effectx"),
            vec![Tok::Class, Tok::Ident("Fish".into()), Tok::State, Tok::Ident("effectx".into()), Tok::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 0.125 1e3 2.5e-2"),
            vec![
                Tok::Number(1.0),
                Tok::Number(2.5),
                Tok::Number(0.125),
                Tok::Number(1000.0),
                Tok::Number(0.025),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn arrow_vs_less_than() {
        assert_eq!(
            toks("a <- b < c <= d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Arrow,
                Tok::Ident("b".into()),
                Tok::Lt,
                Tok::Ident("c".into()),
                Tok::Le,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn range_tag() {
        assert_eq!(
            toks("#range[-1, 1]"),
            vec![
                Tok::RangeTag,
                Tok::LBracket,
                Tok::Minus,
                Tok::Number(1.0),
                Tok::Comma,
                Tok::Number(1.0),
                Tok::RBracket,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // comment\n b /* block\n comment */ c"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Ident("c".into()), Tok::Eof]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let spanned = lex("a\n  b").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn unknown_directive_rejected() {
        let err = lex("#foo").expect_err("must reject");
        assert!(err.to_string().contains("#range"));
    }

    #[test]
    fn unterminated_comment_rejected() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("== != && || ! % ="),
            vec![Tok::EqEq, Tok::Ne, Tok::AndAnd, Tok::OrOr, Tok::Not, Tok::Percent, Tok::Assign, Tok::Eof]
        );
    }
}
