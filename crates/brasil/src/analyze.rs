//! Semantic analysis: the state-effect checker.
//!
//! "The BRASIL compiler then enforces the read-write restrictions of the
//! state-effect pattern over those fields" (§4.1). Concretely:
//!
//! * in `run()` (the query phase) state fields are **read-only**; effect
//!   fields are **write-only inside `foreach`** (assignments aggregate) and
//!   may be *read* only **outside** any loop — the paper's "effect variables
//!   can only be read outside of a foreach-loop";
//! * neighbor access is restricted to *state* fields of the loop variable —
//!   an agent can never observe another agent's unaggregated effects;
//! * update rules read only the agent's **own** state and (final) effect
//!   fields — no neighbor access at tick boundaries;
//! * the spatial fields `x`/`y` (by name) map onto the agent position; their
//!   `#range` tags must be constants and become the schema's visibility and
//!   reachability bounds;
//! * non-local effect assignments (`p.f <- e`) are detected and recorded —
//!   they decide between one and two reduce passes downstream.
//!
//! The checker is also a light type checker with three types: numbers
//! (`float`/`int`/`bool` all evaluate to numeric values, with booleans as
//! 0/1), and agent references (only comparable and only dereferenceable).

use crate::ast::*;
use crate::plan::{Builtin, PExpr, PStmt};
use brace_common::{BraceError, Result};
use brace_core::Combinator;
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------------
// Cost estimation (drives batch engagement for compiled classes)
// ---------------------------------------------------------------------------

/// Minimum per-candidate cost at which lane execution pays for its gather.
/// The engine-wide threshold (`brace_core::behavior::BATCH_COST_THRESHOLD`),
/// re-exported here because the planner's lane costs are measured in
/// exactly these analyzer units — the hand-coded models score their
/// kernels on the same scale, so one rule governs compiled and hand-coded
/// engagement alike.
pub use brace_core::behavior::BATCH_COST_THRESHOLD;

/// Rough per-evaluation scalar cost of an expression, in ALU-op units.
/// Cheap arithmetic and compares count 1, divides 8, transcendentals 16 —
/// the point is ordering workloads, not cycle accuracy.
pub fn expr_cost(e: &PExpr) -> u32 {
    let mut cost = 0u32;
    e.any(&mut |n| {
        cost += match n {
            PExpr::Unary(..) | PExpr::Binary(..) | PExpr::AgentEq { .. } => 1,
            PExpr::Call(b, _) => match b {
                Builtin::Abs | Builtin::Floor | Builtin::Ceil | Builtin::Sign | Builtin::Min | Builtin::Max => 1,
                Builtin::Clamp => 2,
                Builtin::Sqrt => 8,
                Builtin::Sin | Builtin::Cos | Builtin::Exp | Builtin::Ln | Builtin::Pow | Builtin::Atan2 => 16,
            },
            _ => 0,
        };
        false
    });
    // Binary/Call nodes cost their op on top of operand costs, which `any`
    // already visits; division is upgraded separately below.
    let mut div_extra = 0u32;
    e.any(&mut |n| {
        if let PExpr::Binary(op, _, _) = n {
            if matches!(op, crate::ast::BinOp::Div | crate::ast::BinOp::Rem) {
                div_extra += 7; // 8 total with the base op
            }
        }
        false
    });
    cost + div_extra
}

/// Per-candidate cost estimate of a statement list (a `foreach` body).
pub fn stmts_cost(stmts: &[PStmt]) -> u32 {
    let mut cost = 0u32;
    for s in stmts {
        s.visit(&mut |st| match st {
            PStmt::Let { value, .. } | PStmt::LocalEffect { value, .. } | PStmt::RemoteEffect { value, .. } => {
                cost += expr_cost(value)
            }
            PStmt::If { cond, .. } => cost += expr_cost(cond),
            PStmt::Foreach { .. } => {}
        });
    }
    cost
}

/// Built-in functions: name → arity.
pub fn builtin_arity(name: &str) -> Option<usize> {
    Some(match name {
        "rand" => 0,
        "abs" | "sqrt" | "sin" | "cos" | "exp" | "ln" | "floor" | "ceil" | "sign" => 1,
        "min" | "max" | "pow" | "atan2" => 2,
        "clamp" => 3,
        _ => return None,
    })
}

/// Analysis output: validated class plus resolved symbol information.
#[derive(Debug, Clone)]
pub struct AnalyzedClass {
    pub decl: ClassDecl,
    /// Non-spatial state field names, in declaration order (schema order).
    pub state_names: Vec<String>,
    /// Effect field names in declaration order.
    pub effect_names: Vec<String>,
    pub combinators: Vec<Combinator>,
    pub has_x: bool,
    pub has_y: bool,
    /// L∞ visibility bound derived from `#range` tags (∞ when untagged).
    pub visibility: f64,
    /// Per-tick movement bound (same tags; the paper uses one constraint
    /// for both roles).
    pub reachability: f64,
    pub has_nonlocal: bool,
}

/// Evaluate a constant expression (for `#range` bounds).
fn const_eval(e: &Expr) -> Result<f64> {
    match e {
        Expr::Number(n) => Ok(*n),
        Expr::Bool(b) => Ok(*b as i32 as f64),
        Expr::Unary(UnOp::Neg, inner) => Ok(-const_eval(inner)?),
        Expr::Binary(op, a, b) => {
            let (a, b) = (const_eval(a)?, const_eval(b)?);
            Ok(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                _ => return Err(BraceError::Semantic("non-arithmetic operator in #range bound".into())),
            })
        }
        _ => Err(BraceError::Semantic("#range bounds must be constant expressions".into())),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Num,
    Bool,
    Agent,
}

struct Checker<'a> {
    class: &'a str,
    states: HashSet<&'a str>,
    effects: HashSet<&'a str>,
    /// Locals in scope (query phase only).
    locals: Vec<String>,
    /// Loop variables in scope, innermost last.
    loop_vars: Vec<String>,
    has_nonlocal: bool,
}

impl<'a> Checker<'a> {
    fn sem<T>(&self, line: u32, msg: impl std::fmt::Display) -> Result<T> {
        Err(BraceError::Semantic(format!("line {line}: {msg}")))
    }

    fn is_spatial(name: &str) -> bool {
        name == "x" || name == "y"
    }

    /// Type of an identifier in query-phase expression position.
    fn ident_ty(&self, name: &str, line: u32, in_loop: bool) -> Result<Ty> {
        if self.loop_vars.iter().any(|v| v == name) {
            return Ok(Ty::Agent);
        }
        if self.locals.iter().any(|v| v == name) {
            return Ok(Ty::Num);
        }
        if Self::is_spatial(name) || self.states.contains(name) {
            return Ok(Ty::Num);
        }
        if self.effects.contains(name) {
            if in_loop {
                return self.sem(
                    line,
                    format!("effect field `{name}` cannot be read inside a foreach loop (effects aggregate until the loop completes)"),
                );
            }
            return Ok(Ty::Num);
        }
        self.sem(line, format!("unknown identifier `{name}`"))
    }

    /// Validate a query-phase expression; returns its type.
    fn query_expr(&self, e: &Expr, line: u32, in_loop: bool) -> Result<Ty> {
        match e {
            Expr::Number(_) => Ok(Ty::Num),
            Expr::Bool(_) => Ok(Ty::Bool),
            Expr::This => Ok(Ty::Agent),
            Expr::Ident(name) => self.ident_ty(name, line, in_loop),
            Expr::Field(base, field) => {
                let bt = self.query_expr(base, line, in_loop)?;
                if bt != Ty::Agent {
                    return self.sem(line, format!("`.{field}` applied to a non-agent expression"));
                }
                if Self::is_spatial(field) || self.states.contains(field.as_str()) {
                    Ok(Ty::Num)
                } else if self.effects.contains(field.as_str()) {
                    self.sem(line, format!("cannot read effect field `{field}` of another agent"))
                } else {
                    self.sem(line, format!("class `{}` has no state field `{field}`", self.class))
                }
            }
            Expr::Unary(op, inner) => {
                let t = self.query_expr(inner, line, in_loop)?;
                match op {
                    UnOp::Neg if t == Ty::Num || t == Ty::Bool => Ok(Ty::Num),
                    UnOp::Not if t == Ty::Bool || t == Ty::Num => Ok(Ty::Bool),
                    _ => self.sem(line, "unary operator applied to an agent reference"),
                }
            }
            Expr::Binary(op, a, b) => {
                let (ta, tb) = (self.query_expr(a, line, in_loop)?, self.query_expr(b, line, in_loop)?);
                match op {
                    BinOp::Eq | BinOp::Ne => {
                        if (ta == Ty::Agent) != (tb == Ty::Agent) {
                            self.sem(line, "cannot compare an agent with a number")
                        } else {
                            Ok(Ty::Bool)
                        }
                    }
                    BinOp::And | BinOp::Or => {
                        if ta == Ty::Agent || tb == Ty::Agent {
                            self.sem(line, "logical operator applied to an agent reference")
                        } else {
                            Ok(Ty::Bool)
                        }
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        if ta == Ty::Agent || tb == Ty::Agent {
                            self.sem(line, "comparison applied to an agent reference")
                        } else {
                            Ok(Ty::Bool)
                        }
                    }
                    _ => {
                        if ta == Ty::Agent || tb == Ty::Agent {
                            self.sem(line, "arithmetic applied to an agent reference")
                        } else {
                            Ok(Ty::Num)
                        }
                    }
                }
            }
            Expr::Call(name, args) => {
                let Some(arity) = builtin_arity(name) else {
                    return self.sem(line, format!("unknown function `{name}`"));
                };
                if args.len() != arity {
                    return self.sem(line, format!("`{name}` takes {arity} argument(s), got {}", args.len()));
                }
                for a in args {
                    if self.query_expr(a, line, in_loop)? == Ty::Agent {
                        return self.sem(line, format!("agent reference passed to `{name}`"));
                    }
                }
                Ok(Ty::Num)
            }
        }
    }

    fn query_block(&mut self, block: &Block, in_loop: bool) -> Result<()> {
        let locals_at_entry = self.locals.len();
        for stmt in &block.stmts {
            match stmt {
                Stmt::Const { name, value, line, .. } => {
                    if self.states.contains(name.as_str())
                        || self.effects.contains(name.as_str())
                        || Self::is_spatial(name)
                    {
                        return self.sem(*line, format!("local `{name}` shadows a field"));
                    }
                    if self.locals.iter().any(|l| l == name) || self.loop_vars.iter().any(|l| l == name) {
                        return self.sem(*line, format!("duplicate local `{name}`"));
                    }
                    self.query_expr(value, *line, in_loop)?;
                    self.locals.push(name.clone());
                }
                Stmt::EffectAssign { target, field, value, line } => {
                    if !self.effects.contains(field.as_str()) {
                        return self.sem(
                            *line,
                            format!("`<-` target `{field}` is not an effect field (states are read-only in run())"),
                        );
                    }
                    if self.query_expr(value, *line, in_loop)? == Ty::Agent {
                        return self.sem(*line, "cannot assign an agent reference to an effect");
                    }
                    if let Some(t) = target {
                        // Non-local: target must be an agent expression —
                        // in this subset, a loop variable.
                        match t {
                            Expr::Ident(v) if self.loop_vars.iter().any(|lv| lv == v) => {
                                self.has_nonlocal = true;
                            }
                            _ => return self.sem(*line, "non-local effect target must be a foreach loop variable"),
                        }
                    }
                }
                Stmt::If { cond, then_, else_, line } => {
                    let t = self.query_expr(cond, *line, in_loop)?;
                    if t == Ty::Agent {
                        return self.sem(*line, "if condition cannot be an agent reference");
                    }
                    self.query_block(then_, in_loop)?;
                    if let Some(e) = else_ {
                        self.query_block(e, in_loop)?;
                    }
                }
                Stmt::Foreach { class, var, extent, body, line } => {
                    if class != self.class || extent != self.class {
                        return self.sem(
                            *line,
                            format!(
                                "foreach over `Extent<{extent}>` of class `{class}`: only the agent's own class `{}` is supported",
                                self.class
                            ),
                        );
                    }
                    if in_loop {
                        return self.sem(
                            *line,
                            "nested foreach loops are not supported (no self-join of extents inside a tick)",
                        );
                    }
                    if self.loop_vars.iter().any(|v| v == var) || self.locals.iter().any(|v| v == var) {
                        return self.sem(*line, format!("loop variable `{var}` shadows another binding"));
                    }
                    self.loop_vars.push(var.clone());
                    self.query_block(body, true)?;
                    self.loop_vars.pop();
                }
            }
        }
        self.locals.truncate(locals_at_entry);
        Ok(())
    }

    /// Validate an update-rule expression: own fields + effects + builtins
    /// only.
    fn update_expr(&self, e: &Expr, line: u32) -> Result<()> {
        match e {
            Expr::Number(_) | Expr::Bool(_) => Ok(()),
            Expr::This => self.sem(line, "`this` has no meaning in an update rule"),
            Expr::Ident(name) => {
                if Self::is_spatial(name) || self.states.contains(name.as_str()) || self.effects.contains(name.as_str())
                {
                    Ok(())
                } else {
                    self.sem(line, format!("update rules may only read the agent's own fields; `{name}` is not one"))
                }
            }
            Expr::Field(_, f) => self.sem(line, format!("update rules cannot access other agents (`.{f}`)")),
            Expr::Unary(_, inner) => self.update_expr(inner, line),
            Expr::Binary(_, a, b) => {
                self.update_expr(a, line)?;
                self.update_expr(b, line)
            }
            Expr::Call(name, args) => {
                let Some(arity) = builtin_arity(name) else {
                    return self.sem(line, format!("unknown function `{name}`"));
                };
                if args.len() != arity {
                    return self.sem(line, format!("`{name}` takes {arity} argument(s), got {}", args.len()));
                }
                for a in args {
                    self.update_expr(a, line)?;
                }
                Ok(())
            }
        }
    }
}

/// Analyze one class declaration.
pub fn analyze(decl: &ClassDecl) -> Result<AnalyzedClass> {
    // ---- field tables ------------------------------------------------------
    let mut seen: HashMap<&str, u32> = HashMap::new();
    for f in &decl.fields {
        if let Some(prev) = seen.insert(f.name.as_str(), f.line) {
            return Err(BraceError::Semantic(format!(
                "line {}: field `{}` already declared at line {prev}",
                f.line, f.name
            )));
        }
    }
    let mut state_names = Vec::new();
    let mut effect_names = Vec::new();
    let mut combinators = Vec::new();
    let mut has_x = false;
    let mut has_y = false;
    let mut ranges: Vec<(f64, f64)> = Vec::new();
    for f in &decl.fields {
        match &f.kind {
            FieldKind::State { range, .. } => {
                if let TypeName::Agent(t) = &f.ty {
                    return Err(BraceError::Semantic(format!(
                        "line {}: agent-typed state fields (`{t}`) are outside the supported subset",
                        f.line
                    )));
                }
                let spatial = f.name == "x" || f.name == "y";
                if spatial {
                    if f.name == "x" {
                        has_x = true;
                    } else {
                        has_y = true;
                    }
                    if let Some((lo, hi)) = range {
                        let (lo, hi) = (const_eval(lo)?, const_eval(hi)?);
                        if lo > hi {
                            return Err(BraceError::Semantic(format!(
                                "line {}: #range lower bound {lo} exceeds upper bound {hi}",
                                f.line
                            )));
                        }
                        ranges.push((lo, hi));
                    }
                } else {
                    if range.is_some() {
                        return Err(BraceError::Semantic(format!(
                            "line {}: #range only applies to the spatial fields x and y",
                            f.line
                        )));
                    }
                    state_names.push(f.name.clone());
                }
            }
            FieldKind::Effect { combinator } => {
                let Some(c) = Combinator::parse(combinator) else {
                    return Err(BraceError::Semantic(format!(
                        "line {}: unknown combinator `{combinator}` (expected sum, prod, min, max, or, and)",
                        f.line
                    )));
                };
                effect_names.push(f.name.clone());
                combinators.push(c);
            }
        }
    }

    // Visibility/reachability: the largest |bound| across spatial ranges
    // (square L∞ regions). Untagged spatial fields leave it unbounded.
    let spatial_fields = has_x as usize + has_y as usize;
    let (visibility, reachability) = if !ranges.is_empty() && ranges.len() == spatial_fields {
        let ext = ranges.iter().map(|(lo, hi)| lo.abs().max(hi.abs())).fold(0.0f64, f64::max);
        (ext, ext)
    } else {
        (f64::INFINITY, f64::INFINITY)
    };

    // ---- check run() --------------------------------------------------------
    let mut checker = Checker {
        class: &decl.name,
        states: decl
            .fields
            .iter()
            .filter(|f| matches!(f.kind, FieldKind::State { .. }))
            .map(|f| f.name.as_str())
            .collect(),
        effects: decl
            .fields
            .iter()
            .filter(|f| matches!(f.kind, FieldKind::Effect { .. }))
            .map(|f| f.name.as_str())
            .collect(),
        locals: Vec::new(),
        loop_vars: Vec::new(),
        has_nonlocal: false,
    };
    checker.query_block(&decl.run, false)?;
    let has_nonlocal = checker.has_nonlocal;

    // ---- check update rules -------------------------------------------------
    for f in &decl.fields {
        if let FieldKind::State { update: Some(rule), .. } = &f.kind {
            checker.update_expr(rule, f.line)?;
        }
    }

    Ok(AnalyzedClass {
        decl: decl.clone(),
        state_names,
        effect_names,
        combinators,
        has_x,
        has_y,
        visibility,
        reachability,
        has_nonlocal,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze_src(src: &str) -> Result<AnalyzedClass> {
        let prog = parse(src)?;
        analyze(&prog.classes[0])
    }

    const FISH: &str = r#"
        class Fish {
            public state float x : x + vx #range[-1, 1];
            public state float y : y + vy #range[-1, 1];
            public state float vx : vx + avoidx / max(count, 1);
            public state float vy : vy + avoidy / max(count, 1);
            private effect float avoidx : sum;
            private effect float avoidy : sum;
            private effect int count : sum;
            public void run() {
                foreach (Fish p : Extent<Fish>) {
                    p.avoidx <- 1 / abs(x - p.x);
                    p.avoidy <- 1 / abs(y - p.y);
                    p.count <- 1;
                }
            }
        }
    "#;

    #[test]
    fn fish_analyzes_with_bounds_and_nonlocal() {
        let a = analyze_src(FISH).unwrap();
        assert_eq!(a.state_names, vec!["vx", "vy"]);
        assert_eq!(a.effect_names, vec!["avoidx", "avoidy", "count"]);
        assert_eq!(a.combinators, vec![Combinator::Sum; 3]);
        assert!(a.has_x && a.has_y);
        assert_eq!(a.visibility, 1.0);
        assert_eq!(a.reachability, 1.0);
        assert!(a.has_nonlocal);
    }

    #[test]
    fn local_only_script_is_flagged_local() {
        let a = analyze_src(
            r#"
            class A {
                public state float x : x #range[-2, 2];
                private effect float n : sum;
                public void run() {
                    foreach (A p : Extent<A>) { n <- 1; }
                }
            }
        "#,
        )
        .unwrap();
        assert!(!a.has_nonlocal);
        assert_eq!(a.visibility, 2.0);
    }

    #[test]
    fn effect_read_inside_loop_rejected() {
        let err = analyze_src(
            r#"
            class A {
                private effect float n : sum;
                public void run() {
                    foreach (A p : Extent<A>) { n <- n + 1; }
                }
            }
        "#,
        )
        .expect_err("must reject");
        assert!(err.to_string().contains("inside a foreach"));
    }

    #[test]
    fn effect_read_outside_loop_allowed() {
        analyze_src(
            r#"
            class A {
                private effect float n : sum;
                private effect float big : max;
                public void run() {
                    foreach (A p : Extent<A>) { n <- 1; }
                    if (n > 10) { big <- n; }
                }
            }
        "#,
        )
        .unwrap();
    }

    #[test]
    fn state_assignment_in_query_rejected() {
        let err = analyze_src(
            r#"
            class A {
                public state float v : v;
                public void run() { v <- 1; }
            }
        "#,
        )
        .expect_err("must reject");
        assert!(err.to_string().contains("not an effect field"));
    }

    #[test]
    fn neighbor_effect_read_rejected() {
        let err = analyze_src(
            r#"
            class A {
                private effect float n : sum;
                private effect float m : sum;
                public void run() {
                    foreach (A p : Extent<A>) { m <- p.n; }
                }
            }
        "#,
        )
        .expect_err("must reject");
        assert!(err.to_string().contains("effect field `n` of another agent"));
    }

    #[test]
    fn update_rule_cannot_see_other_agents() {
        let err = analyze_src(
            r#"
            class A {
                public state float v : p.v;
                public void run() {}
            }
        "#,
        )
        .expect_err("must reject");
        assert!(err.to_string().contains("cannot access other agents"));
    }

    #[test]
    fn nonlocal_target_must_be_loop_var() {
        let err = analyze_src(
            r#"
            class A {
                public state float v : v;
                private effect float n : sum;
                public void run() { v.n <- 1; }
            }
        "#,
        )
        .expect_err("must reject");
        assert!(err.to_string().contains("loop variable"));
    }

    #[test]
    fn unknown_combinator_rejected() {
        let err = analyze_src(
            r#"
            class A {
                private effect float n : median;
                public void run() {}
            }
        "#,
        )
        .expect_err("must reject");
        assert!(err.to_string().contains("median"));
    }

    #[test]
    fn duplicate_field_rejected() {
        let err = analyze_src(
            r#"
            class A {
                public state float v : v;
                private effect float v : sum;
                public void run() {}
            }
        "#,
        )
        .expect_err("must reject");
        assert!(err.to_string().contains("already declared"));
    }

    #[test]
    fn range_on_non_spatial_rejected() {
        let err = analyze_src(
            r#"
            class A {
                public state float speed : speed #range[-1, 1];
                public void run() {}
            }
        "#,
        )
        .expect_err("must reject");
        assert!(err.to_string().contains("spatial fields"));
    }

    #[test]
    fn missing_range_means_unbounded_visibility() {
        let a = analyze_src(
            r#"
            class A {
                public state float x : x;
                public void run() {}
            }
        "#,
        )
        .unwrap();
        assert_eq!(a.visibility, f64::INFINITY);
    }

    #[test]
    fn nested_foreach_rejected() {
        let err = analyze_src(
            r#"
            class A {
                private effect float n : sum;
                public void run() {
                    foreach (A p : Extent<A>) {
                        foreach (A q : Extent<A>) { n <- 1; }
                    }
                }
            }
        "#,
        )
        .expect_err("must reject");
        assert!(err.to_string().contains("nested foreach"));
    }

    #[test]
    fn agent_comparison_with_this_allowed() {
        analyze_src(
            r#"
            class A {
                private effect float n : sum;
                public void run() {
                    foreach (A p : Extent<A>) {
                        if (p == this) { } else { n <- 1; }
                    }
                }
            }
        "#,
        )
        .unwrap();
    }

    #[test]
    fn agent_arithmetic_rejected() {
        let err = analyze_src(
            r#"
            class A {
                private effect float n : sum;
                public void run() {
                    foreach (A p : Extent<A>) { n <- p + 1; }
                }
            }
        "#,
        )
        .expect_err("must reject");
        assert!(err.to_string().contains("agent reference"));
    }

    #[test]
    fn constant_range_arithmetic_is_folded() {
        let a = analyze_src(
            r#"
            class A {
                public state float x : x #range[0 - 2 * 3, 6];
                public void run() {}
            }
        "#,
        )
        .unwrap();
        assert_eq!(a.visibility, 6.0);
    }
}
