//! Recursive-descent parser for BRASIL.
//!
//! Grammar (see the BRASIL language notes in `DESIGN.md`):
//!
//! ```text
//! program   := class+
//! class     := "class" IDENT "{" member* "}"
//! member    := field | run
//! field     := vis? ("state" | "effect") type IDENT (":" spec)? ";"
//! spec      := expr ("#range" "[" expr "," expr "]")?      -- state
//!            | IDENT                                       -- effect combinator
//! run       := vis? "void" IDENT "(" ")" block
//! block     := "{" stmt* "}"
//! stmt      := "const" type IDENT "=" expr ";"
//!            | postfix "<-" expr ";"
//!            | "if" "(" expr ")" block ("else" block)?
//!            | "foreach" "(" IDENT IDENT ":" "Extent" "<" IDENT ">" ")" block
//! expr      := or ; or := and ("||" and)* ; and := cmp ("&&" cmp)* ;
//! cmp       := add (relop add)? ; add := mul (("+"|"-") mul)* ;
//! mul       := unary (("*"|"/"|"%") unary)* ; unary := ("-"|"!")* postfix ;
//! postfix   := primary ("." IDENT)* ;
//! primary   := NUMBER | "true" | "false" | "this" | IDENT ("(" args ")")? | "(" expr ")"
//! ```

use crate::ast::*;
use crate::token::{lex, Spanned, Tok};
use brace_common::{BraceError, Result};

/// Parse a full program.
pub fn parse(source: &str) -> Result<Program> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut classes = Vec::new();
    while !p.check(&Tok::Eof) {
        classes.push(p.class()?);
    }
    if classes.is_empty() {
        return Err(BraceError::Parse { line: 1, col: 1, message: "expected at least one class".into() });
    }
    Ok(Program { classes })
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Spanned {
        &self.tokens[self.pos]
    }

    fn check(&self, t: &Tok) -> bool {
        &self.peek().tok == t
    }

    fn advance(&mut self) -> Spanned {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.check(t) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        let s = self.peek();
        Err(BraceError::Parse { line: s.line, col: s.col, message: message.into() })
    }

    fn expect(&mut self, t: &Tok) -> Result<Spanned> {
        if self.check(t) {
            Ok(self.advance())
        } else {
            self.err(format!("expected `{t}`, found `{}`", self.peek().tok))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn class(&mut self) -> Result<ClassDecl> {
        self.expect(&Tok::Class)?;
        let name = self.ident()?;
        self.expect(&Tok::LBrace)?;
        let mut fields = Vec::new();
        let mut run: Option<Block> = None;
        while !self.check(&Tok::RBrace) {
            let vis = if self.eat(&Tok::Public) {
                Visibility::Public
            } else if self.eat(&Tok::Private) {
                Visibility::Private
            } else {
                Visibility::Public
            };
            if self.eat(&Tok::Void) {
                let line = self.peek().line;
                let mname = self.ident()?;
                if mname != "run" {
                    return Err(BraceError::Parse {
                        line,
                        col: 1,
                        message: format!("only the `run()` method is supported, found `{mname}()`"),
                    });
                }
                self.expect(&Tok::LParen)?;
                self.expect(&Tok::RParen)?;
                let body = self.block()?;
                if run.replace(body).is_some() {
                    return Err(BraceError::Parse { line, col: 1, message: "duplicate run() method".into() });
                }
            } else {
                fields.push(self.field(vis)?);
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(ClassDecl { name, fields, run: run.unwrap_or_default() })
    }

    fn type_name(&mut self) -> Result<TypeName> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let ty = match s.as_str() {
                    "float" | "double" => TypeName::Float,
                    "int" | "long" => TypeName::Int,
                    "bool" | "boolean" => TypeName::Bool,
                    other => TypeName::Agent(other.to_string()),
                };
                self.advance();
                Ok(ty)
            }
            other => self.err(format!("expected type, found `{other}`")),
        }
    }

    fn field(&mut self, visibility: Visibility) -> Result<FieldDecl> {
        let line = self.peek().line;
        let kind_tok = if self.eat(&Tok::State) {
            Tok::State
        } else if self.eat(&Tok::Effect) {
            Tok::Effect
        } else {
            return self.err("expected `state` or `effect` field");
        };
        let ty = self.type_name()?;
        let name = self.ident()?;
        let kind = if kind_tok == Tok::State {
            let mut update = None;
            let mut range = None;
            if self.eat(&Tok::Colon) {
                update = Some(self.expr()?);
            }
            if self.eat(&Tok::RangeTag) {
                self.expect(&Tok::LBracket)?;
                let lo = self.expr()?;
                self.expect(&Tok::Comma)?;
                let hi = self.expr()?;
                self.expect(&Tok::RBracket)?;
                range = Some((lo, hi));
            }
            FieldKind::State { update, range }
        } else {
            self.expect(&Tok::Colon)?;
            let combinator = self.ident()?;
            FieldKind::Effect { combinator }
        };
        self.expect(&Tok::Semi)?;
        Ok(FieldDecl { visibility, name, ty, kind, line })
    }

    fn block(&mut self) -> Result<Block> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.check(&Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let line = self.peek().line;
        if self.eat(&Tok::Const) {
            let ty = self.type_name()?;
            let name = self.ident()?;
            self.expect(&Tok::Assign)?;
            let value = self.expr()?;
            self.expect(&Tok::Semi)?;
            return Ok(Stmt::Const { name, ty, value, line });
        }
        if self.eat(&Tok::If) {
            self.expect(&Tok::LParen)?;
            let cond = self.expr()?;
            self.expect(&Tok::RParen)?;
            let then_ = self.block()?;
            let else_ = if self.eat(&Tok::Else) { Some(self.block()?) } else { None };
            return Ok(Stmt::If { cond, then_, else_, line });
        }
        if self.eat(&Tok::Foreach) {
            self.expect(&Tok::LParen)?;
            let class = self.ident()?;
            let var = self.ident()?;
            self.expect(&Tok::Colon)?;
            self.expect(&Tok::Extent)?;
            self.expect(&Tok::Lt)?;
            let extent = self.ident()?;
            self.expect(&Tok::Gt)?;
            self.expect(&Tok::RParen)?;
            let body = self.block()?;
            return Ok(Stmt::Foreach { class, var, extent, body, line });
        }
        // Effect assignment: `lhs <- expr;` where lhs is ident or postfix
        // field access.
        let lhs = self.postfix()?;
        self.expect(&Tok::Arrow)?;
        let value = self.expr()?;
        self.expect(&Tok::Semi)?;
        match lhs {
            Expr::Ident(field) => Ok(Stmt::EffectAssign { target: None, field, value, line }),
            Expr::Field(base, field) => {
                // `this.f <- e` is local.
                if *base == Expr::This {
                    Ok(Stmt::EffectAssign { target: None, field, value, line })
                } else {
                    Ok(Stmt::EffectAssign { target: Some(*base), field, value, line })
                }
            }
            _ => Err(BraceError::Parse {
                line,
                col: 1,
                message: "left side of `<-` must be an effect field or target.field".into(),
            }),
        }
    }

    // ---- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut e = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let r = self.and_expr()?;
            e = Expr::Binary(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut e = self.cmp_expr()?;
        while self.eat(&Tok::AndAnd) {
            let r = self.cmp_expr()?;
            e = Expr::Binary(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let e = self.add_expr()?;
        let op = match self.peek().tok {
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            Tok::EqEq => Some(BinOp::Eq),
            Tok::Ne => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let r = self.add_expr()?;
            Ok(Expr::Binary(op, Box::new(e), Box::new(r)))
        } else {
            Ok(e)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let r = self.mul_expr()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.advance();
            let r = self.unary_expr()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Minus) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(e)));
        }
        if self.eat(&Tok::Not) {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(e)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        while self.eat(&Tok::Dot) {
            let field = self.ident()?;
            e = Expr::Field(Box::new(e), field);
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().tok.clone() {
            Tok::Number(n) => {
                self.advance();
                Ok(Expr::Number(n))
            }
            Tok::True => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            Tok::False => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            Tok::This => {
                self.advance();
                Ok(Expr::This)
            }
            Tok::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.advance();
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.check(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            other => self.err(format!("expected expression, found `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FISH: &str = r#"
        class Fish {
            public state float x : x + vx #range[-1, 1];
            public state float y : y + vy #range[-1, 1];
            public state float vx : vx + rand() + avoidx / count * vx;
            public state float vy : vy + rand() + avoidy / count * vy;
            private effect float avoidx : sum;
            private effect float avoidy : sum;
            private effect int count : sum;
            public void run() {
                foreach (Fish p : Extent<Fish>) {
                    p.avoidx <- 1 / abs(x - p.x);
                    p.avoidy <- 1 / abs(y - p.y);
                    p.count <- 1;
                }
            }
        }
    "#;

    #[test]
    fn parses_paper_figure_2() {
        let prog = parse(FISH).unwrap();
        assert_eq!(prog.classes.len(), 1);
        let c = &prog.classes[0];
        assert_eq!(c.name, "Fish");
        assert_eq!(c.fields.len(), 7);
        assert_eq!(c.run.stmts.len(), 1);
        match &c.run.stmts[0] {
            Stmt::Foreach { class, var, extent, body, .. } => {
                assert_eq!(class, "Fish");
                assert_eq!(var, "p");
                assert_eq!(extent, "Fish");
                assert_eq!(body.stmts.len(), 3);
                match &body.stmts[0] {
                    Stmt::EffectAssign { target: Some(t), field, .. } => {
                        assert_eq!(*t, Expr::Ident("p".into()));
                        assert_eq!(field, "avoidx");
                    }
                    other => panic!("expected non-local assign, got {other:?}"),
                }
            }
            other => panic!("expected foreach, got {other:?}"),
        }
    }

    #[test]
    fn state_field_with_range() {
        let prog = parse(FISH).unwrap();
        match &prog.classes[0].fields[0].kind {
            FieldKind::State { update: Some(_), range: Some((lo, hi)) } => {
                assert_eq!(*lo, Expr::Unary(UnOp::Neg, Box::new(Expr::Number(1.0))));
                assert_eq!(*hi, Expr::Number(1.0));
            }
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn effect_field_combinator_name() {
        let prog = parse(FISH).unwrap();
        match &prog.classes[0].fields[4].kind {
            FieldKind::Effect { combinator } => assert_eq!(combinator, "sum"),
            other => panic!("wrong kind {other:?}"),
        }
    }

    #[test]
    fn this_dot_field_assign_is_local() {
        let src = r#"
            class A {
                private effect float e : sum;
                public void run() { this.e <- 1; }
            }
        "#;
        let prog = parse(src).unwrap();
        match &prog.classes[0].run.stmts[0] {
            Stmt::EffectAssign { target: None, field, .. } => assert_eq!(field, "e"),
            other => panic!("expected local assign, got {other:?}"),
        }
    }

    #[test]
    fn if_else_and_const() {
        let src = r#"
            class A {
                public state float v : v;
                private effect float e : max;
                public void run() {
                    const float t = v * 2;
                    if (t > 1 && t < 10) { e <- t; } else { e <- 0 - t; }
                }
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.classes[0].run.stmts.len(), 2);
        match &prog.classes[0].run.stmts[1] {
            Stmt::If { else_: Some(_), .. } => {}
            other => panic!("expected if/else, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence() {
        let src = r#"
            class A {
                private effect float e : sum;
                public void run() { e <- 1 + 2 * 3 - 4 / 2; }
            }
        "#;
        let prog = parse(src).unwrap();
        // Shape: (1 + (2*3)) - (4/2)
        match &prog.classes[0].run.stmts[0] {
            Stmt::EffectAssign { value: Expr::Binary(BinOp::Sub, l, r), .. } => {
                assert!(matches!(**l, Expr::Binary(BinOp::Add, _, _)));
                assert!(matches!(**r, Expr::Binary(BinOp::Div, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_reports_position() {
        let err = parse("class A { public state float x : ; }").expect_err("must fail");
        match err {
            brace_common::BraceError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("wrong error {other}"),
        }
    }

    #[test]
    fn rejects_unknown_method() {
        let err = parse("class A { public void step() {} }").expect_err("must fail");
        assert!(err.to_string().contains("run()"));
    }

    #[test]
    fn rejects_duplicate_run() {
        let err = parse("class A { public void run() {} public void run() {} }").expect_err("must fail");
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn multiple_classes() {
        let src = r#"
            class A { public state float x : x; public void run() {} }
            class B { public state float x : x; public void run() {} }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.classes.len(), 2);
    }

    #[test]
    fn empty_program_rejected() {
        assert!(parse("  // nothing\n").is_err());
    }
}
