//! The dataflow plan — BRASIL's compilation target.
//!
//! The paper compiles BRASIL to the monad algebra (Appendix B); the plan
//! here is that algebra's operational skeleton specialized to the query
//! shape the language can express: a straight-line prefix, one optional
//! `foreach` join with the visible extent (the simplified loop form
//! `F(E, B)` of equation (11)), conditionals, and effect aggregation (⊕).
//! Every slot is resolved — no names survive compilation — which makes the
//! algebraic rewrites in [`optimize`](mod@crate::optimize) plain tree surgery.

use crate::ast::{BinOp, UnOp};
use brace_common::{Rect, Vec2};
use serde::{Deserialize, Serialize};

/// Spatial axis selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Axis {
    X,
    Y,
}

/// Built-in functions (validated arity at analysis time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Builtin {
    Abs,
    Sqrt,
    Sin,
    Cos,
    Exp,
    Ln,
    Floor,
    Ceil,
    Sign,
    Min,
    Max,
    Pow,
    Atan2,
    Clamp,
}

impl Builtin {
    pub fn parse(name: &str) -> Option<Builtin> {
        Some(match name {
            "abs" => Builtin::Abs,
            "sqrt" => Builtin::Sqrt,
            "sin" => Builtin::Sin,
            "cos" => Builtin::Cos,
            "exp" => Builtin::Exp,
            "ln" => Builtin::Ln,
            "floor" => Builtin::Floor,
            "ceil" => Builtin::Ceil,
            "sign" => Builtin::Sign,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "pow" => Builtin::Pow,
            "atan2" => Builtin::Atan2,
            "clamp" => Builtin::Clamp,
            _ => return None,
        })
    }

    /// Apply to evaluated arguments.
    pub fn apply(self, args: &[f64]) -> f64 {
        match self {
            Builtin::Abs => args[0].abs(),
            Builtin::Sqrt => args[0].sqrt(),
            Builtin::Sin => args[0].sin(),
            Builtin::Cos => args[0].cos(),
            Builtin::Exp => args[0].exp(),
            Builtin::Ln => args[0].ln(),
            Builtin::Floor => args[0].floor(),
            Builtin::Ceil => args[0].ceil(),
            Builtin::Sign => {
                if args[0] > 0.0 {
                    1.0
                } else if args[0] < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            Builtin::Min => args[0].min(args[1]),
            Builtin::Max => args[0].max(args[1]),
            Builtin::Pow => args[0].powf(args[1]),
            Builtin::Atan2 => args[0].atan2(args[1]),
            Builtin::Clamp => args[0].clamp(args[1].min(args[2]), args[2].max(args[1])),
        }
    }
}

/// Which agent an agent-valued reference denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentRef {
    This,
    /// The current `foreach` loop variable.
    Other,
}

/// A resolved expression. `Self*` reads the querying agent, `Other*` reads
/// the current loop neighbor (valid only inside `Foreach`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PExpr {
    Const(f64),
    SelfPos(Axis),
    OtherPos(Axis),
    SelfState(u16),
    OtherState(u16),
    /// Read of the agent's *locally aggregated* effect value; analysis
    /// guarantees this occurs only outside loops.
    SelfEffect(u16),
    /// A `const` local slot.
    Local(u16),
    /// Agent identity comparison (`p == this`); `negate` for `!=`.
    AgentEq {
        left: AgentRef,
        right: AgentRef,
        negate: bool,
    },
    Unary(UnOp, Box<PExpr>),
    Binary(BinOp, Box<PExpr>, Box<PExpr>),
    Call(Builtin, Vec<PExpr>),
    /// Deterministic per-(agent, tick, phase) random draw in [0, 1).
    Rand,
}

impl PExpr {
    /// Does any node satisfy `pred`?
    pub fn any(&self, pred: &mut impl FnMut(&PExpr) -> bool) -> bool {
        if pred(self) {
            return true;
        }
        match self {
            PExpr::Unary(_, e) => e.any(pred),
            PExpr::Binary(_, a, b) => a.any(pred) || b.any(pred),
            PExpr::Call(_, args) => args.iter().any(|a| a.any(pred)),
            _ => false,
        }
    }

    /// Rewrite every node bottom-up.
    pub fn map(self, f: &mut impl FnMut(PExpr) -> PExpr) -> PExpr {
        let rebuilt = match self {
            PExpr::Unary(op, e) => PExpr::Unary(op, Box::new(e.map(f))),
            PExpr::Binary(op, a, b) => PExpr::Binary(op, Box::new(a.map(f)), Box::new(b.map(f))),
            PExpr::Call(b, args) => PExpr::Call(b, args.into_iter().map(|a| a.map(f)).collect()),
            leaf => leaf,
        };
        f(rebuilt)
    }
}

/// A plan statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PStmt {
    /// Bind local slot `slot`.
    Let {
        slot: u16,
        value: PExpr,
    },
    /// `field <- value` on the querying agent (⊕-aggregated).
    LocalEffect {
        field: u16,
        value: PExpr,
    },
    /// `other.field <- value` on the current loop neighbor.
    RemoteEffect {
        field: u16,
        value: PExpr,
    },
    If {
        cond: PExpr,
        then_: Vec<PStmt>,
        else_: Vec<PStmt>,
    },
    /// Join with the visible extent: run `body` once per visible neighbor.
    Foreach {
        body: Vec<PStmt>,
    },
}

impl PStmt {
    /// Visit every statement in the tree.
    pub fn visit(&self, f: &mut impl FnMut(&PStmt)) {
        f(self);
        match self {
            PStmt::If { then_, else_, .. } => {
                for s in then_.iter().chain(else_) {
                    s.visit(f);
                }
            }
            PStmt::Foreach { body } => {
                for s in body {
                    s.visit(f);
                }
            }
            _ => {}
        }
    }
}

/// The compiled query phase.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QueryPlan {
    pub stmts: Vec<PStmt>,
    pub n_locals: u16,
    /// Slots whose `Let` binds the computed value *verbatim* — no NaN→NIL
    /// coercion. Source-level `const` bindings coerce (NIL propagation is
    /// observable at `if` conditions), but optimizer-introduced temporaries
    /// must be transparent: hoisting `E` into a raw slot and reading it back
    /// is exactly inlining `E`.
    pub raw_slots: Vec<u16>,
}

impl QueryPlan {
    /// Count statements matching `pred` (diagnostics and optimizer tests).
    pub fn count(&self, pred: &mut impl FnMut(&PStmt) -> bool) -> usize {
        let mut n = 0;
        for s in &self.stmts {
            s.visit(&mut |st| {
                if pred(st) {
                    n += 1
                }
            });
        }
        n
    }

    /// Does the plan contain any non-local effect assignment?
    pub fn has_remote_effects(&self) -> bool {
        self.count(&mut |s| matches!(s, PStmt::RemoteEffect { .. })) > 0
    }
}

/// Update-rule target: position axis or ordinary state slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateTarget {
    PosX,
    PosY,
    State(u16),
}

/// One compiled update rule. Rules evaluate against a snapshot of the
/// agent (simultaneous semantics) and commit together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateRule {
    pub target: UpdateTarget,
    pub expr: PExpr,
}

// ---------------------------------------------------------------------------
// Visibility-predicate pushdown
// ---------------------------------------------------------------------------

/// One proven axis bound on a candidate's position, either relative to the
/// querying agent's own coordinate on the same axis or absolute.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Bound {
    /// `self coordinate + offset`.
    Rel(f64),
    /// A world-space constant.
    Abs(f64),
}

impl Bound {
    pub fn resolve(self, base: f64) -> f64 {
        match self {
            Bound::Rel(offset) => base + offset,
            Bound::Abs(v) => v,
        }
    }
}

/// Axis bounds proven by the pushdown pass: every candidate that can take
/// the loop's guarded branch satisfies all of them, so the probe rect may
/// be intersected with them before the spatial index runs. Bounds are
/// inclusive — boundary candidates still pass through the interpreted
/// guard, which is what decides semantics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProbeBounds {
    pub x_lo: Vec<Bound>,
    pub x_hi: Vec<Bound>,
    pub y_lo: Vec<Bound>,
    pub y_hi: Vec<Bound>,
}

impl ProbeBounds {
    pub fn is_empty(&self) -> bool {
        self.x_lo.is_empty() && self.x_hi.is_empty() && self.y_lo.is_empty() && self.y_hi.is_empty()
    }

    /// Intersect a visibility rect with the proven bounds, resolved against
    /// the querying agent's position. May produce an inverted (empty) rect
    /// when the guard is unsatisfiable — the probe then yields nothing,
    /// which matches a guard no candidate passes.
    pub fn tighten(&self, pos: Vec2, mut rect: Rect) -> Rect {
        for b in &self.x_lo {
            rect.lo.x = rect.lo.x.max(b.resolve(pos.x));
        }
        for b in &self.x_hi {
            rect.hi.x = rect.hi.x.min(b.resolve(pos.x));
        }
        for b in &self.y_lo {
            rect.lo.y = rect.lo.y.max(b.resolve(pos.y));
        }
        for b in &self.y_hi {
            rect.hi.y = rect.hi.y.min(b.resolve(pos.y));
        }
        rect
    }
}

// ---------------------------------------------------------------------------
// Lane programs (mechanical kernel emission)
// ---------------------------------------------------------------------------

/// Source of a loop-invariant value broadcast across all lanes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SplatSrc {
    Const(f64),
    SelfX,
    SelfY,
    SelfState(u16),
    /// A local bound before the loop; the value is an index into
    /// [`LaneProgram::prelude_slots`].
    Prelude(u16),
}

/// Source of a per-candidate column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ColSrc {
    OtherX,
    OtherY,
    /// Index into [`LaneProgram::gather_slots`].
    OtherState(u16),
}

/// One SSA lane instruction: instruction `i` writes register column `i`,
/// and operands always reference strictly earlier registers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LaneInstr {
    Splat(SplatSrc),
    Column(ColSrc),
    Unary(UnOp, u16),
    Binary(BinOp, u16, u16),
    Call(Builtin, Vec<u16>),
}

/// What to do with the computed columns, per candidate, in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EmitStep {
    /// Aggregate register `value` into effect `field` (NaN skipped, exactly
    /// like the interpreter's NIL rule).
    Effect { field: u16, value: u16 },
    /// Branch on register `cond` ≠ 0 (NaN takes the then-branch, matching
    /// the interpreter).
    If { cond: u16, then_: Vec<EmitStep>, else_: Vec<EmitStep> },
}

/// A compiled lane program for a query-phase-pure `foreach` body: gather
/// the needed SoA columns, run the instruction list over all candidates at
/// once, then fold the emit steps per candidate in canonical order. Built
/// by the optimizer's emission pass; executed by
/// [`BrasilBehavior`](crate::exec::BrasilBehavior)'s `query_batch`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneProgram {
    /// State slots gathered into candidate columns, in gather order.
    pub gather_slots: Vec<u16>,
    /// Locals read by the body but bound before the loop (splat at entry).
    pub prelude_slots: Vec<u16>,
    pub instrs: Vec<LaneInstr>,
    pub emit: Vec<EmitStep>,
    /// Analyzer estimate of per-candidate scalar cost (drives
    /// `batch_profitable`).
    pub cost: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_parse_and_apply() {
        assert_eq!(Builtin::parse("abs"), Some(Builtin::Abs));
        assert_eq!(Builtin::parse("nope"), None);
        assert_eq!(Builtin::Abs.apply(&[-3.0]), 3.0);
        assert_eq!(Builtin::Min.apply(&[2.0, 5.0]), 2.0);
        assert_eq!(Builtin::Pow.apply(&[2.0, 10.0]), 1024.0);
        assert_eq!(Builtin::Sign.apply(&[-7.0]), -1.0);
        assert_eq!(Builtin::Sign.apply(&[0.0]), 0.0);
        assert_eq!(Builtin::Clamp.apply(&[5.0, 0.0, 2.0]), 2.0);
    }

    #[test]
    fn expr_any_finds_rand() {
        let e = PExpr::Binary(BinOp::Add, Box::new(PExpr::Const(1.0)), Box::new(PExpr::Rand));
        assert!(e.any(&mut |n| matches!(n, PExpr::Rand)));
        assert!(!PExpr::Const(1.0).any(&mut |n| matches!(n, PExpr::Rand)));
    }

    #[test]
    fn expr_map_rewrites_leaves() {
        let e = PExpr::Binary(BinOp::Add, Box::new(PExpr::SelfPos(Axis::X)), Box::new(PExpr::OtherPos(Axis::X)));
        let swapped = e.map(&mut |n| match n {
            PExpr::SelfPos(a) => PExpr::OtherPos(a),
            PExpr::OtherPos(a) => PExpr::SelfPos(a),
            other => other,
        });
        assert_eq!(
            swapped,
            PExpr::Binary(BinOp::Add, Box::new(PExpr::OtherPos(Axis::X)), Box::new(PExpr::SelfPos(Axis::X)))
        );
    }

    #[test]
    fn plan_counts_remote_effects() {
        let plan = QueryPlan {
            stmts: vec![PStmt::Foreach {
                body: vec![
                    PStmt::LocalEffect { field: 0, value: PExpr::Const(1.0) },
                    PStmt::RemoteEffect { field: 1, value: PExpr::Const(2.0) },
                ],
            }],
            n_locals: 0,
            raw_slots: Vec::new(),
        };
        assert!(plan.has_remote_effects());
        assert_eq!(plan.count(&mut |s| matches!(s, PStmt::LocalEffect { .. })), 1);
    }
}
