//! Algebraic optimization of compiled plans.
//!
//! Three rewrites, mirroring §4.2:
//!
//! * [`constant_fold`] — evaluate constant subtrees at compile time (the
//!   garden-variety algebraic rewrite; `rand()` and agent reads block
//!   folding).
//! * [`dead_code`] — remove `Let`s whose slot is never read, `If`s with
//!   constant conditions, and empty loops/branches (the paper's "rewrite
//!   rules that function like dead-code elimination").
//! * [`invert_effects`] — **effect inversion** (Theorems 2/3): rewrite
//!   non-local effect assignments `p.f <- E(this, p)` into local ones
//!   `f <- E(p, this)` by swapping the roles of the querying agent and the
//!   loop variable, eliminating the second reduce pass of the runtime.
//!
//! ### Inversion correctness conditions
//!
//! The rewrite is exact when (a) every agent runs the same script with the
//! same visibility bound — so visibility is *symmetric*: `q` sees `this`
//! iff `this` sees `q` — and (b) the inverted fragment draws no randomness
//! (the draw would move from the assigner's stream to the target's,
//! changing the realization). Condition (a) is the uniform-distance-bound
//! special case of the paper's Theorem 3 in which the factor-2 relaxation
//! of the visibility bound is unnecessary; `invert_effects` returns an
//! error rather than silently changing semantics when the conditions fail.

use crate::analyze::stmts_cost;
use crate::ast::{BinOp, UnOp};
use crate::exec::CompiledClass;
use crate::plan::{
    AgentRef, Axis, Bound, ColSrc, EmitStep, LaneInstr, LaneProgram, PExpr, PStmt, ProbeBounds, QueryPlan, SplatSrc,
};
use brace_common::{BraceError, Result};
use std::collections::{HashMap, HashSet};

/// Apply the always-safe (bit-preserving) passes: the standard pipeline of
/// constant folding, common-subexpression elimination, dead code, predicate
/// pushdown, and lane emission, run to fixpoint.
pub fn optimize(class: CompiledClass) -> CompiledClass {
    Pipeline::standard().run(class).0
}

// ---------------------------------------------------------------------------
// Pass pipeline
// ---------------------------------------------------------------------------

/// One rewrite pass over a compiled class. A pass must return the class
/// *untouched* with a rewrite count of zero when it has nothing to do —
/// the pipeline's fixpoint detection depends on it (and `with_query` drops
/// derived artifacts, so a gratuitous rebuild would force the derivation
/// passes to re-fire every round).
pub trait Pass {
    fn name(&self) -> &'static str;
    fn run(&self, class: CompiledClass) -> (CompiledClass, usize);
}

/// Per-pass rewrite total accumulated across all rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassReport {
    pub name: &'static str,
    pub rewrites: usize,
}

/// What the pipeline did: how many rounds ran and what each pass rewrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineReport {
    pub rounds: usize,
    pub passes: Vec<PassReport>,
}

impl PipelineReport {
    pub fn total_rewrites(&self) -> usize {
        self.passes.iter().map(|p| p.rewrites).sum()
    }
}

/// An ordered list of passes run round-robin until a full round makes no
/// rewrite. Every pass here is semantics-preserving bit-for-bit; effect
/// inversion (which is only ~1e-9-equivalent) is opt-in via
/// [`Pipeline::with_inversion`].
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
}

/// Safety net; real plans reach fixpoint in two or three rounds.
const MAX_ROUNDS: usize = 8;

impl Pipeline {
    /// Folding, CSE, dead code, visibility-predicate pushdown, lane
    /// emission — the always-safe set.
    pub fn standard() -> Pipeline {
        Pipeline {
            passes: vec![Box::new(ConstFold), Box::new(Cse), Box::new(DeadCode), Box::new(Pushdown), Box::new(Emit)],
        }
    }

    /// The standard set with effect inversion (Theorems 2/3) first. Only
    /// numerically equivalent, not bit-identical, to the uninverted class —
    /// A/B comparisons must invert both sides or neither.
    pub fn with_inversion() -> Pipeline {
        let mut p = Pipeline::standard();
        p.passes.insert(0, Box::new(Invert));
        p
    }

    /// Run all passes to fixpoint, returning the rewritten class and a
    /// report of per-pass rewrite counts.
    pub fn run(&self, mut class: CompiledClass) -> (CompiledClass, PipelineReport) {
        let mut report = PipelineReport {
            rounds: 0,
            passes: self.passes.iter().map(|p| PassReport { name: p.name(), rewrites: 0 }).collect(),
        };
        for _ in 0..MAX_ROUNDS {
            report.rounds += 1;
            let mut round_total = 0;
            for (i, pass) in self.passes.iter().enumerate() {
                let (next, n) = pass.run(class);
                class = next;
                report.passes[i].rewrites += n;
                round_total += n;
            }
            if round_total == 0 {
                break;
            }
        }
        (class, report)
    }
}

/// Count expression nodes (rewrite metric for the folding pass).
fn expr_nodes(e: &PExpr) -> usize {
    let mut n = 0;
    e.any(&mut |_| {
        n += 1;
        false
    });
    n
}

fn plan_nodes(stmts: &[PStmt]) -> usize {
    let mut n = 0;
    for s in stmts {
        s.visit(&mut |st| match st {
            PStmt::Let { value, .. } | PStmt::LocalEffect { value, .. } | PStmt::RemoteEffect { value, .. } => {
                n += expr_nodes(value)
            }
            PStmt::If { cond, .. } => n += expr_nodes(cond),
            PStmt::Foreach { .. } => {}
        });
    }
    n
}

struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }

    fn run(&self, class: CompiledClass) -> (CompiledClass, usize) {
        let folded_stmts = fold_stmts(class.query.stmts.clone());
        let folded_updates: Vec<_> = class
            .updates
            .iter()
            .map(|r| crate::plan::UpdateRule { target: r.target, expr: fold_expr(r.expr.clone()) })
            .collect();
        let stmts_changed = folded_stmts != class.query.stmts;
        if !stmts_changed && folded_updates == class.updates {
            return (class, 0);
        }
        let before = plan_nodes(&class.query.stmts) + class.updates.iter().map(|r| expr_nodes(&r.expr)).sum::<usize>();
        let after = plan_nodes(&folded_stmts) + folded_updates.iter().map(|r| expr_nodes(&r.expr)).sum::<usize>();
        let mut out = if stmts_changed {
            class.with_query(QueryPlan {
                stmts: folded_stmts,
                n_locals: class.query.n_locals,
                raw_slots: class.query.raw_slots.clone(),
            })
        } else {
            class
        };
        out.updates = folded_updates;
        (out, before.saturating_sub(after).max(1))
    }
}

struct DeadCode;

impl Pass for DeadCode {
    fn name(&self) -> &'static str {
        "dead-code"
    }

    fn run(&self, class: CompiledClass) -> (CompiledClass, usize) {
        let mut stmts = class.query.stmts.clone();
        let before = size(&stmts);
        // Iterate to fixpoint: removing an If can orphan a Let, etc.
        loop {
            let used = used_slots(&stmts);
            let n = size(&stmts);
            stmts = sweep(stmts, &used);
            if size(&stmts) == n {
                break;
            }
        }
        let after = size(&stmts);
        if after == before {
            return (class, 0);
        }
        let plan = QueryPlan { stmts, n_locals: class.query.n_locals, raw_slots: class.query.raw_slots.clone() };
        (class.with_query(plan), before - after)
    }
}

struct Invert;

impl Pass for Invert {
    fn name(&self) -> &'static str {
        "invert"
    }

    fn run(&self, class: CompiledClass) -> (CompiledClass, usize) {
        if !class.query.has_remote_effects() {
            return (class, 0);
        }
        // Inversion refusals (rand in loop, remote outside loop) leave the
        // class alone: the two-pass reduce path still runs it correctly.
        match invert_effects(class.clone()) {
            Ok(inv) => (inv, 1),
            Err(_) => (class, 0),
        }
    }
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

/// Fold constant subtrees of an expression.
pub fn constant_fold(e: PExpr) -> PExpr {
    fold_expr(e)
}

fn fold_expr(e: PExpr) -> PExpr {
    e.map(&mut |node| match node {
        PExpr::Unary(op, inner) => match (*inner).clone() {
            PExpr::Const(v) => PExpr::Const(match op {
                UnOp::Neg => -v,
                UnOp::Not => ((v == 0.0) as i32) as f64,
            }),
            _ => PExpr::Unary(op, inner),
        },
        PExpr::Binary(op, a, b) => match ((*a).clone(), (*b).clone()) {
            (PExpr::Const(l), PExpr::Const(r)) => PExpr::Const(match op {
                BinOp::Add => l + r,
                BinOp::Sub => l - r,
                BinOp::Mul => l * r,
                BinOp::Div => l / r,
                BinOp::Rem => l % r,
                BinOp::Lt => ((l < r) as i32) as f64,
                BinOp::Le => ((l <= r) as i32) as f64,
                BinOp::Gt => ((l > r) as i32) as f64,
                BinOp::Ge => ((l >= r) as i32) as f64,
                BinOp::Eq => ((l == r) as i32) as f64,
                BinOp::Ne => ((l != r) as i32) as f64,
                BinOp::And => ((l != 0.0 && r != 0.0) as i32) as f64,
                BinOp::Or => ((l != 0.0 || r != 0.0) as i32) as f64,
            }),
            // x + 0, x - 0, x * 1, x / 1 identities.
            (lhs, PExpr::Const(r)) if r == 0.0 && matches!(op, BinOp::Add | BinOp::Sub) => lhs,
            (lhs, PExpr::Const(r)) if r == 1.0 && matches!(op, BinOp::Mul | BinOp::Div) => lhs,
            (PExpr::Const(l), rhs) if l == 0.0 && op == BinOp::Add => rhs,
            (PExpr::Const(l), rhs) if l == 1.0 && op == BinOp::Mul => rhs,
            _ => PExpr::Binary(op, a, b),
        },
        PExpr::Call(b, args) => {
            if args.iter().all(|a| matches!(a, PExpr::Const(_))) {
                let vals: Vec<f64> = args
                    .iter()
                    .map(|a| match a {
                        PExpr::Const(v) => *v,
                        _ => unreachable!(),
                    })
                    .collect();
                PExpr::Const(b.apply(&vals))
            } else {
                PExpr::Call(b, args)
            }
        }
        other => other,
    })
}

fn fold_stmts(stmts: Vec<PStmt>) -> Vec<PStmt> {
    stmts
        .into_iter()
        .map(|s| match s {
            PStmt::Let { slot, value } => PStmt::Let { slot, value: fold_expr(value) },
            PStmt::LocalEffect { field, value } => PStmt::LocalEffect { field, value: fold_expr(value) },
            PStmt::RemoteEffect { field, value } => PStmt::RemoteEffect { field, value: fold_expr(value) },
            PStmt::If { cond, then_, else_ } => {
                PStmt::If { cond: fold_expr(cond), then_: fold_stmts(then_), else_: fold_stmts(else_) }
            }
            PStmt::Foreach { body } => PStmt::Foreach { body: fold_stmts(body) },
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Dead code elimination
// ---------------------------------------------------------------------------

/// Remove unread `Let`s, constant `If`s and empty control structures.
pub fn dead_code(class: CompiledClass) -> CompiledClass {
    DeadCode.run(class).0
}

fn size(stmts: &[PStmt]) -> usize {
    let mut n = 0;
    for s in stmts {
        s.visit(&mut |_| n += 1);
    }
    n
}

fn used_slots(stmts: &[PStmt]) -> Vec<bool> {
    let mut used = vec![false; u16::MAX as usize + 1];
    let mut mark = |e: &PExpr| {
        let mut any = |n: &PExpr| {
            if let PExpr::Local(i) = n {
                used[*i as usize] = true;
            }
            false
        };
        e.any(&mut any);
    };
    for s in stmts {
        s.visit(&mut |st| match st {
            PStmt::Let { value, .. } => mark(value),
            PStmt::LocalEffect { value, .. } | PStmt::RemoteEffect { value, .. } => mark(value),
            PStmt::If { cond, .. } => mark(cond),
            PStmt::Foreach { .. } => {}
        });
    }
    used
}

fn sweep(stmts: Vec<PStmt>, used: &[bool]) -> Vec<PStmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            PStmt::Let { slot, value } => {
                // Keep the binding only if read somewhere. (Expressions are
                // pure — no effects are lost by dropping the computation.)
                if used[slot as usize] {
                    out.push(PStmt::Let { slot, value });
                }
            }
            PStmt::If { cond, then_, else_ } => {
                let then_ = sweep(then_, used);
                let else_ = sweep(else_, used);
                match cond {
                    PExpr::Const(v) if v != 0.0 => out.extend(then_),
                    PExpr::Const(_) => out.extend(else_),
                    cond => {
                        if !(then_.is_empty() && else_.is_empty()) {
                            out.push(PStmt::If { cond, then_, else_ });
                        }
                    }
                }
            }
            PStmt::Foreach { body } => {
                let body = sweep(body, used);
                if !body.is_empty() {
                    out.push(PStmt::Foreach { body });
                }
            }
            other => out.push(other),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Effect inversion (Theorems 2 and 3)
// ---------------------------------------------------------------------------

/// Swap the roles of `this` and the loop variable in an expression.
fn swap_roles(e: PExpr) -> PExpr {
    e.map(&mut |node| match node {
        PExpr::SelfPos(a) => PExpr::OtherPos(a),
        PExpr::OtherPos(a) => PExpr::SelfPos(a),
        PExpr::SelfState(i) => PExpr::OtherState(i),
        PExpr::OtherState(i) => PExpr::SelfState(i),
        PExpr::AgentEq { left, right, negate } => PExpr::AgentEq { left: flip(left), right: flip(right), negate },
        other => other,
    })
}

fn flip(r: AgentRef) -> AgentRef {
    match r {
        AgentRef::This => AgentRef::Other,
        AgentRef::Other => AgentRef::This,
    }
}

/// Offset every local slot in a statement tree (for the duplicated inverted
/// copy, whose bindings must not collide with the original's).
fn offset_slots(stmts: Vec<PStmt>, delta: u16) -> Vec<PStmt> {
    let bump = |e: PExpr| {
        e.map(&mut |n| match n {
            PExpr::Local(i) => PExpr::Local(i + delta),
            other => other,
        })
    };
    stmts
        .into_iter()
        .map(|s| match s {
            PStmt::Let { slot, value } => PStmt::Let { slot: slot + delta, value: bump(value) },
            PStmt::LocalEffect { field, value } => PStmt::LocalEffect { field, value: bump(value) },
            PStmt::RemoteEffect { field, value } => PStmt::RemoteEffect { field, value: bump(value) },
            PStmt::If { cond, then_, else_ } => {
                PStmt::If { cond: bump(cond), then_: offset_slots(then_, delta), else_: offset_slots(else_, delta) }
            }
            PStmt::Foreach { body } => PStmt::Foreach { body: offset_slots(body, delta) },
        })
        .collect()
}

/// Drop every `RemoteEffect` from a tree (keeping structure).
fn strip_remote(stmts: Vec<PStmt>) -> Vec<PStmt> {
    stmts
        .into_iter()
        .filter_map(|s| match s {
            PStmt::RemoteEffect { .. } => None,
            PStmt::If { cond, then_, else_ } => {
                Some(PStmt::If { cond, then_: strip_remote(then_), else_: strip_remote(else_) })
            }
            PStmt::Foreach { body } => Some(PStmt::Foreach { body: strip_remote(body) }),
            other => Some(other),
        })
        .collect()
}

/// Drop every `LocalEffect` from a tree, then swap agent roles everywhere —
/// producing the fragment "what each neighbor would have assigned to me,
/// computed by me".
fn remote_as_local(stmts: Vec<PStmt>) -> Vec<PStmt> {
    stmts
        .into_iter()
        .filter_map(|s| match s {
            PStmt::LocalEffect { .. } => None,
            PStmt::RemoteEffect { field, value } => Some(PStmt::LocalEffect { field, value: swap_roles(value) }),
            PStmt::Let { slot, value } => Some(PStmt::Let { slot, value: swap_roles(value) }),
            PStmt::If { cond, then_, else_ } => {
                Some(PStmt::If { cond: swap_roles(cond), then_: remote_as_local(then_), else_: remote_as_local(else_) })
            }
            PStmt::Foreach { body } => Some(PStmt::Foreach { body: remote_as_local(body) }),
        })
        .collect()
}

fn contains_rand(stmts: &[PStmt]) -> bool {
    let mut found = false;
    for s in stmts {
        s.visit(&mut |st| {
            let mut check = |e: &PExpr| {
                if e.any(&mut |n| matches!(n, PExpr::Rand)) {
                    found = true;
                }
            };
            match st {
                PStmt::Let { value, .. } | PStmt::LocalEffect { value, .. } | PStmt::RemoteEffect { value, .. } => {
                    check(value)
                }
                PStmt::If { cond, .. } => check(cond),
                PStmt::Foreach { .. } => {}
            }
        });
    }
    found
}

/// Rewrite the class so all effect assignments are local. See the module
/// docs for the correctness conditions. Idempotent on local-only classes.
pub fn invert_effects(class: CompiledClass) -> Result<CompiledClass> {
    if !class.query.has_remote_effects() {
        return Ok(class);
    }
    let n_locals = class.query.n_locals;
    let mut out: Vec<PStmt> = Vec::new();
    for stmt in class.query.stmts.clone() {
        match stmt {
            PStmt::Foreach { body } => {
                if contains_rand(&body) {
                    return Err(BraceError::Rewrite(
                        "effect inversion would move a rand() draw between agent streams; \
                         refusing to change the random realization"
                            .into(),
                    ));
                }
                // Original loop minus its non-local assignments…
                let local_part = strip_remote(body.clone());
                // …plus the inverted fragment with fresh local slots.
                let inverted = offset_slots(remote_as_local(body), n_locals);
                let mut merged = local_part;
                merged.extend(inverted);
                if !merged.is_empty() {
                    out.push(PStmt::Foreach { body: merged });
                }
            }
            other => {
                if matches!(other, PStmt::RemoteEffect { .. }) {
                    return Err(BraceError::Rewrite(
                        "non-local effect assignment outside a foreach loop cannot be inverted".into(),
                    ));
                }
                out.push(other);
            }
        }
    }
    // The duplicated fragment duplicates raw (optimizer-introduced) slots
    // along with everything else.
    let mut raw_slots = class.query.raw_slots.clone();
    raw_slots.extend(class.query.raw_slots.iter().map(|s| s + n_locals));
    let plan = QueryPlan { stmts: out, n_locals: n_locals * 2, raw_slots };
    debug_assert!(!plan.has_remote_effects());
    Ok(class.with_query(plan))
}

// ---------------------------------------------------------------------------
// Common-subexpression elimination
// ---------------------------------------------------------------------------

/// Hoist repeated non-trivial pure subexpressions into fresh *raw* local
/// slots (`Let` bindings that skip the NaN→NIL coercion, making the hoist
/// exactly equivalent to inlining). Scopes are handled innermost-first:
/// duplicates confined to an `If` branch or loop body are hoisted inside
/// it; the outer scan then only sees cross-scope repeats. Candidates must
/// be position-insensitive within one loop iteration — no `rand()` (draw
/// count), no effect reads (the shadow mutates mid-iteration), no source
/// locals (a hoist above the defining `Let` would read a stale slot).
struct Cse;

struct CseCtx {
    next_slot: u16,
    raw: Vec<u16>,
    hoists: usize,
}

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, class: CompiledClass) -> (CompiledClass, usize) {
        let mut stmts = class.query.stmts.clone();
        let mut ctx = CseCtx { next_slot: class.query.n_locals, raw: class.query.raw_slots.clone(), hoists: 0 };
        cse_level(&mut stmts, &mut ctx);
        if ctx.hoists == 0 {
            return (class, 0);
        }
        let hoists = ctx.hoists;
        let plan = QueryPlan { stmts, n_locals: ctx.next_slot, raw_slots: ctx.raw };
        (class.with_query(plan), hoists)
    }
}

fn cse_level(stmts: &mut Vec<PStmt>, ctx: &mut CseCtx) {
    for s in stmts.iter_mut() {
        match s {
            PStmt::If { then_, else_, .. } => {
                cse_level(then_, ctx);
                cse_level(else_, ctx);
            }
            PStmt::Foreach { body } => cse_level(body, ctx),
            _ => {}
        }
    }
    while ctx.next_slot < u16::MAX {
        let Some(target) = best_candidate(stmts) else { break };
        // Insertion point: directly before the first statement at this
        // level that mentions the expression (evaluation is pure, so
        // hoisting above an `If` that guards some occurrences is
        // unobservable).
        let Some(at) = stmts.iter().position(|s| stmt_contains(s, &target)) else { break };
        let slot = ctx.next_slot;
        ctx.next_slot += 1;
        ctx.raw.push(slot);
        ctx.hoists += 1;
        for s in stmts.iter_mut() {
            replace_in_stmt(s, &target, slot);
        }
        stmts.insert(at, PStmt::Let { slot, value: target });
    }
}

/// Root expressions at one scope level: statement expressions here and
/// inside `If` branches, never crossing into a `Foreach` body (its own
/// level, and `Other*` reads are meaningless outside it).
fn level_exprs<'a>(stmts: &'a [PStmt], out: &mut Vec<&'a PExpr>) {
    for s in stmts {
        match s {
            PStmt::Let { value, .. } | PStmt::LocalEffect { value, .. } | PStmt::RemoteEffect { value, .. } => {
                out.push(value)
            }
            PStmt::If { cond, then_, else_ } => {
                out.push(cond);
                level_exprs(then_, out);
                level_exprs(else_, out);
            }
            PStmt::Foreach { .. } => {}
        }
    }
}

fn subtrees<'a>(e: &'a PExpr, out: &mut Vec<&'a PExpr>) {
    out.push(e);
    match e {
        PExpr::Unary(_, a) => subtrees(a, out),
        PExpr::Binary(_, a, b) => {
            subtrees(a, out);
            subtrees(b, out);
        }
        PExpr::Call(_, args) => {
            for a in args {
                subtrees(a, out);
            }
        }
        _ => {}
    }
}

fn op_count(e: &PExpr) -> usize {
    let mut n = 0;
    e.any(&mut |x| {
        if matches!(x, PExpr::Unary(..) | PExpr::Binary(..) | PExpr::Call(..)) {
            n += 1;
        }
        false
    });
    n
}

fn hoistable(e: &PExpr) -> bool {
    !e.any(&mut |x| matches!(x, PExpr::Rand | PExpr::SelfEffect(_) | PExpr::Local(_)))
}

/// The most profitable repeated subexpression at this level: highest op
/// count among those occurring at least twice, earliest first occurrence
/// on ties (deterministic output).
fn best_candidate(stmts: &[PStmt]) -> Option<PExpr> {
    let mut roots: Vec<&PExpr> = Vec::new();
    level_exprs(stmts, &mut roots);
    let mut cands: Vec<(&PExpr, usize)> = Vec::new();
    for root in &roots {
        let mut subs = Vec::new();
        subtrees(root, &mut subs);
        for e in subs {
            if op_count(e) < 2 || !hoistable(e) {
                continue;
            }
            match cands.iter_mut().find(|(c, _)| *c == e) {
                Some((_, n)) => *n += 1,
                None => cands.push((e, 1)),
            }
        }
    }
    let mut best: Option<(&PExpr, usize)> = None;
    for (e, n) in &cands {
        if *n < 2 {
            continue;
        }
        let ops = op_count(e);
        if best.is_none_or(|(_, b)| ops > b) {
            best = Some((e, ops));
        }
    }
    best.map(|(e, _)| e.clone())
}

fn expr_contains(e: &PExpr, target: &PExpr) -> bool {
    e.any(&mut |n| n == target)
}

fn stmt_contains(s: &PStmt, target: &PExpr) -> bool {
    match s {
        PStmt::Let { value, .. } | PStmt::LocalEffect { value, .. } | PStmt::RemoteEffect { value, .. } => {
            expr_contains(value, target)
        }
        PStmt::If { cond, then_, else_ } => {
            expr_contains(cond, target)
                || then_.iter().any(|s| stmt_contains(s, target))
                || else_.iter().any(|s| stmt_contains(s, target))
        }
        PStmt::Foreach { .. } => false,
    }
}

/// Top-down replacement: an occurrence is rewritten whole, so nested
/// duplicates inside it survive for the next round.
fn replace_expr(e: PExpr, target: &PExpr, slot: u16) -> PExpr {
    if e == *target {
        return PExpr::Local(slot);
    }
    match e {
        PExpr::Unary(op, a) => PExpr::Unary(op, Box::new(replace_expr(*a, target, slot))),
        PExpr::Binary(op, a, b) => {
            PExpr::Binary(op, Box::new(replace_expr(*a, target, slot)), Box::new(replace_expr(*b, target, slot)))
        }
        PExpr::Call(b, args) => PExpr::Call(b, args.into_iter().map(|a| replace_expr(a, target, slot)).collect()),
        other => other,
    }
}

fn replace_in_stmt(s: &mut PStmt, target: &PExpr, slot: u16) {
    match s {
        PStmt::Let { value, .. } | PStmt::LocalEffect { value, .. } | PStmt::RemoteEffect { value, .. } => {
            *value = replace_expr(std::mem::replace(value, PExpr::Rand), target, slot);
        }
        PStmt::If { cond, then_, else_ } => {
            *cond = replace_expr(std::mem::replace(cond, PExpr::Rand), target, slot);
            for t in then_.iter_mut().chain(else_.iter_mut()) {
                replace_in_stmt(t, target, slot);
            }
        }
        PStmt::Foreach { .. } => {}
    }
}

// ---------------------------------------------------------------------------
// Visibility-predicate pushdown
// ---------------------------------------------------------------------------

/// Derive [`ProbeBounds`] from a loop whose entire body is guarded by a
/// single `if` with no else branch, and record them on the class so the
/// executor probes a smaller rect. Sound because comparison and `&&` nodes
/// always evaluate to 0/1 (never NIL/NaN): if the root conjunction is
/// non-zero, every comparison reachable through `&&` spines alone evaluated
/// to 1 — so a candidate violating any harvested bound makes the guard
/// false (or NIL, which also skips the `if`) and contributed nothing.
struct Pushdown;

impl Pass for Pushdown {
    fn name(&self) -> &'static str {
        "pushdown"
    }

    fn run(&self, mut class: CompiledClass) -> (CompiledClass, usize) {
        let derived = derive_probe_bounds(&class.query);
        if class.probe_bounds == derived {
            return (class, 0);
        }
        class.probe_bounds = derived;
        (class, 1)
    }
}

/// See [`Pushdown`]. Public for the `brace compile` inspector.
pub fn derive_probe_bounds(plan: &QueryPlan) -> Option<ProbeBounds> {
    let body = sole_loop_body(plan)?;
    if contains_rand(body) {
        return None;
    }
    // Shape: any number of `Let`s, then exactly one guard `if` with an
    // empty else, then nothing. Effects outside the guard would make
    // excluded candidates observable.
    let mut guard: Option<&PExpr> = None;
    for s in body {
        if guard.is_some() {
            return None;
        }
        match s {
            PStmt::Let { .. } => {}
            PStmt::If { cond, else_, .. } if else_.is_empty() => guard = Some(cond),
            _ => return None,
        }
    }
    let mut b = ProbeBounds::default();
    collect_bounds(guard?, &mut b);
    if b.is_empty() {
        None
    } else {
        Some(b)
    }
}

/// The body of the plan's single `Foreach`, if it has exactly one and it
/// sits at the top level.
fn sole_loop_body(plan: &QueryPlan) -> Option<&Vec<PStmt>> {
    let mut loops = 0;
    for s in &plan.stmts {
        s.visit(&mut |st| {
            if matches!(st, PStmt::Foreach { .. }) {
                loops += 1;
            }
        });
    }
    if loops != 1 {
        return None;
    }
    plan.stmts.iter().find_map(|s| match s {
        PStmt::Foreach { body } => Some(body),
        _ => None,
    })
}

fn collect_bounds(e: &PExpr, b: &mut ProbeBounds) {
    match e {
        PExpr::Binary(BinOp::And, l, r) => {
            collect_bounds(l, b);
            collect_bounds(r, b);
        }
        PExpr::Binary(op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge), l, r) => {
            if let PExpr::OtherPos(axis) = **l {
                // p.axis OP bound: Gt/Ge is a lower bound, Lt/Le an upper.
                if let Some(bound) = self_side(r, axis) {
                    push_bound(b, axis, matches!(op, BinOp::Gt | BinOp::Ge), bound);
                }
            } else if let PExpr::OtherPos(axis) = **r {
                // bound OP p.axis: mirrored.
                if let Some(bound) = self_side(l, axis) {
                    push_bound(b, axis, matches!(op, BinOp::Lt | BinOp::Le), bound);
                }
            }
        }
        _ => {}
    }
}

fn push_bound(b: &mut ProbeBounds, axis: Axis, lo: bool, bound: Bound) {
    match (axis, lo) {
        (Axis::X, true) => b.x_lo.push(bound),
        (Axis::X, false) => b.x_hi.push(bound),
        (Axis::Y, true) => b.y_lo.push(bound),
        (Axis::Y, false) => b.y_hi.push(bound),
    }
}

/// A guard operand expressible as a probe-time bound: a constant, the
/// querying agent's own coordinate on the same axis, or that coordinate
/// plus/minus a constant. (Strict vs non-strict comparison is deliberately
/// ignored — the rect keeps boundary candidates and the guard re-filters.)
fn self_side(e: &PExpr, axis: Axis) -> Option<Bound> {
    match e {
        PExpr::Const(c) => Some(Bound::Abs(*c)),
        PExpr::SelfPos(a) if *a == axis => Some(Bound::Rel(0.0)),
        PExpr::Binary(BinOp::Add, a, b) => match (&**a, &**b) {
            (PExpr::SelfPos(ax), PExpr::Const(c)) if *ax == axis => Some(Bound::Rel(*c)),
            (PExpr::Const(c), PExpr::SelfPos(ax)) if *ax == axis => Some(Bound::Rel(*c)),
            _ => None,
        },
        PExpr::Binary(BinOp::Sub, a, b) => match (&**a, &**b) {
            (PExpr::SelfPos(ax), PExpr::Const(c)) if *ax == axis => Some(Bound::Rel(-*c)),
            _ => None,
        },
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Lane emission
// ---------------------------------------------------------------------------

/// Compile a query-phase-pure loop body into a [`LaneProgram`] — a
/// register machine over per-candidate columns — and record it on the
/// class for `Behavior::query_batch`. Bodies with `rand()` (per-candidate
/// draw order), remote effects, or source-level (NaN→NIL-coercing) `const`
/// bindings stay on the interpreter.
struct Emit;

impl Pass for Emit {
    fn name(&self) -> &'static str {
        "lane-emit"
    }

    fn run(&self, mut class: CompiledClass) -> (CompiledClass, usize) {
        let derived = build_lane(&class.query);
        if class.lane == derived {
            return (class, 0);
        }
        class.lane = derived;
        (class, 1)
    }
}

/// See [`Emit`]. Public for the `brace compile` inspector.
pub fn build_lane(plan: &QueryPlan) -> Option<LaneProgram> {
    let body = sole_loop_body(plan)?;
    let mut b = LaneBuilder {
        instrs: Vec::new(),
        gather: Vec::new(),
        prelude: Vec::new(),
        body_regs: HashMap::new(),
        raw: plan.raw_slots.iter().copied().collect(),
    };
    let emit = b.compile_body(body)?;
    if emit.is_empty() {
        return None;
    }
    Some(LaneProgram {
        gather_slots: b.gather,
        prelude_slots: b.prelude,
        instrs: b.instrs,
        emit,
        cost: stmts_cost(body),
    })
}

struct LaneBuilder {
    instrs: Vec<LaneInstr>,
    gather: Vec<u16>,
    prelude: Vec<u16>,
    /// Raw body `Let` slot → register holding its column.
    body_regs: HashMap<u16, u16>,
    raw: HashSet<u16>,
}

impl LaneBuilder {
    /// Append an instruction, value-numbering duplicates away: register i
    /// is written by instruction i from strictly earlier registers (SSA).
    fn push(&mut self, i: LaneInstr) -> Option<u16> {
        if let Some(at) = self.instrs.iter().position(|x| *x == i) {
            return Some(at as u16);
        }
        if self.instrs.len() >= u16::MAX as usize {
            return None;
        }
        self.instrs.push(i);
        Some((self.instrs.len() - 1) as u16)
    }

    fn intern(list: &mut Vec<u16>, v: u16) -> u16 {
        match list.iter().position(|&x| x == v) {
            Some(i) => i as u16,
            None => {
                list.push(v);
                (list.len() - 1) as u16
            }
        }
    }

    fn compile_expr(&mut self, e: &PExpr) -> Option<u16> {
        match e {
            PExpr::Const(v) => self.push(LaneInstr::Splat(SplatSrc::Const(*v))),
            PExpr::SelfPos(Axis::X) => self.push(LaneInstr::Splat(SplatSrc::SelfX)),
            PExpr::SelfPos(Axis::Y) => self.push(LaneInstr::Splat(SplatSrc::SelfY)),
            PExpr::SelfState(i) => self.push(LaneInstr::Splat(SplatSrc::SelfState(*i))),
            PExpr::OtherPos(Axis::X) => self.push(LaneInstr::Column(ColSrc::OtherX)),
            PExpr::OtherPos(Axis::Y) => self.push(LaneInstr::Column(ColSrc::OtherY)),
            PExpr::OtherState(i) => {
                let k = Self::intern(&mut self.gather, *i);
                self.push(LaneInstr::Column(ColSrc::OtherState(k)))
            }
            PExpr::Local(s) => match self.body_regs.get(s) {
                Some(&r) => Some(r),
                None => {
                    // Defined before the loop: splat the resolved value.
                    let k = Self::intern(&mut self.prelude, *s);
                    self.push(LaneInstr::Splat(SplatSrc::Prelude(k)))
                }
            },
            // Per-candidate draw order, effect-shadow reads mid-loop, and
            // identity tests have no column representation.
            PExpr::SelfEffect(_) | PExpr::AgentEq { .. } | PExpr::Rand => None,
            PExpr::Unary(op, a) => {
                let a = self.compile_expr(a)?;
                self.push(LaneInstr::Unary(*op, a))
            }
            PExpr::Binary(op, a, b) => {
                let a = self.compile_expr(a)?;
                let b = self.compile_expr(b)?;
                self.push(LaneInstr::Binary(*op, a, b))
            }
            PExpr::Call(b, args) => {
                let regs: Option<Vec<u16>> = args.iter().map(|a| self.compile_expr(a)).collect();
                self.push(LaneInstr::Call(*b, regs?))
            }
        }
    }

    fn compile_body(&mut self, stmts: &[PStmt]) -> Option<Vec<EmitStep>> {
        let mut out = Vec::new();
        for s in stmts {
            match s {
                PStmt::Let { slot, value } => {
                    // Only raw (optimizer-introduced) bindings: a source
                    // `const` coerces NaN to NIL, which columns can't
                    // represent.
                    if !self.raw.contains(slot) {
                        return None;
                    }
                    let r = self.compile_expr(value)?;
                    self.body_regs.insert(*slot, r);
                }
                PStmt::LocalEffect { field, value } => {
                    let r = self.compile_expr(value)?;
                    out.push(EmitStep::Effect { field: *field, value: r });
                }
                PStmt::If { cond, then_, else_ } => {
                    let c = self.compile_expr(cond)?;
                    let t = self.compile_body(then_)?;
                    let e = self.compile_body(else_)?;
                    out.push(EmitStep::If { cond: c, then_: t, else_: e });
                }
                PStmt::RemoteEffect { .. } | PStmt::Foreach { .. } => return None,
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::exec::{compile, BrasilBehavior};
    use crate::parser::parse;
    use brace_common::{AgentId, DetRng, Vec2};
    use brace_core::{Agent, Behavior, Simulation};

    fn compile_src(src: &str) -> CompiledClass {
        let prog = parse(src).unwrap();
        compile(&analyze(&prog.classes[0]).unwrap()).unwrap()
    }

    #[test]
    fn folding_collapses_constants() {
        let e = PExpr::Binary(
            BinOp::Add,
            Box::new(PExpr::Const(1.0)),
            Box::new(PExpr::Binary(BinOp::Mul, Box::new(PExpr::Const(2.0)), Box::new(PExpr::Const(3.0)))),
        );
        assert_eq!(constant_fold(e), PExpr::Const(7.0));
    }

    #[test]
    fn folding_applies_identities() {
        let x = PExpr::SelfState(0);
        let e = PExpr::Binary(BinOp::Add, Box::new(x.clone()), Box::new(PExpr::Const(0.0)));
        assert_eq!(constant_fold(e), x.clone());
        let e = PExpr::Binary(BinOp::Mul, Box::new(PExpr::Const(1.0)), Box::new(x.clone()));
        assert_eq!(constant_fold(e), x);
    }

    #[test]
    fn folding_stops_at_rand() {
        let e = PExpr::Binary(BinOp::Add, Box::new(PExpr::Rand), Box::new(PExpr::Const(0.0)));
        // x + 0 identity applies, but Rand itself cannot become Const.
        assert_eq!(constant_fold(e), PExpr::Rand);
    }

    #[test]
    fn dead_let_removed() {
        let class = compile_src(
            r#"
            class A {
                public state float x : x #range[-1, 1];
                private effect float e : sum;
                public void run() {
                    const float unused = 42;
                    const float used = 2;
                    foreach (A p : Extent<A>) { e <- used; }
                }
            }
        "#,
        );
        let optimized = optimize(class);
        let lets = optimized.query.count(&mut |s| matches!(s, PStmt::Let { .. }));
        assert_eq!(lets, 1, "only the used let survives");
    }

    #[test]
    fn constant_if_pruned() {
        let class = compile_src(
            r#"
            class A {
                public state float x : x #range[-1, 1];
                private effect float e : sum;
                public void run() {
                    foreach (A p : Extent<A>) {
                        if (1 > 2) { e <- 1; } else { e <- 5; }
                    }
                }
            }
        "#,
        );
        let optimized = optimize(class);
        assert_eq!(optimized.query.count(&mut |s| matches!(s, PStmt::If { .. })), 0);
        // The else branch's assignment survives inline.
        assert_eq!(optimized.query.count(&mut |s| matches!(s, PStmt::LocalEffect { .. })), 1);
    }

    #[test]
    fn empty_foreach_removed() {
        let class = compile_src(
            r#"
            class A {
                public state float x : x #range[-1, 1];
                private effect float e : sum;
                public void run() {
                    const float dead = 3;
                    foreach (A p : Extent<A>) {
                        if (false) { e <- dead; }
                    }
                }
            }
        "#,
        );
        let optimized = optimize(class);
        assert!(optimized.query.stmts.is_empty(), "{:?}", optimized.query.stmts);
    }

    const PAPER_FISH: &str = r#"
        class Fish {
            public state float x : x #range[-1, 1];
            public state float y : y #range[-1, 1];
            public state float ax : avoidx;
            public state float ay : avoidy;
            public state float c : count;
            private effect float avoidx : sum;
            private effect float avoidy : sum;
            private effect float count : sum;
            public void run() {
                foreach (Fish p : Extent<Fish>) {
                    p.avoidx <- 1 / abs(x - p.x);
                    p.avoidy <- 1 / abs(y - p.y);
                    p.count <- 1;
                }
            }
        }
    "#;

    #[test]
    fn inversion_produces_the_papers_rewrite() {
        let class = compile_src(PAPER_FISH);
        assert!(class.schema().has_nonlocal_effects());
        let inverted = invert_effects(class).unwrap();
        assert!(!inverted.schema().has_nonlocal_effects());
        assert!(!inverted.query.has_remote_effects());
        // The paper's rewritten loop assigns 1/abs(p.x - x) locally: the
        // expression must read OtherPos - SelfPos now.
        let locals = inverted.query.count(&mut |s| matches!(s, PStmt::LocalEffect { .. }));
        assert_eq!(locals, 3);
    }

    #[test]
    fn inversion_preserves_semantics() {
        // Run the same population through original and inverted scripts;
        // aggregated effects (and hence next-tick states) must agree.
        let run = |class: CompiledClass| {
            let behavior = BrasilBehavior::new(class);
            let schema = behavior.schema().clone();
            let mut rng = DetRng::seed_from_u64(8);
            let agents: Vec<Agent> = (0..40)
                .map(|i| Agent::new(AgentId::new(i), Vec2::new(rng.range(0.0, 6.0), rng.range(0.0, 6.0)), &schema))
                .collect();
            let mut sim = Simulation::builder(behavior).agents(agents).seed(5).build().unwrap();
            sim.step();
            sim.agents().iter().map(|a| (a.id, a.state.clone())).collect::<Vec<_>>()
        };
        let original = run(compile_src(PAPER_FISH));
        let inverted = run(invert_effects(compile_src(PAPER_FISH)).unwrap());
        assert_eq!(original.len(), inverted.len());
        for ((id_a, s_a), (id_b, s_b)) in original.iter().zip(&inverted) {
            assert_eq!(id_a, id_b);
            for (va, vb) in s_a.iter().zip(s_b) {
                let scale = va.abs().max(vb.abs()).max(1.0);
                assert!((va - vb).abs() <= 1e-9 * scale, "agent {id_a}: {va} vs {vb}");
            }
        }
    }

    #[test]
    fn inversion_handles_conditionals() {
        let src = r#"
            class Biter {
                public state float x : x #range[-2, 2];
                public state float y : y #range[-2, 2];
                public state float size : size;
                public state float pain : hurt;
                private effect float hurt : sum;
                public void run() {
                    foreach (Biter p : Extent<Biter>) {
                        if (size > p.size) { p.hurt <- size - p.size; }
                    }
                }
            }
        "#;
        let run = |class: CompiledClass| {
            let behavior = BrasilBehavior::new(class);
            let schema = behavior.schema().clone();
            let agents: Vec<Agent> = (0..6)
                .map(|i| {
                    let mut a = Agent::new(AgentId::new(i), Vec2::new(i as f64 * 0.8, 0.0), &schema);
                    a.state[0] = i as f64; // size
                    a
                })
                .collect();
            let mut sim = Simulation::builder(behavior).agents(agents).seed(2).build().unwrap();
            sim.step();
            sim.agents().iter().map(|a| a.state[1]).collect::<Vec<_>>()
        };
        let original = run(compile_src(src));
        let inverted = run(invert_effects(compile_src(src)).unwrap());
        assert_eq!(original, inverted);
        // Sanity: bigger fish are never hurt by smaller neighbors only.
        assert_eq!(original[5], 0.0, "largest fish takes no damage");
        assert!(original[0] > 0.0, "smallest fish is bitten");
    }

    #[test]
    fn inversion_refuses_randomized_loops() {
        let src = r#"
            class R {
                public state float x : x #range[-1, 1];
                private effect float e : sum;
                public void run() {
                    foreach (R p : Extent<R>) { p.e <- rand(); }
                }
            }
        "#;
        let err = invert_effects(compile_src(src)).expect_err("must refuse");
        assert!(err.to_string().contains("rand()"));
    }

    #[test]
    fn inversion_is_identity_on_local_scripts() {
        let src = r#"
            class L {
                public state float x : x #range[-1, 1];
                private effect float e : sum;
                public void run() {
                    foreach (L p : Extent<L>) { e <- 1; }
                }
            }
        "#;
        let class = compile_src(src);
        let before = class.query.clone();
        let after = invert_effects(class).unwrap();
        assert_eq!(before, after.query);
    }

    #[test]
    fn inverted_class_runs_single_reduce_pass() {
        // The schema flag drives the runtime's 1-vs-2 reduce decision.
        let class = compile_src(PAPER_FISH);
        assert!(class.schema().has_nonlocal_effects());
        let inv = invert_effects(class).unwrap();
        assert!(!inv.schema().has_nonlocal_effects());
    }

    /// Local-effects-only schooling script with a repeated denominator —
    /// the CSE and lane-emission showcase.
    const SCHOOL: &str = r#"
        class Fish {
            public state float x : x #range[-1, 1];
            public state float y : y #range[-1, 1];
            public state float ax : avoidx;
            public state float ay : avoidy;
            private effect float avoidx : sum;
            private effect float avoidy : sum;
            public void run() {
                foreach (Fish p : Extent<Fish>) {
                    avoidx <- (x - p.x) / max((x - p.x) * (x - p.x) + (y - p.y) * (y - p.y), 0.04);
                    avoidy <- (y - p.y) / max((x - p.x) * (x - p.x) + (y - p.y) * (y - p.y), 0.04);
                }
            }
        }
    "#;

    const GUARDED: &str = r#"
        class Car {
            public state float x : x #range[0, 100];
            public state float y : y;
            public state float g : gap;
            private effect float gap : sum;
            public void run() {
                foreach (Car p : Extent<Car>) {
                    if (p.x > x) { gap <- p.x - x; }
                }
            }
        }
    "#;

    fn states_after_steps(class: CompiledClass) -> Vec<(AgentId, Vec<f64>)> {
        let behavior = BrasilBehavior::new(class);
        let schema = behavior.schema().clone();
        let mut rng = DetRng::seed_from_u64(11);
        let agents: Vec<Agent> = (0..50)
            .map(|i| Agent::new(AgentId::new(i), Vec2::new(rng.range(0.0, 4.0), rng.range(0.0, 4.0)), &schema))
            .collect();
        let mut sim = Simulation::builder(behavior).agents(agents).seed(9).build().unwrap();
        for _ in 0..3 {
            sim.step();
        }
        sim.agents().iter().map(|a| (a.id, a.state.clone())).collect()
    }

    #[test]
    fn pipeline_reports_and_reaches_fixpoint() {
        let (out, report) = Pipeline::with_inversion().run(compile_src(PAPER_FISH));
        assert!(report.rounds <= MAX_ROUNDS);
        let invert = report.passes.iter().find(|p| p.name == "invert").unwrap();
        assert_eq!(invert.rewrites, 1);
        // Re-running the pipeline is a no-op: fixpoint in one quiet round.
        let (_, again) = Pipeline::with_inversion().run(out);
        assert_eq!(again.rounds, 1);
        assert_eq!(again.total_rewrites(), 0, "{again:?}");
    }

    #[test]
    fn cse_hoists_repeated_denominator() {
        let (out, report) = Pipeline::standard().run(compile_src(SCHOOL));
        let cse = report.passes.iter().find(|p| p.name == "cse").unwrap();
        assert!(cse.rewrites >= 1, "{report:?}");
        assert!(!out.query.raw_slots.is_empty());
        // The hoisted binding lives inside the loop body, before both uses.
        let lets = out.query.count(&mut |s| matches!(s, PStmt::Let { .. }));
        assert!(lets >= 1);
    }

    #[test]
    fn cse_and_lane_output_is_bit_identical() {
        let a = states_after_steps(compile_src(SCHOOL));
        let b = states_after_steps(Pipeline::standard().run(compile_src(SCHOOL)).0);
        assert_eq!(a, b);
    }

    #[test]
    fn pushdown_derives_lower_bound_from_guard() {
        let (out, report) = Pipeline::standard().run(compile_src(GUARDED));
        let pd = report.passes.iter().find(|p| p.name == "pushdown").unwrap();
        assert_eq!(pd.rewrites, 1);
        let b = out.probe_bounds.expect("bounds derived");
        assert_eq!(b.x_lo, vec![Bound::Rel(0.0)]);
        assert!(b.x_hi.is_empty() && b.y_lo.is_empty() && b.y_hi.is_empty());
    }

    #[test]
    fn pushdown_refuses_unguarded_loop() {
        let (out, _) = Pipeline::standard().run(compile_src(SCHOOL));
        assert!(out.probe_bounds.is_none());
    }

    #[test]
    fn pushdown_output_is_bit_identical() {
        let a = states_after_steps(compile_src(GUARDED));
        let b = states_after_steps(Pipeline::standard().run(compile_src(GUARDED)).0);
        assert_eq!(a, b);
    }

    #[test]
    fn emit_builds_lane_for_pure_body() {
        use crate::analyze::BATCH_COST_THRESHOLD;
        let (out, report) = Pipeline::standard().run(compile_src(SCHOOL));
        let emit = report.passes.iter().find(|p| p.name == "lane-emit").unwrap();
        assert_eq!(emit.rewrites, 1);
        let lane = out.lane.expect("lane emitted");
        assert!(!lane.instrs.is_empty());
        assert!(lane.cost >= BATCH_COST_THRESHOLD, "cost {}", lane.cost);
        // CSE ran first, so the shared denominator is computed once: fewer
        // instructions than a naive re-expansion of both effect values.
        assert!(lane.instrs.len() < 2 * plan_nodes(&out.query.stmts));
    }

    #[test]
    fn emit_refuses_randomized_body() {
        let src = r#"
            class R {
                public state float x : x #range[-1, 1];
                private effect float e : sum;
                public void run() {
                    foreach (R p : Extent<R>) { e <- rand(); }
                }
            }
        "#;
        let (out, _) = Pipeline::standard().run(compile_src(src));
        assert!(out.lane.is_none());
    }

    #[test]
    fn emit_refuses_source_level_consts_in_body() {
        // A source `const` coerces NaN to NIL — not representable in lanes.
        let src = r#"
            class C {
                public state float x : x #range[-1, 1];
                private effect float e : sum;
                public void run() {
                    foreach (C p : Extent<C>) {
                        const float d = 1 / (x - p.x);
                        e <- d;
                    }
                }
            }
        "#;
        let (out, _) = Pipeline::standard().run(compile_src(src));
        assert!(out.lane.is_none());
    }
}
