//! Algebraic optimization of compiled plans.
//!
//! Three rewrites, mirroring §4.2:
//!
//! * [`constant_fold`] — evaluate constant subtrees at compile time (the
//!   garden-variety algebraic rewrite; `rand()` and agent reads block
//!   folding).
//! * [`dead_code`] — remove `Let`s whose slot is never read, `If`s with
//!   constant conditions, and empty loops/branches (the paper's "rewrite
//!   rules that function like dead-code elimination").
//! * [`invert_effects`] — **effect inversion** (Theorems 2/3): rewrite
//!   non-local effect assignments `p.f <- E(this, p)` into local ones
//!   `f <- E(p, this)` by swapping the roles of the querying agent and the
//!   loop variable, eliminating the second reduce pass of the runtime.
//!
//! ### Inversion correctness conditions
//!
//! The rewrite is exact when (a) every agent runs the same script with the
//! same visibility bound — so visibility is *symmetric*: `q` sees `this`
//! iff `this` sees `q` — and (b) the inverted fragment draws no randomness
//! (the draw would move from the assigner's stream to the target's,
//! changing the realization). Condition (a) is the uniform-distance-bound
//! special case of the paper's Theorem 3 in which the factor-2 relaxation
//! of the visibility bound is unnecessary; `invert_effects` returns an
//! error rather than silently changing semantics when the conditions fail.

use crate::ast::{BinOp, UnOp};
use crate::exec::CompiledClass;
use crate::plan::{AgentRef, PExpr, PStmt, QueryPlan};
use brace_common::{BraceError, Result};

/// Apply the always-safe passes: constant folding then dead code.
pub fn optimize(class: CompiledClass) -> CompiledClass {
    let folded = QueryPlan { stmts: fold_stmts(class.query.stmts.clone()), n_locals: class.query.n_locals };
    let mut out = class.with_query(folded);
    out = dead_code(out);
    // Updates fold too.
    let mut c = out;
    for rule in &mut c.updates {
        rule.expr = fold_expr(rule.expr.clone());
    }
    c
}

// ---------------------------------------------------------------------------
// Constant folding
// ---------------------------------------------------------------------------

/// Fold constant subtrees of an expression.
pub fn constant_fold(e: PExpr) -> PExpr {
    fold_expr(e)
}

fn fold_expr(e: PExpr) -> PExpr {
    e.map(&mut |node| match node {
        PExpr::Unary(op, inner) => match (*inner).clone() {
            PExpr::Const(v) => PExpr::Const(match op {
                UnOp::Neg => -v,
                UnOp::Not => ((v == 0.0) as i32) as f64,
            }),
            _ => PExpr::Unary(op, inner),
        },
        PExpr::Binary(op, a, b) => match ((*a).clone(), (*b).clone()) {
            (PExpr::Const(l), PExpr::Const(r)) => PExpr::Const(match op {
                BinOp::Add => l + r,
                BinOp::Sub => l - r,
                BinOp::Mul => l * r,
                BinOp::Div => l / r,
                BinOp::Rem => l % r,
                BinOp::Lt => ((l < r) as i32) as f64,
                BinOp::Le => ((l <= r) as i32) as f64,
                BinOp::Gt => ((l > r) as i32) as f64,
                BinOp::Ge => ((l >= r) as i32) as f64,
                BinOp::Eq => ((l == r) as i32) as f64,
                BinOp::Ne => ((l != r) as i32) as f64,
                BinOp::And => ((l != 0.0 && r != 0.0) as i32) as f64,
                BinOp::Or => ((l != 0.0 || r != 0.0) as i32) as f64,
            }),
            // x + 0, x - 0, x * 1, x / 1 identities.
            (lhs, PExpr::Const(r)) if r == 0.0 && matches!(op, BinOp::Add | BinOp::Sub) => lhs,
            (lhs, PExpr::Const(r)) if r == 1.0 && matches!(op, BinOp::Mul | BinOp::Div) => lhs,
            (PExpr::Const(l), rhs) if l == 0.0 && op == BinOp::Add => rhs,
            (PExpr::Const(l), rhs) if l == 1.0 && op == BinOp::Mul => rhs,
            _ => PExpr::Binary(op, a, b),
        },
        PExpr::Call(b, args) => {
            if args.iter().all(|a| matches!(a, PExpr::Const(_))) {
                let vals: Vec<f64> = args
                    .iter()
                    .map(|a| match a {
                        PExpr::Const(v) => *v,
                        _ => unreachable!(),
                    })
                    .collect();
                PExpr::Const(b.apply(&vals))
            } else {
                PExpr::Call(b, args)
            }
        }
        other => other,
    })
}

fn fold_stmts(stmts: Vec<PStmt>) -> Vec<PStmt> {
    stmts
        .into_iter()
        .map(|s| match s {
            PStmt::Let { slot, value } => PStmt::Let { slot, value: fold_expr(value) },
            PStmt::LocalEffect { field, value } => PStmt::LocalEffect { field, value: fold_expr(value) },
            PStmt::RemoteEffect { field, value } => PStmt::RemoteEffect { field, value: fold_expr(value) },
            PStmt::If { cond, then_, else_ } => {
                PStmt::If { cond: fold_expr(cond), then_: fold_stmts(then_), else_: fold_stmts(else_) }
            }
            PStmt::Foreach { body } => PStmt::Foreach { body: fold_stmts(body) },
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Dead code elimination
// ---------------------------------------------------------------------------

/// Remove unread `Let`s, constant `If`s and empty control structures.
pub fn dead_code(class: CompiledClass) -> CompiledClass {
    let mut stmts = class.query.stmts.clone();
    // Iterate to fixpoint: removing an If can orphan a Let, etc.
    loop {
        let used = used_slots(&stmts);
        let before = size(&stmts);
        stmts = sweep(stmts, &used);
        if size(&stmts) == before {
            break;
        }
    }
    class.with_query(QueryPlan { stmts, n_locals: class.query.n_locals })
}

fn size(stmts: &[PStmt]) -> usize {
    let mut n = 0;
    for s in stmts {
        s.visit(&mut |_| n += 1);
    }
    n
}

fn used_slots(stmts: &[PStmt]) -> Vec<bool> {
    let mut used = vec![false; u16::MAX as usize + 1];
    let mut mark = |e: &PExpr| {
        let mut any = |n: &PExpr| {
            if let PExpr::Local(i) = n {
                used[*i as usize] = true;
            }
            false
        };
        e.any(&mut any);
    };
    for s in stmts {
        s.visit(&mut |st| match st {
            PStmt::Let { value, .. } => mark(value),
            PStmt::LocalEffect { value, .. } | PStmt::RemoteEffect { value, .. } => mark(value),
            PStmt::If { cond, .. } => mark(cond),
            PStmt::Foreach { .. } => {}
        });
    }
    used
}

fn sweep(stmts: Vec<PStmt>, used: &[bool]) -> Vec<PStmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            PStmt::Let { slot, value } => {
                // Keep the binding only if read somewhere. (Expressions are
                // pure — no effects are lost by dropping the computation.)
                if used[slot as usize] {
                    out.push(PStmt::Let { slot, value });
                }
            }
            PStmt::If { cond, then_, else_ } => {
                let then_ = sweep(then_, used);
                let else_ = sweep(else_, used);
                match cond {
                    PExpr::Const(v) if v != 0.0 => out.extend(then_),
                    PExpr::Const(_) => out.extend(else_),
                    cond => {
                        if !(then_.is_empty() && else_.is_empty()) {
                            out.push(PStmt::If { cond, then_, else_ });
                        }
                    }
                }
            }
            PStmt::Foreach { body } => {
                let body = sweep(body, used);
                if !body.is_empty() {
                    out.push(PStmt::Foreach { body });
                }
            }
            other => out.push(other),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Effect inversion (Theorems 2 and 3)
// ---------------------------------------------------------------------------

/// Swap the roles of `this` and the loop variable in an expression.
fn swap_roles(e: PExpr) -> PExpr {
    e.map(&mut |node| match node {
        PExpr::SelfPos(a) => PExpr::OtherPos(a),
        PExpr::OtherPos(a) => PExpr::SelfPos(a),
        PExpr::SelfState(i) => PExpr::OtherState(i),
        PExpr::OtherState(i) => PExpr::SelfState(i),
        PExpr::AgentEq { left, right, negate } => PExpr::AgentEq { left: flip(left), right: flip(right), negate },
        other => other,
    })
}

fn flip(r: AgentRef) -> AgentRef {
    match r {
        AgentRef::This => AgentRef::Other,
        AgentRef::Other => AgentRef::This,
    }
}

/// Offset every local slot in a statement tree (for the duplicated inverted
/// copy, whose bindings must not collide with the original's).
fn offset_slots(stmts: Vec<PStmt>, delta: u16) -> Vec<PStmt> {
    let bump = |e: PExpr| {
        e.map(&mut |n| match n {
            PExpr::Local(i) => PExpr::Local(i + delta),
            other => other,
        })
    };
    stmts
        .into_iter()
        .map(|s| match s {
            PStmt::Let { slot, value } => PStmt::Let { slot: slot + delta, value: bump(value) },
            PStmt::LocalEffect { field, value } => PStmt::LocalEffect { field, value: bump(value) },
            PStmt::RemoteEffect { field, value } => PStmt::RemoteEffect { field, value: bump(value) },
            PStmt::If { cond, then_, else_ } => {
                PStmt::If { cond: bump(cond), then_: offset_slots(then_, delta), else_: offset_slots(else_, delta) }
            }
            PStmt::Foreach { body } => PStmt::Foreach { body: offset_slots(body, delta) },
        })
        .collect()
}

/// Drop every `RemoteEffect` from a tree (keeping structure).
fn strip_remote(stmts: Vec<PStmt>) -> Vec<PStmt> {
    stmts
        .into_iter()
        .filter_map(|s| match s {
            PStmt::RemoteEffect { .. } => None,
            PStmt::If { cond, then_, else_ } => {
                Some(PStmt::If { cond, then_: strip_remote(then_), else_: strip_remote(else_) })
            }
            PStmt::Foreach { body } => Some(PStmt::Foreach { body: strip_remote(body) }),
            other => Some(other),
        })
        .collect()
}

/// Drop every `LocalEffect` from a tree, then swap agent roles everywhere —
/// producing the fragment "what each neighbor would have assigned to me,
/// computed by me".
fn remote_as_local(stmts: Vec<PStmt>) -> Vec<PStmt> {
    stmts
        .into_iter()
        .filter_map(|s| match s {
            PStmt::LocalEffect { .. } => None,
            PStmt::RemoteEffect { field, value } => Some(PStmt::LocalEffect { field, value: swap_roles(value) }),
            PStmt::Let { slot, value } => Some(PStmt::Let { slot, value: swap_roles(value) }),
            PStmt::If { cond, then_, else_ } => {
                Some(PStmt::If { cond: swap_roles(cond), then_: remote_as_local(then_), else_: remote_as_local(else_) })
            }
            PStmt::Foreach { body } => Some(PStmt::Foreach { body: remote_as_local(body) }),
        })
        .collect()
}

fn contains_rand(stmts: &[PStmt]) -> bool {
    let mut found = false;
    for s in stmts {
        s.visit(&mut |st| {
            let mut check = |e: &PExpr| {
                if e.any(&mut |n| matches!(n, PExpr::Rand)) {
                    found = true;
                }
            };
            match st {
                PStmt::Let { value, .. } | PStmt::LocalEffect { value, .. } | PStmt::RemoteEffect { value, .. } => {
                    check(value)
                }
                PStmt::If { cond, .. } => check(cond),
                PStmt::Foreach { .. } => {}
            }
        });
    }
    found
}

/// Rewrite the class so all effect assignments are local. See the module
/// docs for the correctness conditions. Idempotent on local-only classes.
pub fn invert_effects(class: CompiledClass) -> Result<CompiledClass> {
    if !class.query.has_remote_effects() {
        return Ok(class);
    }
    let n_locals = class.query.n_locals;
    let mut out: Vec<PStmt> = Vec::new();
    for stmt in class.query.stmts.clone() {
        match stmt {
            PStmt::Foreach { body } => {
                if contains_rand(&body) {
                    return Err(BraceError::Rewrite(
                        "effect inversion would move a rand() draw between agent streams; \
                         refusing to change the random realization"
                            .into(),
                    ));
                }
                // Original loop minus its non-local assignments…
                let local_part = strip_remote(body.clone());
                // …plus the inverted fragment with fresh local slots.
                let inverted = offset_slots(remote_as_local(body), n_locals);
                let mut merged = local_part;
                merged.extend(inverted);
                if !merged.is_empty() {
                    out.push(PStmt::Foreach { body: merged });
                }
            }
            other => {
                if matches!(other, PStmt::RemoteEffect { .. }) {
                    return Err(BraceError::Rewrite(
                        "non-local effect assignment outside a foreach loop cannot be inverted".into(),
                    ));
                }
                out.push(other);
            }
        }
    }
    let plan = QueryPlan { stmts: out, n_locals: n_locals * 2 };
    debug_assert!(!plan.has_remote_effects());
    Ok(class.with_query(plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::exec::{compile, BrasilBehavior};
    use crate::parser::parse;
    use brace_common::{AgentId, DetRng, Vec2};
    use brace_core::{Agent, Behavior, Simulation};

    fn compile_src(src: &str) -> CompiledClass {
        let prog = parse(src).unwrap();
        compile(&analyze(&prog.classes[0]).unwrap()).unwrap()
    }

    #[test]
    fn folding_collapses_constants() {
        let e = PExpr::Binary(
            BinOp::Add,
            Box::new(PExpr::Const(1.0)),
            Box::new(PExpr::Binary(BinOp::Mul, Box::new(PExpr::Const(2.0)), Box::new(PExpr::Const(3.0)))),
        );
        assert_eq!(constant_fold(e), PExpr::Const(7.0));
    }

    #[test]
    fn folding_applies_identities() {
        let x = PExpr::SelfState(0);
        let e = PExpr::Binary(BinOp::Add, Box::new(x.clone()), Box::new(PExpr::Const(0.0)));
        assert_eq!(constant_fold(e), x.clone());
        let e = PExpr::Binary(BinOp::Mul, Box::new(PExpr::Const(1.0)), Box::new(x.clone()));
        assert_eq!(constant_fold(e), x);
    }

    #[test]
    fn folding_stops_at_rand() {
        let e = PExpr::Binary(BinOp::Add, Box::new(PExpr::Rand), Box::new(PExpr::Const(0.0)));
        // x + 0 identity applies, but Rand itself cannot become Const.
        assert_eq!(constant_fold(e), PExpr::Rand);
    }

    #[test]
    fn dead_let_removed() {
        let class = compile_src(
            r#"
            class A {
                public state float x : x #range[-1, 1];
                private effect float e : sum;
                public void run() {
                    const float unused = 42;
                    const float used = 2;
                    foreach (A p : Extent<A>) { e <- used; }
                }
            }
        "#,
        );
        let optimized = optimize(class);
        let lets = optimized.query.count(&mut |s| matches!(s, PStmt::Let { .. }));
        assert_eq!(lets, 1, "only the used let survives");
    }

    #[test]
    fn constant_if_pruned() {
        let class = compile_src(
            r#"
            class A {
                public state float x : x #range[-1, 1];
                private effect float e : sum;
                public void run() {
                    foreach (A p : Extent<A>) {
                        if (1 > 2) { e <- 1; } else { e <- 5; }
                    }
                }
            }
        "#,
        );
        let optimized = optimize(class);
        assert_eq!(optimized.query.count(&mut |s| matches!(s, PStmt::If { .. })), 0);
        // The else branch's assignment survives inline.
        assert_eq!(optimized.query.count(&mut |s| matches!(s, PStmt::LocalEffect { .. })), 1);
    }

    #[test]
    fn empty_foreach_removed() {
        let class = compile_src(
            r#"
            class A {
                public state float x : x #range[-1, 1];
                private effect float e : sum;
                public void run() {
                    const float dead = 3;
                    foreach (A p : Extent<A>) {
                        if (false) { e <- dead; }
                    }
                }
            }
        "#,
        );
        let optimized = optimize(class);
        assert!(optimized.query.stmts.is_empty(), "{:?}", optimized.query.stmts);
    }

    const PAPER_FISH: &str = r#"
        class Fish {
            public state float x : x #range[-1, 1];
            public state float y : y #range[-1, 1];
            public state float ax : avoidx;
            public state float ay : avoidy;
            public state float c : count;
            private effect float avoidx : sum;
            private effect float avoidy : sum;
            private effect float count : sum;
            public void run() {
                foreach (Fish p : Extent<Fish>) {
                    p.avoidx <- 1 / abs(x - p.x);
                    p.avoidy <- 1 / abs(y - p.y);
                    p.count <- 1;
                }
            }
        }
    "#;

    #[test]
    fn inversion_produces_the_papers_rewrite() {
        let class = compile_src(PAPER_FISH);
        assert!(class.schema().has_nonlocal_effects());
        let inverted = invert_effects(class).unwrap();
        assert!(!inverted.schema().has_nonlocal_effects());
        assert!(!inverted.query.has_remote_effects());
        // The paper's rewritten loop assigns 1/abs(p.x - x) locally: the
        // expression must read OtherPos - SelfPos now.
        let locals = inverted.query.count(&mut |s| matches!(s, PStmt::LocalEffect { .. }));
        assert_eq!(locals, 3);
    }

    #[test]
    fn inversion_preserves_semantics() {
        // Run the same population through original and inverted scripts;
        // aggregated effects (and hence next-tick states) must agree.
        let run = |class: CompiledClass| {
            let behavior = BrasilBehavior::new(class);
            let schema = behavior.schema().clone();
            let mut rng = DetRng::seed_from_u64(8);
            let agents: Vec<Agent> = (0..40)
                .map(|i| Agent::new(AgentId::new(i), Vec2::new(rng.range(0.0, 6.0), rng.range(0.0, 6.0)), &schema))
                .collect();
            let mut sim = Simulation::builder(behavior).agents(agents).seed(5).build().unwrap();
            sim.step();
            sim.agents().iter().map(|a| (a.id, a.state.clone())).collect::<Vec<_>>()
        };
        let original = run(compile_src(PAPER_FISH));
        let inverted = run(invert_effects(compile_src(PAPER_FISH)).unwrap());
        assert_eq!(original.len(), inverted.len());
        for ((id_a, s_a), (id_b, s_b)) in original.iter().zip(&inverted) {
            assert_eq!(id_a, id_b);
            for (va, vb) in s_a.iter().zip(s_b) {
                let scale = va.abs().max(vb.abs()).max(1.0);
                assert!((va - vb).abs() <= 1e-9 * scale, "agent {id_a}: {va} vs {vb}");
            }
        }
    }

    #[test]
    fn inversion_handles_conditionals() {
        let src = r#"
            class Biter {
                public state float x : x #range[-2, 2];
                public state float y : y #range[-2, 2];
                public state float size : size;
                public state float pain : hurt;
                private effect float hurt : sum;
                public void run() {
                    foreach (Biter p : Extent<Biter>) {
                        if (size > p.size) { p.hurt <- size - p.size; }
                    }
                }
            }
        "#;
        let run = |class: CompiledClass| {
            let behavior = BrasilBehavior::new(class);
            let schema = behavior.schema().clone();
            let agents: Vec<Agent> = (0..6)
                .map(|i| {
                    let mut a = Agent::new(AgentId::new(i), Vec2::new(i as f64 * 0.8, 0.0), &schema);
                    a.state[0] = i as f64; // size
                    a
                })
                .collect();
            let mut sim = Simulation::builder(behavior).agents(agents).seed(2).build().unwrap();
            sim.step();
            sim.agents().iter().map(|a| a.state[1]).collect::<Vec<_>>()
        };
        let original = run(compile_src(src));
        let inverted = run(invert_effects(compile_src(src)).unwrap());
        assert_eq!(original, inverted);
        // Sanity: bigger fish are never hurt by smaller neighbors only.
        assert_eq!(original[5], 0.0, "largest fish takes no damage");
        assert!(original[0] > 0.0, "smallest fish is bitten");
    }

    #[test]
    fn inversion_refuses_randomized_loops() {
        let src = r#"
            class R {
                public state float x : x #range[-1, 1];
                private effect float e : sum;
                public void run() {
                    foreach (R p : Extent<R>) { p.e <- rand(); }
                }
            }
        "#;
        let err = invert_effects(compile_src(src)).expect_err("must refuse");
        assert!(err.to_string().contains("rand()"));
    }

    #[test]
    fn inversion_is_identity_on_local_scripts() {
        let src = r#"
            class L {
                public state float x : x #range[-1, 1];
                private effect float e : sum;
                public void run() {
                    foreach (L p : Extent<L>) { e <- 1; }
                }
            }
        "#;
        let class = compile_src(src);
        let before = class.query.clone();
        let after = invert_effects(class).unwrap();
        assert_eq!(before, after.query);
    }

    #[test]
    fn inverted_class_runs_single_reduce_pass() {
        // The schema flag drives the runtime's 1-vs-2 reduce decision.
        let class = compile_src(PAPER_FISH);
        assert!(class.schema().has_nonlocal_effects());
        let inv = invert_effects(class).unwrap();
        assert!(!inv.schema().has_nonlocal_effects());
    }
}
