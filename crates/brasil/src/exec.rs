//! Compilation to the dataflow plan and the interpreting backend.
//!
//! [`compile`] lowers an [`AnalyzedClass`] to a [`CompiledClass`] (schema +
//! query plan + update rules); [`BrasilBehavior`] interprets it as a
//! [`brace_core::Behavior`], so compiled scripts run unchanged on the
//! single-node executor and on every worker of the distributed runtime —
//! which is the whole point of the language ("hides all the complexities of
//! modeling computations in MapReduce and parallel programming").
//!
//! ## NIL semantics
//!
//! BRASIL specifies weak-reference semantics: a value derived from an agent
//! that is not visible resolves to NIL, NIL propagates through expressions,
//! and aggregates ignore NIL (Appendix B). Evaluation therefore returns
//! `Option<f64>`; an effect assignment whose value is NIL is skipped. In
//! the executable subset, loop variables are always visible (the runtime
//! materializes exactly the visible region — the two sides of the paper's
//! Theorem 1), so NIL is only reachable through undefined arithmetic,
//! which maps NaN → NIL at assignment boundaries.

use crate::analyze::AnalyzedClass;
use crate::ast::{self, BinOp, Expr, Stmt, UnOp};
use crate::plan::{
    AgentRef, Axis, Builtin, ColSrc, EmitStep, LaneInstr, LaneProgram, PExpr, PStmt, ProbeBounds, QueryPlan, SplatSrc,
    UpdateRule, UpdateTarget,
};
use brace_common::{BraceError, DetRng, FieldId, Rect, Result, Vec2};
use brace_core::behavior::batch_engaged;
use brace_core::behavior::{Behavior, GatheredBatch, NeighborBatch, Neighbors, UpdateCtx};
use brace_core::effect::EffectWriter;
use brace_core::kernels::with_lane_scratch;
use brace_core::{Agent, AgentRead, AgentRef as RowRef, AgentSchema};
use std::collections::HashMap;

/// A fully compiled agent class.
#[derive(Debug, Clone)]
pub struct CompiledClass {
    schema: AgentSchema,
    pub query: QueryPlan,
    pub updates: Vec<UpdateRule>,
    /// Probe-rect bounds proven by the optimizer's pushdown pass; `None`
    /// until (and unless) the pass derives any.
    pub probe_bounds: Option<ProbeBounds>,
    /// Lane program emitted by the optimizer for a query-phase-pure loop
    /// body; `None` until the emission pass runs (the unoptimized baseline
    /// always interprets).
    pub lane: Option<LaneProgram>,
}

impl CompiledClass {
    pub fn schema(&self) -> &AgentSchema {
        &self.schema
    }

    /// Rebuild with a different query plan (used by the optimizer). The
    /// schema's non-local flag is re-derived from the plan; derived
    /// artifacts (probe bounds, lane program) are dropped — they describe
    /// the *old* plan, and the pipeline re-derives them after every change.
    pub fn with_query(&self, query: QueryPlan) -> CompiledClass {
        let has_remote = query.has_remote_effects();
        let mut b = AgentSchema::builder(self.schema.name());
        for s in self.schema.state_defs() {
            b = b.state(s.name.clone());
        }
        for e in self.schema.effect_defs() {
            b = b.effect(e.name.clone(), e.combinator);
        }
        let schema = b
            .visibility(self.schema.visibility())
            .reachability(self.schema.reachability())
            .nonlocal_effects(has_remote)
            .build()
            .expect("schema rebuilt from a valid schema");
        CompiledClass { schema, query, updates: self.updates.clone(), probe_bounds: None, lane: None }
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

struct Compiler<'a> {
    state_ids: HashMap<&'a str, u16>,
    effect_ids: HashMap<&'a str, u16>,
    locals: Vec<(String, u16)>,
    loop_var: Option<String>,
    next_local: u16,
}

impl<'a> Compiler<'a> {
    fn expr(&self, e: &Expr) -> Result<PExpr> {
        Ok(match e {
            Expr::Number(n) => PExpr::Const(*n),
            Expr::Bool(b) => PExpr::Const(*b as i32 as f64),
            Expr::This => return Err(BraceError::Semantic("bare `this` outside comparison".into())),
            Expr::Ident(name) => self.ident(name, false)?,
            Expr::Field(base, field) => {
                // Analysis guarantees base is agent-typed: `this` or loop var.
                match &**base {
                    Expr::This => self.ident(field, false)?,
                    Expr::Ident(v) if Some(v) == self.loop_var.as_ref() => self.ident(field, true)?,
                    _ => return Err(BraceError::Semantic(format!("unsupported field base for `.{field}`"))),
                }
            }
            Expr::Unary(op, inner) => PExpr::Unary(*op, Box::new(self.expr(inner)?)),
            Expr::Binary(op @ (BinOp::Eq | BinOp::Ne), a, b) if self.is_agent(a) && self.is_agent(b) => {
                PExpr::AgentEq { left: self.agent_ref(a), right: self.agent_ref(b), negate: *op == BinOp::Ne }
            }
            Expr::Binary(op, a, b) => PExpr::Binary(*op, Box::new(self.expr(a)?), Box::new(self.expr(b)?)),
            Expr::Call(name, args) => {
                if name == "rand" {
                    PExpr::Rand
                } else {
                    let b = Builtin::parse(name)
                        .ok_or_else(|| BraceError::Semantic(format!("unknown function `{name}`")))?;
                    PExpr::Call(b, args.iter().map(|a| self.expr(a)).collect::<Result<_>>()?)
                }
            }
        })
    }

    fn is_agent(&self, e: &Expr) -> bool {
        matches!(e, Expr::This) || matches!(e, Expr::Ident(v) if Some(v) == self.loop_var.as_ref())
    }

    fn agent_ref(&self, e: &Expr) -> AgentRef {
        if matches!(e, Expr::This) {
            AgentRef::This
        } else {
            AgentRef::Other
        }
    }

    /// Resolve an identifier against (loop-var-qualified) field tables.
    fn ident(&self, name: &str, on_other: bool) -> Result<PExpr> {
        if !on_other {
            if let Some((_, slot)) = self.locals.iter().rev().find(|(n, _)| n == name) {
                return Ok(PExpr::Local(*slot));
            }
        }
        match name {
            "x" => Ok(if on_other { PExpr::OtherPos(Axis::X) } else { PExpr::SelfPos(Axis::X) }),
            "y" => Ok(if on_other { PExpr::OtherPos(Axis::Y) } else { PExpr::SelfPos(Axis::Y) }),
            _ => {
                if let Some(&id) = self.state_ids.get(name) {
                    Ok(if on_other { PExpr::OtherState(id) } else { PExpr::SelfState(id) })
                } else if let Some(&id) = self.effect_ids.get(name) {
                    if on_other {
                        Err(BraceError::Semantic(format!("effect `{name}` of another agent is unreadable")))
                    } else {
                        Ok(PExpr::SelfEffect(id))
                    }
                } else {
                    Err(BraceError::Semantic(format!("unknown identifier `{name}`")))
                }
            }
        }
    }

    fn block(&mut self, block: &ast::Block) -> Result<Vec<PStmt>> {
        let scope_mark = self.locals.len();
        let mut out = Vec::with_capacity(block.stmts.len());
        for stmt in &block.stmts {
            match stmt {
                Stmt::Const { name, value, .. } => {
                    let value = self.expr(value)?;
                    let slot = self.next_local;
                    self.next_local += 1;
                    self.locals.push((name.clone(), slot));
                    out.push(PStmt::Let { slot, value });
                }
                Stmt::EffectAssign { target, field, value, .. } => {
                    let fid = *self.effect_ids.get(field.as_str()).expect("checked by analysis");
                    let value = self.expr(value)?;
                    if target.is_some() {
                        out.push(PStmt::RemoteEffect { field: fid, value });
                    } else {
                        out.push(PStmt::LocalEffect { field: fid, value });
                    }
                }
                Stmt::If { cond, then_, else_, .. } => {
                    let cond = self.expr(cond)?;
                    let then_ = self.block(then_)?;
                    let else_ = match else_ {
                        Some(b) => self.block(b)?,
                        None => Vec::new(),
                    };
                    out.push(PStmt::If { cond, then_, else_ });
                }
                Stmt::Foreach { var, body, .. } => {
                    self.loop_var = Some(var.clone());
                    let body = self.block(body)?;
                    self.loop_var = None;
                    out.push(PStmt::Foreach { body });
                }
            }
        }
        self.locals.truncate(scope_mark);
        Ok(out)
    }
}

/// Lower an analyzed class to an executable [`CompiledClass`].
pub fn compile(a: &AnalyzedClass) -> Result<CompiledClass> {
    let mut builder = AgentSchema::builder(a.decl.name.clone());
    for s in &a.state_names {
        builder = builder.state(s.clone());
    }
    for (e, c) in a.effect_names.iter().zip(&a.combinators) {
        builder = builder.effect(e.clone(), *c);
    }
    let schema =
        builder.visibility(a.visibility).reachability(a.reachability).nonlocal_effects(a.has_nonlocal).build()?;

    let mut c = Compiler {
        state_ids: a.state_names.iter().enumerate().map(|(i, n)| (n.as_str(), i as u16)).collect(),
        effect_ids: a.effect_names.iter().enumerate().map(|(i, n)| (n.as_str(), i as u16)).collect(),
        locals: Vec::new(),
        loop_var: None,
        next_local: 0,
    };
    let stmts = c.block(&a.decl.run)?;
    let query = QueryPlan { stmts, n_locals: c.next_local, raw_slots: Vec::new() };

    // Update rules, in field declaration order.
    let mut updates = Vec::new();
    for f in &a.decl.fields {
        if let ast::FieldKind::State { update: Some(rule), .. } = &f.kind {
            let expr = c.expr(rule)?;
            let target = match f.name.as_str() {
                "x" => UpdateTarget::PosX,
                "y" => UpdateTarget::PosY,
                name => UpdateTarget::State(*c.state_ids.get(name).expect("state field")),
            };
            updates.push(UpdateRule { target, expr });
        }
    }
    Ok(CompiledClass { schema, query, updates, probe_bounds: None, lane: None })
}

// ---------------------------------------------------------------------------
// Interpretation
// ---------------------------------------------------------------------------

/// Evaluation context for one query/update invocation. Generic over the
/// agent representation ([`AgentRead`]): the query phase evaluates against
/// pool row views, the update phase against a snapshot record — both
/// monomorphize to direct reads.
struct EvalCtx<'a, R: AgentRead + Copy> {
    me: R,
    other: Option<R>,
    locals: &'a mut [Option<f64>],
    /// Locally-aggregated effect shadow (query) or the final aggregated
    /// effects (update).
    effects: &'a [f64],
    rng: &'a mut DetRng,
}

/// NIL-propagating evaluation.
fn eval<R: AgentRead + Copy>(e: &PExpr, ctx: &mut EvalCtx<'_, R>) -> Option<f64> {
    Some(match e {
        PExpr::Const(c) => *c,
        PExpr::SelfPos(Axis::X) => ctx.me.pos().x,
        PExpr::SelfPos(Axis::Y) => ctx.me.pos().y,
        PExpr::OtherPos(Axis::X) => ctx.other?.pos().x,
        PExpr::OtherPos(Axis::Y) => ctx.other?.pos().y,
        PExpr::SelfState(i) => ctx.me.state(*i),
        PExpr::OtherState(i) => ctx.other?.state(*i),
        PExpr::SelfEffect(i) => ctx.effects[*i as usize],
        PExpr::Local(i) => ctx.locals[*i as usize]?,
        PExpr::AgentEq { left, right, negate } => {
            let l = match left {
                AgentRef::This => ctx.me.id(),
                AgentRef::Other => ctx.other?.id(),
            };
            let r = match right {
                AgentRef::This => ctx.me.id(),
                AgentRef::Other => ctx.other?.id(),
            };
            (((l == r) != *negate) as i32) as f64
        }
        PExpr::Unary(op, inner) => {
            let v = eval(inner, ctx)?;
            match op {
                UnOp::Neg => -v,
                UnOp::Not => ((v == 0.0) as i32) as f64,
            }
        }
        PExpr::Binary(op, a, b) => {
            // Short-circuit logic evaluates lazily; everything else strictly.
            match op {
                BinOp::And => {
                    let l = eval(a, ctx)?;
                    if l == 0.0 {
                        0.0
                    } else {
                        ((eval(b, ctx)? != 0.0) as i32) as f64
                    }
                }
                BinOp::Or => {
                    let l = eval(a, ctx)?;
                    if l != 0.0 {
                        1.0
                    } else {
                        ((eval(b, ctx)? != 0.0) as i32) as f64
                    }
                }
                _ => {
                    let l = eval(a, ctx)?;
                    let r = eval(b, ctx)?;
                    match op {
                        BinOp::Add => l + r,
                        BinOp::Sub => l - r,
                        BinOp::Mul => l * r,
                        BinOp::Div => l / r,
                        BinOp::Rem => l % r,
                        BinOp::Lt => ((l < r) as i32) as f64,
                        BinOp::Le => ((l <= r) as i32) as f64,
                        BinOp::Gt => ((l > r) as i32) as f64,
                        BinOp::Ge => ((l >= r) as i32) as f64,
                        BinOp::Eq => ((l == r) as i32) as f64,
                        BinOp::Ne => ((l != r) as i32) as f64,
                        BinOp::And | BinOp::Or => unreachable!("handled above"),
                    }
                }
            }
        }
        PExpr::Call(b, args) => {
            let mut vals = [0.0f64; 3];
            for (i, a) in args.iter().enumerate() {
                vals[i] = eval(a, ctx)?;
            }
            b.apply(&vals[..args.len()])
        }
        PExpr::Rand => ctx.rng.unit(),
    })
}

/// A compiled class as a runnable behavior.
#[derive(Debug, Clone)]
pub struct BrasilBehavior {
    class: CompiledClass,
    /// Per-slot NaN-transparency mask, from `QueryPlan::raw_slots`.
    raw: Vec<bool>,
    /// Test/bench override of the analyzer's batch-engagement decision.
    batch_override: Option<bool>,
}

impl BrasilBehavior {
    pub fn new(class: CompiledClass) -> Self {
        let mut raw = vec![false; class.query.n_locals as usize];
        for &s in &class.query.raw_slots {
            if let Some(f) = raw.get_mut(s as usize) {
                *f = true;
            }
        }
        BrasilBehavior { class, raw, batch_override: None }
    }

    pub fn class(&self) -> &CompiledClass {
        &self.class
    }

    /// Force batch engagement on (`true`) or off (`false`) regardless of
    /// the analyzer's cost estimate. Pure scheduling policy — the lane and
    /// interpreted paths are bit-identical by construction — used by the
    /// conformance tests and bench ablations to exercise lane programs
    /// whose estimated cost falls below the engagement threshold.
    pub fn with_batch_engagement(mut self, engaged: bool) -> Self {
        self.batch_override = Some(engaged);
        self
    }

    #[allow(clippy::too_many_arguments)] // interpreter context, flattened for the hot path
    fn exec_stmts<'v>(
        &self,
        stmts: &[PStmt],
        me: RowRef<'v>,
        neighbors: &Neighbors<'v>,
        eff: &mut EffectWriter<'_>,
        shadow: &mut [f64],
        locals: &mut [Option<f64>],
        other: Option<(RowRef<'v>, u32)>,
        rng: &mut DetRng,
    ) {
        let schema = self.class.schema();
        for stmt in stmts {
            match stmt {
                PStmt::Let { slot, value } => {
                    let v = {
                        let mut ctx = EvalCtx { me, other: other.map(|o| o.0), locals, effects: shadow, rng };
                        eval(value, &mut ctx)
                    };
                    // Source-level bindings coerce NaN → NIL; optimizer
                    // temporaries (raw slots) bind verbatim, so reading one
                    // back is exactly inlining the hoisted expression.
                    locals[*slot as usize] = if self.raw[*slot as usize] { v } else { v.filter(|v| !v.is_nan()) };
                }
                PStmt::LocalEffect { field, value } => {
                    let v = {
                        let mut ctx = EvalCtx { me, other: other.map(|o| o.0), locals, effects: shadow, rng };
                        eval(value, &mut ctx)
                    };
                    if let Some(v) = v.filter(|v| !v.is_nan()) {
                        let fid = FieldId::new(*field);
                        eff.local(fid, v);
                        let comb = schema.combinator(fid);
                        shadow[*field as usize] = comb.combine(shadow[*field as usize], v);
                    }
                }
                PStmt::RemoteEffect { field, value } => {
                    let Some((_, target_row)) = other else {
                        unreachable!("remote effect outside foreach (rejected by analysis)")
                    };
                    let v = {
                        let mut ctx = EvalCtx { me, other: other.map(|o| o.0), locals, effects: shadow, rng };
                        eval(value, &mut ctx)
                    };
                    if let Some(v) = v.filter(|v| !v.is_nan()) {
                        eff.remote(target_row, FieldId::new(*field), v);
                    }
                }
                PStmt::If { cond, then_, else_ } => {
                    let c = {
                        let mut ctx = EvalCtx { me, other: other.map(|o| o.0), locals, effects: shadow, rng };
                        eval(cond, &mut ctx)
                    };
                    let branch = match c {
                        Some(v) if v != 0.0 => then_,
                        Some(_) => else_,
                        None => continue, // NIL condition: whole statement is skipped
                    };
                    self.exec_stmts(branch, me, neighbors, eff, shadow, locals, other, rng);
                }
                PStmt::Foreach { body } => {
                    for nb in neighbors.iter() {
                        self.exec_stmts(body, me, neighbors, eff, shadow, locals, Some((nb.agent, nb.row)), rng);
                    }
                }
            }
        }
    }

    /// Execute a lane program over one gathered candidate batch: run the
    /// instruction columns (the vectorizable map), then fold the emit steps
    /// per candidate in canonical probe order — the same order, same
    /// self-exclusion, and same NaN/NIL rules as the interpreter, which is
    /// what makes the two paths bit-identical.
    fn run_lane(
        &self,
        lane: &LaneProgram,
        me: RowRef<'_>,
        g: &GatheredBatch<'_>,
        prelude: &[f64],
        eff: &mut EffectWriter<'_>,
        shadow: &mut [f64],
    ) {
        let n = g.len();
        with_lane_scratch(|s| {
            let cols = s.ensure_cols(lane.instrs.len());
            for (i, instr) in lane.instrs.iter().enumerate() {
                // SSA: instruction i writes column i from strictly earlier
                // columns, so the split borrow is always disjoint.
                let (prev, rest) = cols.split_at_mut(i);
                let out = &mut rest[0];
                match instr {
                    LaneInstr::Splat(src) => {
                        let v = match src {
                            SplatSrc::Const(c) => *c,
                            SplatSrc::SelfX => me.pos().x,
                            SplatSrc::SelfY => me.pos().y,
                            SplatSrc::SelfState(k) => me.state(*k),
                            SplatSrc::Prelude(k) => prelude[*k as usize],
                        };
                        out.clear();
                        out.resize(n, v);
                    }
                    LaneInstr::Column(src) => {
                        let col = match src {
                            ColSrc::OtherX => g.xs,
                            ColSrc::OtherY => g.ys,
                            ColSrc::OtherState(k) => g.state(*k as usize),
                        };
                        out.clear();
                        out.extend_from_slice(col);
                    }
                    LaneInstr::Unary(op, a) => lane_unary(*op, &prev[*a as usize], out),
                    LaneInstr::Binary(op, a, b) => lane_binary(*op, &prev[*a as usize], &prev[*b as usize], out),
                    LaneInstr::Call(b, args) => lane_call(*b, args, prev, out),
                }
            }
            let cols = &*cols;
            let schema = self.class.schema();
            for i in 0..n {
                if g.rows[i] == g.me {
                    continue;
                }
                emit_steps(&lane.emit, i, cols, eff, shadow, schema);
            }
        });
    }
}

fn lane_unary(op: UnOp, a: &[f64], out: &mut Vec<f64>) {
    out.clear();
    match op {
        UnOp::Neg => out.extend(a.iter().map(|&x| -x)),
        UnOp::Not => out.extend(a.iter().map(|&x| ((x == 0.0) as i32) as f64)),
    }
}

fn lane_binary(op: BinOp, a: &[f64], b: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(a.len());
    let b = &b[..a.len()];
    macro_rules! zip {
        ($f:expr) => {
            out.extend(a.iter().zip(b).map(|(&x, &y)| $f(x, y)))
        };
    }
    match op {
        BinOp::Add => zip!(|x, y| x + y),
        BinOp::Sub => zip!(|x, y| x - y),
        BinOp::Mul => zip!(|x, y| x * y),
        BinOp::Div => zip!(|x, y| x / y),
        BinOp::Rem => zip!(|x: f64, y: f64| x % y),
        BinOp::Lt => zip!(|x, y| ((x < y) as i32) as f64),
        BinOp::Le => zip!(|x, y| ((x <= y) as i32) as f64),
        BinOp::Gt => zip!(|x, y| ((x > y) as i32) as f64),
        BinOp::Ge => zip!(|x, y| ((x >= y) as i32) as f64),
        BinOp::Eq => zip!(|x, y| ((x == y) as i32) as f64),
        BinOp::Ne => zip!(|x, y| ((x != y) as i32) as f64),
        // Mirrors the interpreter's short-circuit results exactly (lane
        // operands are pure, so evaluating the right side unconditionally
        // is unobservable): a NaN left side takes the non-zero path.
        BinOp::And => zip!(|x: f64, y: f64| if x == 0.0 { 0.0 } else { ((y != 0.0) as i32) as f64 }),
        BinOp::Or => zip!(|x: f64, y: f64| if x != 0.0 { 1.0 } else { ((y != 0.0) as i32) as f64 }),
    }
}

fn lane_call(b: Builtin, args: &[u16], regs: &[Vec<f64>], out: &mut Vec<f64>) {
    out.clear();
    match args {
        [a] => {
            let a = &regs[*a as usize];
            match b {
                Builtin::Abs => out.extend(a.iter().map(|&x| x.abs())),
                Builtin::Sqrt => out.extend(a.iter().map(|&x| x.sqrt())),
                _ => out.extend(a.iter().map(|&x| b.apply(&[x]))),
            }
        }
        [a, c] => {
            let (a, c) = (&regs[*a as usize], &regs[*c as usize]);
            let c = &c[..a.len()];
            match b {
                Builtin::Min => out.extend(a.iter().zip(c).map(|(&x, &y)| x.min(y))),
                Builtin::Max => out.extend(a.iter().zip(c).map(|(&x, &y)| x.max(y))),
                _ => out.extend(a.iter().zip(c).map(|(&x, &y)| b.apply(&[x, y]))),
            }
        }
        [a, c, d] => {
            let (a, c, d) = (&regs[*a as usize], &regs[*c as usize], &regs[*d as usize]);
            let c = &c[..a.len()];
            let d = &d[..a.len()];
            out.extend(a.iter().zip(c).zip(d).map(|((&x, &y), &z)| b.apply(&[x, y, z])));
        }
        _ => unreachable!("builtins take 1..=3 arguments"),
    }
}

/// Per-candidate ordered fold over the computed columns: the only part of
/// lane execution with observable order, and it runs in exactly the
/// interpreter's candidate order.
fn emit_steps(
    steps: &[EmitStep],
    i: usize,
    cols: &[Vec<f64>],
    eff: &mut EffectWriter<'_>,
    shadow: &mut [f64],
    schema: &AgentSchema,
) {
    for step in steps {
        match step {
            EmitStep::Effect { field, value } => {
                let v = cols[*value as usize][i];
                if !v.is_nan() {
                    let fid = FieldId::new(*field);
                    eff.local(fid, v);
                    let comb = schema.combinator(fid);
                    shadow[*field as usize] = comb.combine(shadow[*field as usize], v);
                }
            }
            EmitStep::If { cond, then_, else_ } => {
                // Lane bodies never evaluate to NIL (every source is
                // defined); NaN ≠ 0.0 takes the then branch — exactly the
                // interpreter's `Some(v) if v != 0.0` rule.
                if cols[*cond as usize][i] != 0.0 {
                    emit_steps(then_, i, cols, eff, shadow, schema);
                } else {
                    emit_steps(else_, i, cols, eff, shadow, schema);
                }
            }
        }
    }
}

impl Behavior for BrasilBehavior {
    fn schema(&self) -> &AgentSchema {
        self.class.schema()
    }

    fn query(&self, me: RowRef<'_>, neighbors: &Neighbors<'_>, eff: &mut EffectWriter<'_>, rng: &mut DetRng) {
        let schema = self.class.schema();
        let mut shadow = schema.effect_identities();
        let mut locals = vec![None; self.class.query.n_locals as usize];
        self.exec_stmts(&self.class.query.stmts, me, neighbors, eff, &mut shadow, &mut locals, None, rng);
    }

    fn probe_rect(&self, pos: Vec2, vis: f64) -> Rect {
        let rect = Rect::centered(pos, vis);
        match &self.class.probe_bounds {
            Some(b) => b.tighten(pos, rect),
            None => rect,
        }
    }

    fn batch_profitable(&self) -> bool {
        // Classes with no lane program cost 0: never engaged unless pinned
        // (engaging would pay the gather just to fall back to the
        // interpreter).
        batch_engaged(self.class.lane.as_ref().map_or(0, |l| l.cost), self.batch_override)
    }

    fn query_batch(&self, me: RowRef<'_>, batch: &mut NeighborBatch<'_>, eff: &mut EffectWriter<'_>, rng: &mut DetRng) {
        let Some(lane) = &self.class.lane else {
            return self.query(me, &batch.neighbors(), eff, rng);
        };
        let schema = self.class.schema();
        let mut shadow = schema.effect_identities();
        let mut locals = vec![None; self.class.query.n_locals as usize];
        let neighbors = batch.neighbors();
        for stmt in &self.class.query.stmts {
            if let PStmt::Foreach { body } = stmt {
                // Resolve the loop-invariant prelude slots the lane program
                // splats. A NIL prelude value means the body can observe
                // NIL — the lane columns can't represent that, so fall back
                // to the interpreter for this (rare) probe.
                let prelude: Option<Vec<f64>> = lane.prelude_slots.iter().map(|&s| locals[s as usize]).collect();
                match prelude {
                    Some(prelude) => {
                        let g = batch.gather(&lane.gather_slots);
                        self.run_lane(lane, me, &g, &prelude, eff, &mut shadow);
                    }
                    None => {
                        for nb in neighbors.iter() {
                            self.exec_stmts(
                                body,
                                me,
                                &neighbors,
                                eff,
                                &mut shadow,
                                &mut locals,
                                Some((nb.agent, nb.row)),
                                rng,
                            );
                        }
                    }
                }
            } else {
                self.exec_stmts(std::slice::from_ref(stmt), me, &neighbors, eff, &mut shadow, &mut locals, None, rng);
            }
        }
    }

    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        // Simultaneous semantics: evaluate every rule against the
        // pre-update snapshot, then commit.
        let snapshot = me.clone();
        let mut locals: Vec<Option<f64>> = Vec::new();
        let mut staged: Vec<(UpdateTarget, f64)> = Vec::with_capacity(self.class.updates.len());
        for rule in &self.class.updates {
            let v = {
                let mut ec = EvalCtx {
                    me: &snapshot,
                    other: None,
                    locals: &mut locals,
                    effects: &snapshot.effects,
                    rng: &mut ctx.rng,
                };
                eval(&rule.expr, &mut ec)
            };
            // NIL update leaves the field unchanged (weak-reference
            // semantics: a rule depending on NIL data is a no-op).
            if let Some(v) = v.filter(|v| !v.is_nan()) {
                staged.push((rule.target, v));
            }
        }
        for (target, v) in staged {
            match target {
                UpdateTarget::PosX => me.pos.x = v,
                UpdateTarget::PosY => me.pos.y = v,
                UpdateTarget::State(i) => me.state[i as usize] = v,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::parser::parse;
    use brace_common::{AgentId, Vec2};
    use brace_core::Simulation;
    use brace_spatial::IndexKind;

    fn compile_src(src: &str) -> CompiledClass {
        let prog = parse(src).unwrap();
        compile(&analyze(&prog.classes[0]).unwrap()).unwrap()
    }

    const COUNTER: &str = r#"
        class Bird {
            public state float x : x #range[-1, 1];
            public state float y : y #range[-1, 1];
            public state float seen : n;
            private effect float n : sum;
            public void run() {
                foreach (Bird p : Extent<Bird>) { n <- 1; }
            }
        }
    "#;

    fn grid_agents(schema: &AgentSchema, n: usize, gap: f64) -> Vec<Agent> {
        (0..n).map(|i| Agent::new(AgentId::new(i as u64), Vec2::new(i as f64 * gap, 0.0), schema)).collect()
    }

    #[test]
    fn neighbor_count_script_counts_correctly() {
        let class = compile_src(COUNTER);
        let behavior = BrasilBehavior::new(class);
        let agents = grid_agents(behavior.schema(), 5, 0.9);
        let mut sim = Simulation::builder(behavior).agents(agents).seed(1).build().unwrap();
        sim.step();
        let seen: Vec<f64> = sim.agents().iter().map(|a| a.state[0]).collect();
        // Ends see 1 neighbor; middles see 2 (visibility 1.0, gap 0.9).
        assert_eq!(seen, vec![1.0, 2.0, 2.0, 2.0, 1.0]);
    }

    /// Theorem 1 (empirical form): the engine materializes exactly the
    /// visible region, so a script's foreach sees precisely the agents
    /// within the `#range` bound — the weak-reference semantics and the
    /// replica-filtering implementation agree.
    #[test]
    fn theorem1_visibility_semantics_match_runtime_filtering() {
        let class = compile_src(COUNTER);
        let behavior = BrasilBehavior::new(class);
        let schema = behavior.schema().clone();
        let mut rng = DetRng::seed_from_u64(3);
        let agents: Vec<Agent> = (0..60)
            .map(|i| Agent::new(AgentId::new(i), Vec2::new(rng.range(0.0, 10.0), rng.range(0.0, 10.0)), &schema))
            .collect();
        let reference: Vec<f64> = agents
            .iter()
            .map(|a| {
                agents
                    .iter()
                    .filter(|b| b.id != a.id && (b.pos.x - a.pos.x).abs() <= 1.0 && (b.pos.y - a.pos.y).abs() <= 1.0)
                    .count() as f64
            })
            .collect();
        let mut sim = Simulation::builder(behavior).agents(agents).seed(9).build().unwrap();
        sim.step();
        let got: Vec<f64> = sim.agents().iter().map(|a| a.state[0]).collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn update_rules_are_simultaneous() {
        // swapx/swapy exchange values; simultaneous semantics swap them,
        // sequential semantics would duplicate one.
        let src = r#"
            class S {
                public state float a : b;
                public state float b : a;
                public void run() {}
            }
        "#;
        let class = compile_src(src);
        let behavior = BrasilBehavior::new(class);
        let schema = behavior.schema().clone();
        let mut agent = Agent::new(AgentId::new(0), Vec2::ZERO, &schema);
        agent.state = vec![1.0, 2.0];
        let mut sim = Simulation::builder(behavior).agents(vec![agent]).build().unwrap();
        sim.step();
        assert_eq!(sim.agents()[0].state, vec![2.0, 1.0]);
    }

    #[test]
    fn reachability_crops_movement() {
        let src = r#"
            class M {
                public state float x : x + 100 #range[-1, 1];
                public state float y : y #range[-1, 1];
                public void run() {}
            }
        "#;
        let behavior = BrasilBehavior::new(compile_src(src));
        let schema = behavior.schema().clone();
        let agent = Agent::new(AgentId::new(0), Vec2::ZERO, &schema);
        let mut sim = Simulation::builder(behavior).agents(vec![agent]).build().unwrap();
        sim.step();
        assert_eq!(sim.agents()[0].pos.x, 1.0, "movement cropped to the reachable region");
    }

    #[test]
    fn effect_read_after_loop_sees_local_aggregate() {
        let src = r#"
            class R {
                public state float x : x #range[-5, 5];
                public state float y : y #range[-5, 5];
                public state float res : flag;
                private effect float n : sum;
                private effect float flag : max;
                public void run() {
                    foreach (R p : Extent<R>) { n <- 1; }
                    if (n >= 2) { flag <- 1; }
                }
            }
        "#;
        let behavior = BrasilBehavior::new(compile_src(src));
        let schema = behavior.schema().clone();
        let agents: Vec<Agent> =
            (0..3).map(|i| Agent::new(AgentId::new(i), Vec2::new(i as f64, 0.0), &schema)).collect();
        let mut sim = Simulation::builder(behavior).agents(agents).build().unwrap();
        sim.step();
        // All three see 2 neighbors -> flag set.
        for a in sim.agents() {
            assert_eq!(a.state[0], 1.0);
        }
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let src = r#"
            class J {
                public state float x : x + rand() #range[-1, 1];
                public state float y : y #range[-1, 1];
                public void run() {}
            }
        "#;
        let run = |seed| {
            let behavior = BrasilBehavior::new(compile_src(src));
            let schema = behavior.schema().clone();
            let agents: Vec<Agent> =
                (0..10).map(|i| Agent::new(AgentId::new(i), Vec2::new(i as f64 * 3.0, 0.0), &schema)).collect();
            let mut sim = Simulation::builder(behavior).agents(agents).seed(seed).build().unwrap();
            sim.run(3);
            sim.agents().iter().map(|a| a.pos.x).collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(4), run(5));
    }

    #[test]
    fn nonlocal_script_assigns_remote_effects() {
        let src = r#"
            class P {
                public state float x : x #range[-2, 2];
                public state float y : y #range[-2, 2];
                public state float hits : got;
                private effect float got : sum;
                public void run() {
                    foreach (P p : Extent<P>) { p.got <- 1; }
                }
            }
        "#;
        let class = compile_src(src);
        assert!(class.schema().has_nonlocal_effects());
        let behavior = BrasilBehavior::new(class);
        let schema = behavior.schema().clone();
        let agents: Vec<Agent> =
            (0..4).map(|i| Agent::new(AgentId::new(i), Vec2::new(i as f64, 0.0), &schema)).collect();
        let mut sim = Simulation::builder(behavior).agents(agents).index(IndexKind::KdTree).build().unwrap();
        sim.step();
        // Line of 4 with visibility 2: ends are hit by 2, middles by 3.
        let hits: Vec<f64> = sim.agents().iter().map(|a| a.state[0]).collect();
        assert_eq!(hits, vec![2.0, 3.0, 3.0, 2.0]);
    }

    #[test]
    fn division_by_zero_yields_nil_and_skips_assignment() {
        // 1/abs(x - p.x) is infinite for coincident agents (the paper's own
        // fish script has this hazard); inf is a number and aggregates, but
        // 0/0 is NaN -> NIL -> skipped.
        let src = r#"
            class D {
                public state float x : x #range[-1, 1];
                public state float y : y #range[-1, 1];
                public state float got : n;
                private effect float n : sum;
                public void run() {
                    foreach (D p : Extent<D>) {
                        n <- (x - p.x) / abs(x - p.x);
                    }
                }
            }
        "#;
        let behavior = BrasilBehavior::new(compile_src(src));
        let schema = behavior.schema().clone();
        // Two coincident agents: (x - p.x)/|x - p.x| = 0/0 = NaN -> skipped.
        let agents: Vec<Agent> = (0..2).map(|i| Agent::new(AgentId::new(i), Vec2::ZERO, &schema)).collect();
        let mut sim = Simulation::builder(behavior).agents(agents).build().unwrap();
        sim.step();
        for a in sim.agents() {
            assert_eq!(a.state[0], 0.0, "NIL assignment must be skipped, leaving the sum identity");
        }
    }

    #[test]
    fn locals_bind_and_scope() {
        let src = r#"
            class L {
                public state float x : x #range[-3, 3];
                public state float y : y #range[-3, 3];
                public state float out : acc;
                private effect float acc : sum;
                public void run() {
                    const float two = 1 + 1;
                    foreach (L p : Extent<L>) {
                        const float d = abs(x - p.x);
                        if (d < two) { acc <- d; }
                    }
                }
            }
        "#;
        let behavior = BrasilBehavior::new(compile_src(src));
        let schema = behavior.schema().clone();
        let agents: Vec<Agent> =
            (0..3).map(|i| Agent::new(AgentId::new(i), Vec2::new(i as f64, 0.0), &schema)).collect();
        let mut sim = Simulation::builder(behavior).agents(agents).build().unwrap();
        sim.step();
        // Agent 1 sees agents 0 and 2 at distance 1 each (< 2): acc = 2.
        assert_eq!(sim.agents()[1].state[0], 2.0);
        // Agents 0/2 see distances 1 and 2; only 1 < 2 counts: acc = 1.
        assert_eq!(sim.agents()[0].state[0], 1.0);
    }
}
