//! Pretty-printer for compiled plans.
//!
//! Renders a [`QueryPlan`](crate::plan::QueryPlan) in a compact algebra-flavored notation so the
//! optimizer's rewrites are inspectable (the `predator_inversion` example
//! prints before/after plans with it):
//!
//! ```text
//! foreach p ∈ Extent {
//!   crowd ⊕= 1
//!   if (self.size > p.size + 0.3) { p.hurt ⊕= self.size - p.size }
//! }
//! ```

use crate::ast::{BinOp, UnOp};
use crate::exec::CompiledClass;
use crate::plan::{AgentRef, Axis, Bound, PExpr, PStmt, UpdateTarget};
use brace_core::AgentSchema;
use std::fmt::Write;

fn binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn state_name(schema: &AgentSchema, i: u16) -> String {
    schema.state_defs().get(i as usize).map(|d| d.name.clone()).unwrap_or_else(|| format!("s{i}"))
}

fn effect_name(schema: &AgentSchema, i: u16) -> String {
    schema.effect_defs().get(i as usize).map(|d| d.name.clone()).unwrap_or_else(|| format!("e{i}"))
}

/// Render one expression.
pub fn expr(schema: &AgentSchema, e: &PExpr) -> String {
    match e {
        PExpr::Const(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{}", *v as i64)
            } else {
                format!("{v}")
            }
        }
        PExpr::SelfPos(Axis::X) => "self.x".into(),
        PExpr::SelfPos(Axis::Y) => "self.y".into(),
        PExpr::OtherPos(Axis::X) => "p.x".into(),
        PExpr::OtherPos(Axis::Y) => "p.y".into(),
        PExpr::SelfState(i) => format!("self.{}", state_name(schema, *i)),
        PExpr::OtherState(i) => format!("p.{}", state_name(schema, *i)),
        PExpr::SelfEffect(i) => format!("self.{}", effect_name(schema, *i)),
        PExpr::Local(i) => format!("t{i}"),
        PExpr::AgentEq { left, right, negate } => {
            let r = |a: &AgentRef| match a {
                AgentRef::This => "self",
                AgentRef::Other => "p",
            };
            format!("({} {} {})", r(left), if *negate { "!=" } else { "==" }, r(right))
        }
        PExpr::Unary(UnOp::Neg, inner) => format!("-{}", expr(schema, inner)),
        PExpr::Unary(UnOp::Not, inner) => format!("!{}", expr(schema, inner)),
        PExpr::Binary(op, a, b) => {
            format!("({} {} {})", expr(schema, a), binop(*op), expr(schema, b))
        }
        PExpr::Call(b, args) => {
            let args: Vec<String> = args.iter().map(|a| expr(schema, a)).collect();
            format!("{}({})", format!("{b:?}").to_lowercase(), args.join(", "))
        }
        PExpr::Rand => "rand()".into(),
    }
}

fn stmts(schema: &AgentSchema, list: &[PStmt], indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    for s in list {
        match s {
            PStmt::Let { slot, value } => {
                let _ = writeln!(out, "{pad}let t{slot} = {}", expr(schema, value));
            }
            PStmt::LocalEffect { field, value } => {
                let _ = writeln!(out, "{pad}{} ⊕= {}", effect_name(schema, *field), expr(schema, value));
            }
            PStmt::RemoteEffect { field, value } => {
                let _ = writeln!(out, "{pad}p.{} ⊕= {}", effect_name(schema, *field), expr(schema, value));
            }
            PStmt::If { cond, then_, else_ } => {
                let _ = writeln!(out, "{pad}if {} {{", expr(schema, cond));
                stmts(schema, then_, indent + 1, out);
                if !else_.is_empty() {
                    let _ = writeln!(out, "{pad}}} else {{");
                    stmts(schema, else_, indent + 1, out);
                }
                let _ = writeln!(out, "{pad}}}");
            }
            PStmt::Foreach { body } => {
                let _ = writeln!(out, "{pad}foreach p ∈ Extent {{");
                stmts(schema, body, indent + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
        }
    }
}

/// Render a whole compiled class: query plan and update rules.
pub fn class(c: &CompiledClass) -> String {
    let schema = c.schema();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "class {} (visibility {}, reachability {}, {} effects){}",
        schema.name(),
        schema.visibility(),
        schema.reachability(),
        schema.num_effects(),
        if schema.has_nonlocal_effects() { " [NON-LOCAL]" } else { "" }
    );
    let _ = writeln!(out, "query {{");
    stmts(schema, &c.query.stmts, 1, &mut out);
    let _ = writeln!(out, "}}");
    for rule in &c.updates {
        let target = match rule.target {
            UpdateTarget::PosX => "x".to_string(),
            UpdateTarget::PosY => "y".to_string(),
            UpdateTarget::State(i) => state_name(schema, i),
        };
        let _ = writeln!(out, "update {target} := {}", expr(schema, &rule.expr));
    }
    if let Some(b) = &c.probe_bounds {
        let side = |bounds: &[Bound]| -> String {
            bounds
                .iter()
                .map(|b| match b {
                    Bound::Rel(d) if *d == 0.0 => "self".to_string(),
                    Bound::Rel(d) if *d > 0.0 => format!("self+{d}"),
                    Bound::Rel(d) => format!("self{d}"),
                    Bound::Abs(v) => format!("{v}"),
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut parts = Vec::new();
        for (name, bounds) in [("x ≥", &b.x_lo), ("x ≤", &b.x_hi), ("y ≥", &b.y_lo), ("y ≤", &b.y_hi)] {
            if !bounds.is_empty() {
                parts.push(format!("{name} {}", side(bounds)));
            }
        }
        let _ = writeln!(out, "probe-bounds: {}", parts.join("; "));
    }
    if let Some(lane) = &c.lane {
        let _ = writeln!(
            out,
            "lane-kernel: {} instrs, {} gathered column(s), {} prelude splat(s), cost {}",
            lane.instrs.len(),
            lane.gather_slots.len(),
            lane.prelude_slots.len(),
            lane.cost
        );
    }
    out
}

/// Render a pipeline report: rounds and per-pass rewrite counts.
pub fn report(r: &crate::optimize::PipelineReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "pipeline: {} round(s) to fixpoint", r.rounds);
    for p in &r.passes {
        let _ = writeln!(out, "  {:<12} {} rewrite(s)", p.name, p.rewrites);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::exec::compile;
    use crate::parser::parse;

    fn compile_src(src: &str) -> CompiledClass {
        let prog = parse(src).unwrap();
        compile(&analyze(&prog.classes[0]).unwrap()).unwrap()
    }

    const SRC: &str = r#"
        class Fish {
            public state float x : x + vx #range[-1, 1];
            public state float vx : vx * 0.5;
            private effect float avoid : sum;
            public void run() {
                const float one = 1;
                foreach (Fish p : Extent<Fish>) {
                    if (p == this) { } else { p.avoid <- one / abs(x - p.x); }
                }
            }
        }
    "#;

    #[test]
    fn renders_all_constructs() {
        let rendered = class(&compile_src(SRC));
        assert!(rendered.contains("class Fish"), "{rendered}");
        assert!(rendered.contains("[NON-LOCAL]"));
        assert!(rendered.contains("foreach p ∈ Extent {"));
        assert!(rendered.contains("let t0 = 1"));
        assert!(rendered.contains("p.avoid ⊕= (t0 / abs((self.x - p.x)))"));
        assert!(rendered.contains("(p == self)"));
        assert!(rendered.contains("update x := (self.x + self.vx)"));
        assert!(rendered.contains("update vx := (self.vx * 0.5)"));
    }

    #[test]
    fn inversion_is_visible_in_rendering() {
        let class_nl = compile_src(SRC);
        let inverted = crate::optimize::invert_effects(class_nl).unwrap();
        let rendered = class(&inverted);
        assert!(!rendered.contains("[NON-LOCAL]"));
        // The inverted assignment reads the *other* agent's x first.
        assert!(rendered.contains("avoid ⊕= "), "{rendered}");
        assert!(rendered.contains("(p.x - self.x)"), "{rendered}");
    }
}
