//! Abstract syntax of BRASIL.
//!
//! The shapes here mirror the surface grammar closely; resolution (field
//! ids, local slots, state/effect classification) happens in
//! [`analyze`](mod@crate::analyze).

use serde::{Deserialize, Serialize};

/// A whole source file: one or more agent classes.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub classes: Vec<ClassDecl>,
}

/// `class Name { members }`
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    pub name: String,
    pub fields: Vec<FieldDecl>,
    /// The query phase. Exactly one `run()` per class.
    pub run: Block,
}

/// Field visibility — parsed and kept for fidelity; access control is not
/// enforced across classes (single-class execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Visibility {
    Public,
    Private,
}

/// Declared field type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeName {
    Float,
    Int,
    Bool,
    /// A reference to another agent class (restricted subset; see analyze).
    Agent(String),
}

/// `public state float x : expr #range[lo, hi];` or
/// `private effect float e : sum;`
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    pub visibility: Visibility,
    pub name: String,
    pub ty: TypeName,
    pub kind: FieldKind,
    pub line: u32,
}

/// What a field is, per the state-effect pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldKind {
    /// State: optional update rule and optional `#range` constraint
    /// (visibility + reachability for spatial fields).
    State { update: Option<Expr>, range: Option<(Expr, Expr)> },
    /// Effect: the combinator's name (resolved in analysis).
    Effect { combinator: String },
}

/// A `{ ... }` statement list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// Statements allowed in `run()`.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `const float name = expr;`
    Const { name: String, ty: TypeName, value: Expr, line: u32 },
    /// `field <- expr;` (local) or `target.field <- expr;` (non-local).
    EffectAssign { target: Option<Expr>, field: String, value: Expr, line: u32 },
    /// `if (cond) { .. } else { .. }`
    If { cond: Expr, then_: Block, else_: Option<Block>, line: u32 },
    /// `foreach (Class var : Extent<Class>) { .. }`
    Foreach { class: String, var: String, extent: String, body: Block, line: u32 },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    Neg,
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Number(f64),
    Bool(bool),
    /// Bare identifier: a field of `this` or a local `const`.
    Ident(String),
    /// `this` (only meaningful in comparisons / as assignment target).
    This,
    /// `base.field` — field access on an agent-valued expression.
    Field(Box<Expr>, String),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Built-in function call `name(args)`.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Convenience for tests and rewrites.
    pub fn num(v: f64) -> Expr {
        Expr::Number(v)
    }

    /// Walk the expression tree, visiting every node.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Field(base, _) => base.visit(f),
            Expr::Unary(_, e) => e.visit(f),
            Expr::Binary(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_covers_all_nodes() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Unary(UnOp::Neg, Box::new(Expr::Ident("x".into())))),
            Box::new(Expr::Call("abs".into(), vec![Expr::Field(Box::new(Expr::Ident("p".into())), "y".into())])),
        );
        let mut count = 0;
        e.visit(&mut |_| count += 1);
        // Binary, Unary, Ident(x), Call, Field, Ident(p).
        assert_eq!(count, 6);
    }
}
