//! Coordinated checkpoints.
//!
//! "We employ epoch synchronization with the master to trigger coordinated
//! checkpoints of the main memory of the workers. As the master determines a
//! pre-defined tick boundary for checkpointing, the workers can write their
//! checkpoints independently without global synchronization" (§3.3). Because
//! every tick is deterministic given the checkpointed state, recovery is
//! re-execution of all epochs since the last checkpoint — the store keeps
//! the master's command log for exactly that replay.

use crate::runtime::EpochCommand;
use brace_common::{BraceError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::VecDeque;
use std::path::PathBuf;

/// A complete, consistent cluster state at an epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterCheckpoint {
    /// Epoch after which the snapshot was taken.
    pub epoch: u64,
    /// Global tick at the snapshot.
    pub tick: u64,
    /// Column boundaries in force at the snapshot.
    pub x_bounds: Vec<f64>,
    /// Histogram range in force (so replayed commands match originals).
    pub hist_range: (f64, f64),
    /// One serialized `WorkerSnapshot` per worker, by worker index.
    pub workers: Vec<Bytes>,
}

impl ClusterCheckpoint {
    /// Serialize to a single buffer (for the on-disk option).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u64_le(self.epoch);
        buf.put_u64_le(self.tick);
        buf.put_u32_le(self.x_bounds.len() as u32);
        for &b in &self.x_bounds {
            buf.put_f64_le(b);
        }
        buf.put_f64_le(self.hist_range.0);
        buf.put_f64_le(self.hist_range.1);
        buf.put_u32_le(self.workers.len() as u32);
        for w in &self.workers {
            buf.put_u64_le(w.len() as u64);
            buf.extend_from_slice(w);
        }
        buf.freeze()
    }

    /// Inverse of [`ClusterCheckpoint::encode`].
    pub fn decode(mut bytes: Bytes) -> Result<Self> {
        let need = |b: &Bytes, n: usize| -> Result<()> {
            if b.remaining() < n {
                Err(BraceError::Checkpoint("truncated checkpoint".into()))
            } else {
                Ok(())
            }
        };
        need(&bytes, 16)?;
        let epoch = bytes.get_u64_le();
        let tick = bytes.get_u64_le();
        need(&bytes, 4)?;
        let nb = bytes.get_u32_le() as usize;
        need(&bytes, nb * 8 + 16 + 4)?;
        let x_bounds = (0..nb).map(|_| bytes.get_f64_le()).collect();
        let hist_range = (bytes.get_f64_le(), bytes.get_f64_le());
        let nw = bytes.get_u32_le() as usize;
        let mut workers = Vec::with_capacity(nw);
        for _ in 0..nw {
            need(&bytes, 8)?;
            let len = bytes.get_u64_le() as usize;
            need(&bytes, len)?;
            workers.push(bytes.copy_to_bytes(len));
        }
        Ok(ClusterCheckpoint { epoch, tick, x_bounds, hist_range, workers })
    }
}

/// Ring buffer of recent checkpoints plus the command log needed to replay
/// past any kept one. Optionally mirrors checkpoints to disk.
#[derive(Debug)]
pub struct CheckpointStore {
    keep: usize,
    checkpoints: VecDeque<ClusterCheckpoint>,
    /// Every live command executed, trimmed below the oldest kept
    /// checkpoint. `cp.epoch` counts *completed* epochs, so resuming from a
    /// checkpoint means replaying commands with `cmd.epoch >= cp.epoch`.
    log: Vec<EpochCommand>,
    dir: Option<PathBuf>,
}

impl CheckpointStore {
    /// Keep the `keep` most recent checkpoints in memory (≥ 1).
    pub fn new(keep: usize) -> Self {
        CheckpointStore { keep: keep.max(1), checkpoints: VecDeque::new(), log: Vec::new(), dir: None }
    }

    /// Also write each checkpoint to `dir` as `checkpoint-<epoch>.brace`.
    pub fn with_dir(mut self, dir: PathBuf) -> Self {
        self.dir = Some(dir);
        self
    }

    /// Record a new checkpoint and trim the log below the oldest kept one.
    pub fn push(&mut self, cp: ClusterCheckpoint) -> Result<()> {
        if let Some(dir) = &self.dir {
            std::fs::create_dir_all(dir)
                .and_then(|_| std::fs::write(dir.join(format!("checkpoint-{}.brace", cp.epoch)), cp.encode()))
                .map_err(|e| BraceError::Checkpoint(format!("writing checkpoint: {e}")))?;
        }
        self.checkpoints.push_back(cp);
        while self.checkpoints.len() > self.keep {
            self.checkpoints.pop_front();
        }
        let floor = self.checkpoints.front().map(|c| c.epoch).unwrap_or(0);
        self.log.retain(|c| c.epoch >= floor);
        Ok(())
    }

    /// Append an executed live command to the replay log.
    pub fn log_command(&mut self, cmd: EpochCommand) {
        self.log.push(cmd);
    }

    /// Most recent checkpoint, if any.
    pub fn latest(&self) -> Option<&ClusterCheckpoint> {
        self.checkpoints.back()
    }

    /// Discard checkpoints taken after `epoch` completed epochs — a failure
    /// during epoch `e` destroys any snapshot written at its end
    /// (`cp.epoch == e + 1`).
    pub fn discard_after(&mut self, epoch: u64) {
        while self.checkpoints.back().is_some_and(|c| c.epoch > epoch) {
            self.checkpoints.pop_back();
        }
    }

    /// Commands to replay when resuming from `epoch` completed epochs.
    pub fn replay_since(&self, epoch: u64) -> Vec<EpochCommand> {
        self.log.iter().filter(|c| c.epoch >= epoch).cloned().collect()
    }

    /// Full retained log (diagnostics).
    pub fn replay_log(&self) -> &[EpochCommand] {
        &self.log
    }

    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Load the newest on-disk checkpoint from `dir` (for cold restart).
    pub fn load_latest_from(dir: &std::path::Path) -> Result<Option<ClusterCheckpoint>> {
        let mut newest: Option<(u64, PathBuf)> = None;
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(_) => return Ok(None),
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name.strip_prefix("checkpoint-").and_then(|s| s.strip_suffix(".brace")) {
                if let Ok(epoch) = num.parse::<u64>() {
                    if newest.as_ref().is_none_or(|(e, _)| epoch > *e) {
                        newest = Some((epoch, entry.path()));
                    }
                }
            }
        }
        match newest {
            None => Ok(None),
            Some((_, path)) => {
                let data = std::fs::read(&path)
                    .map_err(|e| BraceError::Checkpoint(format!("reading {}: {e}", path.display())))?;
                Ok(Some(ClusterCheckpoint::decode(Bytes::from(data))?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(epoch: u64) -> ClusterCheckpoint {
        ClusterCheckpoint {
            epoch,
            tick: epoch * 10,
            x_bounds: vec![0.0, 50.0, 100.0],
            hist_range: (0.0, 100.0),
            workers: vec![Bytes::from_static(b"alpha"), Bytes::from_static(b"beta")],
        }
    }

    fn cmd(epoch: u64) -> EpochCommand {
        EpochCommand { epoch, ticks: 10, new_x_bounds: None, checkpoint: false, hist_range: (0.0, 100.0) }
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = cp(3);
        let d = ClusterCheckpoint::decode(c.encode()).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn decode_rejects_truncation() {
        let c = cp(3).encode();
        let cut = c.slice(0..c.len() - 3);
        assert!(ClusterCheckpoint::decode(cut).is_err());
    }

    #[test]
    fn store_keeps_only_latest_k() {
        let mut s = CheckpointStore::new(2);
        for e in 0..5 {
            s.push(cp(e)).unwrap();
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.latest().unwrap().epoch, 4);
    }

    #[test]
    fn replay_since_selects_commands_at_or_after_checkpoint() {
        let mut s = CheckpointStore::new(1);
        s.push(cp(0)).unwrap();
        s.log_command(cmd(0));
        s.log_command(cmd(1));
        s.log_command(cmd(2));
        let replay = s.replay_since(1);
        assert_eq!(replay.iter().map(|c| c.epoch).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn push_trims_log_below_oldest_checkpoint() {
        let mut s = CheckpointStore::new(1);
        s.push(cp(0)).unwrap();
        s.log_command(cmd(0));
        s.log_command(cmd(1));
        // New checkpoint after epoch 2: keep=1 drops cp(0); log trims to >= 2.
        s.push(cp(2)).unwrap();
        s.log_command(cmd(2));
        assert_eq!(s.replay_log().iter().map(|c| c.epoch).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn discard_after_drops_fault_epoch_snapshot() {
        let mut s = CheckpointStore::new(3);
        s.push(cp(0)).unwrap();
        s.push(cp(2)).unwrap();
        s.push(cp(4)).unwrap();
        // Fault during epoch 3: snapshots with epoch > 3 are lost.
        s.discard_after(3);
        assert_eq!(s.latest().unwrap().epoch, 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("brace-cp-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = CheckpointStore::new(1).with_dir(dir.clone());
        s.push(cp(1)).unwrap();
        s.push(cp(7)).unwrap();
        let loaded = CheckpointStore::load_latest_from(&dir).unwrap().unwrap();
        assert_eq!(loaded.epoch, 7);
        assert_eq!(loaded, cp(7));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_from_missing_dir_is_none() {
        let got = CheckpointStore::load_latest_from(std::path::Path::new("/definitely/not/here")).unwrap();
        assert!(got.is_none());
    }
}
