//! Coordinated checkpoints.
//!
//! "We employ epoch synchronization with the master to trigger coordinated
//! checkpoints of the main memory of the workers. As the master determines a
//! pre-defined tick boundary for checkpointing, the workers can write their
//! checkpoints independently without global synchronization" (§3.3). Because
//! every tick is deterministic given the checkpointed state, recovery is
//! re-execution of all epochs since the last checkpoint — the store keeps
//! the master's command log for exactly that replay.

use crate::manifest::fnv1a;
use crate::runtime::EpochCommand;
use brace_common::{BraceError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

/// Magic tag opening every on-disk checkpoint file ("BRACECP\0").
const FILE_MAGIC: u64 = 0x4252_4143_4543_5000;
/// On-disk checkpoint format version.
const FILE_VERSION: u32 = 1;

/// A complete, consistent cluster state at an epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterCheckpoint {
    /// Epoch after which the snapshot was taken.
    pub epoch: u64,
    /// Global tick at the snapshot.
    pub tick: u64,
    /// Column boundaries in force at the snapshot.
    pub x_bounds: Vec<f64>,
    /// Histogram range in force (so replayed commands match originals).
    pub hist_range: (f64, f64),
    /// One serialized `WorkerSnapshot` per worker, by worker index.
    pub workers: Vec<Bytes>,
}

impl ClusterCheckpoint {
    /// Serialize to a single buffer (for the on-disk option).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u64_le(self.epoch);
        buf.put_u64_le(self.tick);
        buf.put_u32_le(self.x_bounds.len() as u32);
        for &b in &self.x_bounds {
            buf.put_f64_le(b);
        }
        buf.put_f64_le(self.hist_range.0);
        buf.put_f64_le(self.hist_range.1);
        buf.put_u32_le(self.workers.len() as u32);
        for w in &self.workers {
            buf.put_u64_le(w.len() as u64);
            buf.extend_from_slice(w);
        }
        buf.freeze()
    }

    /// Inverse of [`ClusterCheckpoint::encode`].
    pub fn decode(mut bytes: Bytes) -> Result<Self> {
        let need = |b: &Bytes, n: usize| -> Result<()> {
            if b.remaining() < n {
                Err(BraceError::Checkpoint("truncated checkpoint".into()))
            } else {
                Ok(())
            }
        };
        need(&bytes, 16)?;
        let epoch = bytes.get_u64_le();
        let tick = bytes.get_u64_le();
        need(&bytes, 4)?;
        let nb = bytes.get_u32_le() as usize;
        need(&bytes, nb * 8 + 16 + 4)?;
        let x_bounds = (0..nb).map(|_| bytes.get_f64_le()).collect();
        let hist_range = (bytes.get_f64_le(), bytes.get_f64_le());
        let nw = bytes.get_u32_le() as usize;
        let mut workers = Vec::with_capacity(nw);
        for _ in 0..nw {
            need(&bytes, 8)?;
            let len = bytes.get_u64_le() as usize;
            need(&bytes, len)?;
            workers.push(bytes.copy_to_bytes(len));
        }
        Ok(ClusterCheckpoint { epoch, tick, x_bounds, hist_range, workers })
    }
}

/// Ring buffer of recent checkpoints plus the command log needed to replay
/// past any kept one. Optionally mirrors checkpoints to disk.
#[derive(Debug)]
pub struct CheckpointStore {
    keep: usize,
    checkpoints: VecDeque<ClusterCheckpoint>,
    /// Every live command executed, trimmed below the oldest kept
    /// checkpoint. `cp.epoch` counts *completed* epochs, so resuming from a
    /// checkpoint means replaying commands with `cmd.epoch >= cp.epoch`.
    log: Vec<EpochCommand>,
    dir: Option<PathBuf>,
}

impl CheckpointStore {
    /// Keep the `keep` most recent checkpoints in memory (≥ 1).
    pub fn new(keep: usize) -> Self {
        CheckpointStore { keep: keep.max(1), checkpoints: VecDeque::new(), log: Vec::new(), dir: None }
    }

    /// Also write each checkpoint to `dir` as `checkpoint-<epoch>.brace`.
    pub fn with_dir(mut self, dir: PathBuf) -> Self {
        self.dir = Some(dir);
        self
    }

    /// Record a new checkpoint and trim the log below the oldest kept one.
    /// On-disk mirrors are durable (fsynced, checksummed, written via a
    /// temp-file rename) and pruned to the `keep` newest epochs.
    pub fn push(&mut self, cp: ClusterCheckpoint) -> Result<()> {
        if let Some(dir) = &self.dir {
            write_checkpoint_file(dir, &cp)?;
            prune_checkpoint_files(dir, self.keep);
        }
        self.checkpoints.push_back(cp);
        while self.checkpoints.len() > self.keep {
            self.checkpoints.pop_front();
        }
        let floor = self.checkpoints.front().map(|c| c.epoch).unwrap_or(0);
        self.log.retain(|c| c.epoch >= floor);
        Ok(())
    }

    /// Forget all retained checkpoints and the replay log. Used when the
    /// cluster membership changes: replay can never span a membership
    /// boundary, so history before the change is useless.
    pub fn reset(&mut self) {
        self.checkpoints.clear();
        self.log.clear();
    }

    /// Append an executed live command to the replay log.
    pub fn log_command(&mut self, cmd: EpochCommand) {
        self.log.push(cmd);
    }

    /// Most recent checkpoint, if any.
    pub fn latest(&self) -> Option<&ClusterCheckpoint> {
        self.checkpoints.back()
    }

    /// Discard checkpoints taken after `epoch` completed epochs — a failure
    /// during epoch `e` destroys any snapshot written at its end
    /// (`cp.epoch == e + 1`).
    pub fn discard_after(&mut self, epoch: u64) {
        while self.checkpoints.back().is_some_and(|c| c.epoch > epoch) {
            self.checkpoints.pop_back();
        }
    }

    /// Commands to replay when resuming from `epoch` completed epochs.
    pub fn replay_since(&self, epoch: u64) -> Vec<EpochCommand> {
        self.log.iter().filter(|c| c.epoch >= epoch).cloned().collect()
    }

    /// Full retained log (diagnostics).
    pub fn replay_log(&self) -> &[EpochCommand] {
        &self.log
    }

    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// Load the newest *valid* on-disk checkpoint from `dir` (for cold
    /// restart). Files whose checksum does not verify are skipped — a torn
    /// write falls back to the next-newest intact checkpoint rather than
    /// being trusted.
    pub fn load_latest_from(dir: &Path) -> Result<Option<ClusterCheckpoint>> {
        let mut epochs = list_checkpoint_epochs(dir);
        epochs.reverse();
        for epoch in epochs {
            if let Ok(cp) = load_checkpoint_file(dir, epoch) {
                return Ok(Some(cp));
            }
        }
        Ok(None)
    }
}

/// Epochs of all on-disk checkpoint files in `dir`, ascending. Missing or
/// unreadable directories yield an empty list.
pub fn list_checkpoint_epochs(dir: &Path) -> Vec<u64> {
    let mut epochs = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return epochs };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(num) = name.strip_prefix("checkpoint-").and_then(|s| s.strip_suffix(".brace")) {
            if let Ok(epoch) = num.parse::<u64>() {
                epochs.push(epoch);
            }
        }
    }
    epochs.sort_unstable();
    epochs
}

fn checkpoint_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("checkpoint-{epoch}.brace"))
}

/// Durably write `cp` to `dir`: checksummed header, temp file, fsync,
/// atomic rename. A crash mid-write leaves either the old file or a temp
/// file that no loader will ever pick up — never a half-written checkpoint
/// under the real name.
pub fn write_checkpoint_file(dir: &Path, cp: &ClusterCheckpoint) -> Result<()> {
    let io = |e: std::io::Error| BraceError::Checkpoint(format!("writing checkpoint: {e}"));
    std::fs::create_dir_all(dir).map_err(io)?;
    let payload = cp.encode();
    let mut buf = BytesMut::with_capacity(20 + payload.len());
    buf.put_u64_le(FILE_MAGIC);
    buf.put_u32_le(FILE_VERSION);
    buf.put_u64_le(fnv1a(&payload));
    buf.extend_from_slice(&payload);
    let tmp = dir.join(format!(".checkpoint-{}.tmp", cp.epoch));
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp).map_err(io)?;
        f.write_all(&buf).map_err(io)?;
        f.sync_all().map_err(io)?;
    }
    std::fs::rename(&tmp, checkpoint_path(dir, cp.epoch)).map_err(io)?;
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all(); // persist the rename itself
    }
    Ok(())
}

/// Load and *verify* the checkpoint for `epoch` from `dir`. Refuses (with
/// an error, not a guess) any file whose magic, version, or checksum does
/// not match.
pub fn load_checkpoint_file(dir: &Path, epoch: u64) -> Result<ClusterCheckpoint> {
    let path = checkpoint_path(dir, epoch);
    let data = std::fs::read(&path).map_err(|e| BraceError::Checkpoint(format!("reading {}: {e}", path.display())))?;
    let mut bytes = Bytes::from(data);
    if bytes.remaining() < 20 {
        return Err(BraceError::Checkpoint(format!("{}: truncated header", path.display())));
    }
    if bytes.get_u64_le() != FILE_MAGIC {
        return Err(BraceError::Checkpoint(format!("{}: not a checkpoint file", path.display())));
    }
    let version = bytes.get_u32_le();
    if version != FILE_VERSION {
        return Err(BraceError::Checkpoint(format!("{}: unsupported version {version}", path.display())));
    }
    let sum = bytes.get_u64_le();
    if fnv1a(&bytes) != sum {
        return Err(BraceError::Checkpoint(format!("{}: checksum mismatch (torn write?)", path.display())));
    }
    ClusterCheckpoint::decode(bytes)
}

/// Remove all but the `keep` newest checkpoint files in `dir`. Best-effort:
/// retention pruning never fails the checkpoint that triggered it.
pub fn prune_checkpoint_files(dir: &Path, keep: usize) {
    let epochs = list_checkpoint_epochs(dir);
    if epochs.len() <= keep {
        return;
    }
    for &epoch in &epochs[..epochs.len() - keep] {
        let _ = std::fs::remove_file(checkpoint_path(dir, epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(epoch: u64) -> ClusterCheckpoint {
        ClusterCheckpoint {
            epoch,
            tick: epoch * 10,
            x_bounds: vec![0.0, 50.0, 100.0],
            hist_range: (0.0, 100.0),
            workers: vec![Bytes::from_static(b"alpha"), Bytes::from_static(b"beta")],
        }
    }

    fn cmd(epoch: u64) -> EpochCommand {
        EpochCommand { epoch, ticks: 10, new_x_bounds: None, checkpoint: false, hist_range: (0.0, 100.0) }
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = cp(3);
        let d = ClusterCheckpoint::decode(c.encode()).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn decode_rejects_truncation() {
        let c = cp(3).encode();
        let cut = c.slice(0..c.len() - 3);
        assert!(ClusterCheckpoint::decode(cut).is_err());
    }

    #[test]
    fn store_keeps_only_latest_k() {
        let mut s = CheckpointStore::new(2);
        for e in 0..5 {
            s.push(cp(e)).unwrap();
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.latest().unwrap().epoch, 4);
    }

    #[test]
    fn replay_since_selects_commands_at_or_after_checkpoint() {
        let mut s = CheckpointStore::new(1);
        s.push(cp(0)).unwrap();
        s.log_command(cmd(0));
        s.log_command(cmd(1));
        s.log_command(cmd(2));
        let replay = s.replay_since(1);
        assert_eq!(replay.iter().map(|c| c.epoch).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn push_trims_log_below_oldest_checkpoint() {
        let mut s = CheckpointStore::new(1);
        s.push(cp(0)).unwrap();
        s.log_command(cmd(0));
        s.log_command(cmd(1));
        // New checkpoint after epoch 2: keep=1 drops cp(0); log trims to >= 2.
        s.push(cp(2)).unwrap();
        s.log_command(cmd(2));
        assert_eq!(s.replay_log().iter().map(|c| c.epoch).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn discard_after_drops_fault_epoch_snapshot() {
        let mut s = CheckpointStore::new(3);
        s.push(cp(0)).unwrap();
        s.push(cp(2)).unwrap();
        s.push(cp(4)).unwrap();
        // Fault during epoch 3: snapshots with epoch > 3 are lost.
        s.discard_after(3);
        assert_eq!(s.latest().unwrap().epoch, 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join(format!("brace-cp-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = CheckpointStore::new(1).with_dir(dir.clone());
        s.push(cp(1)).unwrap();
        s.push(cp(7)).unwrap();
        let loaded = CheckpointStore::load_latest_from(&dir).unwrap().unwrap();
        assert_eq!(loaded.epoch, 7);
        assert_eq!(loaded, cp(7));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_from_missing_dir_is_none() {
        let got = CheckpointStore::load_latest_from(std::path::Path::new("/definitely/not/here")).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn push_prunes_disk_files_to_keep() {
        let dir = std::env::temp_dir().join(format!("brace-cp-prune-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = CheckpointStore::new(2).with_dir(dir.clone());
        for e in 0..5 {
            s.push(cp(e)).unwrap();
        }
        assert_eq!(list_checkpoint_epochs(&dir), vec![3, 4]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checkpoint_is_refused_and_latest_falls_back() {
        let dir = std::env::temp_dir().join(format!("brace-cp-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_checkpoint_file(&dir, &cp(1)).unwrap();
        write_checkpoint_file(&dir, &cp(2)).unwrap();
        // Flip a payload byte in the newest file: a torn write must be
        // detected, not trusted.
        let path = dir.join("checkpoint-2.brace");
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xff;
        std::fs::write(&path, data).unwrap();
        assert!(load_checkpoint_file(&dir, 2).is_err());
        let latest = CheckpointStore::load_latest_from(&dir).unwrap().unwrap();
        assert_eq!(latest, cp(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_clears_checkpoints_and_log() {
        let mut s = CheckpointStore::new(3);
        s.push(cp(0)).unwrap();
        s.log_command(cmd(0));
        s.reset();
        assert!(s.is_empty());
        assert!(s.replay_log().is_empty());
    }
}
