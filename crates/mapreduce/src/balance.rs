//! The one-dimensional load balancer.
//!
//! "A one-dimensional load balancer periodically receives statistics from
//! the slave nodes, including computational load and number of owned agents;
//! from these it heuristically computes a new partition trying to balance
//! improved performance against estimated migration cost" (§5.1).
//!
//! Implementation: workers histogram their owned agents' x-positions over a
//! master-provided range; the master merges the histograms into an empirical
//! distribution and, when imbalance warrants it, places the new column
//! boundaries at the distribution's quantiles so every worker owns an
//! approximately equal share. The decision rule weighs the *benefit* (excess
//! load on the most loaded worker, which bounds the possible speed-up of one
//! epoch) against the *cost* (agents that would change owner, each paying
//! one serialize/ship/deserialize).

use serde::{Deserialize, Serialize};

/// Load balancer configuration. Defaults are tuned so that the fish-school
/// workload (Figures 7/8) rebalances promptly without thrashing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadBalancer {
    /// Rebalance only when `max_load / mean_load` exceeds this.
    pub imbalance_threshold: f64,
    /// Estimated per-agent migration cost, measured in units of one agent's
    /// per-tick compute cost. With epoch length `E`, moving an agent is
    /// worth it if it relieves at least `migration_cost_ticks / E` ticks of
    /// imbalance.
    pub migration_cost_ticks: f64,
    /// Ticks per epoch (the horizon over which a better partitioning pays
    /// off before the next decision point).
    pub epoch_len: u64,
}

impl Default for LoadBalancer {
    fn default() -> Self {
        LoadBalancer { imbalance_threshold: 1.2, migration_cost_ticks: 4.0, epoch_len: 10 }
    }
}

/// Outcome of one balancing decision.
#[derive(Debug, Clone, PartialEq)]
pub enum BalanceDecision {
    /// Current partitioning stays.
    Keep,
    /// Install these column boundaries at the next epoch boundary.
    Repartition { x_bounds: Vec<f64>, predicted_moves: u64, imbalance: f64 },
}

impl LoadBalancer {
    /// Decide from per-worker owned-agent counts and the merged x-position
    /// histogram. `hist_range` is the interval the histogram covers;
    /// `current_bounds` are the active column boundaries (`workers + 1`).
    pub fn decide(
        &self,
        current_bounds: &[f64],
        counts: &[u64],
        hist: &[u64],
        hist_range: (f64, f64),
    ) -> BalanceDecision {
        let workers = counts.len();
        debug_assert_eq!(current_bounds.len(), workers + 1);
        let total: u64 = counts.iter().sum();
        if workers < 2 || total == 0 {
            return BalanceDecision::Keep;
        }
        let mean = total as f64 / workers as f64;
        let max = *counts.iter().max().unwrap() as f64;
        let imbalance = max / mean;
        if imbalance <= self.imbalance_threshold {
            return BalanceDecision::Keep;
        }

        let new_bounds = quantile_bounds(hist, hist_range, workers, current_bounds);
        // A repartitioning that barely moves any boundary is a no-op; skip
        // the broadcast and the partitioning switch.
        let span = (current_bounds[workers] - current_bounds[0]).abs().max(1e-9);
        let max_shift = current_bounds.iter().zip(&new_bounds).map(|(o, n)| (o - n).abs()).fold(0.0f64, f64::max);
        if max_shift < span * 1e-6 {
            return BalanceDecision::Keep;
        }
        let predicted_moves = predicted_moves(hist, hist_range, current_bounds, &new_bounds);

        // Benefit: the most loaded worker sheds (max - mean) agents for
        // epoch_len ticks. Cost: each moved agent pays a fixed migration
        // charge. Keep the partitioning when moving wouldn't pay off.
        let benefit = (max - mean) * self.epoch_len as f64;
        let cost = predicted_moves as f64 * self.migration_cost_ticks;
        if benefit <= cost {
            return BalanceDecision::Keep;
        }
        BalanceDecision::Repartition { x_bounds: new_bounds, predicted_moves, imbalance }
    }
}

/// Place `workers - 1` interior boundaries at the quantiles of the
/// histogram (linear interpolation inside bins), keeping the outer
/// boundaries from `current_bounds`. Boundaries are forced strictly
/// increasing.
pub fn quantile_bounds(hist: &[u64], hist_range: (f64, f64), workers: usize, current_bounds: &[f64]) -> Vec<f64> {
    let total: u64 = hist.iter().sum();
    let (lo, hi) = hist_range;
    let bin_w = (hi - lo) / hist.len() as f64;
    let mut bounds = Vec::with_capacity(workers + 1);
    bounds.push(current_bounds[0]);
    let mut cum = 0u64;
    let mut bin = 0usize;
    for k in 1..workers {
        let target = (total as f64 * k as f64 / workers as f64).ceil() as u64;
        while bin < hist.len() && cum + hist[bin] < target {
            cum += hist[bin];
            bin += 1;
        }
        let x = if bin >= hist.len() {
            hi
        } else {
            // Interpolate inside the bin.
            let into = (target - cum) as f64 / hist[bin].max(1) as f64;
            lo + (bin as f64 + into) * bin_w
        };
        bounds.push(x);
    }
    bounds.push(*current_bounds.last().unwrap());
    // Enforce strict monotonicity (degenerate histograms can collapse
    // quantiles onto one x); nudge forward by a hair of the span.
    let span = (bounds[workers] - bounds[0]).abs().max(1e-9);
    let eps = span * 1e-9;
    for i in 1..bounds.len() {
        if bounds[i] <= bounds[i - 1] {
            bounds[i] = bounds[i - 1] + eps;
        }
    }
    bounds
}

/// Estimate how many agents change owner between two boundary vectors, by
/// integrating the histogram between each old/new boundary pair.
pub fn predicted_moves(hist: &[u64], hist_range: (f64, f64), old_bounds: &[f64], new_bounds: &[f64]) -> u64 {
    let (lo, hi) = hist_range;
    let bin_w = (hi - lo) / hist.len() as f64;
    // Cumulative count strictly left of x.
    let cum_at = |x: f64| -> f64 {
        if x <= lo {
            return 0.0;
        }
        if x >= hi {
            return hist.iter().sum::<u64>() as f64;
        }
        let pos = (x - lo) / bin_w;
        let full = pos.floor() as usize;
        let frac = pos - full as f64;
        let mut c: f64 = hist[..full].iter().sum::<u64>() as f64;
        if full < hist.len() {
            c += hist[full] as f64 * frac;
        }
        c
    };
    let mut moves = 0.0;
    for (o, n) in old_bounds.iter().zip(new_bounds).skip(1).take(old_bounds.len().saturating_sub(2)) {
        moves += (cum_at(*o) - cum_at(*n)).abs();
    }
    moves.round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_load_keeps_partitioning() {
        let lb = LoadBalancer::default();
        let bounds = [0.0, 50.0, 100.0];
        let hist = vec![10, 10, 10, 10];
        let d = lb.decide(&bounds, &[20, 20], &hist, (0.0, 100.0));
        assert_eq!(d, BalanceDecision::Keep);
    }

    #[test]
    fn skewed_load_repartitions_toward_quantiles() {
        let lb = LoadBalancer { imbalance_threshold: 1.2, migration_cost_ticks: 1.0, epoch_len: 10 };
        let bounds = [0.0, 50.0, 100.0];
        // All mass in [0, 25): worker 0 owns everything.
        let mut hist = vec![0u64; 8];
        hist[0] = 500;
        hist[1] = 500;
        let d = lb.decide(&bounds, &[1000, 0], &hist, (0.0, 100.0));
        match d {
            BalanceDecision::Repartition { x_bounds, imbalance, .. } => {
                assert!(imbalance > 1.9);
                assert_eq!(x_bounds.len(), 3);
                // Median of the mass is at 12.5; boundary should land there.
                assert!((x_bounds[1] - 12.5).abs() < 1.0, "boundary at {}", x_bounds[1]);
                assert!(x_bounds.windows(2).all(|w| w[0] < w[1]));
            }
            BalanceDecision::Keep => panic!("should repartition"),
        }
    }

    #[test]
    fn migration_cost_vetoes_marginal_gains() {
        // Mild imbalance whose fix would move agents, but migration is
        // priced prohibitively -> Keep. (Median of this histogram is at 45,
        // so the boundary would shift 50 -> 45, moving ~5 agents.)
        let lb = LoadBalancer { imbalance_threshold: 1.05, migration_cost_ticks: 1e9, epoch_len: 1 };
        let bounds = [0.0, 50.0, 100.0];
        let hist = vec![30, 25, 25, 20];
        let d = lb.decide(&bounds, &[55, 45], &hist, (0.0, 100.0));
        assert_eq!(d, BalanceDecision::Keep);
        // Same situation with cheap migration -> Repartition.
        let cheap = LoadBalancer { imbalance_threshold: 1.05, migration_cost_ticks: 0.1, epoch_len: 10 };
        assert!(matches!(cheap.decide(&bounds, &[55, 45], &hist, (0.0, 100.0)), BalanceDecision::Repartition { .. }));
    }

    #[test]
    fn quantile_bounds_split_uniform_mass_evenly() {
        let hist = vec![25u64; 4];
        let b = quantile_bounds(&hist, (0.0, 100.0), 4, &[0.0, 1.0, 2.0, 3.0, 100.0]);
        assert_eq!(b.len(), 5);
        assert_eq!(b[0], 0.0);
        assert_eq!(b[4], 100.0);
        for (i, x) in b.iter().enumerate().take(4).skip(1) {
            assert!((x - 25.0 * i as f64).abs() < 1.5, "bound {i} at {x}");
        }
    }

    #[test]
    fn quantile_bounds_always_strictly_increasing() {
        // Pathological: all mass in one bin.
        let mut hist = vec![0u64; 16];
        hist[7] = 1000;
        let b = quantile_bounds(&hist, (0.0, 16.0), 8, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 16.0]);
        assert!(b.windows(2).all(|w| w[0] < w[1]), "{b:?}");
    }

    #[test]
    fn predicted_moves_zero_when_bounds_unchanged() {
        let hist = vec![10u64; 10];
        let b = [0.0, 50.0, 100.0];
        assert_eq!(predicted_moves(&hist, (0.0, 100.0), &b, &b), 0);
    }

    #[test]
    fn predicted_moves_counts_mass_between_boundaries() {
        let hist = vec![10u64; 10]; // 1 agent per unit over [0, 100) at density 0.1/unit... 10 per 10-wide bin
        let old = [0.0, 50.0, 100.0];
        let new = [0.0, 70.0, 100.0];
        // Mass between 50 and 70 = 20 agents moves from worker 1 to 0.
        assert_eq!(predicted_moves(&hist, (0.0, 100.0), &old, &new), 20);
    }

    #[test]
    fn single_worker_never_repartitions() {
        let lb = LoadBalancer::default();
        let d = lb.decide(&[0.0, 100.0], &[100], &[100], (0.0, 100.0));
        assert_eq!(d, BalanceDecision::Keep);
    }

    #[test]
    fn empty_world_keeps() {
        let lb = LoadBalancer::default();
        let d = lb.decide(&[0.0, 50.0, 100.0], &[0, 0], &[0, 0], (0.0, 100.0));
        assert_eq!(d, BalanceDecision::Keep);
    }
}
