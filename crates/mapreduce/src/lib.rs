//! # brace-mapreduce — the BRACE main-memory MapReduce runtime
//!
//! The paper builds "a new main memory MapReduce runtime" rather than using
//! Hadoop, because behavioral simulations need millions of *short* iterations
//! with almost no I/O. This crate is that runtime, as a simulated
//! shared-nothing cluster: every worker "node" is an OS thread that owns its
//! agents exclusively and communicates with peers and the master **only**
//! through serialized byte messages over channels. Nothing else is shared —
//! the cut from channels to sockets/MPI is confined to the transport inside
//! [`worker`]/[`master`].
//!
//! Layout:
//!
//! * [`generic`] — a small, general iterated MapReduce engine (`map`,
//!   `reduce` as functions over key-value pairs, parallel workers, iteration
//!   driver). BRACE's runtime is the spatial specialization of this model;
//!   the generic engine exists to keep that claim honest (its tests run
//!   word-count and an iterated computation).
//! * [`codec`] — the wire format: agents, effect rows and worker snapshots
//!   encoded to [`bytes::Bytes`].
//! * [`net`] — the network ledger: every cross-worker message is counted
//!   (messages, payload bytes) exactly where a real transport would sit.
//! * [`runtime`] — worker protocol types and the per-tick map–reduce–reduce
//!   schedule of Table 1.
//! * [`worker`] — the worker node: distribute (map), query/local effects
//!   (reduce 1), effect aggregation (reduce 2), update — with collocation of
//!   all tasks for a partition on its node.
//! * [`master`] — epoch-granularity coordination: statistics, load
//!   balancing decisions, coordinated checkpoints, failure recovery by
//!   replay.
//! * [`balance`] — the one-dimensional load balancer.
//! * [`checkpoint`] — coordinated checkpoint store.
//! * [`cluster`] — [`ClusterSim`], the user-facing
//!   facade mirroring `brace_core::Simulation` over many workers.

pub mod balance;
pub mod checkpoint;
pub mod cluster;
pub mod codec;
pub mod generic;
pub mod master;
pub mod net;
pub mod runtime;
pub mod worker;

pub use balance::{BalanceDecision, LoadBalancer};
pub use checkpoint::{CheckpointStore, ClusterCheckpoint};
pub use cluster::{ClusterConfig, ClusterSim, FaultPlan};
pub use master::ClusterStats;
pub use net::{NetLedger, NetStats};
