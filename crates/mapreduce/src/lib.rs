//! # brace-mapreduce — the BRACE main-memory MapReduce runtime
//!
//! The paper builds "a new main memory MapReduce runtime" rather than using
//! Hadoop, because behavioral simulations need millions of *short* iterations
//! with almost no I/O. This crate is that runtime, as a simulated
//! shared-nothing cluster: every worker "node" is an OS thread that owns its
//! agents exclusively and communicates with peers and the master **only**
//! through serialized byte messages over channels. Nothing else is shared —
//! the cut from channels to sockets/MPI is confined to the transport inside
//! [`worker`]/[`master`].
//!
//! # Pool-resident state, delta distribution
//!
//! "Main memory" is not just where the bytes live — it is a protocol
//! property. A disk-era runtime re-materializes and re-distributes its
//! whole working set every iteration; this runtime keeps each worker's
//! state **resident across ticks**. A worker's columnar
//! [`AgentPool`](brace_core::AgentPool) persists: owned rows mutate only
//! through stable-row ops (swap-removal + insertion, with a persistent
//! id ↔ row map), replicas live in a persistent tail refreshed in place,
//! and the spatial index syncs incrementally because the row ↔ agent
//! mapping survives the tick. On the wire, only *changes* travel: agents
//! entering a peer's visible band ship once as full records
//! ([`net::Traffic::ReplicaFull`]), persisting replicas ship masked
//! columnar delta frames — changed fields only, zero bytes when nothing
//! changed ([`net::Traffic::ReplicaDelta`]) — and leavers ship slot
//! removals. A stationary boundary population therefore costs *nothing*
//! per steady-state tick, and a moving one costs the bytes it actually
//! changes.
//!
//! **The `Vec<Agent>` boundary** now lives exactly at the real
//! serialization surfaces and nowhere else: coordinated checkpoint /
//! collect snapshots, restore-time pool rebuilds, the initial population
//! hand-off, and decoded full-record payloads (transfers, band entrants).
//! No tick materializes an owned population as row records —
//! `WorkerEpochStats::{pool_rebuilds, vec_roundtrips}` count the
//! violations and tests pin them to zero.
//!
//! Results are unchanged by any of this: for range-probe models an
//! N-worker cluster is bit-identical to the single-node executor (the
//! executor canonicalizes neighbor order by agent id, so row placement is
//! unobservable), proven by the `distributed_equivalence` proptests and
//! the golden cluster checksums in `tests/golden_tick.rs`. The one
//! documented exception is `NeighborProbe::Nearest`: exact distance ties
//! at the k-th neighbor break by pool row, so k-NN models keep an
//! approximate (tolerance-checked) distributed contract.
//!
//! Layout:
//!
//! * [`generic`] — a small, general iterated MapReduce engine (`map`,
//!   `reduce` as functions over key-value pairs, parallel workers, iteration
//!   driver). BRACE's runtime is the spatial specialization of this model;
//!   the generic engine exists to keep that claim honest (its tests run
//!   word-count and an iterated computation).
//! * [`codec`] — the wire format: agents (from records or straight from
//!   pool columns), replica delta frames, effect rows and worker snapshots
//!   encoded to [`bytes::Bytes`].
//! * [`net`] — the network ledger: every cross-worker payload is counted
//!   (messages, bytes) per traffic class — transfers, full replicas,
//!   replica deltas, effects, control — exactly where a real transport
//!   would sit.
//! * [`runtime`] — worker protocol types and the per-tick map–reduce–reduce
//!   schedule of Table 1.
//! * [`worker`] — the pool-resident worker node: distribute as a column
//!   scan (map), query/local effects (reduce 1), effect aggregation
//!   (reduce 2), update over the owned prefix — with collocation of all
//!   tasks for a partition on its node and per-destination replica
//!   sessions driving the delta protocol.
//! * [`master`] — epoch-granularity coordination: statistics, load
//!   balancing decisions, coordinated checkpoints, failure recovery by
//!   replay.
//! * [`balance`] — the one-dimensional load balancer.
//! * [`checkpoint`] — coordinated checkpoint store (checksummed, fsynced
//!   on-disk mirrors with retention pruning).
//! * [`manifest`] — crash-safe run manifests: the append-only write-ahead
//!   job log that makes `--resume` across a process restart possible.
//! * [`cluster`] — [`ClusterSim`], the user-facing
//!   facade mirroring `brace_core::Simulation` over many workers.

pub mod balance;
pub mod checkpoint;
pub mod cluster;
pub mod codec;
pub mod generic;
pub mod manifest;
pub mod master;
pub mod net;
pub mod runtime;
pub mod worker;

pub use balance::{BalanceDecision, LoadBalancer};
pub use checkpoint::{CheckpointStore, ClusterCheckpoint};
pub use cluster::{ClusterConfig, ClusterSim, FaultPlan, MembershipChange};
pub use manifest::{Manifest, ManifestRecord, ManifestWriter, RunHeader};
pub use master::{ClusterStats, RetryPolicy, WorkerFault};
pub use net::{NetLedger, NetStats};
pub use worker::DistributionMode;
