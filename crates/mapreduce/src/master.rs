//! The master node: epoch-granularity coordination.
//!
//! "BRACE's master node only interacts with worker nodes every epoch … so we
//! wish to amortize the overheads related to fault tolerance and load
//! balancing" (§3.3). The master:
//!
//! * broadcasts one [`EpochCommand`] per epoch and waits for every worker's
//!   report;
//! * merges worker statistics and (when enabled) asks the
//!   `LoadBalancer` whether to install new
//!   column boundaries at the next epoch boundary;
//! * triggers coordinated checkpoints on a fixed epoch cadence and keeps the
//!   command log needed to replay forward from the newest one;
//! * recovers from a (simulated) worker failure by restoring every worker
//!   from the last checkpoint and re-executing the logged epochs — exact,
//!   because ticks are deterministic;
//! * retries a failing epoch with bounded backoff, and when one worker's
//!   partition keeps failing past the [`RetryPolicy`] budget, **dead-letters**
//!   it: the run continues degraded (the partition's agents are dropped and
//!   reported in the manifest) instead of aborting;
//! * when attached to a durable run directory, maintains the write-ahead
//!   [`manifest`](crate::manifest): each epoch's command is journaled
//!   before broadcast and its completion after the checkpoint is durable,
//!   so `--resume` in a *fresh process* lands bit-identically on the
//!   uninterrupted trajectory.

use crate::balance::{BalanceDecision, LoadBalancer};
use crate::checkpoint::{CheckpointStore, ClusterCheckpoint};
use crate::codec;
use crate::manifest::{DeadLetterRecord, EpochDoneRecord, ManifestRecord, ManifestWriter};
use crate::net::NetStats;
use crate::runtime::{Command, EpochCommand, Report, WorkerEpochStats};
use brace_common::{BraceError, Result, WorkerId};
use brace_core::Agent;
use brace_telemetry::{Counter as TelCounter, HistId, Telemetry};
use crossbeam::channel::{Receiver, Sender};
use std::time::{Duration, Instant};

/// Bounded-backoff retry budget for a failing epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per epoch before the failing partition is dead-lettered.
    pub max_attempts: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Ceiling on any single delay.
    pub backoff_cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, backoff_base_ms: 5, backoff_cap_ms: 100 }
    }
}

impl RetryPolicy {
    /// Delay before retrying after `attempt` failed attempts (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let ms = self.backoff_base_ms.saturating_mul(1u64 << shift);
        Duration::from_millis(ms.min(self.backoff_cap_ms))
    }
}

/// An injected worker failure (fault plan for tests/benchmarks): worker
/// `worker` fails `failures` consecutive attempts of epoch `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFault {
    pub worker: u32,
    /// Epoch (0-based) whose attempts fail.
    pub epoch: u64,
    /// Consecutive attempts that fail before the worker heals. Set this at
    /// or above the retry budget to force a dead-letter.
    pub failures: u32,
}

#[derive(Debug, Clone, Copy)]
struct FaultState {
    fault: WorkerFault,
    attempts_done: u32,
    resolved: bool,
}

/// Run-level statistics kept by the master (see also
/// `NetStats` (merged in by the facade).
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Live (non-replay) epochs completed.
    pub epochs: u64,
    /// Ticks of simulated time completed (replay does not double-count).
    pub ticks: u64,
    /// Agent-ticks executed in live epochs.
    pub agent_ticks: u64,
    /// Wall time of live epochs (max across workers, summed over epochs).
    pub wall_ns: u64,
    /// Per-epoch wall time (for the Fig. 8 series).
    pub epoch_wall_ns: Vec<u64>,
    /// Per-epoch owned-agent counts per worker (imbalance over time).
    pub agents_per_worker: Vec<Vec<usize>>,
    pub repartitions: u64,
    pub checkpoints: u64,
    pub recoveries: u64,
    pub replayed_epochs: u64,
    /// Epoch attempts retried after an injected worker failure.
    pub retries: u64,
    /// Partitions abandoned after exhausting the retry budget.
    pub dead_letters: u64,
    /// Agents dropped with dead-lettered partitions.
    pub agents_lost: u64,
    /// Full replica records received across workers (band entrants).
    pub replicas_in: u64,
    /// Replica delta updates received across workers (persisting replicas
    /// refreshed in place — the delta-distribution steady state).
    pub replica_deltas_in: u64,
    /// Ownership transfers received across workers.
    pub transfers_in: u64,
    /// Worker pool rebuilds during live epochs (pinned to zero by the
    /// pool-resident protocol; restores are the only sanctioned path).
    pub pool_rebuilds: u64,
    /// Full-population `Vec<Agent>` materializations inside live ticks
    /// (also pinned to zero — snapshots at epoch boundaries don't count).
    pub vec_roundtrips: u64,
    /// Full spatial-index rebuilds across workers during live epochs.
    pub index_rebuilds: u64,
    /// 1 for local-effects models, 2 for map-reduce-reduce (Table 1).
    pub comm_rounds_per_tick: u32,
    /// Network totals, snapshotted by the facade.
    pub net: NetStats,
}

impl ClusterStats {
    /// Agent-ticks per second of wall time — the unit of Figures 5–7.
    pub fn throughput(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.agent_ticks as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Max/mean owned-agent imbalance of the last completed epoch.
    pub fn last_imbalance(&self) -> f64 {
        let Some(last) = self.agents_per_worker.last() else { return 1.0 };
        let total: usize = last.iter().sum();
        if total == 0 || last.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / last.len() as f64;
        *last.iter().max().unwrap() as f64 / mean
    }
}

/// The master half of the runtime. Owns the command/report channels; the
/// facade ([`ClusterSim`](crate::cluster::ClusterSim)) owns the threads.
pub struct Master {
    num_workers: usize,
    epoch_len: u64,
    lb_enabled: bool,
    balancer: LoadBalancer,
    checkpoint_every: Option<u64>,
    cmd_tx: Vec<Sender<Command>>,
    report_rx: Receiver<Report>,
    x_bounds: Vec<f64>,
    hist_range: (f64, f64),
    epoch: u64,
    tick: u64,
    pending_bounds: Option<Vec<f64>>,
    store: CheckpointStore,
    stats: ClusterStats,
    /// Write-ahead run manifest; `None` for ephemeral (non-durable) runs.
    manifest: Option<ManifestWriter>,
    retry: RetryPolicy,
    worker_faults: Vec<FaultState>,
    /// Telemetry handle captured at construction (no-op when disabled).
    tel: Telemetry,
}

impl Master {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        num_workers: usize,
        epoch_len: u64,
        lb_enabled: bool,
        balancer: LoadBalancer,
        checkpoint_every: Option<u64>,
        store: CheckpointStore,
        cmd_tx: Vec<Sender<Command>>,
        report_rx: Receiver<Report>,
        x_bounds: Vec<f64>,
    ) -> Self {
        let hist_range = (x_bounds[0], *x_bounds.last().unwrap());
        Master {
            num_workers,
            epoch_len,
            lb_enabled,
            balancer,
            checkpoint_every,
            cmd_tx,
            report_rx,
            x_bounds,
            hist_range,
            epoch: 0,
            tick: 0,
            pending_bounds: None,
            store,
            stats: ClusterStats::default(),
            manifest: None,
            retry: RetryPolicy::default(),
            worker_faults: Vec::new(),
            tel: Telemetry::current(),
        }
    }

    /// Attach the write-ahead run manifest (durable runs only).
    pub fn set_manifest(&mut self, w: ManifestWriter) {
        self.manifest = Some(w);
    }

    pub fn set_retry_policy(&mut self, p: RetryPolicy) {
        self.retry = p;
    }

    /// Install the injected worker-failure plan.
    pub fn set_worker_faults(&mut self, faults: Vec<WorkerFault>) {
        self.worker_faults =
            faults.into_iter().map(|fault| FaultState { fault, attempts_done: 0, resolved: false }).collect();
    }

    /// Append a record to the run manifest, if one is attached.
    pub fn append_manifest(&mut self, rec: &ManifestRecord) -> Result<()> {
        if let Some(m) = &mut self.manifest {
            m.append(rec)?;
        }
        Ok(())
    }

    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    pub fn tick(&self) -> u64 {
        self.tick
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn x_bounds(&self) -> &[f64] {
        &self.x_bounds
    }

    /// Take the initial coordinated checkpoint (state before any tick), so
    /// that every failure is recoverable.
    pub fn initial_checkpoint(&mut self) -> Result<()> {
        let workers = self.collect_snapshots()?;
        self.store.push(ClusterCheckpoint {
            epoch: 0,
            tick: 0,
            x_bounds: self.x_bounds.clone(),
            hist_range: self.hist_range,
            workers,
        })?;
        Ok(())
    }

    /// Execute one live epoch: journal the intent, broadcast, gather
    /// (retrying failed attempts within the [`RetryPolicy`] budget),
    /// checkpoint, commit, account, decide, journal completion.
    pub fn run_epoch(&mut self) -> Result<()> {
        let checkpoint = self.checkpoint_every.map(|k| (self.epoch + 1).is_multiple_of(k)).unwrap_or(false);
        let cmd = EpochCommand {
            epoch: self.epoch,
            ticks: self.epoch_len,
            new_x_bounds: self.pending_bounds.take(),
            checkpoint,
            hist_range: self.hist_range,
        };
        // Write-ahead: the intent is durable before any worker sees it, so
        // a crash mid-epoch leaves a command with no matching EpochDone —
        // resume re-runs it.
        self.append_manifest(&ManifestRecord::Command(cmd.clone()))?;
        let mut attempt = 0u32;
        let reports = loop {
            attempt += 1;
            let (reports, snapshots) = self.execute(&cmd)?;
            if let Some(worker) = self.injected_failure(cmd.epoch) {
                if attempt >= self.retry.max_attempts {
                    self.dead_letter(worker, cmd.epoch, attempt)?;
                } else {
                    self.stats.retries += 1;
                    std::thread::sleep(self.retry.backoff(attempt));
                    self.restore_and_replay()?;
                }
                continue;
            }
            if cmd.checkpoint {
                let timer = self.tel.timer(HistId::CheckpointWrite);
                self.store.push(ClusterCheckpoint {
                    epoch: cmd.epoch + 1,
                    tick: (cmd.epoch + 1) * self.epoch_len,
                    x_bounds: self.x_bounds.clone(),
                    hist_range: cmd.hist_range,
                    workers: snapshots,
                })?;
                timer.stop();
                self.stats.checkpoints += 1;
                self.tel.incr(TelCounter::ClusterCheckpoints);
            }
            break reports;
        };
        self.store.log_command(cmd.clone());
        self.epoch += 1;
        self.tick += cmd.ticks;
        self.account(&reports);
        self.decide(&reports);
        // Completion carries the post-decide state (histogram range,
        // pending repartition) so resume rebuilds the next command exactly.
        self.append_manifest(&ManifestRecord::EpochDone(EpochDoneRecord {
            epoch: self.epoch,
            checkpoint: cmd.checkpoint,
            hist_range: self.hist_range,
            pending_bounds: self.pending_bounds.clone(),
        }))?;
        Ok(())
    }

    /// Re-execute one logged command during recovery/resume. Checkpoint
    /// commands re-push their snapshot, so a recovered store converges to
    /// the failure-free store. Clocks and the log are untouched.
    fn replay_command(&mut self, cmd: &EpochCommand) -> Result<Vec<WorkerEpochStats>> {
        let (reports, snapshots) = self.execute(cmd)?;
        if cmd.checkpoint {
            self.store.push(ClusterCheckpoint {
                epoch: cmd.epoch + 1,
                tick: (cmd.epoch + 1) * self.epoch_len,
                x_bounds: self.x_bounds.clone(),
                hist_range: cmd.hist_range,
                workers: snapshots,
            })?;
        }
        self.stats.replayed_epochs += 1;
        Ok(reports)
    }

    /// Next injected failure matching `epoch`, consuming one scheduled
    /// attempt.
    fn injected_failure(&mut self, epoch: u64) -> Option<u32> {
        for f in &mut self.worker_faults {
            if !f.resolved && f.fault.epoch == epoch && f.attempts_done < f.fault.failures {
                f.attempts_done += 1;
                return Some(f.fault.worker);
            }
        }
        None
    }

    /// Restore every worker from the newest checkpoint and replay the
    /// logged epochs (mid-epoch retry: the interrupted epoch was never
    /// committed, so clocks and log are already correct).
    fn restore_and_replay(&mut self) -> Result<()> {
        let cp = self
            .store
            .latest()
            .cloned()
            .ok_or_else(|| BraceError::Unrecoverable("no checkpoint to recover from".into()))?;
        self.restore_workers(&cp)?;
        self.stats.recoveries += 1;
        for cmd in &self.store.replay_since(cp.epoch) {
            self.replay_command(cmd)?;
        }
        Ok(())
    }

    /// Abandon `worker`'s partition: restore from the newest checkpoint
    /// with that worker's snapshot emptied, replay forward, and record the
    /// loss in the manifest. The run continues degraded — reported, not
    /// aborted.
    fn dead_letter(&mut self, worker: u32, epoch: u64, attempts: u32) -> Result<()> {
        let mut cp = self
            .store
            .latest()
            .cloned()
            .ok_or_else(|| BraceError::Unrecoverable("no checkpoint to dead-letter against".into()))?;
        let mut snap = codec::decode_snapshot(cp.workers[worker as usize].clone());
        let agents_lost = snap.agents.len() as u64;
        snap.agents.clear();
        cp.workers[worker as usize] = codec::encode_snapshot(&snap);
        self.restore_workers(&cp)?;
        self.stats.recoveries += 1;
        for cmd in &self.store.replay_since(cp.epoch) {
            self.replay_command(cmd)?;
        }
        for f in &mut self.worker_faults {
            if f.fault.worker == worker && f.fault.epoch == epoch {
                f.resolved = true;
            }
        }
        self.stats.dead_letters += 1;
        self.stats.agents_lost += agents_lost;
        self.append_manifest(&ManifestRecord::DeadLetter(DeadLetterRecord {
            worker,
            epoch,
            attempts,
            agents_lost,
            reason: "retry budget exhausted".into(),
        }))?;
        Ok(())
    }

    /// Broadcast `cmd` and gather one report per worker (ordered by worker
    /// index). Returns the per-worker stats and checkpoint snapshots.
    fn execute(&mut self, cmd: &EpochCommand) -> Result<(Vec<WorkerEpochStats>, Vec<bytes::Bytes>)> {
        if let Some(b) = &cmd.new_x_bounds {
            self.x_bounds = b.clone();
        }
        for tx in &self.cmd_tx {
            tx.send(Command::RunEpoch(cmd.clone()))
                .map_err(|_| BraceError::Unrecoverable("worker channel closed".into()))?;
        }
        let mut stats: Vec<Option<WorkerEpochStats>> = (0..self.num_workers).map(|_| None).collect();
        let mut snaps: Vec<Option<bytes::Bytes>> = (0..self.num_workers).map(|_| None).collect();
        for _ in 0..self.num_workers {
            match self.report_rx.recv() {
                Ok(Report::EpochDone { worker, stats: s, snapshot }) => {
                    snaps[worker.index()] = snapshot;
                    stats[worker.index()] = Some(s);
                }
                Ok(other) => {
                    return Err(BraceError::Unrecoverable(format!("unexpected report {other:?} during epoch")))
                }
                Err(_) => return Err(BraceError::Unrecoverable("a worker died without checkpoint protocol".into())),
            }
        }
        let stats: Vec<WorkerEpochStats> = stats.into_iter().map(|s| s.expect("worker reported")).collect();
        let snapshots: Vec<bytes::Bytes> = if cmd.checkpoint {
            snaps.into_iter().map(|s| s.expect("checkpoint snapshot")).collect()
        } else {
            Vec::new()
        };
        Ok((stats, snapshots))
    }

    /// Merge an epoch's worker reports into run statistics.
    fn account(&mut self, reports: &[WorkerEpochStats]) {
        self.stats.epochs += 1;
        let wall = reports.iter().map(|r| r.wall_ns).max().unwrap_or(0);
        // Barrier wait per worker: how long each worker idled at the epoch
        // barrier while the straggler (max wall) finished.
        self.tel.incr(TelCounter::ClusterEpochs);
        for r in reports {
            self.tel.observe(HistId::EpochBarrierWait, wall.saturating_sub(r.wall_ns));
        }
        self.stats.wall_ns += wall;
        self.stats.epoch_wall_ns.push(wall);
        self.stats.agent_ticks += reports.iter().map(|r| r.agent_ticks).sum::<u64>();
        self.stats.agents_per_worker.push(reports.iter().map(|r| r.owned_agents).collect());
        self.stats.replicas_in += reports.iter().map(|r| r.replicas_in).sum::<u64>();
        self.stats.replica_deltas_in += reports.iter().map(|r| r.replica_deltas_in).sum::<u64>();
        self.stats.transfers_in += reports.iter().map(|r| r.transfers_in).sum::<u64>();
        self.stats.pool_rebuilds += reports.iter().map(|r| r.pool_rebuilds).sum::<u64>();
        self.stats.vec_roundtrips += reports.iter().map(|r| r.vec_roundtrips).sum::<u64>();
        self.stats.index_rebuilds += reports.iter().map(|r| r.index_rebuilds).sum::<u64>();
        self.stats.comm_rounds_per_tick = reports.iter().map(|r| r.comm_rounds_per_tick).max().unwrap_or(1);
    }

    /// Update the histogram range and ask the balancer about the next epoch.
    fn decide(&mut self, reports: &[WorkerEpochStats]) {
        // Widen/track the histogram range from observed extents (fish swim
        // out of the initial space; the range must follow them).
        let xmin = reports.iter().map(|r| r.x_min).fold(f64::INFINITY, f64::min);
        let xmax = reports.iter().map(|r| r.x_max).fold(f64::NEG_INFINITY, f64::max);
        if xmin.is_finite() && xmax.is_finite() && xmax > xmin {
            let margin = (xmax - xmin) * 0.05 + 1e-6;
            self.hist_range = (xmin - margin, xmax + margin);
        }
        if !self.lb_enabled {
            return;
        }
        // Merge per-worker histograms (all over the same command range).
        let bins = reports.first().map(|r| r.x_hist.len()).unwrap_or(0);
        let mut hist = vec![0u64; bins];
        for r in reports {
            for (h, &v) in hist.iter_mut().zip(&r.x_hist) {
                *h += v;
            }
        }
        let counts: Vec<u64> = reports.iter().map(|r| r.owned_agents as u64).collect();
        // Histograms were computed over the *command's* range, which at this
        // point is still `self.hist_range` from before the update above only
        // if no drift happened; to stay exact we recompute decisions against
        // the range the workers actually used — which the balancer receives.
        let used_range =
            reports.iter().map(|_| ()).next().map(|_| self.last_command_range()).unwrap_or(self.hist_range);
        match self.balancer.decide(&self.x_bounds, &counts, &hist, used_range) {
            BalanceDecision::Keep => {}
            BalanceDecision::Repartition { x_bounds, .. } => {
                self.pending_bounds = Some(x_bounds);
                self.stats.repartitions += 1;
            }
        }
    }

    /// Range the previous epoch's histograms were computed over: the
    /// current log/commands carry it; fall back to the live value.
    fn last_command_range(&self) -> (f64, f64) {
        self.store.replay_log().last().map(|c| c.hist_range).unwrap_or(self.hist_range)
    }

    /// Recover from the loss of all live worker state during epoch
    /// `failed_epoch` (0-based; that epoch's results — including any
    /// checkpoint it would have written — are gone). Restores every worker
    /// from the newest surviving checkpoint and replays the logged epochs.
    pub fn recover(&mut self, failed_epoch: u64) -> Result<()> {
        self.store.discard_after(failed_epoch);
        let cp = self
            .store
            .latest()
            .cloned()
            .ok_or_else(|| BraceError::Unrecoverable("no checkpoint to recover from".into()))?;
        self.restore_workers(&cp)?;
        self.stats.recoveries += 1;
        // Re-execute every epoch since the snapshot, verbatim. Ticks are
        // deterministic, so this reproduces the lost state exactly.
        let log = self.store.replay_since(cp.epoch);
        let mut last_reports: Option<Vec<WorkerEpochStats>> = None;
        for cmd in &log {
            let reports = self.replay_command(cmd)?;
            last_reports = Some(reports);
        }
        // Re-derive the pending decision from the final replayed epoch so
        // the post-recovery trajectory matches a failure-free run exactly.
        if let Some(reports) = &last_reports {
            self.pending_bounds = None;
            self.decide(reports);
        }
        Ok(())
    }

    /// Send every worker its snapshot from `cp` and install the
    /// checkpoint's column bounds.
    fn restore_workers(&mut self, cp: &ClusterCheckpoint) -> Result<()> {
        if cp.workers.len() != self.num_workers {
            return Err(BraceError::Unrecoverable(format!(
                "checkpoint has {} workers, cluster has {}",
                cp.workers.len(),
                self.num_workers
            )));
        }
        for (i, tx) in self.cmd_tx.iter().enumerate() {
            tx.send(Command::Restore { snapshot: cp.workers[i].clone(), x_bounds: cp.x_bounds.clone() })
                .map_err(|_| BraceError::Unrecoverable("worker channel closed".into()))?;
        }
        self.x_bounds = cp.x_bounds.clone();
        Ok(())
    }

    /// Reconstruct run state in a **fresh process**: restore every worker
    /// from `cp`, seed the in-memory store (checkpoint + replay log),
    /// re-execute the `completed` epochs past the checkpoint, and land the
    /// clocks and post-decide state exactly where the interrupted run's
    /// manifest says they were. Bit-identical to never having crashed,
    /// because replayed ticks are deterministic.
    pub fn resume_from(
        &mut self,
        cp: &ClusterCheckpoint,
        completed: &[EpochCommand],
        hist_range: (f64, f64),
        pending_bounds: Option<Vec<f64>>,
    ) -> Result<()> {
        self.restore_workers(cp)?;
        self.store.push(cp.clone())?;
        for cmd in completed {
            self.replay_command(cmd)?;
            self.store.log_command(cmd.clone());
        }
        self.epoch = cp.epoch + completed.len() as u64;
        self.tick = self.epoch * self.epoch_len;
        self.hist_range = hist_range;
        self.pending_bounds = pending_bounds;
        Ok(())
    }

    /// Swap the worker fabric (elastic membership). History cannot span a
    /// membership change, so retained checkpoints and the replay log are
    /// dropped — the caller must follow up with restores into the new
    /// fabric and a [`Master::force_checkpoint`].
    pub fn replace_fabric(
        &mut self,
        num_workers: usize,
        cmd_tx: Vec<Sender<Command>>,
        report_rx: Receiver<Report>,
        x_bounds: Vec<f64>,
    ) {
        self.num_workers = num_workers;
        self.cmd_tx = cmd_tx;
        self.report_rx = report_rx;
        self.x_bounds = x_bounds;
        self.pending_bounds = None;
        self.store.reset();
    }

    /// Push one worker's state into the fabric (membership migration).
    pub fn restore_worker(&mut self, worker: usize, snapshot: bytes::Bytes) -> Result<()> {
        self.cmd_tx[worker]
            .send(Command::Restore { snapshot, x_bounds: self.x_bounds.clone() })
            .map_err(|_| BraceError::Unrecoverable("worker channel closed".into()))
    }

    /// Take a coordinated checkpoint at the current clocks (outside the
    /// regular cadence — e.g. right after a membership change).
    pub fn force_checkpoint(&mut self) -> Result<()> {
        let workers = self.collect_snapshots()?;
        self.store.push(ClusterCheckpoint {
            epoch: self.epoch,
            tick: self.tick,
            x_bounds: self.x_bounds.clone(),
            hist_range: self.hist_range,
            workers,
        })?;
        self.stats.checkpoints += 1;
        self.tel.incr(TelCounter::ClusterCheckpoints);
        Ok(())
    }

    /// Gather every worker's current agents (sorted by id).
    pub fn collect_agents(&mut self) -> Result<Vec<Agent>> {
        let snaps = self.collect_snapshots()?;
        let mut agents: Vec<Agent> = snaps.into_iter().flat_map(|s| codec::decode_snapshot(s).agents).collect();
        agents.sort_by_key(|a| a.id);
        Ok(agents)
    }

    /// Snapshot every worker (serialized `WorkerSnapshot`s by index).
    pub fn collect_snapshots(&mut self) -> Result<Vec<bytes::Bytes>> {
        for tx in &self.cmd_tx {
            tx.send(Command::Collect).map_err(|_| BraceError::Unrecoverable("worker channel closed".into()))?;
        }
        let mut snaps: Vec<Option<bytes::Bytes>> = (0..self.num_workers).map(|_| None).collect();
        for _ in 0..self.num_workers {
            match self.report_rx.recv() {
                Ok(Report::Collected { worker, snapshot }) => snaps[worker.index()] = Some(snapshot),
                Ok(other) => {
                    return Err(BraceError::Unrecoverable(format!("unexpected report {other:?} during collect")))
                }
                Err(_) => return Err(BraceError::Unrecoverable("worker died during collect".into())),
            }
        }
        Ok(snaps.into_iter().map(|s| s.expect("collected")).collect())
    }

    /// Ask all workers to stop (the facade joins the threads).
    pub fn stop(&mut self) {
        for tx in &self.cmd_tx {
            let _ = tx.send(Command::Stop);
        }
    }

    /// Wall-clock instrumentation hook used by the facade.
    pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
        let t0 = Instant::now();
        let out = f();
        (out, t0.elapsed().as_nanos() as u64)
    }

    /// Workers addressed by this master (test/diagnostic).
    pub fn worker_ids(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..self.num_workers as u32).map(WorkerId::new)
    }
}
