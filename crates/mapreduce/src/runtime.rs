//! Protocol types of the BRACE runtime.
//!
//! The schedule per tick is the paper's Table 1:
//!
//! | phase              | task                | here                         |
//! |--------------------|---------------------|------------------------------|
//! | updateᵗ⁻¹ + distributeᵗ | mapᵗ₁          | `Worker::distribute` (update executed eagerly at the end of the previous tick) |
//! | queryᵗ / local effectᵗ | reduceᵗ₁        | `brace_core::query_phase`    |
//! | (distribute effects)   | mapᵗ₂ (identity) | eliminated, as the paper notes |
//! | global effectᵗ          | reduceᵗ₂        | `EffectTable::merge_row` over shipped rows |
//!
//! Workers exchange [`PeerMsg`]s (serialized payloads — see
//! [`codec`](crate::codec)); the master exchanges [`Command`]/[`Report`]
//! at *epoch* granularity only, which is the design point that amortizes
//! coordination over many in-memory ticks.

use brace_common::{Welford, WorkerId};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Worker-to-worker message. Payloads are opaque bytes (agents, delta
/// frames or effect rows); `tick` tags the lockstep round the message
/// belongs to.
#[derive(Debug, Clone)]
pub enum PeerMsg {
    /// Round 1 of a tick: ownership transfers plus the two replica
    /// payloads of the delta-distribution protocol — full records for
    /// agents *entering* the receiver's visible band, and a compact
    /// columnar delta frame (removals + masked field updates) for replicas
    /// that persist there ([`codec::ReplicaDeltaEnc`](crate::codec::ReplicaDeltaEnc)).
    Batch { tick: u64, from: WorkerId, transfers: Bytes, replica_full: Bytes, replica_delta: Bytes },
    /// Round 2 of a tick (non-local effects only): partial effect rows for
    /// agents the receiver owns.
    Effects { tick: u64, from: WorkerId, rows: Bytes },
    /// Final round of a tick (spawning runs only): the sender's per-parent
    /// spawn counts as ascending `(parent id, count)` runs
    /// ([`codec::encode_spawn_runs`](crate::codec::encode_spawn_runs)).
    /// Merging every worker's runs in parent-id order yields the global
    /// spawn sequence, from which each worker derives final spawn ids —
    /// `(parent id, ordinal)` ordering, placement-independent.
    Spawns { tick: u64, from: WorkerId, runs: Bytes },
}

impl PeerMsg {
    pub fn tick(&self) -> u64 {
        match self {
            PeerMsg::Batch { tick, .. } | PeerMsg::Effects { tick, .. } | PeerMsg::Spawns { tick, .. } => *tick,
        }
    }

    pub fn from(&self) -> WorkerId {
        match self {
            PeerMsg::Batch { from, .. } | PeerMsg::Effects { from, .. } | PeerMsg::Spawns { from, .. } => *from,
        }
    }

    pub fn round(&self) -> Round {
        match self {
            PeerMsg::Batch { .. } => Round::Distribute,
            PeerMsg::Effects { .. } => Round::Effects,
            PeerMsg::Spawns { .. } => Round::Spawns,
        }
    }
}

/// The communication rounds of a tick, in per-tick order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Round {
    Distribute,
    Effects,
    Spawns,
}

/// One epoch's marching orders from the master.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochCommand {
    pub epoch: u64,
    /// Ticks to execute in this epoch.
    pub ticks: u64,
    /// Repartitioning: new column boundaries to install *before* the epoch
    /// (the paper: "workers switch to the new partitioning at a specified
    /// epoch boundary").
    pub new_x_bounds: Option<Vec<f64>>,
    /// Produce a coordinated checkpoint snapshot after this epoch.
    pub checkpoint: bool,
    /// Range over which to histogram owned agent x-positions for the load
    /// balancer.
    pub hist_range: (f64, f64),
}

/// Master-to-worker commands.
#[derive(Debug, Clone)]
pub enum Command {
    RunEpoch(EpochCommand),
    /// Replace worker state from a checkpoint snapshot (recovery).
    Restore {
        snapshot: Bytes,
        x_bounds: Vec<f64>,
    },
    /// Send back the current owned agents (end-of-run collection).
    Collect,
    Stop,
}

/// Statistics one worker reports per epoch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerEpochStats {
    /// Owned agents at the end of the epoch.
    pub owned_agents: usize,
    /// Agent-ticks executed this epoch.
    pub agent_ticks: u64,
    /// Wall time of the epoch on this worker (includes waiting on peers —
    /// the straggler effect load balancing exists to fix).
    pub wall_ns: u64,
    /// Busy time actually spent computing (index+query+update).
    pub busy_ns: u64,
    /// Histogram of owned agents' x positions over the command's
    /// `hist_range` (input to the 1-D load balancer).
    pub x_hist: Vec<u64>,
    /// Observed x extent of owned agents, so the master can widen the
    /// histogram range as the population drifts.
    pub x_min: f64,
    pub x_max: f64,
    /// Communication rounds executed per tick (1 = local effects only,
    /// 2 = map-reduce-reduce). Exposed to assert the Table 1 mapping.
    pub comm_rounds_per_tick: u32,
    /// Per-tick busy-time distribution.
    pub tick_time: Welford,
    /// Full replica records received this epoch (band entrants; under
    /// delta distribution a stable boundary population stops paying this
    /// after its first tick).
    pub replicas_in: u64,
    /// Replica delta updates received this epoch (persisting replicas
    /// refreshed in place).
    pub replica_deltas_in: u64,
    /// Agents whose ownership transferred in this epoch.
    pub transfers_in: u64,
    /// Times this worker rebuilt its agent pool from row records during
    /// the epoch's ticks. The pool-resident protocol's core claim is that
    /// this stays **zero** outside restores — asserted in tests.
    pub pool_rebuilds: u64,
    /// Full-population `Vec<Agent>` materializations performed inside the
    /// epoch's ticks (also pinned to zero; snapshots at epoch boundaries
    /// are the real serialization boundary and are not counted here).
    pub vec_roundtrips: u64,
    /// Full spatial-index rebuilds during the epoch (membership changes
    /// only; a stable pool syncs incrementally).
    pub index_rebuilds: u64,
}

/// Worker-to-master reports.
#[derive(Debug)]
pub enum Report {
    EpochDone { worker: WorkerId, stats: WorkerEpochStats, snapshot: Option<Bytes> },
    Collected { worker: WorkerId, snapshot: Bytes },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_msg_accessors() {
        let b = PeerMsg::Batch {
            tick: 3,
            from: WorkerId::new(1),
            transfers: Bytes::new(),
            replica_full: Bytes::new(),
            replica_delta: Bytes::new(),
        };
        assert_eq!(b.tick(), 3);
        assert_eq!(b.from(), WorkerId::new(1));
        assert_eq!(b.round(), Round::Distribute);
        let e = PeerMsg::Effects { tick: 4, from: WorkerId::new(2), rows: Bytes::new() };
        assert_eq!(e.round(), Round::Effects);
        assert_eq!(e.tick(), 4);
    }
}
