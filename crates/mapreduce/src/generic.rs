//! A small, general, iterated main-memory MapReduce engine.
//!
//! The paper frames BRACE as an *extension of the MapReduce programming
//! model* to iterated spatial joins (§2.2, §3). To keep that framing honest
//! rather than rhetorical, this module implements the unextended model —
//! `map : (k1, v1) → [(k2, v2)]`, `reduce : (k2, [v2]) → [(k3, v3)]`, with
//! the iterative variant feeding reduce output into the next map — over the
//! same in-memory, multi-threaded substrate the BRACE runtime uses. The
//! spatial runtime in [`worker`](crate::worker)/[`master`](crate::master)
//! is the specialization of this engine where the map key is the partition
//! id from the spatial partitioning function and reducers are collocated
//! with mappers.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Deterministic partition assignment for the shuffle: we hash with a fixed
/// seed (not `RandomState`) so that runs are reproducible.
fn shard_of<K: Hash>(key: &K, shards: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

/// Execute one MapReduce round over `input`.
///
/// * `mapper` receives each input pair and emits intermediate pairs.
/// * Intermediate pairs are grouped by key (the shuffle); grouping is
///   stable: values keep the order mappers emitted them within one shard.
/// * `reducer` receives each key with all its values and emits output
///   pairs.
///
/// `workers` map tasks and `workers` reduce tasks run on scoped threads.
/// Output is sorted by reduce shard then key-encounter order, making the
/// result deterministic for a fixed `workers`.
pub fn map_reduce<K1, V1, K2, V2, K3, V3, M, R>(
    input: Vec<(K1, V1)>,
    workers: usize,
    mapper: M,
    reducer: R,
) -> Vec<(K3, V3)>
where
    K1: Send,
    V1: Send,
    K2: Eq + Hash + Ord + Send + Clone,
    V2: Send,
    K3: Send,
    V3: Send,
    M: Fn(K1, V1, &mut Vec<(K2, V2)>) + Sync,
    R: Fn(&K2, Vec<V2>, &mut Vec<(K3, V3)>) + Sync,
{
    assert!(workers > 0, "need at least one worker");
    // ---- map phase -------------------------------------------------------
    let n = input.len();
    let chunk = n.div_ceil(workers).max(1);
    let chunks: Vec<Vec<(K1, V1)>> = {
        let mut it = input.into_iter();
        let mut out = Vec::new();
        loop {
            let c: Vec<(K1, V1)> = it.by_ref().take(chunk).collect();
            if c.is_empty() {
                break;
            }
            out.push(c);
        }
        out
    };
    let mapped: Vec<Vec<(K2, V2)>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                let mapper = &mapper;
                s.spawn(move || {
                    let mut emitted = Vec::new();
                    for (k, v) in c {
                        mapper(k, v, &mut emitted);
                    }
                    emitted
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("map task panicked")).collect()
    });

    // ---- shuffle ---------------------------------------------------------
    let mut shards: Vec<HashMap<K2, Vec<V2>>> = (0..workers).map(|_| HashMap::new()).collect();
    for batch in mapped {
        for (k, v) in batch {
            let s = shard_of(&k, workers);
            shards[s].entry(k).or_default().push(v);
        }
    }

    // ---- reduce phase ----------------------------------------------------
    let reduced: Vec<Vec<(K3, V3)>> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|shard| {
                let reducer = &reducer;
                s.spawn(move || {
                    // Sort keys for deterministic output order.
                    let mut pairs: Vec<(K2, Vec<V2>)> = shard.into_iter().collect();
                    pairs.sort_by(|a, b| a.0.cmp(&b.0));
                    let mut out = Vec::new();
                    for (k, vs) in pairs {
                        reducer(&k, vs, &mut out);
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("reduce task panicked")).collect()
    });
    reduced.into_iter().flatten().collect()
}

/// The iterated model of §2.2: "the output of the reduce step is fed into
/// the next map step" — `reduce : (k2, [v2]) → [(k3, v3)]` with
/// `k3/v3 = k1/v1`. Runs `rounds` rounds and returns the final collection.
pub fn iterate<K, V, M, R>(mut state: Vec<(K, V)>, rounds: usize, workers: usize, mapper: M, reducer: R) -> Vec<(K, V)>
where
    K: Eq + Hash + Ord + Send + Clone,
    V: Send,
    M: Fn(K, V, &mut Vec<(K, V)>) + Sync,
    R: Fn(&K, Vec<V>, &mut Vec<(K, V)>) + Sync,
{
    for _ in 0..rounds {
        state = map_reduce(state, workers, &mapper, &reducer);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical example: word count.
    fn word_count(docs: Vec<&str>, workers: usize) -> Vec<(String, usize)> {
        let input: Vec<((), String)> = docs.into_iter().map(|d| ((), d.to_string())).collect();
        let mut out = map_reduce(
            input,
            workers,
            |_k, doc: String, emit| {
                for w in doc.split_whitespace() {
                    emit.push((w.to_string(), 1usize));
                }
            },
            |k: &String, vs: Vec<usize>, out| {
                out.push((k.clone(), vs.into_iter().sum()));
            },
        );
        out.sort();
        out
    }

    #[test]
    fn word_count_single_worker() {
        let got = word_count(vec!["a b a", "b c"], 1);
        assert_eq!(got, vec![("a".into(), 2), ("b".into(), 2), ("c".into(), 1)]);
    }

    #[test]
    fn word_count_is_worker_count_invariant() {
        let docs = vec!["the quick brown fox", "the lazy dog", "the fox"];
        let one = word_count(docs.clone(), 1);
        for w in [2, 3, 8] {
            assert_eq!(word_count(docs.clone(), w), one, "workers={w}");
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<(String, usize)> = map_reduce(
            Vec::<((), String)>::new(),
            4,
            |_, _, _| {},
            |k: &String, vs: Vec<usize>, out| out.push((k.clone(), vs.len())),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn reduce_sees_all_values_for_a_key() {
        let input: Vec<(u32, u32)> = (0..100).map(|i| (i % 5, i)).collect();
        let mut out =
            map_reduce(input, 3, |k, v, emit| emit.push((k, v)), |k: &u32, vs: Vec<u32>, out| out.push((*k, vs.len())));
        out.sort();
        assert_eq!(out, (0..5).map(|k| (k, 20)).collect::<Vec<_>>());
    }

    /// Iterated MapReduce: N counters that each add their neighbors' values
    /// every round (a 1-D diffusion) — the shape of a simulation tick,
    /// minus spatial optimization.
    #[test]
    fn iterated_diffusion_converges() {
        let n = 8u32;
        let state: Vec<(u32, f64)> = (0..n).map(|i| (i, if i == 0 { 1.0 } else { 0.0 })).collect();
        let result = iterate(
            state,
            50,
            4,
            move |k, v, emit| {
                // Send a third of my value to each neighbor (ring), keep a third.
                let left = (k + n - 1) % n;
                let right = (k + 1) % n;
                emit.push((k, v / 3.0));
                emit.push((left, v / 3.0));
                emit.push((right, v / 3.0));
            },
            |k, vs, out| out.push((*k, vs.into_iter().sum())),
        );
        let total: f64 = result.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9, "mass must be conserved, got {total}");
        for (_, v) in &result {
            assert!((v - 1.0 / n as f64).abs() < 1e-3, "should be near uniform, got {v}");
        }
    }

    #[test]
    fn iterate_zero_rounds_is_identity() {
        let state = vec![(1u32, 5.0f64)];
        let out = iterate(state.clone(), 0, 2, |k, v, e| e.push((k, v)), |k, vs, o| o.push((*k, vs.into_iter().sum())));
        assert_eq!(out, state);
    }
}
