//! A worker node of the simulated cluster.
//!
//! Each worker is one OS thread owning one spatial partition (the paper
//! assigns "each grid cell to a separate slave node"). Per tick it executes
//! the collocated task chain of Figure 1:
//!
//! 1. **map (distribute)** — partition its agents under the current
//!    partitioning function; ship ownership transfers and boundary replicas
//!    to peers; keep same-partition agents in memory (collocation: those
//!    never touch the network).
//! 2. **reduce 1 (query / local effects)** — run the query phase for its
//!    owned agents over the visible set (owned + replicas), aggregating
//!    effects for every visible row.
//! 3. **reduce 2 (global effects)** — only for models with non-local effect
//!    assignments: ship each replica's non-identity partial effect row to
//!    the replica's owner and ⊕-merge rows received for its own agents.
//! 4. **update** — the next tick's map-side update, executed eagerly: write
//!    new states, crop movement to the reachable region, apply kills and
//!    spawns.
//!
//! All peer communication is serialized bytes over channels, recorded in the
//! [`NetLedger`]. The worker speaks to the master only between epochs.

use crate::codec::{self, WorkerSnapshot};
use crate::net::{NetLedger, Traffic};
use crate::runtime::{Command, EpochCommand, PeerMsg, Report, Round, WorkerEpochStats};
use brace_common::ids::AgentIdGen;
use brace_common::{AgentId, DetRng, Welford, WorkerId};
use brace_core::executor::{query_phase_sharded, update_phase_sharded, MaintainedIndex, TickScratch};
use brace_core::{Agent, AgentPool, Behavior};
use brace_spatial::{GridPartitioning, IndexKind, Partitioner};
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Bins in the per-worker x-position histogram reported to the master.
pub const HIST_BINS: usize = 64;

/// Static configuration for one worker.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    pub id: WorkerId,
    pub num_workers: usize,
    pub index: IndexKind,
    /// Master seed; agent RNG streams derive from it exactly as on a single
    /// node, so placement does not perturb the simulation.
    pub seed: u64,
    /// When false, even same-partition hand-offs are serialized and charged
    /// to the ledger — the no-collocation ablation.
    pub collocation: bool,
    /// Intra-worker thread budget for the query/update phases (`1` =
    /// serial, `0` = all cores). Multiplies with the worker count, so
    /// clusters saturating the machine with workers should leave this at 1.
    /// Never affects results (the executor's shard plan is thread-count
    /// independent).
    pub parallelism: usize,
}

/// Communication endpoints for one worker.
pub struct WorkerLinks {
    /// Senders to every worker's inbox, indexed by worker; `peers[self]` is
    /// unused.
    pub peers: Vec<Sender<PeerMsg>>,
    pub inbox: Receiver<PeerMsg>,
    pub commands: Receiver<Command>,
    pub reports: Sender<Report>,
    pub ledger: NetLedger,
}

/// One worker node. Owns its agents exclusively; everything in and out is
/// a message.
pub struct Worker {
    behavior: Arc<dyn Behavior>,
    cfg: WorkerConfig,
    links: WorkerLinks,
    part: GridPartitioning,
    owned: Vec<Agent>,
    /// The columnar working pool the query/update phases run on. Rebuilt
    /// from `owned` + incoming replicas each tick (the `Vec<Agent>` ↔ pool
    /// conversion lives exactly at this serialization boundary); the
    /// allocation persists across ticks.
    pool: AgentPool,
    /// Spatial index maintained across ticks: when this worker's row set
    /// is stable (no migration, no churn) the index updates in place and
    /// charges only the moved agents; any row-mapping change triggers a
    /// rebuild automatically.
    index: MaintainedIndex,
    /// Reusable per-tick buffers (shard tables, spawn queues) for the
    /// sharded executor phases.
    scratch: TickScratch,
    tick: u64,
    /// Next / end of this worker's private agent-id block (for spawns).
    next_id: u64,
    end_id: u64,
    /// Worker-level RNG (reserved for runtime-level randomness; agent
    /// streams come from the seed directly). Checkpointed for completeness.
    rng: DetRng,
    /// Out-of-round messages (peers may run one round ahead).
    stash: Vec<PeerMsg>,
    // Reusable scratch buffers.
    targets: Vec<brace_common::PartitionId>,
}

impl Worker {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        behavior: Arc<dyn Behavior>,
        cfg: WorkerConfig,
        links: WorkerLinks,
        part: GridPartitioning,
        owned: Vec<Agent>,
        id_block: (u64, u64),
    ) -> Self {
        let pool = AgentPool::new(behavior.schema());
        let index = MaintainedIndex::new(cfg.index);
        let rng = DetRng::seed_from_u64(cfg.seed).stream(0x5EED_0000 + cfg.id.raw() as u64);
        Worker {
            behavior,
            cfg,
            links,
            part,
            owned,
            pool,
            index,
            scratch: TickScratch::new(),
            tick: 0,
            next_id: id_block.0,
            end_id: id_block.1,
            rng,
            stash: Vec::new(),
            targets: Vec::new(),
        }
    }

    fn me(&self) -> usize {
        self.cfg.id.index()
    }

    /// Thread entry point: serve master commands until `Stop`.
    pub fn run_loop(mut self) {
        loop {
            match self.links.commands.recv() {
                Err(_) => break, // master dropped; shut down
                Ok(Command::Stop) => break,
                Ok(Command::Collect) => {
                    let snapshot = codec::encode_snapshot(&self.snapshot());
                    self.links.ledger.record(Traffic::Control, snapshot.len());
                    let _ = self.links.reports.send(Report::Collected { worker: self.cfg.id, snapshot });
                }
                Ok(Command::Restore { snapshot, x_bounds }) => {
                    self.restore(codec::decode_snapshot(snapshot), x_bounds);
                }
                Ok(Command::RunEpoch(cmd)) => {
                    let (stats, snapshot) = self.run_epoch(&cmd);
                    self.links.ledger.record(Traffic::Control, 64 + stats.x_hist.len() * 8);
                    let _ = self.links.reports.send(Report::EpochDone { worker: self.cfg.id, stats, snapshot });
                }
            }
        }
    }

    fn snapshot(&self) -> WorkerSnapshot {
        WorkerSnapshot {
            tick: self.tick,
            next_spawn_id: self.next_id,
            rng: self.rng.clone(),
            agents: self.owned.clone(),
        }
    }

    fn restore(&mut self, snap: WorkerSnapshot, x_bounds: Vec<f64>) {
        self.tick = snap.tick;
        self.next_id = snap.next_spawn_id;
        self.rng = snap.rng;
        self.owned = snap.agents;
        self.part.set_x_bounds(x_bounds);
        self.stash.clear();
    }

    /// Execute one epoch: optional repartition switch, then `cmd.ticks`
    /// ticks, then statistics (and a checkpoint snapshot if asked).
    fn run_epoch(&mut self, cmd: &EpochCommand) -> (WorkerEpochStats, Option<Bytes>) {
        if let Some(bounds) = &cmd.new_x_bounds {
            self.part.set_x_bounds(bounds.clone());
        }
        let wall = Instant::now();
        let mut stats = WorkerEpochStats {
            comm_rounds_per_tick: if self.behavior.schema().has_nonlocal_effects() { 2 } else { 1 },
            x_min: f64::INFINITY,
            x_max: f64::NEG_INFINITY,
            tick_time: Welford::new(),
            ..Default::default()
        };
        for _ in 0..cmd.ticks {
            let t0 = Instant::now();
            let owned_at_start = self.owned.len();
            self.run_tick(&mut stats);
            stats.agent_ticks += owned_at_start as u64;
            let ns = t0.elapsed().as_nanos() as u64;
            stats.busy_ns += ns;
            stats.tick_time.push(ns as f64);
        }
        stats.wall_ns = wall.elapsed().as_nanos() as u64;
        stats.owned_agents = self.owned.len();
        stats.x_hist = self.histogram(cmd.hist_range);
        for a in &self.owned {
            stats.x_min = stats.x_min.min(a.pos.x);
            stats.x_max = stats.x_max.max(a.pos.x);
        }
        let snapshot = cmd.checkpoint.then(|| codec::encode_snapshot(&self.snapshot()));
        (stats, snapshot)
    }

    fn histogram(&self, range: (f64, f64)) -> Vec<u64> {
        let (lo, hi) = range;
        let mut hist = vec![0u64; HIST_BINS];
        let w = (hi - lo).max(1e-12) / HIST_BINS as f64;
        for a in &self.owned {
            let bin = (((a.pos.x - lo) / w).floor().max(0.0) as usize).min(HIST_BINS - 1);
            hist[bin] += 1;
        }
        hist
    }

    /// One tick of the map–reduce(–reduce) pipeline. Public within the
    /// crate so tests can drive a worker directly.
    pub(crate) fn run_tick(&mut self, stats: &mut WorkerEpochStats) {
        let n = self.cfg.num_workers;
        let me = self.me();
        // Clone the Arc so the schema borrow is independent of `self` (the
        // receive loops below need `&mut self`).
        let behavior = Arc::clone(&self.behavior);
        let schema = behavior.schema();
        let vis = schema.visibility();

        // ---- map: distribute ---------------------------------------------
        let mut transfers: Vec<Vec<Agent>> = (0..n).map(|_| Vec::new()).collect();
        let mut replicas: Vec<Vec<Agent>> = (0..n).map(|_| Vec::new()).collect();
        let mut kept: Vec<Agent> = Vec::with_capacity(self.owned.len());
        for agent in self.owned.drain(..) {
            let owner = self.part.partition_of(agent.pos).index();
            self.targets.clear();
            self.part.replica_targets(agent.pos, vis, &mut self.targets);
            for &t in &self.targets {
                let t = t.index();
                if t != owner {
                    replicas[t].push(agent.clone());
                }
            }
            if owner == me {
                kept.push(agent);
            } else {
                transfers[owner].push(agent);
            }
        }
        for j in 0..n {
            if j == me {
                continue;
            }
            let t = codec::encode_agents(&transfers[j]);
            let r = codec::encode_agents(&replicas[j]);
            self.links.ledger.record(Traffic::Transfer, t.len());
            self.links.ledger.record(Traffic::Replica, r.len());
            self.links.peers[j]
                .send(PeerMsg::Batch { tick: self.tick, from: self.cfg.id, transfers: t, replicas: r })
                .expect("peer inbox closed");
        }
        // Collocation: same-partition agents stay in memory. The ablation
        // charges them through the codec as if they had crossed the network.
        let mut local_replicas = std::mem::take(&mut replicas[me]);
        if !self.cfg.collocation {
            let k = codec::encode_agents(&kept);
            let r = codec::encode_agents(&local_replicas);
            self.links.ledger.record(Traffic::Transfer, k.len());
            self.links.ledger.record(Traffic::Replica, r.len());
            kept = codec::decode_agents(k);
            local_replicas = codec::decode_agents(r);
        }

        // ---- receive round 1, in sender order for determinism -------------
        let mut incoming_replicas: Vec<Agent> = local_replicas;
        for msg in self.recv_round(Round::Distribute) {
            if let PeerMsg::Batch { transfers, replicas, .. } = msg {
                let t = codec::decode_agents(transfers);
                stats.transfers_in += t.len() as u64;
                kept.extend(t);
                let r = codec::decode_agents(replicas);
                stats.replicas_in += r.len() as u64;
                incoming_replicas.extend(r);
            } else {
                unreachable!("recv_round filtered by round");
            }
        }
        let n_owned = kept.len();

        // ---- columnar boundary: materialize the tick's visible pool -------
        self.pool.clear();
        self.pool.extend_from_agents(&kept);
        self.pool.extend_from_agents(&incoming_replicas);

        // ---- reduce 1: query phase over owned rows ------------------------
        query_phase_sharded(
            &behavior,
            &mut self.pool,
            n_owned,
            &mut self.index,
            self.tick,
            self.cfg.seed,
            &mut self.scratch,
            self.cfg.parallelism,
        );

        // ---- reduce 2: ship partial effects to owners, merge own ----------
        if schema.has_nonlocal_effects() {
            let mut dest_rows: Vec<Vec<(AgentId, u32)>> = (0..n).map(|_| Vec::new()).collect();
            for r in n_owned..self.pool.len() {
                let r = r as u32;
                if self.pool.effects().row_is_identity(r) {
                    continue;
                }
                let owner = self.part.partition_of(self.pool.pos(r)).index();
                debug_assert_ne!(owner, me, "replica owned by its replica holder");
                dest_rows[owner].push((self.pool.id(r), r));
            }
            #[allow(clippy::needless_range_loop)] // symmetric with round 1's send loop
            for j in 0..n {
                if j == me {
                    continue;
                }
                let bytes = codec::encode_effect_table_rows(self.pool.effects(), &dest_rows[j]);
                self.links.ledger.record(Traffic::Effects, bytes.len());
                self.links.peers[j]
                    .send(PeerMsg::Effects { tick: self.tick, from: self.cfg.id, rows: bytes })
                    .expect("peer inbox closed");
            }
            let id_to_row: HashMap<AgentId, u32> = (0..n_owned as u32).map(|i| (self.pool.id(i), i)).collect();
            for msg in self.recv_round(Round::Effects) {
                if let PeerMsg::Effects { rows, .. } = msg {
                    for (id, vals) in codec::decode_effect_rows(rows) {
                        let row = *id_to_row.get(&id).expect("partial effects addressed to the wrong owner");
                        self.pool.effects_mut().merge_row(row, &vals);
                    }
                }
            }
        }

        // ---- drop replica rows, run update (next tick's map side) ---------
        self.pool.truncate(n_owned);
        let mut gen = AgentIdGen::block(self.next_id, self.end_id);
        update_phase_sharded(
            &behavior,
            &mut self.pool,
            self.tick,
            self.cfg.seed,
            &mut gen,
            &mut self.scratch,
            self.cfg.parallelism,
        );
        self.next_id = self.end_id - gen.remaining();
        // ---- columnar boundary out: owned agents back to row records ------
        self.pool.write_agents_into(&mut self.owned);
        self.tick += 1;
    }

    /// Receive exactly one message of `round` for the current tick from
    /// every peer, buffering out-of-round traffic. Messages are returned in
    /// ascending sender order so downstream state is deterministic.
    fn recv_round(&mut self, round: Round) -> Vec<PeerMsg> {
        let n = self.cfg.num_workers;
        if n == 1 {
            return Vec::new();
        }
        let me = self.me();
        let tick = self.tick;
        let mut got: Vec<Option<PeerMsg>> = (0..n).map(|_| None).collect();
        let mut remaining = n - 1;
        // Drain previously stashed messages for this round first.
        let mut i = 0;
        while i < self.stash.len() {
            let m = &self.stash[i];
            if m.tick() == tick && m.round() == round {
                let m = self.stash.swap_remove(i);
                let from = m.from().index();
                debug_assert!(got[from].is_none(), "duplicate message from {from}");
                got[from] = Some(m);
                remaining -= 1;
            } else {
                i += 1;
            }
        }
        while remaining > 0 {
            let m = self.links.inbox.recv().expect("peer channel closed mid-round");
            if m.tick() == tick && m.round() == round {
                let from = m.from().index();
                debug_assert!(got[from].is_none(), "duplicate message from {from}");
                got[from] = Some(m);
                remaining -= 1;
            } else {
                debug_assert!(
                    m.tick() >= tick,
                    "stale message: tick {} round {:?} while at {} {:?}",
                    m.tick(),
                    m.round(),
                    tick,
                    round
                );
                self.stash.push(m);
            }
        }
        got.into_iter()
            .enumerate()
            .filter(|(j, _)| *j != me)
            .map(|(_, m)| m.expect("round barrier incomplete"))
            .collect()
    }

    /// Current tick (tests).
    #[cfg(test)]
    pub(crate) fn current_tick(&self) -> u64 {
        self.tick
    }

    /// Owned agents (tests).
    #[cfg(test)]
    pub(crate) fn owned_agents(&self) -> &[Agent] {
        &self.owned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brace_common::{FieldId, Vec2};
    use brace_core::behavior::{Neighbors, UpdateCtx};
    use brace_core::effect::EffectWriter;
    use brace_core::{AgentSchema, Combinator, TickExecutor};
    use crossbeam::channel::unbounded;

    /// Count visible neighbors; drift right by 0.1 * count.
    struct Drift(AgentSchema);

    impl Drift {
        fn new() -> Self {
            Drift(
                AgentSchema::builder("Drift")
                    .effect("n", Combinator::Sum)
                    .visibility(1.5)
                    .reachability(1.0)
                    .build()
                    .unwrap(),
            )
        }
    }

    impl Behavior for Drift {
        fn schema(&self) -> &AgentSchema {
            &self.0
        }
        fn query(
            &self,
            _m: brace_core::AgentRef<'_>,
            nbrs: &Neighbors<'_>,
            eff: &mut EffectWriter<'_>,
            _rng: &mut DetRng,
        ) {
            for _ in nbrs.iter() {
                eff.local(FieldId::new(0), 1.0);
            }
        }
        fn update(&self, me: &mut Agent, _ctx: &mut UpdateCtx<'_>) {
            me.pos.x += 0.1 * me.effect(FieldId::new(0));
        }
    }

    fn single_worker(agents: Vec<Agent>) -> Worker {
        let (_peer_tx, inbox) = unbounded();
        let (_cmd_tx, commands) = unbounded::<Command>();
        let (reports, _report_rx) = unbounded();
        let links = WorkerLinks { peers: vec![_peer_tx], inbox, commands, reports, ledger: NetLedger::new() };
        let cfg = WorkerConfig {
            id: WorkerId::new(0),
            num_workers: 1,
            index: IndexKind::KdTree,
            seed: 11,
            collocation: true,
            parallelism: 2,
        };
        let part = GridPartitioning::columns(0.0, 100.0, 1);
        Worker::new(Arc::new(Drift::new()), cfg, links, part, agents, (1 << 32, 1 << 33))
    }

    fn line(n: usize, gap: f64) -> Vec<Agent> {
        let b = Drift::new();
        (0..n).map(|i| Agent::new(AgentId::new(i as u64), Vec2::new(i as f64 * gap, 0.0), b.schema())).collect()
    }

    #[test]
    fn single_worker_tick_matches_single_node_executor() {
        let agents = line(25, 0.7);
        let mut worker = single_worker(agents.clone());
        let mut exec = TickExecutor::new(Drift::new(), agents, IndexKind::KdTree, 11);
        let mut stats = WorkerEpochStats::default();
        for _ in 0..6 {
            worker.run_tick(&mut stats);
            exec.step();
        }
        let mut a: Vec<_> = worker.owned_agents().to_vec();
        let mut b: Vec<_> = exec.agents().to_vec();
        a.sort_by_key(|x| x.id);
        b.sort_by_key(|x| x.id);
        assert_eq!(a, b, "1-worker cluster must equal the single-node executor");
        assert_eq!(worker.current_tick(), 6);
    }

    #[test]
    fn histogram_counts_owned_agents() {
        let worker = single_worker(line(10, 1.0)); // x = 0..9
        let hist = worker.histogram((0.0, 10.0));
        assert_eq!(hist.iter().sum::<u64>(), 10);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut worker = single_worker(line(5, 1.0));
        let mut stats = WorkerEpochStats::default();
        worker.run_tick(&mut stats);
        let snap = worker.snapshot();
        let before: Vec<_> = worker.owned_agents().to_vec();
        // Run further, then roll back.
        worker.run_tick(&mut stats);
        worker.run_tick(&mut stats);
        worker.restore(snap, vec![0.0, 100.0]);
        assert_eq!(worker.owned_agents(), &before[..]);
        assert_eq!(worker.current_tick(), 1);
        // Replay is deterministic.
        worker.run_tick(&mut stats);
        let replayed: Vec<_> = worker.owned_agents().to_vec();
        worker.restore(worker.snapshot(), vec![0.0, 100.0]);
        assert_eq!(worker.owned_agents(), &replayed[..]);
    }
}
