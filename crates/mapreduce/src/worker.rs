//! A worker node of the simulated cluster — **pool-resident** state,
//! delta-based communication.
//!
//! Each worker is one OS thread owning one spatial partition (the paper
//! assigns "each grid cell to a separate slave node"). Per tick it executes
//! the collocated task chain of Figure 1:
//!
//! 1. **map (distribute)** — a column scan over the pool's x/y position
//!    columns computes each owned row's owner and replica band; ownership
//!    transfers and band *entrants* ship as full records, replicas that
//!    *persist* in a peer's band ship as compact columnar delta frames
//!    (membership removals + masked field updates), and same-partition
//!    agents never move at all — they simply stay in their pool rows.
//! 2. **reduce 1 (query / local effects)** — run the query phase for its
//!    owned rows over the visible set (owned rows + the persistent replica
//!    tail), aggregating effects for every visible row.
//! 3. **reduce 2 (global effects)** — only for models with non-local effect
//!    assignments: ship each replica's non-identity partial effect row to
//!    the replica's owner and ⊕-merge rows received for its own agents.
//! 4. **update** — the next tick's map-side update, executed eagerly over
//!    the owned prefix only; kills and spawns apply through the pool's
//!    stable-row mutation ops.
//!
//! # The persistent pool
//!
//! This is the paper's main-memory argument made structural: worker state
//! is **resident across ticks**. The [`AgentPool`] holds the owned rows
//! first (`0..n_owned`, mutated only by swap-removal and insertion, with a
//! persistent id ↔ row map) followed by a persistent **replica tail**
//! updated in place by incoming delta frames. In the steady state a tick
//! performs *zero* pool rebuilds and *zero* full-population `Vec<Agent>`
//! round-trips (`WorkerEpochStats::{pool_rebuilds, vec_roundtrips}` pin
//! this in tests), the spatial index syncs incrementally because the row ↔
//! agent mapping is unchanged, and a stationary boundary population costs
//! zero replica bytes per tick (empty delta frames are never sent).
//!
//! `Vec<Agent>` materialization survives only at the real serialization
//! boundaries: checkpoint/collect snapshots, restore, and the initial
//! population hand-off — never inside a tick.
//!
//! # Replica sessions and registries
//!
//! For every destination the sender keeps a [`ReplicaSession`]: the set of
//! agents currently replicated there plus the last-shipped value of every
//! field, in columnar slots. Each tick it diffs the current band against
//! the session: entrants ship full, leavers ship removals, persisting
//! replicas ship a field mask with only the changed values (bit-compared,
//! so a stationary agent ships nothing). The receiver keeps a **registry**
//! per sender mapping slots to pool rows; both sides apply identical
//! swap-removal sequences, so slots stay in lockstep without ever shipping
//! ids for persisting replicas. A worker is its own destination too: an
//! agent transferred away that remains inside this worker's visible band
//! becomes a replica in its own tail through the same session machinery.
//!
//! All peer communication is serialized bytes over channels, recorded in
//! the [`NetLedger`]. The worker speaks to the master only between epochs.

use crate::codec::{self, ReplicaDelta, ReplicaDeltaEnc, WorkerSnapshot, DELTA_MASK_X, DELTA_MASK_Y};
use crate::net::{NetLedger, Traffic};
use crate::runtime::{Command, EpochCommand, PeerMsg, Report, Round, WorkerEpochStats};
use brace_common::{AgentId, DetRng, FieldId, Welford, WorkerId};
use brace_core::executor::{query_phase_sharded, update_phase_prefix, MaintainedIndex, PendingSpawn, TickScratch};
use brace_core::{Agent, AgentPool, Behavior};
use brace_spatial::{GridPartitioning, IndexKind, Partitioner};
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Bins in the per-worker x-position histogram reported to the master.
pub const HIST_BINS: usize = 64;

/// `row_meta` sentinel for owned rows (no replica source/slot).
const NO_META: (u32, u32) = (u32::MAX, u32::MAX);

/// How replicas travel between workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistributionMode {
    /// Delta distribution (default): band entrants ship full records,
    /// persisting replicas ship masked columnar delta frames, leavers ship
    /// removals. The steady-state cost of a boundary population is the
    /// bytes its agents actually change per tick.
    #[default]
    Delta,
    /// Full redistribution every tick (the disk-era ablation baseline):
    /// sessions reset each tick, so every replica re-ships as a full
    /// record. Bit-identical results for range-probe models — proven by
    /// the `distributed_equivalence` proptests — at strictly more bytes.
    /// (`NeighborProbe::Nearest` models carry the executor's documented
    /// caveat: exact distance ties at the k-th neighbor break by pool row,
    /// which depends on replica placement, so their distributed contract
    /// is approximate under either mode.)
    Full,
}

/// Static configuration for one worker.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    pub id: WorkerId,
    pub num_workers: usize,
    pub index: IndexKind,
    /// Master seed; agent RNG streams derive from it exactly as on a single
    /// node, so placement does not perturb the simulation.
    pub seed: u64,
    /// When false, even same-partition hand-offs are serialized and charged
    /// to the ledger — the no-collocation ablation.
    pub collocation: bool,
    /// Intra-worker thread budget for the query/update phases (`1` =
    /// serial, `0` = all cores). Multiplies with the worker count, so
    /// clusters saturating the machine with workers should leave this at 1.
    /// Never affects results (the executor's shard plan is thread-count
    /// independent).
    pub parallelism: usize,
    /// Replica transport: delta frames (default) or full redistribution.
    /// Never affects results for range-probe models, only bytes (k-NN
    /// models tie-break by pool row — see [`DistributionMode`]).
    pub distribution: DistributionMode,
}

/// Communication endpoints for one worker.
pub struct WorkerLinks {
    /// Senders to every worker's inbox, indexed by worker; `peers[self]` is
    /// unused.
    pub peers: Vec<Sender<PeerMsg>>,
    pub inbox: Receiver<PeerMsg>,
    pub commands: Receiver<Command>,
    pub reports: Sender<Report>,
    pub ledger: NetLedger,
}

/// Sender-side replica state for one destination: which agents are
/// currently replicated there (dense slots, id-indexed) and the
/// last-shipped value of every field, stored columnar for the bitwise
/// delta compare. See the module docs for the slot-lockstep protocol.
struct ReplicaSession {
    ids: Vec<AgentId>,
    id_to_slot: HashMap<AgentId, u32>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// One column per state field, slot-indexed.
    states: Vec<Vec<f64>>,
    /// Full-mode bookkeeping: true when the receiver's registry is
    /// non-empty (entrants were shipped last tick) and the next full-mode
    /// frame must carry the reset flag. Lets full mode skip populating the
    /// columnar session it would only throw away.
    needs_reset: bool,
    // Per-tick scratch.
    seen: Vec<bool>,
    entrants: Vec<u32>,
    enc: ReplicaDeltaEnc,
}

impl ReplicaSession {
    fn new(num_states: usize) -> Self {
        ReplicaSession {
            ids: Vec::new(),
            id_to_slot: HashMap::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            states: vec![Vec::new(); num_states],
            needs_reset: false,
            seen: Vec::new(),
            entrants: Vec::new(),
            enc: ReplicaDeltaEnc::new(),
        }
    }

    /// Forget everything (restore path; receivers drop their registries in
    /// the same stroke, so no reset needs to cross the network).
    fn reset(&mut self) {
        self.ids.clear();
        self.id_to_slot.clear();
        self.xs.clear();
        self.ys.clear();
        for col in &mut self.states {
            col.clear();
        }
        self.needs_reset = false;
    }

    fn store(&mut self, slot: usize, pool: &AgentPool, row: u32) {
        let pos = pool.pos(row);
        self.xs[slot] = pos.x;
        self.ys[slot] = pos.y;
        for (f, col) in self.states.iter_mut().enumerate() {
            col[slot] = pool.state(row, FieldId::new(f as u16));
        }
    }

    fn append(&mut self, pool: &AgentPool, row: u32) {
        let slot = self.ids.len();
        self.ids.push(pool.id(row));
        self.id_to_slot.insert(pool.id(row), slot as u32);
        let pos = pool.pos(row);
        self.xs.push(pos.x);
        self.ys.push(pos.y);
        for (f, col) in self.states.iter_mut().enumerate() {
            col.push(pool.state(row, FieldId::new(f as u16)));
        }
    }

    /// Swap-remove `slot`, exactly mirroring the receiver's registry op.
    fn swap_remove_slot(&mut self, slot: usize) {
        self.id_to_slot.remove(&self.ids[slot]);
        self.ids.swap_remove(slot);
        self.xs.swap_remove(slot);
        self.ys.swap_remove(slot);
        for col in &mut self.states {
            col.swap_remove(slot);
        }
        self.seen.swap_remove(slot);
        if slot < self.ids.len() {
            self.id_to_slot.insert(self.ids[slot], slot as u32);
        }
    }

    /// Bit-compare pool row `row` against the last-shipped values in
    /// `slot`: a set bit means the field changed and must ship.
    fn delta_mask(&self, pool: &AgentPool, row: u32, slot: usize) -> u32 {
        let pos = pool.pos(row);
        let mut mask = 0u32;
        if pos.x.to_bits() != self.xs[slot].to_bits() {
            mask |= DELTA_MASK_X;
        }
        if pos.y.to_bits() != self.ys[slot].to_bits() {
            mask |= DELTA_MASK_Y;
        }
        for (f, col) in self.states.iter().enumerate() {
            if pool.state(row, FieldId::new(f as u16)).to_bits() != col[slot].to_bits() {
                mask |= 1 << (2 + f);
            }
        }
        mask
    }

    /// Diff the current tick's replica band `rows` against the session and
    /// encode this tick's payloads: `(full records for entrants, delta
    /// frame for removals + changed persisting replicas)`. Both are empty
    /// (`Bytes::new()`) when there is nothing to say.
    fn encode_tick(&mut self, pool: &AgentPool, rows: &[u32], mode: DistributionMode) -> (Bytes, Bytes) {
        self.enc.clear();
        self.entrants.clear();
        if mode == DistributionMode::Full {
            // Full redistribution: drop the receiver's registry, ship
            // everything as entrants. (No reset frame needed when the
            // registry is already empty.) The columnar session stays
            // unpopulated — full mode would only discard it next tick.
            if self.needs_reset {
                self.enc.mark_reset();
            }
            self.needs_reset = !rows.is_empty();
            return (codec::encode_pool_rows(pool, rows), self.enc.finish());
        }
        self.seen.clear();
        self.seen.resize(self.ids.len(), false);
        for &r in rows {
            match self.id_to_slot.get(&pool.id(r)) {
                Some(&s) => self.seen[s as usize] = true,
                None => self.entrants.push(r),
            }
        }
        // Leavers, descending slot order: every slot above the current
        // one is already resolved, so the row swapped in is always a
        // kept one and the receiver can replay the list verbatim.
        for slot in (0..self.ids.len()).rev() {
            if !self.seen[slot] {
                self.enc.push_removal(slot as u32);
                self.swap_remove_slot(slot);
            }
        }
        // Persisting replicas: masked updates for changed fields only.
        for &r in rows {
            if let Some(&slot) = self.id_to_slot.get(&pool.id(r)) {
                let mask = self.delta_mask(pool, r, slot as usize);
                if mask != 0 {
                    self.enc.push_update(slot, mask, pool, r);
                    self.store(slot as usize, pool, r);
                }
            }
        }
        let fulls = codec::encode_pool_rows(pool, &self.entrants);
        let entrants = std::mem::take(&mut self.entrants);
        for &r in &entrants {
            self.append(pool, r);
        }
        self.entrants = entrants;
        (fulls, self.enc.finish())
    }
}

/// One worker node. Owns its agents exclusively; everything in and out is
/// a message.
pub struct Worker {
    behavior: Arc<dyn Behavior>,
    cfg: WorkerConfig,
    links: WorkerLinks,
    part: GridPartitioning,
    /// The persistent columnar world: rows `0..n_owned` are this worker's
    /// agents, rows `n_owned..` the replica tail. Lives across ticks;
    /// rebuilt from row records only at restore (counted).
    pool: AgentPool,
    n_owned: usize,
    /// Persistent owner-side id ↔ row map, updated by every stable-row
    /// mutation; the effects round resolves shipped partial rows through
    /// it with no per-tick rebuild.
    id_to_row: HashMap<AgentId, u32>,
    /// Sender-side replica sessions, one per destination (self included:
    /// agents transferred away that stay visible here).
    sessions: Vec<ReplicaSession>,
    /// Receiver-side registries, one per source: slot → pool row.
    registries: Vec<Vec<u32>>,
    /// Reverse map, indexed by pool row: `(source, slot)` of the replica
    /// occupying that row, [`NO_META`] for owned rows. Row-indexed so
    /// every stable-row mutation updates it in O(1) — only the one row
    /// that physically moved needs its entry touched.
    row_meta: Vec<(u32, u32)>,
    /// Spatial index maintained across ticks: with pool-resident state the
    /// id column is unchanged in the steady state, so syncs are
    /// incremental and full rebuilds happen only on membership changes.
    index: MaintainedIndex,
    /// Reusable per-tick buffers (shard tables, spawn queues) for the
    /// sharded executor phases.
    scratch: TickScratch,
    tick: u64,
    /// Next spawn id of the **global** cross-worker counter. Every worker
    /// advances it identically each tick (the spawn sequencing round ships
    /// per-parent counts), so spawn ids are a pure function of the world —
    /// `(parent id, ordinal)` order — and any worker's snapshot carries the
    /// authoritative cursor.
    next_id: u64,
    /// Worker-level RNG (reserved for runtime-level randomness; agent
    /// streams come from the seed directly). Checkpointed for completeness.
    rng: DetRng,
    /// Out-of-round messages (peers may run one round ahead).
    stash: Vec<PeerMsg>,
    /// Lifetime counters behind `WorkerEpochStats::{pool_rebuilds,
    /// vec_roundtrips}` — the tripwires pinning the pool-resident claim.
    pool_rebuilds: u64,
    vec_roundtrips: u64,
    // Reusable per-tick scratch.
    owners: Vec<u32>,
    targets: Vec<brace_common::PartitionId>,
    dest_transfers: Vec<Vec<u32>>,
    dest_replicas: Vec<Vec<u32>>,
    removals: Vec<u32>,
    killed: Vec<u32>,
    spawned: Vec<PendingSpawn>,
    spawn_runs: Vec<(AgentId, u32)>,
    merged_runs: Vec<(AgentId, u32, bool)>,
    delta_values: Vec<f64>,
    kept_rows: Vec<u32>,
}

impl Worker {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        behavior: Arc<dyn Behavior>,
        cfg: WorkerConfig,
        links: WorkerLinks,
        part: GridPartitioning,
        owned: Vec<Agent>,
        next_spawn_id: u64,
    ) -> Self {
        let schema = behavior.schema();
        // The facade (`ClusterSim::new`) rejects over-wide schemas with a
        // proper configuration error before any worker exists. For direct
        // embedders bypassing the facade this must stay a hard assert: a
        // 31st state field would wrap the delta mask's shift onto the
        // x-position bit and corrupt replicas silently.
        assert!(
            schema.num_states() <= codec::DELTA_MAX_STATES,
            "schema `{}` exceeds the delta mask's {} state fields",
            schema.name(),
            codec::DELTA_MAX_STATES
        );
        let pool = AgentPool::new(schema);
        let index = MaintainedIndex::new(cfg.index);
        let rng = DetRng::seed_from_u64(cfg.seed).stream(0x5EED_0000 + cfg.id.raw() as u64);
        let n = cfg.num_workers;
        let num_states = schema.num_states();
        let mut worker = Worker {
            behavior,
            cfg,
            links,
            part,
            pool,
            n_owned: 0,
            id_to_row: HashMap::new(),
            sessions: (0..n).map(|_| ReplicaSession::new(num_states)).collect(),
            registries: (0..n).map(|_| Vec::new()).collect(),
            row_meta: Vec::new(),
            index,
            scratch: TickScratch::new(),
            tick: 0,
            next_id: next_spawn_id,
            rng,
            stash: Vec::new(),
            pool_rebuilds: 0,
            vec_roundtrips: 0,
            owners: Vec::new(),
            targets: Vec::new(),
            dest_transfers: (0..n).map(|_| Vec::new()).collect(),
            dest_replicas: (0..n).map(|_| Vec::new()).collect(),
            removals: Vec::new(),
            killed: Vec::new(),
            spawned: Vec::new(),
            spawn_runs: Vec::new(),
            merged_runs: Vec::new(),
            delta_values: Vec::new(),
            kept_rows: Vec::new(),
        };
        worker.rebuild_pool(&owned);
        worker
    }

    fn me(&self) -> usize {
        self.cfg.id.index()
    }

    /// Rebuild the resident pool from row records — the serialization
    /// boundary in (construction, restore). Drops the replica tail and
    /// every session/registry; peers do the same in the same stroke
    /// (coordinated restore), so the next tick re-ships bands as entrants.
    fn rebuild_pool(&mut self, owned: &[Agent]) {
        self.pool.clear();
        self.pool.extend_from_agents(owned);
        self.n_owned = owned.len();
        self.id_to_row.clear();
        self.id_to_row.extend(owned.iter().enumerate().map(|(r, a)| (a.id, r as u32)));
        for s in &mut self.sessions {
            s.reset();
        }
        for r in &mut self.registries {
            r.clear();
        }
        self.row_meta.clear();
        self.row_meta.resize(owned.len(), NO_META);
        self.pool_rebuilds += 1;
    }

    /// Thread entry point: serve master commands until `Stop`.
    pub fn run_loop(mut self) {
        loop {
            match self.links.commands.recv() {
                Err(_) => break, // master dropped; shut down
                Ok(Command::Stop) => break,
                Ok(Command::Collect) => {
                    let snapshot = codec::encode_snapshot(&self.snapshot());
                    self.links.ledger.record(Traffic::Control, snapshot.len());
                    let _ = self.links.reports.send(Report::Collected { worker: self.cfg.id, snapshot });
                }
                Ok(Command::Restore { snapshot, x_bounds }) => {
                    self.restore(codec::decode_snapshot(snapshot), x_bounds);
                }
                Ok(Command::RunEpoch(cmd)) => {
                    let (stats, snapshot) = self.run_epoch(&cmd);
                    self.links.ledger.record(Traffic::Control, 64 + stats.x_hist.len() * 8);
                    let _ = self.links.reports.send(Report::EpochDone { worker: self.cfg.id, stats, snapshot });
                }
            }
        }
    }

    fn snapshot(&mut self) -> WorkerSnapshot {
        // The one sanctioned owned-population materialization: checkpoint /
        // collect, at epoch granularity. Counted so epoch stats can prove
        // ticks never did this.
        self.vec_roundtrips += 1;
        let mut agents = Vec::new();
        self.pool.write_agents_prefix_into(self.n_owned, &mut agents);
        WorkerSnapshot { tick: self.tick, next_spawn_id: self.next_id, rng: self.rng.clone(), agents }
    }

    fn restore(&mut self, snap: WorkerSnapshot, x_bounds: Vec<f64>) {
        self.tick = snap.tick;
        self.next_id = snap.next_spawn_id;
        self.rng = snap.rng;
        self.part.set_x_bounds(x_bounds);
        self.stash.clear();
        self.rebuild_pool(&snap.agents);
    }

    /// Execute one epoch: optional repartition switch, then `cmd.ticks`
    /// ticks, then statistics (and a checkpoint snapshot if asked).
    fn run_epoch(&mut self, cmd: &EpochCommand) -> (WorkerEpochStats, Option<Bytes>) {
        if let Some(bounds) = &cmd.new_x_bounds {
            self.part.set_x_bounds(bounds.clone());
        }
        let wall = Instant::now();
        let mut stats = WorkerEpochStats {
            comm_rounds_per_tick: if self.behavior.schema().has_nonlocal_effects() { 2 } else { 1 },
            x_min: f64::INFINITY,
            x_max: f64::NEG_INFINITY,
            tick_time: Welford::new(),
            ..Default::default()
        };
        let (rebuilds0, roundtrips0, index0) = (self.pool_rebuilds, self.vec_roundtrips, self.index.rebuilds());
        for _ in 0..cmd.ticks {
            let t0 = Instant::now();
            let owned_at_start = self.n_owned;
            self.run_tick(&mut stats);
            stats.agent_ticks += owned_at_start as u64;
            let ns = t0.elapsed().as_nanos() as u64;
            stats.busy_ns += ns;
            stats.tick_time.push(ns as f64);
        }
        stats.pool_rebuilds = self.pool_rebuilds - rebuilds0;
        stats.vec_roundtrips = self.vec_roundtrips - roundtrips0;
        stats.index_rebuilds = self.index.rebuilds() - index0;
        stats.wall_ns = wall.elapsed().as_nanos() as u64;
        stats.owned_agents = self.n_owned;
        stats.x_hist = self.histogram(cmd.hist_range);
        for &x in &self.pool.xs()[..self.n_owned] {
            stats.x_min = stats.x_min.min(x);
            stats.x_max = stats.x_max.max(x);
        }
        let snapshot = cmd.checkpoint.then(|| codec::encode_snapshot(&self.snapshot()));
        (stats, snapshot)
    }

    fn histogram(&self, range: (f64, f64)) -> Vec<u64> {
        let (lo, hi) = range;
        let mut hist = vec![0u64; HIST_BINS];
        let w = (hi - lo).max(1e-12) / HIST_BINS as f64;
        for &x in &self.pool.xs()[..self.n_owned] {
            let bin = (((x - lo) / w).floor().max(0.0) as usize).min(HIST_BINS - 1);
            hist[bin] += 1;
        }
        hist
    }

    // ---- stable-row pool mutations (all O(1) in pool size) ------------

    /// Remove owned row `r`: the last owned row swaps into the hole, the
    /// last tail row swaps down to close the owned/tail seam, and the
    /// id ↔ row map plus the moved replica's registry entry follow.
    fn remove_owned_row(&mut self, r: u32) {
        debug_assert!((r as usize) < self.n_owned);
        let last_owned = (self.n_owned - 1) as u32;
        self.id_to_row.remove(&self.pool.id(r));
        if r != last_owned {
            self.pool.copy_row_within(last_owned, r);
            self.id_to_row.insert(self.pool.id(r), r);
        }
        let last = (self.pool.len() - 1) as u32;
        if last > last_owned {
            // Non-empty tail: its last row relocates to the freed seam slot.
            self.pool.copy_row_within(last, last_owned);
            let meta = self.row_meta[last as usize];
            self.registries[meta.0 as usize][meta.1 as usize] = last_owned;
            self.row_meta[last_owned as usize] = meta;
        }
        self.row_meta.pop();
        self.pool.pop_row();
        self.n_owned -= 1;
    }

    /// Insert a new owned row: the replica occupying the seam slot (if
    /// any) relocates to the pool end, and the new agent takes the seam.
    fn insert_owned(&mut self, a: &Agent) {
        let seam = self.n_owned as u32;
        if self.pool.len() > self.n_owned {
            self.pool.push_row_copy(seam);
            let meta = self.row_meta[seam as usize];
            self.registries[meta.0 as usize][meta.1 as usize] = (self.pool.len() - 1) as u32;
            self.row_meta.push(meta);
            self.row_meta[seam as usize] = NO_META;
            self.pool.overwrite_row(seam, a);
        } else {
            self.pool.push_agent(a);
            self.row_meta.push(NO_META);
        }
        self.id_to_row.insert(a.id, seam);
        self.n_owned += 1;
    }

    /// Remove the tail replica at `(src, slot)`, replaying the sender's
    /// swap-removal on the registry so slots stay in lockstep.
    fn remove_tail_row(&mut self, src: usize, slot: usize) {
        let row = self.registries[src][slot];
        let last = (self.pool.len() - 1) as u32;
        if row != last {
            self.pool.copy_row_within(last, row);
            let moved = self.row_meta[last as usize];
            self.registries[moved.0 as usize][moved.1 as usize] = row;
            self.row_meta[row as usize] = moved;
        }
        self.row_meta.pop();
        self.pool.pop_row();
        self.registries[src].swap_remove(slot);
        if slot < self.registries[src].len() {
            let moved_row = self.registries[src][slot];
            self.row_meta[moved_row as usize] = (src as u32, slot as u32);
        }
    }

    /// Append a full replica record from `src` at the tail end.
    fn push_tail_row(&mut self, src: usize, a: &Agent) {
        self.pool.push_agent(a);
        let row = (self.pool.len() - 1) as u32;
        self.registries[src].push(row);
        self.row_meta.push((src as u32, (self.registries[src].len() - 1) as u32));
    }

    /// Apply one masked field update to pool row `row` (field order: x, y,
    /// then state slots).
    fn apply_update(&mut self, row: u32, mask: u32, values: &[f64]) {
        let mut vi = 0;
        let mut pos = self.pool.pos(row);
        if mask & DELTA_MASK_X != 0 {
            pos.x = values[vi];
            vi += 1;
        }
        if mask & DELTA_MASK_Y != 0 {
            pos.y = values[vi];
            vi += 1;
        }
        self.pool.set_pos(row, pos);
        let mut bits = mask >> 2;
        let mut s = 0u16;
        while bits != 0 {
            if bits & 1 != 0 {
                self.pool.set_state(row, FieldId::new(s), values[vi]);
                vi += 1;
            }
            bits >>= 1;
            s += 1;
        }
        debug_assert_eq!(vi, values.len(), "mask/value shape mismatch");
    }

    /// Apply one sender's replica payloads: registry reset (full mode),
    /// removals, masked updates, then entrant appends — in exactly the
    /// order the sender's session performed them. Updates drain the
    /// frame's byte cursor through one reused value buffer.
    fn apply_replicas(&mut self, src: usize, fulls: &[Agent], delta: &mut ReplicaDelta) {
        if delta.reset {
            for slot in (0..self.registries[src].len()).rev() {
                self.remove_tail_row(src, slot);
            }
        }
        for &slot in &delta.removals {
            self.remove_tail_row(src, slot as usize);
        }
        let mut values = std::mem::take(&mut self.delta_values);
        while let Some((slot, mask)) = delta.next_update_into(&mut values) {
            let row = self.registries[src][slot as usize];
            self.apply_update(row, mask, &values);
        }
        self.delta_values = values;
        for a in fulls {
            self.push_tail_row(src, a);
        }
    }

    /// One tick of the map–reduce(–reduce) pipeline. Public within the
    /// crate so tests can drive a worker directly.
    pub(crate) fn run_tick(&mut self, stats: &mut WorkerEpochStats) {
        let n = self.cfg.num_workers;
        let me = self.me();
        // Clone the Arc so the schema borrow is independent of `self` (the
        // receive loops below need `&mut self`).
        let behavior = Arc::clone(&self.behavior);
        let schema = behavior.schema();
        let vis = schema.visibility();
        let mode = self.cfg.distribution;

        // ---- map: distribute — a column scan over the position columns ----
        self.part.owners_into(&self.pool.xs()[..self.n_owned], &self.pool.ys()[..self.n_owned], &mut self.owners);
        for d in &mut self.dest_transfers {
            d.clear();
        }
        for d in &mut self.dest_replicas {
            d.clear();
        }
        let one_row = self.part.rows() == 1;
        for r in 0..self.n_owned as u32 {
            let owner = self.owners[r as usize] as usize;
            if one_row {
                // 1-D columns layout: the replica band is a contiguous
                // column range around the owner.
                let (c0, c1) = self.part.replica_col_range(self.pool.xs()[r as usize], vis);
                for t in c0..=c1 {
                    if t as usize != owner {
                        self.dest_replicas[t as usize].push(r);
                    }
                }
            } else {
                self.targets.clear();
                self.part.replica_targets(self.pool.pos(r), vis, &mut self.targets);
                for i in 0..self.targets.len() {
                    let t = self.targets[i].index();
                    if t != owner {
                        self.dest_replicas[t].push(r);
                    }
                }
            }
            if owner != me {
                self.dest_transfers[owner].push(r);
            }
        }
        // Encode and send every peer's payloads before any pool mutation
        // (the collected rows stay valid). Empty payloads cost no ledger
        // bytes — a stationary band is literally free.
        for j in 0..n {
            if j == me {
                continue;
            }
            let transfers = codec::encode_pool_rows(&self.pool, &self.dest_transfers[j]);
            let rows = std::mem::take(&mut self.dest_replicas[j]);
            let (full, delta) = self.sessions[j].encode_tick(&self.pool, &rows, mode);
            self.dest_replicas[j] = rows;
            if !transfers.is_empty() {
                self.links.ledger.record(Traffic::Transfer, transfers.len());
            }
            if !full.is_empty() {
                self.links.ledger.record(Traffic::ReplicaFull, full.len());
            }
            if !delta.is_empty() {
                self.links.ledger.record(Traffic::ReplicaDelta, delta.len());
            }
            self.links.peers[j]
                .send(PeerMsg::Batch {
                    tick: self.tick,
                    from: self.cfg.id,
                    transfers,
                    replica_full: full,
                    replica_delta: delta,
                })
                .expect("peer inbox closed");
        }
        // Self-destined replicas: agents transferring away that remain in
        // this worker's own visible band go through the same session, so
        // the tail treats "me" as just another source.
        let rows = std::mem::take(&mut self.dest_replicas[me]);
        let (self_full, self_delta) = self.sessions[me].encode_tick(&self.pool, &rows, mode);
        self.dest_replicas[me] = rows;
        // Collocation ablation: same-partition agents normally never touch
        // the codec — charge them (and the self replica frames) as if they
        // had crossed the network, and round-trip the bytes for honesty.
        if !self.cfg.collocation {
            let mut kept = std::mem::take(&mut self.kept_rows);
            kept.clear();
            kept.extend((0..self.n_owned as u32).filter(|&r| self.owners[r as usize] as usize == me));
            let bytes = codec::encode_pool_rows(&self.pool, &kept);
            if !bytes.is_empty() {
                self.links.ledger.record(Traffic::Transfer, bytes.len());
                for (&r, a) in kept.iter().zip(codec::decode_agents_opt(bytes)) {
                    self.pool.overwrite_row(r, &a);
                }
            }
            self.kept_rows = kept;
            if !self_full.is_empty() {
                self.links.ledger.record(Traffic::ReplicaFull, self_full.len());
            }
            if !self_delta.is_empty() {
                self.links.ledger.record(Traffic::ReplicaDelta, self_delta.len());
            }
        }

        // ---- apply outbound ownership transfers (rows leave the pool) ----
        self.removals.clear();
        for j in 0..n {
            if j != me {
                self.removals.extend_from_slice(&self.dest_transfers[j]);
            }
        }
        self.removals.sort_unstable_by(|a, b| b.cmp(a));
        let removals = std::mem::take(&mut self.removals);
        for &r in &removals {
            self.remove_owned_row(r);
        }
        self.removals = removals;

        // ---- apply self replicas, then each peer's payloads in sender
        // order (the lockstep barrier of recv_round makes this
        // deterministic) ----
        let self_fulls = codec::decode_agents_opt(self_full);
        let mut self_delta = codec::decode_replica_delta(self_delta);
        self.apply_replicas(me, &self_fulls, &mut self_delta);
        for msg in self.recv_round(Round::Distribute) {
            if let PeerMsg::Batch { from, transfers, replica_full, replica_delta, .. } = msg {
                let src = from.index();
                let fulls = codec::decode_agents_opt(replica_full);
                let mut delta = codec::decode_replica_delta(replica_delta);
                stats.replicas_in += fulls.len() as u64;
                stats.replica_deltas_in += delta.updates_len() as u64;
                self.apply_replicas(src, &fulls, &mut delta);
                let transfers = codec::decode_agents_opt(transfers);
                stats.transfers_in += transfers.len() as u64;
                for a in &transfers {
                    self.insert_owned(a);
                }
            } else {
                unreachable!("recv_round filtered by round");
            }
        }
        let n_owned = self.n_owned;

        // ---- reduce 1: query phase over owned rows ------------------------
        query_phase_sharded(
            &behavior,
            &mut self.pool,
            n_owned,
            &mut self.index,
            self.tick,
            self.cfg.seed,
            &mut self.scratch,
            self.cfg.parallelism,
        );

        // ---- reduce 2: ship partial effects to owners, merge own ----------
        if schema.has_nonlocal_effects() {
            let mut dest_rows: Vec<Vec<(AgentId, u32)>> = (0..n).map(|_| Vec::new()).collect();
            for r in n_owned..self.pool.len() {
                let r = r as u32;
                if self.pool.effects().row_is_identity(r) {
                    continue;
                }
                let owner = self.part.partition_of(self.pool.pos(r)).index();
                debug_assert_ne!(owner, me, "replica owned by its replica holder");
                dest_rows[owner].push((self.pool.id(r), r));
            }
            #[allow(clippy::needless_range_loop)] // symmetric with round 1's send loop
            for j in 0..n {
                if j == me {
                    continue;
                }
                let bytes = codec::encode_effect_table_rows(self.pool.effects(), &dest_rows[j]);
                self.links.ledger.record(Traffic::Effects, bytes.len());
                self.links.peers[j]
                    .send(PeerMsg::Effects { tick: self.tick, from: self.cfg.id, rows: bytes })
                    .expect("peer inbox closed");
            }
            // The persistent id ↔ row map replaces the per-tick rebuild
            // the old drain-and-refill worker paid here.
            for msg in self.recv_round(Round::Effects) {
                if let PeerMsg::Effects { rows, .. } = msg {
                    for (id, vals) in codec::decode_effect_rows(rows) {
                        let row = *self.id_to_row.get(&id).expect("partial effects addressed to the wrong owner");
                        self.pool.effects_mut().merge_row(row, &vals);
                    }
                }
            }
        }

        // ---- update (next tick's map side) over the owned prefix only;
        // the replica tail stays resident for the next distribute ----------
        update_phase_prefix(
            &behavior,
            &mut self.pool,
            n_owned,
            self.tick,
            self.cfg.seed,
            &mut self.scratch,
            self.cfg.parallelism,
            &mut self.killed,
            &mut self.spawned,
        );

        // ---- spawn sequencing round: global (parent id, ordinal) ids ------
        // Pending spawns sort by parent (stable, so each parent's spawn-call
        // order survives; worker pool rows are swap-churned, unlike the
        // id-ordered single-node pool). Parents are globally unique, so
        // merging every worker's ascending per-parent count runs yields one
        // total order — the same order a single node produces — and each
        // worker ranks its own spawns inside it. All workers advance the
        // shared `next_id` cursor by the tick's global spawn total.
        self.spawned.sort_by_key(|s| s.parent);
        self.spawn_runs.clear();
        for s in &self.spawned {
            match self.spawn_runs.last_mut() {
                Some((p, c)) if *p == s.parent => *c += 1,
                _ => self.spawn_runs.push((s.parent, 1)),
            }
        }
        if n > 1 {
            let runs = codec::encode_spawn_runs(&self.spawn_runs);
            for j in 0..n {
                if j == me {
                    continue;
                }
                if !runs.is_empty() {
                    self.links.ledger.record(Traffic::Spawns, runs.len());
                }
                self.links.peers[j]
                    .send(PeerMsg::Spawns { tick: self.tick, from: self.cfg.id, runs: runs.clone() })
                    .expect("peer inbox closed");
            }
        }

        // Kills, descending so pending rows stay valid (before inserts, as
        // on a single node: retain_alive precedes spawn appends).
        let killed = std::mem::take(&mut self.killed);
        for &r in killed.iter().rev() {
            self.remove_owned_row(r);
        }
        self.killed = killed;

        // Merge the peers' runs with ours and insert our spawns at their
        // global ranks.
        let mut merged = std::mem::take(&mut self.merged_runs);
        merged.clear();
        merged.extend(self.spawn_runs.iter().map(|&(p, c)| (p, c, true)));
        if n > 1 {
            for msg in self.recv_round(Round::Spawns) {
                if let PeerMsg::Spawns { runs, .. } = msg {
                    merged.extend(codec::decode_spawn_runs(runs).into_iter().map(|(p, c)| (p, c, false)));
                } else {
                    unreachable!("recv_round filtered by round");
                }
            }
            merged.sort_unstable_by_key(|&(p, _, _)| p);
        }
        let mut spawned = std::mem::take(&mut self.spawned);
        {
            let mut mine = spawned.drain(..);
            for &(parent, count, is_mine) in &merged {
                if is_mine {
                    for _ in 0..count {
                        let s = mine.next().expect("run/pending shape mismatch");
                        debug_assert_eq!(s.parent, parent);
                        let a = Agent::with_state(AgentId::new(self.next_id), s.pos, s.state, schema);
                        self.insert_owned(&a);
                        self.next_id += 1;
                    }
                } else {
                    self.next_id += count as u64;
                }
            }
            debug_assert!(mine.next().is_none(), "pending spawns left unsequenced");
        }
        self.spawned = spawned;
        self.merged_runs = merged;
        self.pool.reset_effects();
        self.tick += 1;
    }

    /// Receive exactly one message of `round` for the current tick from
    /// every peer, buffering out-of-round traffic. Messages are returned in
    /// ascending sender order so downstream state is deterministic.
    fn recv_round(&mut self, round: Round) -> Vec<PeerMsg> {
        let n = self.cfg.num_workers;
        if n == 1 {
            return Vec::new();
        }
        let me = self.me();
        let tick = self.tick;
        let mut got: Vec<Option<PeerMsg>> = (0..n).map(|_| None).collect();
        let mut remaining = n - 1;
        // Drain previously stashed messages for this round first.
        let mut i = 0;
        while i < self.stash.len() {
            let m = &self.stash[i];
            if m.tick() == tick && m.round() == round {
                let m = self.stash.swap_remove(i);
                let from = m.from().index();
                debug_assert!(got[from].is_none(), "duplicate message from {from}");
                got[from] = Some(m);
                remaining -= 1;
            } else {
                i += 1;
            }
        }
        while remaining > 0 {
            let m = self.links.inbox.recv().expect("peer channel closed mid-round");
            if m.tick() == tick && m.round() == round {
                let from = m.from().index();
                debug_assert!(got[from].is_none(), "duplicate message from {from}");
                got[from] = Some(m);
                remaining -= 1;
            } else {
                debug_assert!(
                    m.tick() >= tick,
                    "stale message: tick {} round {:?} while at {} {:?}",
                    m.tick(),
                    m.round(),
                    tick,
                    round
                );
                self.stash.push(m);
            }
        }
        got.into_iter()
            .enumerate()
            .filter(|(j, _)| *j != me)
            .map(|(_, m)| m.expect("round barrier incomplete"))
            .collect()
    }

    /// Current tick (tests).
    #[cfg(test)]
    pub(crate) fn current_tick(&self) -> u64 {
        self.tick
    }

    /// Materialized owned agents (tests only — production reads columns).
    #[cfg(test)]
    pub(crate) fn owned_agents(&self) -> Vec<Agent> {
        let mut out = Vec::new();
        self.pool.write_agents_prefix_into(self.n_owned, &mut out);
        out
    }

    /// Structural invariants of the persistent pool (test support): the
    /// id map covers exactly the owned prefix, registries and row_meta
    /// describe the same bijection onto the tail rows.
    #[cfg(test)]
    pub(crate) fn check_invariants(&self) {
        assert_eq!(self.id_to_row.len(), self.n_owned, "id map covers the owned prefix");
        for r in 0..self.n_owned as u32 {
            assert_eq!(self.id_to_row.get(&self.pool.id(r)), Some(&r), "id map row {r}");
        }
        assert_eq!(self.row_meta.len(), self.pool.len(), "row_meta covers the pool");
        for r in 0..self.n_owned {
            assert_eq!(self.row_meta[r], NO_META, "owned row {r} must carry no replica meta");
        }
        for r in self.n_owned..self.pool.len() {
            let (src, slot) = self.row_meta[r];
            assert_eq!(self.registries[src as usize][slot as usize], r as u32, "registry/meta bijection at row {r}");
        }
        let registry_total: usize = self.registries.iter().map(|r| r.len()).sum();
        assert_eq!(registry_total, self.pool.len() - self.n_owned, "registries cover the tail");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brace_common::{FieldId, Vec2};
    use brace_core::behavior::{Neighbors, UpdateCtx};
    use brace_core::effect::EffectWriter;
    use brace_core::{AgentSchema, Combinator, TickExecutor};
    use crossbeam::channel::unbounded;

    /// Count visible neighbors; drift right by 0.1 * count.
    struct Drift(AgentSchema);

    impl Drift {
        fn new() -> Self {
            Drift(
                AgentSchema::builder("Drift")
                    .effect("n", Combinator::Sum)
                    .visibility(1.5)
                    .reachability(1.0)
                    .build()
                    .unwrap(),
            )
        }
    }

    impl Behavior for Drift {
        fn schema(&self) -> &AgentSchema {
            &self.0
        }
        fn query(
            &self,
            _m: brace_core::AgentRef<'_>,
            nbrs: &Neighbors<'_>,
            eff: &mut EffectWriter<'_>,
            _rng: &mut DetRng,
        ) {
            for _ in nbrs.iter() {
                eff.local(FieldId::new(0), 1.0);
            }
        }
        fn update(&self, me: &mut Agent, _ctx: &mut UpdateCtx<'_>) {
            me.pos.x += 0.1 * me.effect(FieldId::new(0));
        }
    }

    fn single_worker_with(agents: Vec<Agent>, index: IndexKind) -> Worker {
        let (_peer_tx, inbox) = unbounded();
        let (_cmd_tx, commands) = unbounded::<Command>();
        let (reports, _report_rx) = unbounded();
        let links = WorkerLinks { peers: vec![_peer_tx], inbox, commands, reports, ledger: NetLedger::new() };
        let cfg = WorkerConfig {
            id: WorkerId::new(0),
            num_workers: 1,
            index,
            seed: 11,
            collocation: true,
            parallelism: 2,
            distribution: DistributionMode::default(),
        };
        let part = GridPartitioning::columns(0.0, 100.0, 1);
        Worker::new(Arc::new(Drift::new()), cfg, links, part, agents, 1 << 32)
    }

    fn single_worker(agents: Vec<Agent>) -> Worker {
        single_worker_with(agents, IndexKind::KdTree)
    }

    fn line(n: usize, gap: f64) -> Vec<Agent> {
        let b = Drift::new();
        (0..n).map(|i| Agent::new(AgentId::new(i as u64), Vec2::new(i as f64 * gap, 0.0), b.schema())).collect()
    }

    #[test]
    fn single_worker_tick_matches_single_node_executor() {
        let agents = line(25, 0.7);
        let mut worker = single_worker(agents.clone());
        let mut exec = TickExecutor::new(Drift::new(), agents, IndexKind::KdTree, 11);
        let mut stats = WorkerEpochStats::default();
        for _ in 0..6 {
            worker.run_tick(&mut stats);
            exec.step();
        }
        let mut a: Vec<_> = worker.owned_agents();
        let mut b: Vec<_> = exec.agents().to_vec();
        a.sort_by_key(|x| x.id);
        b.sort_by_key(|x| x.id);
        assert_eq!(a, b, "1-worker cluster must equal the single-node executor");
        assert_eq!(worker.current_tick(), 6);
        worker.check_invariants();
    }

    #[test]
    fn steady_ticks_never_rebuild_the_pool() {
        // Grid index: sorted-bucket moves handle a fully-moving stable
        // population without rebuilds (the KD-tree intentionally declines
        // dense motion batches in favor of a rebuild — separate policy).
        let mut worker = single_worker_with(line(40, 0.6), IndexKind::Grid);
        let mut stats = WorkerEpochStats::default();
        let rebuilds0 = worker.pool_rebuilds;
        let roundtrips0 = worker.vec_roundtrips;
        for _ in 0..8 {
            worker.run_tick(&mut stats);
        }
        assert_eq!(worker.pool_rebuilds, rebuilds0, "ticks must not rebuild the pool");
        assert_eq!(worker.vec_roundtrips, roundtrips0, "ticks must not materialize Vec<Agent>");
        // The stable population also keeps the index incremental after the
        // first build.
        assert_eq!(worker.index.rebuilds(), 1, "steady state syncs incrementally");
        worker.check_invariants();
    }

    #[test]
    fn histogram_counts_owned_agents() {
        let worker = single_worker(line(10, 1.0)); // x = 0..9
        let hist = worker.histogram((0.0, 10.0));
        assert_eq!(hist.iter().sum::<u64>(), 10);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut worker = single_worker(line(5, 1.0));
        let mut stats = WorkerEpochStats::default();
        worker.run_tick(&mut stats);
        let snap = worker.snapshot();
        let before: Vec<_> = worker.owned_agents();
        // Run further, then roll back.
        worker.run_tick(&mut stats);
        worker.run_tick(&mut stats);
        worker.restore(snap, vec![0.0, 100.0]);
        assert_eq!(worker.owned_agents(), before);
        assert_eq!(worker.current_tick(), 1);
        // Replay is deterministic.
        worker.run_tick(&mut stats);
        let replayed: Vec<_> = worker.owned_agents();
        let snap = worker.snapshot();
        worker.restore(snap, vec![0.0, 100.0]);
        assert_eq!(worker.owned_agents(), replayed);
        worker.check_invariants();
    }

    #[test]
    fn stable_row_ops_keep_invariants_under_churn() {
        let b = Drift::new();
        let mut worker = single_worker(line(6, 1.0));
        // Fake a two-source tail, then churn the owned region around it.
        worker.registries.push(Vec::new()); // pretend source 1 exists
        worker.sessions.push(ReplicaSession::new(0));
        for i in 0..4u64 {
            let a = Agent::new(AgentId::new(100 + i), Vec2::new(50.0 + i as f64, 0.0), b.schema());
            worker.push_tail_row((i % 2) as usize, &a);
        }
        worker.check_invariants();
        // Owned insertion relocates the first tail row.
        let newcomer = Agent::new(AgentId::new(50), Vec2::new(3.3, 0.0), b.schema());
        worker.insert_owned(&newcomer);
        worker.check_invariants();
        assert_eq!(worker.n_owned, 7);
        assert_eq!(worker.pool.len(), 11);
        // Owned removal (middle row) closes the seam from the tail end.
        worker.remove_owned_row(2);
        worker.check_invariants();
        assert_eq!(worker.n_owned, 6);
        // Tail removals in both registries.
        worker.remove_tail_row(0, 0);
        worker.check_invariants();
        worker.remove_tail_row(1, 1);
        worker.check_invariants();
        assert_eq!(worker.pool.len() - worker.n_owned, 2);
    }
}
