//! Crash-safe run manifests — the write-ahead log that makes a run a
//! durable *job*.
//!
//! A durable run directory holds `manifest.brace` (this module) next to the
//! `checkpoint-<epoch>.brace` files of [`checkpoint`](crate::checkpoint).
//! The manifest is append-only: a header describing the job (scenario key,
//! seed, cluster shape, cadence) followed by one [`ManifestRecord`] per
//! durable event. Every epoch writes two records around its execution:
//!
//! * [`ManifestRecord::Command`] **before** the epoch command is broadcast
//!   (write-ahead — the intent survives a crash mid-epoch), and
//! * [`ManifestRecord::EpochDone`] **after** the epoch — and its
//!   coordinated checkpoint, if any — are durable. It carries the master's
//!   post-decide state (histogram range, pending repartition bounds) so a
//!   resume lands in *exactly* the state an uninterrupted run would be in,
//!   even when the replay window is empty.
//!
//! Each record is framed as `u32 length + u64 FNV-1a checksum + body` and
//! fsynced on append. The reader stops at the first record that fails its
//! checksum or is short — a torn tail from a crash mid-append is *detected
//! and dropped*, never trusted; everything before it is intact by
//! construction. Resume therefore only believes epochs with a matching
//! `EpochDone`, and re-runs the rest from the last verified checkpoint.

use crate::runtime::EpochCommand;
use brace_common::{BraceError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// File name of the manifest inside a run directory.
pub const MANIFEST_FILE: &str = "manifest.brace";

/// Magic tag opening every manifest file ("BRACERUN").
const FILE_MAGIC: u64 = 0x4252_4143_4552_554e;
/// Manifest format version.
const FILE_VERSION: u32 = 1;

/// FNV-1a over a byte slice — the house hash (same constants as the
/// scenario layer's `world_checksum`).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Immutable description of the job, written once at run creation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunHeader {
    /// Identifier of this run (the run directory's name).
    pub run_id: String,
    /// Opaque scenario-layer job description (scenario key and overrides);
    /// the runtime never interprets it.
    pub job: String,
    /// Workers at run creation (membership changes append
    /// [`ManifestRecord::Membership`]).
    pub workers: u32,
    pub epoch_len: u64,
    pub seed: u64,
    /// Spatial index selector, scenario-layer encoding.
    pub index: u8,
    pub space_x: (f64, f64),
    pub load_balance: bool,
    /// Coordinated checkpoint cadence in epochs; 0 = initial only.
    pub checkpoint_every: u64,
    pub keep_checkpoints: u32,
    /// Total ticks the job should run — resume picks up the remainder.
    pub total_ticks: u64,
}

/// Post-epoch durable state. `epoch` counts *completed* epochs after this
/// one (i.e. `cmd.epoch + 1`).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochDoneRecord {
    pub epoch: u64,
    /// Whether this epoch wrote a coordinated checkpoint.
    pub checkpoint: bool,
    /// Master histogram range after `decide` — needed to rebuild the next
    /// command identically on resume.
    pub hist_range: (f64, f64),
    /// Repartition bounds pending for the next epoch, if `decide` chose to
    /// rebalance.
    pub pending_bounds: Option<Vec<f64>>,
}

/// A partition abandoned after exhausting its retry budget. The run
/// continues degraded; the manifest is the report.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetterRecord {
    pub worker: u32,
    /// Epoch during which the worker kept failing.
    pub epoch: u64,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// Agents lost with the partition (from the checkpoint it was restored
    /// against).
    pub agents_lost: u64,
    pub reason: String,
}

/// One durable event in a run's life.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestRecord {
    Header(RunHeader),
    /// Write-ahead intent: this epoch command is about to run.
    Command(EpochCommand),
    /// The epoch (and its checkpoint, if any) is durable.
    EpochDone(EpochDoneRecord),
    /// A partition was dead-lettered; the run continues without it.
    DeadLetter(DeadLetterRecord),
    /// Cluster membership changed to `workers` after `epoch` completed
    /// epochs (a fresh coordinated checkpoint precedes this record).
    Membership {
        epoch: u64,
        workers: u32,
    },
    /// The run finished and produced `checksum` over the final world.
    Complete {
        ticks: u64,
        checksum: u64,
    },
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(bytes: &mut Bytes) -> Result<String> {
    need(bytes, 4)?;
    let len = bytes.get_u32_le() as usize;
    need(bytes, len)?;
    let raw = bytes.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| BraceError::Checkpoint("manifest: invalid utf-8".into()))
}

fn put_opt_bounds(buf: &mut BytesMut, bounds: &Option<Vec<f64>>) {
    match bounds {
        None => buf.put_u8(0),
        Some(b) => {
            buf.put_u8(1);
            buf.put_u32_le(b.len() as u32);
            for &x in b {
                buf.put_f64_le(x);
            }
        }
    }
}

fn get_opt_bounds(bytes: &mut Bytes) -> Result<Option<Vec<f64>>> {
    need(bytes, 1)?;
    if bytes.get_u8() == 0 {
        return Ok(None);
    }
    need(bytes, 4)?;
    let n = bytes.get_u32_le() as usize;
    need(bytes, n * 8)?;
    Ok(Some((0..n).map(|_| bytes.get_f64_le()).collect()))
}

fn need(bytes: &Bytes, n: usize) -> Result<()> {
    if bytes.remaining() < n {
        Err(BraceError::Checkpoint("manifest: truncated record".into()))
    } else {
        Ok(())
    }
}

impl ManifestRecord {
    /// Serialize the record body (tag + payload), excluding the frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            ManifestRecord::Header(h) => {
                buf.put_u8(1);
                put_str(&mut buf, &h.run_id);
                put_str(&mut buf, &h.job);
                buf.put_u32_le(h.workers);
                buf.put_u64_le(h.epoch_len);
                buf.put_u64_le(h.seed);
                buf.put_u8(h.index);
                buf.put_f64_le(h.space_x.0);
                buf.put_f64_le(h.space_x.1);
                buf.put_u8(h.load_balance as u8);
                buf.put_u64_le(h.checkpoint_every);
                buf.put_u32_le(h.keep_checkpoints);
                buf.put_u64_le(h.total_ticks);
            }
            ManifestRecord::Command(c) => {
                buf.put_u8(2);
                buf.put_u64_le(c.epoch);
                buf.put_u64_le(c.ticks);
                put_opt_bounds(&mut buf, &c.new_x_bounds);
                buf.put_u8(c.checkpoint as u8);
                buf.put_f64_le(c.hist_range.0);
                buf.put_f64_le(c.hist_range.1);
            }
            ManifestRecord::EpochDone(d) => {
                buf.put_u8(3);
                buf.put_u64_le(d.epoch);
                buf.put_u8(d.checkpoint as u8);
                buf.put_f64_le(d.hist_range.0);
                buf.put_f64_le(d.hist_range.1);
                put_opt_bounds(&mut buf, &d.pending_bounds);
            }
            ManifestRecord::DeadLetter(d) => {
                buf.put_u8(4);
                buf.put_u32_le(d.worker);
                buf.put_u64_le(d.epoch);
                buf.put_u32_le(d.attempts);
                buf.put_u64_le(d.agents_lost);
                put_str(&mut buf, &d.reason);
            }
            ManifestRecord::Membership { epoch, workers } => {
                buf.put_u8(5);
                buf.put_u64_le(*epoch);
                buf.put_u32_le(*workers);
            }
            ManifestRecord::Complete { ticks, checksum } => {
                buf.put_u8(6);
                buf.put_u64_le(*ticks);
                buf.put_u64_le(*checksum);
            }
        }
        buf.freeze()
    }

    /// Inverse of [`ManifestRecord::encode`].
    pub fn decode(mut bytes: Bytes) -> Result<Self> {
        need(&bytes, 1)?;
        let tag = bytes.get_u8();
        match tag {
            1 => {
                let run_id = get_str(&mut bytes)?;
                let job = get_str(&mut bytes)?;
                need(&bytes, 4 + 8 + 8 + 1 + 16 + 1 + 8 + 4 + 8)?;
                Ok(ManifestRecord::Header(RunHeader {
                    run_id,
                    job,
                    workers: bytes.get_u32_le(),
                    epoch_len: bytes.get_u64_le(),
                    seed: bytes.get_u64_le(),
                    index: bytes.get_u8(),
                    space_x: (bytes.get_f64_le(), bytes.get_f64_le()),
                    load_balance: bytes.get_u8() != 0,
                    checkpoint_every: bytes.get_u64_le(),
                    keep_checkpoints: bytes.get_u32_le(),
                    total_ticks: bytes.get_u64_le(),
                }))
            }
            2 => {
                need(&bytes, 16)?;
                let epoch = bytes.get_u64_le();
                let ticks = bytes.get_u64_le();
                let new_x_bounds = get_opt_bounds(&mut bytes)?;
                need(&bytes, 1 + 16)?;
                let checkpoint = bytes.get_u8() != 0;
                let hist_range = (bytes.get_f64_le(), bytes.get_f64_le());
                Ok(ManifestRecord::Command(EpochCommand { epoch, ticks, new_x_bounds, checkpoint, hist_range }))
            }
            3 => {
                need(&bytes, 8 + 1 + 16)?;
                let epoch = bytes.get_u64_le();
                let checkpoint = bytes.get_u8() != 0;
                let hist_range = (bytes.get_f64_le(), bytes.get_f64_le());
                let pending_bounds = get_opt_bounds(&mut bytes)?;
                Ok(ManifestRecord::EpochDone(EpochDoneRecord { epoch, checkpoint, hist_range, pending_bounds }))
            }
            4 => {
                need(&bytes, 4 + 8 + 4 + 8)?;
                let worker = bytes.get_u32_le();
                let epoch = bytes.get_u64_le();
                let attempts = bytes.get_u32_le();
                let agents_lost = bytes.get_u64_le();
                let reason = get_str(&mut bytes)?;
                Ok(ManifestRecord::DeadLetter(DeadLetterRecord { worker, epoch, attempts, agents_lost, reason }))
            }
            5 => {
                need(&bytes, 12)?;
                Ok(ManifestRecord::Membership { epoch: bytes.get_u64_le(), workers: bytes.get_u32_le() })
            }
            6 => {
                need(&bytes, 16)?;
                Ok(ManifestRecord::Complete { ticks: bytes.get_u64_le(), checksum: bytes.get_u64_le() })
            }
            t => Err(BraceError::Checkpoint(format!("manifest: unknown record tag {t}"))),
        }
    }
}

/// Append handle on a run's manifest. Every append is framed, checksummed
/// and fsynced before returning — when a record is on disk, it is durable.
#[derive(Debug)]
pub struct ManifestWriter {
    file: File,
}

impl ManifestWriter {
    /// Create `dir/manifest.brace`, writing the file header and the
    /// [`RunHeader`] record. Fails if a manifest already exists (a run id
    /// is never reused).
    pub fn create(dir: &Path, header: &RunHeader) -> Result<Self> {
        let io = |e: std::io::Error| BraceError::Checkpoint(format!("creating manifest: {e}"));
        std::fs::create_dir_all(dir).map_err(io)?;
        let path = dir.join(MANIFEST_FILE);
        let file = OpenOptions::new().write(true).create_new(true).open(&path).map_err(io)?;
        let mut w = ManifestWriter { file };
        let mut preamble = BytesMut::with_capacity(12);
        preamble.put_u64_le(FILE_MAGIC);
        preamble.put_u32_le(FILE_VERSION);
        w.file.write_all(&preamble).map_err(io)?;
        w.append(&ManifestRecord::Header(header.clone()))?;
        Ok(w)
    }

    /// Open an existing manifest for append (resume).
    pub fn open_append(dir: &Path) -> Result<Self> {
        let path = dir.join(MANIFEST_FILE);
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| BraceError::Checkpoint(format!("opening manifest {}: {e}", path.display())))?;
        Ok(ManifestWriter { file })
    }

    /// Append one record: `u32 len + u64 fnv1a(body) + body`, then fsync.
    pub fn append(&mut self, rec: &ManifestRecord) -> Result<()> {
        let io = |e: std::io::Error| BraceError::Checkpoint(format!("appending to manifest: {e}"));
        let body = rec.encode();
        let mut frame = BytesMut::with_capacity(12 + body.len());
        frame.put_u32_le(body.len() as u32);
        frame.put_u64_le(fnv1a(&body));
        frame.extend_from_slice(&body);
        self.file.write_all(&frame).map_err(io)?;
        self.file.sync_data().map_err(io)?;
        Ok(())
    }
}

/// A fully parsed manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    pub header: RunHeader,
    /// All records after the header, in append order, up to the first
    /// corrupt/short frame.
    pub records: Vec<ManifestRecord>,
    /// True when a torn tail was detected and dropped.
    pub truncated: bool,
}

impl Manifest {
    /// Completed epochs: the highest `EpochDone.epoch` on record.
    pub fn completed_epochs(&self) -> u64 {
        self.records
            .iter()
            .filter_map(|r| match r {
                ManifestRecord::EpochDone(d) => Some(d.epoch),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// The most recent [`EpochDoneRecord`], if any epoch completed.
    pub fn last_epoch_done(&self) -> Option<&EpochDoneRecord> {
        self.records.iter().rev().find_map(|r| match r {
            ManifestRecord::EpochDone(d) => Some(d),
            _ => None,
        })
    }

    /// Commands for epochs `[from, to)` in epoch order, keeping the *last*
    /// write for an epoch (a crash re-appends the interrupted epoch's
    /// command on resume; write-ahead duplicates are expected and benign —
    /// resume state is deterministic, so duplicates are identical).
    pub fn commands_in(&self, from: u64, to: u64) -> Vec<EpochCommand> {
        let mut by_epoch: Vec<EpochCommand> = Vec::new();
        for r in &self.records {
            if let ManifestRecord::Command(c) = r {
                if c.epoch >= from && c.epoch < to {
                    if let Some(slot) = by_epoch.iter_mut().find(|e| e.epoch == c.epoch) {
                        *slot = c.clone();
                    } else {
                        by_epoch.push(c.clone());
                    }
                }
            }
        }
        by_epoch.sort_by_key(|c| c.epoch);
        by_epoch
    }

    /// Worker count currently in force (last membership change, else the
    /// header's).
    pub fn current_workers(&self) -> u32 {
        self.records
            .iter()
            .rev()
            .find_map(|r| match r {
                ManifestRecord::Membership { workers, .. } => Some(*workers),
                _ => None,
            })
            .unwrap_or(self.header.workers)
    }

    /// Epoch floor for resumable checkpoints: replay can never span a
    /// membership change, so only checkpoints at or after the last one
    /// count.
    pub fn membership_floor(&self) -> u64 {
        self.records
            .iter()
            .rev()
            .find_map(|r| match r {
                ManifestRecord::Membership { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .unwrap_or(0)
    }

    /// The final [`ManifestRecord::Complete`] record, if the run finished.
    pub fn complete(&self) -> Option<(u64, u64)> {
        self.records.iter().rev().find_map(|r| match r {
            ManifestRecord::Complete { ticks, checksum } => Some((*ticks, *checksum)),
            _ => None,
        })
    }

    /// Dead-letter records, in order.
    pub fn dead_letters(&self) -> Vec<&DeadLetterRecord> {
        self.records
            .iter()
            .filter_map(|r| match r {
                ManifestRecord::DeadLetter(d) => Some(d),
                _ => None,
            })
            .collect()
    }
}

/// Read and verify `dir/manifest.brace`. Stops (setting `truncated`) at the
/// first frame that is short or fails its checksum — the crash-torn tail is
/// dropped, never trusted.
pub fn read_manifest(dir: &Path) -> Result<Manifest> {
    let path = dir.join(MANIFEST_FILE);
    let data = std::fs::read(&path).map_err(|e| BraceError::Checkpoint(format!("reading {}: {e}", path.display())))?;
    let mut bytes = Bytes::from(data);
    if bytes.remaining() < 12 {
        return Err(BraceError::Checkpoint(format!("{}: truncated preamble", path.display())));
    }
    if bytes.get_u64_le() != FILE_MAGIC {
        return Err(BraceError::Checkpoint(format!("{}: not a manifest", path.display())));
    }
    let version = bytes.get_u32_le();
    if version != FILE_VERSION {
        return Err(BraceError::Checkpoint(format!("{}: unsupported version {version}", path.display())));
    }
    let mut records = Vec::new();
    let mut truncated = false;
    while bytes.has_remaining() {
        if bytes.remaining() < 12 {
            truncated = true;
            break;
        }
        let len = bytes.get_u32_le() as usize;
        let sum = bytes.get_u64_le();
        if bytes.remaining() < len {
            truncated = true;
            break;
        }
        let body = bytes.copy_to_bytes(len);
        if fnv1a(&body) != sum {
            truncated = true;
            break;
        }
        match ManifestRecord::decode(body) {
            Ok(r) => records.push(r),
            Err(_) => {
                truncated = true;
                break;
            }
        }
    }
    let Some(ManifestRecord::Header(header)) = records.first().cloned() else {
        return Err(BraceError::Checkpoint(format!("{}: missing run header", path.display())));
    };
    records.remove(0);
    Ok(Manifest { header, records, truncated })
}

/// Run ids of all durable runs under `root` (directories containing a
/// manifest), sorted by name.
pub fn list_runs(root: &Path) -> Vec<String> {
    let mut runs = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else { return runs };
    for entry in entries.flatten() {
        if entry.path().join(MANIFEST_FILE).is_file() {
            runs.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    runs.sort();
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> RunHeader {
        RunHeader {
            run_id: "run-42".into(),
            job: "scenario=fish agents=300".into(),
            workers: 4,
            epoch_len: 5,
            seed: 42,
            index: 0,
            space_x: (0.0, 100.0),
            load_balance: true,
            checkpoint_every: 4,
            keep_checkpoints: 2,
            total_ticks: 50,
        }
    }

    fn cmd(epoch: u64) -> EpochCommand {
        EpochCommand {
            epoch,
            ticks: 5,
            new_x_bounds: if epoch == 2 { Some(vec![0.0, 40.0, 100.0]) } else { None },
            checkpoint: epoch % 2 == 1,
            hist_range: (0.0, 100.0),
        }
    }

    fn done(epoch: u64) -> EpochDoneRecord {
        EpochDoneRecord {
            epoch,
            checkpoint: (epoch + 1).is_multiple_of(2),
            hist_range: (-1.0, 101.0),
            pending_bounds: if epoch == 3 { Some(vec![0.0, 60.0, 100.0]) } else { None },
        }
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("brace-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_round_trip() {
        let records = vec![
            ManifestRecord::Header(header()),
            ManifestRecord::Command(cmd(2)),
            ManifestRecord::EpochDone(done(3)),
            ManifestRecord::DeadLetter(DeadLetterRecord {
                worker: 1,
                epoch: 7,
                attempts: 3,
                agents_lost: 120,
                reason: "injected fault".into(),
            }),
            ManifestRecord::Membership { epoch: 4, workers: 6 },
            ManifestRecord::Complete { ticks: 50, checksum: 0xdead_beef },
        ];
        for r in records {
            assert_eq!(ManifestRecord::decode(r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn write_read_round_trip() {
        let dir = tmp_dir("rw");
        let mut w = ManifestWriter::create(&dir, &header()).unwrap();
        w.append(&ManifestRecord::Command(cmd(0))).unwrap();
        w.append(&ManifestRecord::EpochDone(done(1))).unwrap();
        drop(w);
        let mut w = ManifestWriter::open_append(&dir).unwrap();
        w.append(&ManifestRecord::Command(cmd(1))).unwrap();
        drop(w);
        let m = read_manifest(&dir).unwrap();
        assert_eq!(m.header, header());
        assert_eq!(m.records.len(), 3);
        assert!(!m.truncated);
        assert_eq!(m.completed_epochs(), 1);
        assert_eq!(m.last_epoch_done().unwrap(), &done(1));
        assert_eq!(m.commands_in(0, 10).iter().map(|c| c.epoch).collect::<Vec<_>>(), vec![0, 1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_not_trusted() {
        let dir = tmp_dir("torn");
        let mut w = ManifestWriter::create(&dir, &header()).unwrap();
        w.append(&ManifestRecord::Command(cmd(0))).unwrap();
        w.append(&ManifestRecord::EpochDone(done(1))).unwrap();
        drop(w);
        // Simulate a crash mid-append: chop bytes off the tail.
        let path = dir.join(MANIFEST_FILE);
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let m = read_manifest(&dir).unwrap();
        assert!(m.truncated);
        assert_eq!(m.records.len(), 1); // EpochDone frame was torn
        assert_eq!(m.completed_epochs(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_stops_the_reader() {
        let dir = tmp_dir("corrupt");
        let mut w = ManifestWriter::create(&dir, &header()).unwrap();
        w.append(&ManifestRecord::Command(cmd(0))).unwrap();
        drop(w);
        let path = dir.join(MANIFEST_FILE);
        let mut data = std::fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xff;
        std::fs::write(&path, data).unwrap();
        let m = read_manifest(&dir).unwrap();
        assert!(m.truncated);
        assert!(m.records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_commands_keep_last_write() {
        let dir = tmp_dir("dup");
        let mut w = ManifestWriter::create(&dir, &header()).unwrap();
        w.append(&ManifestRecord::Command(cmd(0))).unwrap();
        w.append(&ManifestRecord::EpochDone(done(1))).unwrap();
        // Crash + resume re-appends epoch 1's command.
        w.append(&ManifestRecord::Command(cmd(1))).unwrap();
        w.append(&ManifestRecord::Command(cmd(1))).unwrap();
        drop(w);
        let m = read_manifest(&dir).unwrap();
        assert_eq!(m.commands_in(0, 10).iter().map(|c| c.epoch).collect::<Vec<_>>(), vec![0, 1]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn membership_and_dead_letters_are_surfaced() {
        let dir = tmp_dir("members");
        let mut w = ManifestWriter::create(&dir, &header()).unwrap();
        w.append(&ManifestRecord::Membership { epoch: 2, workers: 6 }).unwrap();
        w.append(&ManifestRecord::DeadLetter(DeadLetterRecord {
            worker: 3,
            epoch: 5,
            attempts: 3,
            agents_lost: 9,
            reason: "test".into(),
        }))
        .unwrap();
        drop(w);
        let m = read_manifest(&dir).unwrap();
        assert_eq!(m.current_workers(), 6);
        assert_eq!(m.membership_floor(), 2);
        assert_eq!(m.dead_letters().len(), 1);
        assert!(m.complete().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_manifest() {
        let dir = tmp_dir("exists");
        let _w = ManifestWriter::create(&dir, &header()).unwrap();
        assert!(ManifestWriter::create(&dir, &header()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_runs_finds_manifest_dirs() {
        let root = tmp_dir("list");
        let _a = ManifestWriter::create(&root.join("run-a"), &header()).unwrap();
        let _b = ManifestWriter::create(&root.join("run-b"), &header()).unwrap();
        std::fs::create_dir_all(root.join("not-a-run")).unwrap();
        assert_eq!(list_runs(&root), vec!["run-a".to_string(), "run-b".to_string()]);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
