//! [`ClusterSim`] — the user-facing distributed engine.
//!
//! Mirrors `brace_core::Simulation` over a simulated shared-nothing cluster:
//! give it a behavior, an initial population and a [`ClusterConfig`]; run
//! epochs; collect agents and statistics. One worker thread per "node", one
//! spatial partition per worker, a master coordinating at epoch boundaries.

use crate::balance::LoadBalancer;
use crate::checkpoint::{self, CheckpointStore, ClusterCheckpoint};
use crate::codec::{self, WorkerSnapshot};
use crate::manifest::{self, Manifest, ManifestRecord, ManifestWriter, RunHeader};
use crate::master::{ClusterStats, Master, RetryPolicy, WorkerFault};
use crate::net::NetLedger;
use crate::runtime::{Command, PeerMsg, Report};
use crate::worker::{DistributionMode, Worker, WorkerConfig, WorkerLinks};
use brace_common::{BraceError, DetRng, Result, WorkerId};
use brace_core::{Agent, Behavior};
use brace_spatial::{GridPartitioning, IndexKind, Partitioner};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Scheduled whole-cluster failures: at each listed epoch the cluster
/// loses all live worker state "during" that epoch (its results are
/// discarded) and must recover from the last coordinated checkpoint by
/// replay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Epochs (0-based) whose execution is lost, ascending and deduped.
    pub at_epochs: Vec<u64>,
}

impl FaultPlan {
    /// Fail exactly once, during `epoch`.
    pub fn once(epoch: u64) -> Self {
        FaultPlan { at_epochs: vec![epoch] }
    }

    /// Fail during each listed epoch.
    pub fn at(epochs: impl IntoIterator<Item = u64>) -> Self {
        let mut at_epochs: Vec<u64> = epochs.into_iter().collect();
        at_epochs.sort_unstable();
        at_epochs.dedup();
        FaultPlan { at_epochs }
    }

    /// Up to `n` faults at seeded-random epochs in `0..max_epoch`
    /// (deduped, so possibly fewer). Drives the randomized recovery
    /// proptests.
    pub fn random(seed: u64, n: usize, max_epoch: u64) -> Self {
        if max_epoch == 0 {
            return FaultPlan::default();
        }
        let mut rng = DetRng::seed_from_u64(seed).stream(0xFA_17);
        FaultPlan::at((0..n).map(|_| (rng.range(0.0, max_epoch as f64) as u64).min(max_epoch - 1)))
    }

    pub fn is_empty(&self) -> bool {
        self.at_epochs.is_empty()
    }
}

/// A scheduled cluster resize: after `at_epoch` completed epochs the run
/// continues on `workers` workers (joins and leaves both go through the
/// repartition path; results are unchanged because partition placement is
/// unobservable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipChange {
    pub at_epoch: u64,
    pub workers: usize,
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker nodes (= spatial partitions). ≥ 1.
    pub workers: usize,
    /// Ticks per epoch (master coordination cadence).
    pub epoch_len: u64,
    /// Spatial index each reducer builds per tick.
    pub index: IndexKind,
    /// Master seed; identical seeds give identical simulations regardless
    /// of worker count (up to floating-point aggregation order).
    pub seed: u64,
    /// Initial x-extent for the 1-D column partitioning.
    pub space_x: (f64, f64),
    /// Enable the 1-D load balancer.
    pub load_balance: bool,
    /// Balancer tuning (threshold, migration cost model).
    pub balancer: LoadBalancer,
    /// Coordinated checkpoint cadence in epochs (`None` = only the initial
    /// checkpoint).
    pub checkpoint_every: Option<u64>,
    /// Keep this many recent checkpoints in memory.
    pub keep_checkpoints: usize,
    /// Also persist checkpoints to this directory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Collocate map/reduce tasks (false = ablation: every hand-off pays
    /// serialization and is charged to the network ledger).
    pub collocation: bool,
    /// Intra-worker thread budget for the query/update phases (`1` =
    /// serial, `0` = all cores, `n` = up to `n` threads **per worker**).
    /// Never affects results — the executor's shard plan is thread-count
    /// independent.
    pub parallelism: usize,
    /// Replica transport: delta frames (default) or full redistribution
    /// every tick (the ablation baseline). Never affects results for
    /// range-probe models, only bytes — proven by the
    /// `distributed_equivalence` proptests. (k-NN-probe models tie-break
    /// by pool row, so their distributed equivalence is approximate under
    /// either mode; see `DistributionMode`.)
    pub distribution: DistributionMode,
    /// Scheduled whole-cluster failures, if any.
    pub fault: Option<FaultPlan>,
    /// Injected per-worker failures (retry/dead-letter exercise).
    pub worker_faults: Vec<WorkerFault>,
    /// Retry budget for failing epochs.
    pub retry: RetryPolicy,
    /// Scheduled cluster resizes (elastic membership).
    pub membership: Vec<MembershipChange>,
    /// Durable-run directory: holds the write-ahead manifest and the
    /// checkpoint files (overrides `checkpoint_dir`). A run with `run_dir`
    /// set survives a process crash — see [`ClusterSim::resume`].
    pub run_dir: Option<PathBuf>,
    /// Opaque scenario-layer job description recorded in the manifest
    /// header (durable runs only).
    pub job: String,
    /// Total ticks the job should run (recorded in the manifest header so
    /// resume knows the remainder); 0 = unknown/ephemeral.
    pub total_ticks: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 4,
            epoch_len: 10,
            index: IndexKind::KdTree,
            seed: 0,
            space_x: (0.0, 100.0),
            load_balance: true,
            balancer: LoadBalancer::default(),
            checkpoint_every: None,
            keep_checkpoints: 2,
            checkpoint_dir: None,
            collocation: true,
            parallelism: 1,
            distribution: DistributionMode::default(),
            fault: None,
            worker_faults: Vec::new(),
            retry: RetryPolicy::default(),
            membership: Vec::new(),
            run_dir: None,
            job: String::new(),
            total_ticks: 0,
        }
    }
}

/// Scenario-layer encoding of [`IndexKind`] for the manifest header.
pub fn index_to_u8(index: IndexKind) -> u8 {
    match index {
        IndexKind::KdTree => 0,
        IndexKind::Grid => 1,
        IndexKind::Scan => 2,
    }
}

/// Inverse of [`index_to_u8`] (unknown values fall back to the default).
pub fn index_from_u8(v: u8) -> IndexKind {
    match v {
        1 => IndexKind::Grid,
        2 => IndexKind::Scan,
        _ => IndexKind::KdTree,
    }
}

/// The distributed BRACE engine.
pub struct ClusterSim {
    master: Master,
    behavior: Arc<dyn Behavior>,
    cfg: ClusterConfig,
    handles: Vec<JoinHandle<()>>,
    ledger: NetLedger,
    epoch_len: u64,
    /// Scheduled whole-cluster fault epochs not yet fired, ascending.
    fault_epochs: Vec<u64>,
    /// Scheduled resizes not yet applied, ascending by epoch.
    membership: Vec<MembershipChange>,
}

/// One worker fabric: command channels, the shared report channel and the
/// running threads.
type Fabric = (Vec<Sender<Command>>, Receiver<Report>, Vec<JoinHandle<()>>);

impl ClusterSim {
    fn validate(behavior: &Arc<dyn Behavior>, agents: &[Agent], cfg: &ClusterConfig) -> Result<()> {
        if cfg.workers == 0 {
            return Err(BraceError::Config("need at least one worker".into()));
        }
        if cfg.epoch_len == 0 {
            return Err(BraceError::Config("epoch length must be at least one tick".into()));
        }
        if cfg.space_x.0 >= cfg.space_x.1 {
            return Err(BraceError::Config("space_x must be a non-empty interval".into()));
        }
        let schema = behavior.schema();
        if schema.num_states() > crate::codec::DELTA_MAX_STATES {
            return Err(BraceError::Config(format!(
                "schema `{}` has {} state fields; the replica delta mask addresses at most {}",
                schema.name(),
                schema.num_states(),
                crate::codec::DELTA_MAX_STATES
            )));
        }
        for a in agents {
            if a.state.len() != schema.num_states() || a.effects.len() != schema.num_effects() {
                return Err(BraceError::Schema(format!("agent {} does not match schema `{}`", a.id, schema.name())));
            }
        }
        Ok(())
    }

    /// Spawn `initial.len()` worker threads over `part`'s columns, wired to
    /// a fresh channel fabric. `next_spawn_id` seeds the global spawn-id
    /// cursor (every worker advances it identically through the per-tick
    /// spawn round).
    fn spawn_fabric(
        behavior: &Arc<dyn Behavior>,
        cfg: &ClusterConfig,
        part: &GridPartitioning,
        initial: Vec<Vec<Agent>>,
        next_spawn_id: u64,
        ledger: &NetLedger,
    ) -> Result<Fabric> {
        let n = initial.len();
        let (report_tx, report_rx) = unbounded::<Report>();
        let mut peer_tx: Vec<Sender<PeerMsg>> = Vec::with_capacity(n);
        let mut peer_rx = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<PeerMsg>();
            peer_tx.push(tx);
            peer_rx.push(rx);
        }
        let mut cmd_tx: Vec<Sender<Command>> = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (w, (inbox, owned)) in peer_rx.into_iter().zip(initial).enumerate() {
            let (ctx, crx) = unbounded::<Command>();
            cmd_tx.push(ctx);
            let links = WorkerLinks {
                peers: peer_tx.clone(),
                inbox,
                commands: crx,
                reports: report_tx.clone(),
                ledger: ledger.clone(),
            };
            let wcfg = WorkerConfig {
                id: WorkerId::new(w as u32),
                num_workers: n,
                index: cfg.index,
                seed: cfg.seed,
                collocation: cfg.collocation,
                parallelism: cfg.parallelism,
                distribution: cfg.distribution,
            };
            let worker = Worker::new(behavior.clone(), wcfg, links, part.clone(), owned, next_spawn_id);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("brace-worker-{w}"))
                    .spawn(move || worker.run_loop())
                    .map_err(|e| BraceError::Config(format!("spawning worker thread: {e}")))?,
            );
        }
        Ok((cmd_tx, report_rx, handles))
    }

    /// Checkpoint store honoring the durable-run directory (which
    /// overrides `checkpoint_dir`).
    fn build_store(cfg: &ClusterConfig) -> CheckpointStore {
        let mut store = CheckpointStore::new(cfg.keep_checkpoints);
        if let Some(dir) = cfg.run_dir.clone().or_else(|| cfg.checkpoint_dir.clone()) {
            store = store.with_dir(dir);
        }
        store
    }

    fn build_master(
        cfg: &ClusterConfig,
        n: usize,
        fabric: (Vec<Sender<Command>>, Receiver<Report>),
        x_bounds: Vec<f64>,
    ) -> Master {
        let mut balancer = cfg.balancer.clone();
        balancer.epoch_len = cfg.epoch_len;
        let mut master = Master::new(
            n,
            cfg.epoch_len,
            cfg.load_balance,
            balancer,
            cfg.checkpoint_every,
            Self::build_store(cfg),
            fabric.0,
            fabric.1,
            x_bounds,
        );
        master.set_retry_policy(cfg.retry);
        master.set_worker_faults(cfg.worker_faults.clone());
        master
    }

    /// Manifest header describing the job, for durable runs.
    fn run_header(cfg: &ClusterConfig, run_id: String) -> RunHeader {
        RunHeader {
            run_id,
            job: cfg.job.clone(),
            workers: cfg.workers as u32,
            epoch_len: cfg.epoch_len,
            seed: cfg.seed,
            index: index_to_u8(cfg.index),
            space_x: cfg.space_x,
            load_balance: cfg.load_balance,
            checkpoint_every: cfg.checkpoint_every.unwrap_or(0),
            keep_checkpoints: cfg.keep_checkpoints as u32,
            total_ticks: cfg.total_ticks,
        }
    }

    fn sorted_plan(cfg: &ClusterConfig) -> (Vec<u64>, Vec<MembershipChange>) {
        let mut fault_epochs = cfg.fault.clone().map(|p| p.at_epochs).unwrap_or_default();
        fault_epochs.sort_unstable();
        fault_epochs.dedup();
        let mut membership = cfg.membership.clone();
        membership.sort_by_key(|m| m.at_epoch);
        (fault_epochs, membership)
    }

    /// Build the cluster: partition `agents` over `cfg.workers` column
    /// partitions, spawn the worker threads, take the initial checkpoint.
    /// With `run_dir` set this *creates* a durable run (write-ahead
    /// manifest + on-disk checkpoints); a directory that already holds a
    /// manifest is refused — resume it with [`ClusterSim::resume`] instead.
    pub fn new(behavior: Arc<dyn Behavior>, agents: Vec<Agent>, cfg: ClusterConfig) -> Result<Self> {
        Self::validate(&behavior, &agents, &cfg)?;
        let n = cfg.workers;
        let part = GridPartitioning::columns(cfg.space_x.0, cfg.space_x.1, n);

        // Distribute the initial population to owners; spawn ids start past
        // the densest initial id (one global cursor, all workers in
        // lockstep — see the worker's spawn-sequencing round).
        let mut initial: Vec<Vec<Agent>> = (0..n).map(|_| Vec::new()).collect();
        let mut max_id = 0u64;
        for a in agents {
            max_id = max_id.max(a.id.raw() + 1);
            initial[part.partition_of(a.pos).index()].push(a);
        }

        let ledger = NetLedger::new();
        let (cmd_tx, report_rx, handles) = Self::spawn_fabric(&behavior, &cfg, &part, initial, max_id, &ledger)?;
        let mut master = Self::build_master(&cfg, n, (cmd_tx, report_rx), part.x_bounds().to_vec());
        if let Some(dir) = cfg.run_dir.clone() {
            let run_id = dir.file_name().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
            master.set_manifest(ManifestWriter::create(&dir, &Self::run_header(&cfg, run_id))?);
        }
        master.initial_checkpoint()?;
        let (fault_epochs, membership) = Self::sorted_plan(&cfg);
        Ok(ClusterSim { master, behavior, epoch_len: cfg.epoch_len, cfg, handles, ledger, fault_epochs, membership })
    }

    /// Reconstruct a durable run from `cfg.run_dir` **in a fresh process**:
    /// read the manifest, pick the newest checkpoint that verifies (torn
    /// or corrupt files fall back to older ones), replay the completed
    /// epochs past it, and land exactly where the interrupted run was.
    /// Returns the parsed manifest alongside the cluster so the caller can
    /// see total ticks, dead letters, and completion state.
    pub fn resume(behavior: Arc<dyn Behavior>, mut cfg: ClusterConfig) -> Result<(Self, Manifest)> {
        let dir = cfg.run_dir.clone().ok_or_else(|| BraceError::Config("resume requires run_dir".into()))?;
        let m = manifest::read_manifest(&dir)?;
        if m.complete().is_some() {
            return Err(BraceError::Config(format!("run `{}` already completed", m.header.run_id)));
        }
        let completed = m.completed_epochs();
        let floor = m.membership_floor();
        // Newest on-disk checkpoint that verifies, covers only completed
        // epochs, and does not precede the last membership change.
        let mut chosen: Option<ClusterCheckpoint> = None;
        for epoch in checkpoint::list_checkpoint_epochs(&dir).into_iter().rev() {
            if epoch > completed || epoch < floor {
                continue;
            }
            if let Ok(cp) = checkpoint::load_checkpoint_file(&dir, epoch) {
                chosen = Some(cp);
                break;
            }
        }
        let cp = chosen
            .ok_or_else(|| BraceError::Unrecoverable(format!("run `{}`: no valid checkpoint", m.header.run_id)))?;
        let n = cp.workers.len();
        cfg.workers = n;
        Self::validate(&behavior, &[], &cfg)?;

        let part = GridPartitioning::columns(cfg.space_x.0, cfg.space_x.1, n);
        let ledger = NetLedger::new();
        // Workers start empty; Restore from the checkpoint fills them.
        let (cmd_tx, report_rx, handles) =
            Self::spawn_fabric(&behavior, &cfg, &part, (0..n).map(|_| Vec::new()).collect(), 0, &ledger)?;
        let mut master = Self::build_master(&cfg, n, (cmd_tx, report_rx), cp.x_bounds.clone());
        master.set_manifest(ManifestWriter::open_append(&dir)?);
        let commands = m.commands_in(cp.epoch, completed);
        let (hist_range, pending_bounds) = match m.last_epoch_done() {
            Some(d) => (d.hist_range, d.pending_bounds.clone()),
            None => (cp.hist_range, None),
        };
        master.resume_from(&cp, &commands, hist_range, pending_bounds)?;
        let (fault_epochs, membership) = Self::sorted_plan(&cfg);
        let sim =
            ClusterSim { master, behavior, epoch_len: cfg.epoch_len, cfg, handles, ledger, fault_epochs, membership };
        Ok((sim, m))
    }

    /// Run `n` epochs, firing scheduled faults (recovery + replay) and
    /// membership changes as their epochs complete.
    pub fn run_epochs(&mut self, n: u64) -> Result<()> {
        for _ in 0..n {
            self.master.run_epoch()?;
            while self.fault_epochs.first().is_some_and(|&e| self.master.epoch() == e + 1) {
                // That epoch just ran but its results are lost.
                let failed = self.fault_epochs.remove(0);
                self.master.recover(failed)?;
            }
            while self.membership.first().is_some_and(|m| self.master.epoch() >= m.at_epoch) {
                let change = self.membership.remove(0);
                self.resize_workers(change.workers)?;
            }
        }
        Ok(())
    }

    /// Resize the cluster to `n_new` workers at the current epoch boundary
    /// (elastic membership). All state funnels through the repartition
    /// path: snapshot everyone, retire the old fabric, spawn the new one,
    /// repartition the agents over uniform columns, and take a fresh
    /// coordinated checkpoint (replay never spans a membership change).
    /// Results are bit-identical because partition placement is
    /// unobservable and the global spawn-id cursor travels in the
    /// snapshots.
    pub fn resize_workers(&mut self, n_new: usize) -> Result<()> {
        if n_new == 0 {
            return Err(BraceError::Config("need at least one worker".into()));
        }
        let snaps = self.master.collect_snapshots()?;
        if snaps.len() == n_new {
            return Ok(());
        }
        let decoded: Vec<WorkerSnapshot> = snaps.into_iter().map(codec::decode_snapshot).collect();
        let tick = decoded[0].tick;
        let next_spawn_id = decoded[0].next_spawn_id;
        let mut agents: Vec<Agent> = decoded.into_iter().flat_map(|s| s.agents).collect();
        agents.sort_by_key(|a| a.id);

        // Retire the old fabric.
        self.master.stop();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }

        // Uniform columns over the current occupied extent.
        let bounds = self.master.x_bounds();
        let (lo, hi) = (bounds[0], *bounds.last().unwrap());
        let part = GridPartitioning::columns(lo, hi, n_new);
        let (cmd_tx, report_rx, handles) = Self::spawn_fabric(
            &self.behavior,
            &self.cfg,
            &part,
            (0..n_new).map(|_| Vec::new()).collect(),
            0,
            &self.ledger,
        )?;
        self.handles = handles;
        self.master.replace_fabric(n_new, cmd_tx, report_rx, part.x_bounds().to_vec());

        let mut owned: Vec<Vec<Agent>> = (0..n_new).map(|_| Vec::new()).collect();
        for a in agents {
            owned[part.partition_of(a.pos).index()].push(a);
        }
        for (w, agents_w) in owned.into_iter().enumerate() {
            let snap = WorkerSnapshot {
                tick,
                next_spawn_id,
                rng: DetRng::seed_from_u64(self.cfg.seed).stream(0x5EED_0000 + w as u64),
                agents: agents_w,
            };
            self.master.restore_worker(w, codec::encode_snapshot(&snap))?;
        }
        // Fresh durable point under the new membership, then the record.
        self.master.force_checkpoint()?;
        self.master
            .append_manifest(&ManifestRecord::Membership { epoch: self.master.epoch(), workers: n_new as u32 })?;
        Ok(())
    }

    /// Record run completion (final tick count + world checksum) in the
    /// manifest. No-op for ephemeral runs.
    pub fn record_complete(&mut self, ticks: u64, checksum: u64) -> Result<()> {
        self.master.append_manifest(&ManifestRecord::Complete { ticks, checksum })
    }

    /// Run `ticks` ticks; must be a multiple of the epoch length.
    pub fn run_ticks(&mut self, ticks: u64) -> Result<()> {
        if !ticks.is_multiple_of(self.epoch_len) {
            return Err(BraceError::Config(format!(
                "{ticks} ticks is not a multiple of the epoch length {}",
                self.epoch_len
            )));
        }
        self.run_epochs(ticks / self.epoch_len)
    }

    /// Gather all agents, sorted by id.
    pub fn collect_agents(&mut self) -> Result<Vec<Agent>> {
        self.master.collect_agents()
    }

    /// Completed simulation ticks.
    pub fn tick(&self) -> u64 {
        self.master.tick()
    }

    /// Completed epochs.
    pub fn epoch(&self) -> u64 {
        self.master.epoch()
    }

    /// Ticks per epoch (the master's coordination cadence).
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// Current column boundaries (moves when the load balancer acts).
    pub fn x_bounds(&self) -> &[f64] {
        self.master.x_bounds()
    }

    /// Run statistics with current network totals merged in.
    pub fn stats(&self) -> ClusterStats {
        let mut s = self.master.stats().clone();
        s.net = self.ledger.stats();
        s
    }

    /// Zero the network counters (e.g. after warm-up epochs).
    pub fn reset_net(&self) {
        self.ledger.reset();
    }
}

impl Drop for ClusterSim {
    fn drop(&mut self) {
        self.master.stop();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Re-export for convenience at the crate root.
pub use crate::master::ClusterStats as Stats;

#[cfg(test)]
mod tests {
    use super::*;
    use brace_common::{AgentId, DetRng, FieldId, Vec2};
    use brace_core::behavior::{Neighbors, UpdateCtx};
    use brace_core::effect::EffectWriter;
    use brace_core::{AgentSchema, Combinator, Simulation};

    /// Local-effects model with exactly-associative aggregation (integer
    /// counts): cluster results must equal single-node results bit for bit.
    struct Flock(AgentSchema);

    impl Flock {
        fn new() -> Self {
            Flock(
                AgentSchema::builder("Flock")
                    .state("heading")
                    .effect("n", Combinator::Sum)
                    .effect("closest", Combinator::Min)
                    .visibility(3.0)
                    .reachability(1.0)
                    .build()
                    .unwrap(),
            )
        }
    }

    impl Behavior for Flock {
        fn schema(&self) -> &AgentSchema {
            &self.0
        }
        fn query(
            &self,
            me: brace_core::AgentRef<'_>,
            nbrs: &Neighbors<'_>,
            eff: &mut EffectWriter<'_>,
            _rng: &mut DetRng,
        ) {
            for nb in nbrs.iter() {
                eff.local(FieldId::new(0), 1.0);
                eff.local(FieldId::new(1), me.pos().dist_linf(nb.agent.pos()));
            }
        }
        fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
            let n = me.effect(FieldId::new(0));
            let closest = me.effect(FieldId::new(1));
            // Drift right, faster when crowded; jitter deterministically.
            let jitter = ctx.rng.range(-0.05, 0.05);
            let step = if closest.is_finite() { 0.2 + 0.01 * n } else { 0.3 };
            me.pos.x += step + jitter;
            me.pos.y += jitter;
            me.set(FieldId::new(0), n);
        }
    }

    /// Non-local model: every agent pushes a "ping" effect to each neighbor;
    /// agents then record how many pings they received. Integer sums ⇒
    /// exact distributed equivalence.
    struct Ping(AgentSchema);

    impl Ping {
        fn new() -> Self {
            Ping(
                AgentSchema::builder("Ping")
                    .state("received")
                    .effect("pings", Combinator::Sum)
                    .visibility(2.5)
                    .reachability(0.5)
                    .nonlocal_effects(true)
                    .build()
                    .unwrap(),
            )
        }
    }

    impl Behavior for Ping {
        fn schema(&self) -> &AgentSchema {
            &self.0
        }
        fn query(
            &self,
            _me: brace_core::AgentRef<'_>,
            nbrs: &Neighbors<'_>,
            eff: &mut EffectWriter<'_>,
            _rng: &mut DetRng,
        ) {
            for nb in nbrs.iter() {
                eff.remote(nb.row, FieldId::new(0), 1.0);
            }
        }
        fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
            let pings = me.effect(FieldId::new(0));
            me.set(FieldId::new(0), me.get(FieldId::new(0)) + pings);
            me.pos.x += ctx.rng.range(-0.4, 0.4);
            me.pos.y += ctx.rng.range(-0.4, 0.4);
        }
    }

    fn population(schema: &AgentSchema, n: usize, seed: u64) -> Vec<Agent> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n)
            .map(|i| Agent::new(AgentId::new(i as u64), Vec2::new(rng.range(0.0, 100.0), rng.range(0.0, 20.0)), schema))
            .collect()
    }

    fn run_single_node<B: Behavior>(behavior: B, agents: Vec<Agent>, ticks: u64, seed: u64) -> Vec<Agent> {
        let mut sim = Simulation::builder(behavior).agents(agents).seed(seed).build().unwrap();
        sim.run(ticks);
        let mut out = sim.agents().to_vec();
        out.sort_by_key(|a| a.id);
        out
    }

    fn run_cluster(behavior: Arc<dyn Behavior>, agents: Vec<Agent>, ticks: u64, cfg: ClusterConfig) -> Vec<Agent> {
        let mut sim = ClusterSim::new(behavior, agents, cfg).unwrap();
        sim.run_ticks(ticks).unwrap();
        sim.collect_agents().unwrap()
    }

    #[test]
    fn cluster_equals_single_node_local_effects() {
        let agents = population(Flock::new().schema(), 120, 1);
        let single = run_single_node(Flock::new(), agents.clone(), 20, 42);
        for workers in [1, 2, 4] {
            let cfg =
                ClusterConfig { workers, epoch_len: 5, seed: 42, load_balance: false, ..ClusterConfig::default() };
            let distributed = run_cluster(Arc::new(Flock::new()), agents.clone(), 20, cfg);
            assert_eq!(single, distributed, "workers={workers}");
        }
    }

    #[test]
    fn cluster_equals_single_node_nonlocal_effects() {
        let agents = population(Ping::new().schema(), 80, 3);
        let single = run_single_node(Ping::new(), agents.clone(), 12, 7);
        for workers in [2, 3] {
            let cfg = ClusterConfig { workers, epoch_len: 4, seed: 7, load_balance: false, ..ClusterConfig::default() };
            let distributed = run_cluster(Arc::new(Ping::new()), agents.clone(), 12, cfg);
            assert_eq!(single, distributed, "workers={workers}");
        }
    }

    #[test]
    fn table1_comm_rounds_match_effect_locality() {
        let agents = population(Flock::new().schema(), 40, 5);
        let cfg = ClusterConfig { workers: 2, epoch_len: 2, seed: 1, load_balance: false, ..Default::default() };
        let mut local = ClusterSim::new(Arc::new(Flock::new()), agents, cfg.clone()).unwrap();
        local.run_epochs(1).unwrap();
        assert_eq!(local.stats().comm_rounds_per_tick, 1, "local effects: single reduce pass");
        assert_eq!(local.stats().net.effects.messages, 0, "no effect traffic for local model");

        let agents = population(Ping::new().schema(), 40, 5);
        let mut nonlocal = ClusterSim::new(Arc::new(Ping::new()), agents, cfg).unwrap();
        nonlocal.run_epochs(1).unwrap();
        assert_eq!(nonlocal.stats().comm_rounds_per_tick, 2, "non-local effects: map-reduce-reduce");
        assert!(nonlocal.stats().net.effects.messages > 0, "effect rows must cross the network");
    }

    #[test]
    fn fault_recovery_reproduces_failure_free_run() {
        let agents = population(Flock::new().schema(), 100, 9);
        let base = ClusterConfig {
            workers: 3,
            epoch_len: 5,
            seed: 13,
            load_balance: false,
            checkpoint_every: Some(2),
            ..Default::default()
        };
        let clean = run_cluster(Arc::new(Flock::new()), agents.clone(), 40, base.clone());
        let faulty_cfg = ClusterConfig { fault: Some(FaultPlan::once(5)), ..base };
        let mut sim = ClusterSim::new(Arc::new(Flock::new()), agents, faulty_cfg).unwrap();
        sim.run_ticks(40).unwrap();
        let stats = sim.stats();
        assert_eq!(stats.recoveries, 1);
        assert!(stats.replayed_epochs > 0);
        let recovered = sim.collect_agents().unwrap();
        assert_eq!(clean, recovered, "recovery must reproduce the failure-free run");
    }

    #[test]
    fn multi_fault_plan_reproduces_failure_free_run() {
        let agents = population(Flock::new().schema(), 90, 11);
        let base = ClusterConfig {
            workers: 3,
            epoch_len: 5,
            seed: 17,
            load_balance: false,
            checkpoint_every: Some(2),
            ..Default::default()
        };
        let clean = run_cluster(Arc::new(Flock::new()), agents.clone(), 40, base.clone());
        let faulty_cfg = ClusterConfig { fault: Some(FaultPlan::at([2, 5, 6])), ..base };
        let mut sim = ClusterSim::new(Arc::new(Flock::new()), agents, faulty_cfg).unwrap();
        sim.run_ticks(40).unwrap();
        let stats = sim.stats();
        assert_eq!(stats.recoveries, 3, "every scheduled fault must recover");
        let recovered = sim.collect_agents().unwrap();
        assert_eq!(clean, recovered, "multi-fault recovery must reproduce the failure-free run");
    }

    #[test]
    fn worker_retry_within_budget_reproduces_clean_run() {
        let agents = population(Flock::new().schema(), 90, 23);
        let base = ClusterConfig {
            workers: 3,
            epoch_len: 5,
            seed: 19,
            load_balance: false,
            checkpoint_every: Some(2),
            retry: RetryPolicy { max_attempts: 3, backoff_base_ms: 1, backoff_cap_ms: 4 },
            ..Default::default()
        };
        let clean = run_cluster(Arc::new(Flock::new()), agents.clone(), 30, base.clone());
        // Worker 1 fails twice during epoch 3 — inside the 3-attempt budget.
        let cfg = ClusterConfig { worker_faults: vec![WorkerFault { worker: 1, epoch: 3, failures: 2 }], ..base };
        let mut sim = ClusterSim::new(Arc::new(Flock::new()), agents, cfg).unwrap();
        sim.run_ticks(30).unwrap();
        let stats = sim.stats();
        assert_eq!(stats.retries, 2, "two failed attempts, two retries");
        assert_eq!(stats.dead_letters, 0, "budget was enough — no dead letter");
        assert!(stats.recoveries >= 2, "each retry restores from checkpoint");
        let recovered = sim.collect_agents().unwrap();
        assert_eq!(clean, recovered, "retried run must match the clean run bit for bit");
    }

    #[test]
    fn exhausted_retry_budget_dead_letters_and_degrades() {
        let agents = population(Flock::new().schema(), 90, 29);
        let base = ClusterConfig {
            workers: 3,
            epoch_len: 5,
            seed: 31,
            load_balance: false,
            checkpoint_every: Some(2),
            retry: RetryPolicy { max_attempts: 3, backoff_base_ms: 1, backoff_cap_ms: 4 },
            ..Default::default()
        };
        let clean = run_cluster(Arc::new(Flock::new()), agents.clone(), 30, base.clone());
        // Worker 1 fails more times than the budget allows: its partition
        // must be dead-lettered and the run must *complete*, degraded.
        let cfg = ClusterConfig { worker_faults: vec![WorkerFault { worker: 1, epoch: 3, failures: 10 }], ..base };
        let mut sim = ClusterSim::new(Arc::new(Flock::new()), agents, cfg).unwrap();
        sim.run_ticks(30).unwrap();
        let stats = sim.stats();
        assert_eq!(stats.dead_letters, 1, "the failing partition must be dead-lettered");
        assert!(stats.agents_lost > 0, "the dead partition's agents are reported lost");
        let degraded = sim.collect_agents().unwrap();
        assert!(
            degraded.len() < clean.len(),
            "degraded run must have dropped the dead partition ({} vs {})",
            degraded.len(),
            clean.len()
        );
        assert_eq!(sim.tick(), 30, "the run must complete despite the dead partition");
    }

    #[test]
    fn mid_run_membership_change_preserves_results() {
        let agents = population(Flock::new().schema(), 120, 37);
        let base = ClusterConfig {
            workers: 3,
            epoch_len: 5,
            seed: 41,
            load_balance: false,
            checkpoint_every: Some(2),
            ..Default::default()
        };
        let clean = run_cluster(Arc::new(Flock::new()), agents.clone(), 40, base.clone());
        // Grow to 5 workers after epoch 3, shrink to 2 after epoch 6.
        let cfg = ClusterConfig {
            membership: vec![
                MembershipChange { at_epoch: 3, workers: 5 },
                MembershipChange { at_epoch: 6, workers: 2 },
            ],
            ..base
        };
        let mut sim = ClusterSim::new(Arc::new(Flock::new()), agents, cfg).unwrap();
        sim.run_ticks(40).unwrap();
        let elastic = sim.collect_agents().unwrap();
        assert_eq!(clean, elastic, "joins/leaves must not change results");
        assert!(sim.stats().checkpoints >= 2, "each membership change forces a checkpoint");
    }

    /// Spawning model with deterministic per-agent reproduction: children
    /// get ids from the global `(parent id, ordinal)` sequence, so an
    /// N-worker cluster must be bit-identical to the single-node executor
    /// *including* the spawned agents' identities and rng streams.
    struct Breeder(AgentSchema);

    impl Breeder {
        fn new() -> Self {
            Breeder(
                AgentSchema::builder("Breeder")
                    .state("generation")
                    .effect("n", Combinator::Sum)
                    .visibility(3.0)
                    .reachability(1.0)
                    .build()
                    .unwrap(),
            )
        }
    }

    impl Behavior for Breeder {
        fn schema(&self) -> &AgentSchema {
            &self.0
        }
        fn query(
            &self,
            _me: brace_core::AgentRef<'_>,
            nbrs: &Neighbors<'_>,
            eff: &mut EffectWriter<'_>,
            _rng: &mut DetRng,
        ) {
            for _ in nbrs.iter() {
                eff.local(FieldId::new(0), 1.0);
            }
        }
        fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
            let gen = me.get(FieldId::new(0));
            me.pos.x += ctx.rng.range(-0.3, 0.5);
            me.pos.y += ctx.rng.range(-0.3, 0.3);
            // Reproduce occasionally; children inherit generation + 1 and
            // later act (and spawn) themselves.
            if gen < 3.0 && ctx.rng.chance(0.08) {
                let pos = me.pos;
                ctx.spawn(pos, vec![gen + 1.0]);
            }
        }
    }

    #[test]
    fn spawning_cluster_equals_single_node() {
        let agents = population(Breeder::new().schema(), 100, 6);
        let single = run_single_node(Breeder::new(), agents.clone(), 20, 33);
        assert!(single.len() > 100, "the model must actually spawn");
        for workers in [1, 2, 4] {
            let cfg =
                ClusterConfig { workers, epoch_len: 5, seed: 33, load_balance: false, ..ClusterConfig::default() };
            let distributed = run_cluster(Arc::new(Breeder::new()), agents.clone(), 20, cfg);
            assert_eq!(single, distributed, "workers={workers}");
        }
    }

    #[test]
    fn spawning_survives_fault_recovery_and_membership() {
        let agents = population(Breeder::new().schema(), 100, 6);
        let base = ClusterConfig {
            workers: 3,
            epoch_len: 5,
            seed: 33,
            load_balance: false,
            checkpoint_every: Some(2),
            ..ClusterConfig::default()
        };
        let clean = run_cluster(Arc::new(Breeder::new()), agents.clone(), 30, base.clone());
        let cfg = ClusterConfig {
            fault: Some(FaultPlan::once(3)),
            membership: vec![MembershipChange { at_epoch: 4, workers: 4 }],
            ..base
        };
        let mut sim = ClusterSim::new(Arc::new(Breeder::new()), agents, cfg).unwrap();
        sim.run_ticks(30).unwrap();
        assert_eq!(clean, sim.collect_agents().unwrap(), "spawn ids must survive recovery and resize");
    }

    #[test]
    fn load_balancer_moves_boundaries_under_skew() {
        // All agents packed into the leftmost 10% of space.
        let schema = Flock::new();
        let mut rng = DetRng::seed_from_u64(2);
        let agents: Vec<Agent> = (0..300)
            .map(|i| {
                Agent::new(AgentId::new(i), Vec2::new(rng.range(0.0, 10.0), rng.range(0.0, 10.0)), schema.schema())
            })
            .collect();
        let cfg = ClusterConfig {
            workers: 4,
            epoch_len: 3,
            seed: 21,
            load_balance: true,
            balancer: LoadBalancer { imbalance_threshold: 1.2, migration_cost_ticks: 0.5, epoch_len: 3 },
            ..Default::default()
        };
        let before = GridPartitioning::columns(0.0, 100.0, 4).x_bounds().to_vec();
        let mut sim = ClusterSim::new(Arc::new(Flock::new()), agents, cfg).unwrap();
        sim.run_epochs(4).unwrap();
        let stats = sim.stats();
        assert!(stats.repartitions >= 1, "skew must trigger repartitioning");
        assert_ne!(sim.x_bounds(), &before[..], "boundaries must move");
        // Imbalance after balancing must be better than the initial 4x.
        assert!(stats.last_imbalance() < 2.5, "imbalance {} not improved", stats.last_imbalance());
    }

    #[test]
    fn run_ticks_requires_epoch_multiple() {
        let agents = population(Flock::new().schema(), 10, 1);
        let cfg = ClusterConfig { workers: 2, epoch_len: 4, ..Default::default() };
        let mut sim = ClusterSim::new(Arc::new(Flock::new()), agents, cfg).unwrap();
        assert!(sim.run_ticks(6).is_err());
        assert!(sim.run_ticks(8).is_ok());
        assert_eq!(sim.tick(), 8);
    }

    #[test]
    fn over_wide_schema_rejected_as_config_error() {
        // The replica delta mask addresses ≤ 30 state fields; a wider
        // schema must fail construction with a config error, not panic in
        // a worker thread.
        struct Wide(AgentSchema);
        impl Behavior for Wide {
            fn schema(&self) -> &AgentSchema {
                &self.0
            }
            fn query(
                &self,
                _m: brace_core::AgentRef<'_>,
                _n: &Neighbors<'_>,
                _e: &mut EffectWriter<'_>,
                _r: &mut DetRng,
            ) {
            }
            fn update(&self, _me: &mut Agent, _ctx: &mut UpdateCtx<'_>) {}
        }
        let mut b = AgentSchema::builder("Wide").visibility(1.0);
        let names: Vec<String> = (0..31).map(|i| format!("s{i}")).collect();
        for name in &names {
            b = b.state(name);
        }
        let schema = b.build().unwrap();
        let err = ClusterSim::new(Arc::new(Wide(schema)), vec![], ClusterConfig::default())
            .err()
            .expect("31 state fields must be rejected");
        assert!(err.to_string().contains("delta mask"), "unexpected error: {err}");
    }

    #[test]
    fn zero_workers_rejected() {
        let cfg = ClusterConfig { workers: 0, ..Default::default() };
        let err = ClusterSim::new(Arc::new(Flock::new()), vec![], cfg).err().expect("must reject");
        assert!(err.to_string().contains("at least one worker"));
    }

    /// A model whose agents never move nor change state: the acceptance
    /// bar for delta distribution — its boundary replicas must cost zero
    /// bytes per steady-state tick.
    struct Frozen(AgentSchema);

    impl Frozen {
        fn new() -> Self {
            Frozen(
                AgentSchema::builder("Frozen")
                    .state("s")
                    .effect("n", Combinator::Sum)
                    .visibility(5.0)
                    .reachability(1.0)
                    .build()
                    .unwrap(),
            )
        }
    }

    impl Behavior for Frozen {
        fn schema(&self) -> &AgentSchema {
            &self.0
        }
        fn query(
            &self,
            _m: brace_core::AgentRef<'_>,
            nbrs: &Neighbors<'_>,
            eff: &mut EffectWriter<'_>,
            _rng: &mut DetRng,
        ) {
            for _ in nbrs.iter() {
                eff.local(FieldId::new(0), 1.0);
            }
        }
        fn update(&self, _me: &mut Agent, _ctx: &mut UpdateCtx<'_>) {}
    }

    /// Like [`Frozen`] but agents oscillate slightly in y (staying in
    /// their partition and visibility band): persisting replicas must ship
    /// as delta frames only, never as full records. The schema carries
    /// several constant state fields (as real models do — fish has three
    /// states and eight effects), so the masked delta ships a fraction of
    /// the record.
    struct Wiggle(AgentSchema);

    impl Wiggle {
        fn new() -> Self {
            Wiggle(
                AgentSchema::builder("Wiggle")
                    .state("phase")
                    .state("c0")
                    .state("c1")
                    .state("c2")
                    .state("c3")
                    .state("c4")
                    .effect("n", Combinator::Sum)
                    .visibility(5.0)
                    .reachability(1.0)
                    .build()
                    .unwrap(),
            )
        }
    }

    impl Behavior for Wiggle {
        fn schema(&self) -> &AgentSchema {
            &self.0
        }
        fn query(
            &self,
            _m: brace_core::AgentRef<'_>,
            _n: &Neighbors<'_>,
            _e: &mut EffectWriter<'_>,
            _rng: &mut DetRng,
        ) {
        }
        fn update(&self, me: &mut Agent, _ctx: &mut UpdateCtx<'_>) {
            let phase = me.get(FieldId::new(0));
            me.pos.y += if phase == 0.0 { 0.25 } else { -0.25 };
            me.set(FieldId::new(0), 1.0 - phase);
        }
    }

    #[test]
    fn stationary_boundary_population_costs_zero_replica_bytes() {
        // Agents straddle the x = 50 boundary well inside visibility, so
        // both workers hold replicas. Epoch 1 ships them as full records;
        // every steady-state tick after that must ship *nothing*: the pool
        // is resident, the index is maintained, and empty delta frames are
        // never sent.
        let schema = Frozen::new();
        let agents: Vec<Agent> = (0..40)
            .map(|i| Agent::new(AgentId::new(i), Vec2::new(48.0 + (i % 5) as f64, i as f64), schema.schema()))
            .collect();
        let cfg = ClusterConfig { workers: 2, epoch_len: 4, seed: 3, load_balance: false, ..Default::default() };
        let mut sim = ClusterSim::new(Arc::new(Frozen::new()), agents, cfg).unwrap();
        sim.run_epochs(1).unwrap();
        let warm = sim.stats();
        assert!(warm.net.replica_full.bytes > 0, "boundary population must replicate at all");
        assert!(warm.replicas_in > 0, "replicas must arrive");
        sim.reset_net();
        sim.run_epochs(2).unwrap();
        let steady = sim.stats();
        assert_eq!(steady.net.replica_full.bytes, 0, "steady state must ship no full replicas");
        assert_eq!(steady.net.replica_delta.bytes, 0, "stationary agents must ship no deltas either");
        assert_eq!(steady.net.transfer.bytes, 0, "no ownership changes");
        // The pool-resident counters: live ticks never rebuilt a pool,
        // never materialized Vec<Agent>, and (after the first tick's
        // build) never rebuilt an index.
        assert_eq!(steady.pool_rebuilds, 0, "steady-state ticks must not rebuild pools");
        assert_eq!(steady.vec_roundtrips, 0, "steady-state ticks must not round-trip Vec<Agent>");
        assert_eq!(steady.index_rebuilds, 2, "only the post-construction first tick builds (one per worker)");
    }

    #[test]
    fn persisting_replicas_ship_delta_frames_only() {
        let schema = Wiggle::new();
        let agents: Vec<Agent> = (0..40)
            .map(|i| Agent::new(AgentId::new(i), Vec2::new(48.0 + (i % 5) as f64, i as f64), schema.schema()))
            .collect();
        let cfg = ClusterConfig { workers: 2, epoch_len: 4, seed: 3, load_balance: false, ..Default::default() };
        let mut sim = ClusterSim::new(Arc::new(Wiggle::new()), agents, cfg).unwrap();
        sim.run_epochs(1).unwrap();
        sim.reset_net();
        sim.run_epochs(2).unwrap();
        let steady = sim.stats();
        assert_eq!(steady.net.replica_full.bytes, 0, "persisting replicas must never re-ship full records");
        assert!(steady.net.replica_delta.bytes > 0, "moving replicas must ship deltas");
        assert!(steady.replica_deltas_in > 0, "delta updates must arrive");
        // Deltas (y + phase per agent per tick) are far smaller than the
        // full records the pre-delta protocol would have shipped.
        let mut full = ClusterSim::new(
            Arc::new(Wiggle::new()),
            (0..40)
                .map(|i| Agent::new(AgentId::new(i), Vec2::new(48.0 + (i % 5) as f64, i as f64), schema.schema()))
                .collect(),
            ClusterConfig {
                workers: 2,
                epoch_len: 4,
                seed: 3,
                load_balance: false,
                distribution: DistributionMode::Full,
                ..Default::default()
            },
        )
        .unwrap();
        full.run_epochs(1).unwrap();
        full.reset_net();
        full.run_epochs(2).unwrap();
        let full_stats = full.stats();
        assert!(
            steady.net.replica_bytes() * 2 < full_stats.net.replica_bytes(),
            "delta traffic ({}) must be well under full redistribution ({})",
            steady.net.replica_bytes(),
            full_stats.net.replica_bytes()
        );
        // And the transport never changes results.
        assert_eq!(sim.collect_agents().unwrap(), full.collect_agents().unwrap());
    }

    #[test]
    fn collocation_off_charges_local_traffic() {
        let agents = population(Flock::new().schema(), 60, 4);
        let mk = |collocation| ClusterConfig {
            workers: 2,
            epoch_len: 5,
            seed: 2,
            load_balance: false,
            collocation,
            ..Default::default()
        };
        let mut on = ClusterSim::new(Arc::new(Flock::new()), agents.clone(), mk(true)).unwrap();
        on.run_epochs(2).unwrap();
        let mut off = ClusterSim::new(Arc::new(Flock::new()), agents, mk(false)).unwrap();
        off.run_epochs(2).unwrap();
        let (b_on, b_off) = (on.stats().net.total_bytes(), off.stats().net.total_bytes());
        assert!(b_off > b_on, "no-collocation must move more bytes ({b_off} <= {b_on})");
        // And the simulation result is unaffected.
        assert_eq!(on.collect_agents().unwrap(), off.collect_agents().unwrap());
    }
}
