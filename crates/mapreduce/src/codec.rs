//! Wire format for worker-to-worker and checkpoint payloads.
//!
//! Messages cross the (simulated) network as opaque byte buffers, exactly as
//! they would over MPI: agents are *serialized* out of the sending worker's
//! memory and *deserialized* into the receiver's. This keeps the
//! shared-nothing claim honest — a worker cannot observe another worker's
//! agents except through these buffers — and gives the
//! [`NetLedger`](crate::net::NetLedger) true byte counts.
//!
//! The format is a straightforward little-endian layout (no self-description;
//! both ends share the schema). Checkpoints reuse the same primitives.

use brace_common::{AgentId, DetRng, Vec2};
use brace_core::Agent;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Append one agent to `buf`.
pub fn put_agent(buf: &mut BytesMut, a: &Agent) {
    buf.put_u64_le(a.id.raw());
    buf.put_f64_le(a.pos.x);
    buf.put_f64_le(a.pos.y);
    buf.put_u8(a.alive as u8);
    buf.put_u16_le(a.state.len() as u16);
    for &s in &a.state {
        buf.put_f64_le(s);
    }
    buf.put_u16_le(a.effects.len() as u16);
    for &e in &a.effects {
        buf.put_f64_le(e);
    }
}

/// Decode one agent from `buf`.
pub fn get_agent(buf: &mut impl Buf) -> Agent {
    let id = AgentId::new(buf.get_u64_le());
    let pos = Vec2::new(buf.get_f64_le(), buf.get_f64_le());
    let alive = buf.get_u8() != 0;
    let ns = buf.get_u16_le() as usize;
    let mut state = Vec::with_capacity(ns);
    for _ in 0..ns {
        state.push(buf.get_f64_le());
    }
    let ne = buf.get_u16_le() as usize;
    let mut effects = Vec::with_capacity(ne);
    for _ in 0..ne {
        effects.push(buf.get_f64_le());
    }
    Agent { id, pos, state, effects, alive }
}

/// Encoded size of one agent in bytes (for pre-reservation and analysis).
pub fn agent_wire_size(a: &Agent) -> usize {
    8 + 16 + 1 + 2 + 8 * a.state.len() + 2 + 8 * a.effects.len()
}

/// Serialize a batch of agents.
pub fn encode_agents<'a>(agents: impl IntoIterator<Item = &'a Agent>) -> Bytes {
    let mut buf = BytesMut::new();
    let mut count = 0u32;
    let mut body = BytesMut::new();
    for a in agents {
        put_agent(&mut body, a);
        count += 1;
    }
    buf.put_u32_le(count);
    buf.extend_from_slice(&body);
    buf.freeze()
}

/// Deserialize a batch of agents.
pub fn decode_agents(mut bytes: Bytes) -> Vec<Agent> {
    let count = bytes.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(get_agent(&mut bytes));
    }
    out
}

/// Serialize partial effect rows straight from a column-major
/// [`EffectTable`](brace_core::EffectTable) — the payload of the second
/// reduce pass, on the worker's ship path. Gathers each row from the
/// columns into the output buffer directly, so shipping allocates nothing
/// per row.
pub fn encode_effect_table_rows(table: &brace_core::EffectTable, rows: &[(AgentId, u32)]) -> Bytes {
    let width = table.width();
    let mut buf = BytesMut::with_capacity(6 + rows.len() * (8 + width * 8));
    buf.put_u32_le(rows.len() as u32);
    buf.put_u16_le(width as u16);
    for &(id, row) in rows {
        buf.put_u64_le(id.raw());
        for f in 0..width {
            buf.put_f64_le(table.get(row, brace_common::FieldId::new(f as u16)));
        }
    }
    buf.freeze()
}

/// Serialize partial effect rows `(agent id, aggregated effect values)`
/// from materialized row slices — same wire format as
/// [`encode_effect_table_rows`], for callers that already hold rows.
pub fn encode_effect_rows<V: AsRef<[f64]>>(rows: impl IntoIterator<Item = (AgentId, V)>) -> Bytes {
    let mut body = BytesMut::new();
    let mut count = 0u32;
    let mut width: u16 = 0;
    for (id, vals) in rows {
        let vals = vals.as_ref();
        body.put_u64_le(id.raw());
        for &v in vals {
            body.put_f64_le(v);
        }
        width = vals.len() as u16;
        count += 1;
    }
    let mut buf = BytesMut::with_capacity(6 + body.len());
    buf.put_u32_le(count);
    buf.put_u16_le(width);
    buf.extend_from_slice(&body);
    buf.freeze()
}

/// Deserialize partial effect rows.
pub fn decode_effect_rows(mut bytes: Bytes) -> Vec<(AgentId, Vec<f64>)> {
    let count = bytes.get_u32_le() as usize;
    let width = bytes.get_u16_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let id = AgentId::new(bytes.get_u64_le());
        let mut vals = Vec::with_capacity(width);
        for _ in 0..width {
            vals.push(bytes.get_f64_le());
        }
        out.push((id, vals));
    }
    out
}

/// A worker's checkpointable state: its simulation clock, its RNG (models
/// never consume it outside agent streams, but serialize it for
/// completeness) and its owned agents.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSnapshot {
    pub tick: u64,
    pub next_spawn_id: u64,
    pub rng: DetRng,
    pub agents: Vec<Agent>,
}

/// Serialize a worker snapshot (checkpoint payload).
pub fn encode_snapshot(s: &WorkerSnapshot) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u64_le(s.tick);
    buf.put_u64_le(s.next_spawn_id);
    let (state, counter) = s.rng.to_parts();
    buf.put_u64_le(state);
    buf.put_u64_le(counter);
    buf.put_u32_le(s.agents.len() as u32);
    for a in &s.agents {
        put_agent(&mut buf, a);
    }
    buf.freeze()
}

/// Deserialize a worker snapshot.
pub fn decode_snapshot(mut bytes: Bytes) -> WorkerSnapshot {
    let tick = bytes.get_u64_le();
    let next_spawn_id = bytes.get_u64_le();
    let state = bytes.get_u64_le();
    let counter = bytes.get_u64_le();
    let rng = DetRng::from_parts(state, counter);
    let count = bytes.get_u32_le() as usize;
    let mut agents = Vec::with_capacity(count);
    for _ in 0..count {
        agents.push(get_agent(&mut bytes));
    }
    WorkerSnapshot { tick, next_spawn_id, rng, agents }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brace_core::{AgentSchema, Combinator};

    fn schema() -> AgentSchema {
        AgentSchema::builder("T").state("v").effect("e", Combinator::Sum).build().unwrap()
    }

    fn agent(id: u64) -> Agent {
        let s = schema();
        let mut a = Agent::new(AgentId::new(id), Vec2::new(id as f64, -1.5), &s);
        a.state[0] = id as f64 * 0.25;
        a.effects[0] = 7.5;
        a
    }

    #[test]
    fn agent_round_trip() {
        let a = agent(42);
        let mut buf = BytesMut::new();
        put_agent(&mut buf, &a);
        assert_eq!(buf.len(), agent_wire_size(&a));
        let mut bytes = buf.freeze();
        let b = get_agent(&mut bytes);
        assert_eq!(a, b);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn batch_round_trip() {
        let batch: Vec<Agent> = (0..10).map(agent).collect();
        let encoded = encode_agents(&batch);
        let decoded = decode_agents(encoded);
        assert_eq!(batch, decoded);
    }

    #[test]
    fn empty_batch() {
        let encoded = encode_agents(&[]);
        assert_eq!(decode_agents(encoded), Vec::<Agent>::new());
    }

    #[test]
    fn effect_rows_round_trip() {
        let rows = vec![(AgentId::new(1), vec![1.0, 2.0]), (AgentId::new(9), vec![-0.5, f64::INFINITY])];
        let encoded = encode_effect_rows(rows.iter().map(|(id, v)| (*id, v.as_slice())));
        let decoded = decode_effect_rows(encoded);
        assert_eq!(rows, decoded);
    }

    #[test]
    fn snapshot_round_trip_preserves_rng_position() {
        let mut rng = DetRng::seed_from_u64(5);
        rng.next_raw();
        rng.next_raw();
        let snap =
            WorkerSnapshot { tick: 99, next_spawn_id: 1234, rng: rng.clone(), agents: (0..3).map(agent).collect() };
        let restored = decode_snapshot(encode_snapshot(&snap));
        assert_eq!(snap, restored);
        // RNG continues identically after restore.
        let mut a = snap.rng.clone();
        let mut b = restored.rng.clone();
        assert_eq!(a.next_raw(), b.next_raw());
    }

    #[test]
    fn dead_agent_round_trip() {
        let s = schema();
        let mut a = Agent::new(AgentId::new(1), Vec2::ZERO, &s);
        a.alive = false;
        let decoded = decode_agents(encode_agents(&[a.clone()]));
        assert!(!decoded[0].alive);
    }
}
