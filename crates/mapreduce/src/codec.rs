//! Wire format for worker-to-worker and checkpoint payloads.
//!
//! Messages cross the (simulated) network as opaque byte buffers, exactly as
//! they would over MPI: agents are *serialized* out of the sending worker's
//! memory and *deserialized* into the receiver's. This keeps the
//! shared-nothing claim honest — a worker cannot observe another worker's
//! agents except through these buffers — and gives the
//! [`NetLedger`](crate::net::NetLedger) true byte counts.
//!
//! The format is a straightforward little-endian layout (no self-description;
//! both ends share the schema). Checkpoints reuse the same primitives.

use brace_common::{AgentId, DetRng, FieldId, Vec2};
use brace_core::{Agent, AgentPool};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Append one agent to `buf`.
pub fn put_agent(buf: &mut BytesMut, a: &Agent) {
    buf.put_u64_le(a.id.raw());
    buf.put_f64_le(a.pos.x);
    buf.put_f64_le(a.pos.y);
    buf.put_u8(a.alive as u8);
    buf.put_u16_le(a.state.len() as u16);
    for &s in &a.state {
        buf.put_f64_le(s);
    }
    buf.put_u16_le(a.effects.len() as u16);
    for &e in &a.effects {
        buf.put_f64_le(e);
    }
}

/// Decode one agent from `buf`.
pub fn get_agent(buf: &mut impl Buf) -> Agent {
    let id = AgentId::new(buf.get_u64_le());
    let pos = Vec2::new(buf.get_f64_le(), buf.get_f64_le());
    let alive = buf.get_u8() != 0;
    let ns = buf.get_u16_le() as usize;
    let mut state = Vec::with_capacity(ns);
    for _ in 0..ns {
        state.push(buf.get_f64_le());
    }
    let ne = buf.get_u16_le() as usize;
    let mut effects = Vec::with_capacity(ne);
    for _ in 0..ne {
        effects.push(buf.get_f64_le());
    }
    Agent { id, pos, state, effects, alive }
}

/// Encoded size of one agent in bytes (for pre-reservation and analysis).
pub fn agent_wire_size(a: &Agent) -> usize {
    8 + 16 + 1 + 2 + 8 * a.state.len() + 2 + 8 * a.effects.len()
}

/// Serialize a batch of agents.
pub fn encode_agents<'a>(agents: impl IntoIterator<Item = &'a Agent>) -> Bytes {
    let mut buf = BytesMut::new();
    let mut count = 0u32;
    let mut body = BytesMut::new();
    for a in agents {
        put_agent(&mut body, a);
        count += 1;
    }
    buf.put_u32_le(count);
    buf.extend_from_slice(&body);
    buf.freeze()
}

/// Deserialize a batch of agents.
pub fn decode_agents(mut bytes: Bytes) -> Vec<Agent> {
    let count = bytes.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(get_agent(&mut bytes));
    }
    out
}

/// Append one agent to `buf` straight from a pool row — same wire format
/// as [`put_agent`], gathered from the columns with no intermediate
/// [`Agent`] record. This is the pool-resident worker's full-record ship
/// path (ownership transfers and replica-band entrants).
pub fn put_pool_row(buf: &mut BytesMut, pool: &AgentPool, row: u32) {
    buf.put_u64_le(pool.id(row).raw());
    let pos = pool.pos(row);
    buf.put_f64_le(pos.x);
    buf.put_f64_le(pos.y);
    buf.put_u8(pool.alive(row) as u8);
    let ns = pool.num_states();
    buf.put_u16_le(ns as u16);
    for f in 0..ns {
        buf.put_f64_le(pool.state(row, FieldId::new(f as u16)));
    }
    let ne = pool.effects().width();
    buf.put_u16_le(ne as u16);
    for f in 0..ne {
        buf.put_f64_le(pool.effects().get(row, FieldId::new(f as u16)));
    }
}

/// Serialize a batch of pool rows as full agent records (wire-compatible
/// with [`encode_agents`] / [`decode_agents`]). Returns an empty buffer for
/// an empty row list so callers can skip charging the ledger.
pub fn encode_pool_rows(pool: &AgentPool, rows: &[u32]) -> Bytes {
    if rows.is_empty() {
        return Bytes::new();
    }
    let mut buf = BytesMut::new();
    buf.put_u32_le(rows.len() as u32);
    for &r in rows {
        put_pool_row(&mut buf, pool, r);
    }
    buf.freeze()
}

/// Decode a batch produced by [`encode_pool_rows`] / [`encode_agents`],
/// tolerating the zero-length empty encoding.
pub fn decode_agents_opt(bytes: Bytes) -> Vec<Agent> {
    if bytes.is_empty() {
        return Vec::new();
    }
    decode_agents(bytes)
}

/// Field bit positions of a replica delta mask: bit 0 = x, bit 1 = y,
/// bit `2 + s` = state slot `s`. A `u32` mask bounds schemas at 30 state
/// fields — far above any model here; the worker asserts the bound.
pub const DELTA_MASK_X: u32 = 1;
pub const DELTA_MASK_Y: u32 = 1 << 1;

/// Maximum number of state fields a delta mask can address.
pub const DELTA_MAX_STATES: usize = 30;

/// Builder for one **replica delta frame** — the compact per-peer payload
/// for replicas that persist in the receiver's visible band across ticks.
/// Both ends maintain a slot registry per (sender, receiver) pair that
/// grows in full-record ship order and shrinks by identical swap-removals,
/// so replicas are addressed by dense `u32` slots instead of ids.
///
/// Wire layout (little-endian):
///
/// ```text
/// u8  flags                (bit 0: reset — receiver drops the registry)
/// u32 n_removals           then n_removals × u32 slot
/// u32 n_updates            then per update:
///     u32 slot | u32 mask | popcount(mask) × f64   (field order: x, y, states)
/// ```
///
/// A frame with no flags, removals or updates encodes to **zero bytes** —
/// a stationary boundary population costs nothing per tick.
#[derive(Debug, Default)]
pub struct ReplicaDeltaEnc {
    reset: bool,
    removals: Vec<u32>,
    updates: BytesMut,
    n_updates: u32,
}

impl ReplicaDeltaEnc {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a fresh frame, reusing the buffers.
    pub fn clear(&mut self) {
        self.reset = false;
        self.removals.clear();
        self.updates.clear();
        self.n_updates = 0;
    }

    /// Mark the frame as a registry reset (the full-redistribution
    /// ablation, which re-ships every replica as a full record each tick).
    pub fn mark_reset(&mut self) {
        self.reset = true;
    }

    /// Record the removal of `slot`. Order is significant: the receiver
    /// replays removals in frame order with swap-removal semantics, so the
    /// sender must emit them in the order it applied them to its own
    /// session (descending slot).
    pub fn push_removal(&mut self, slot: u32) {
        self.removals.push(slot);
    }

    /// Record a masked field update for `slot`, pulling the new values from
    /// pool row `row` in field order (x, y, then state slots).
    pub fn push_update(&mut self, slot: u32, mask: u32, pool: &AgentPool, row: u32) {
        debug_assert_ne!(mask, 0, "empty update shipped");
        self.updates.put_u32_le(slot);
        self.updates.put_u32_le(mask);
        let pos = pool.pos(row);
        if mask & DELTA_MASK_X != 0 {
            self.updates.put_f64_le(pos.x);
        }
        if mask & DELTA_MASK_Y != 0 {
            self.updates.put_f64_le(pos.y);
        }
        let mut bits = mask >> 2;
        let mut s = 0u16;
        while bits != 0 {
            if bits & 1 != 0 {
                self.updates.put_f64_le(pool.state(row, FieldId::new(s)));
            }
            bits >>= 1;
            s += 1;
        }
        self.n_updates += 1;
    }

    /// True if the frame carries no information (and will encode to zero
    /// bytes).
    pub fn is_trivial(&self) -> bool {
        !self.reset && self.removals.is_empty() && self.n_updates == 0
    }

    /// Assemble the frame.
    pub fn finish(&self) -> Bytes {
        if self.is_trivial() {
            return Bytes::new();
        }
        let mut buf = BytesMut::with_capacity(9 + self.removals.len() * 4 + self.updates.len());
        buf.put_u8(self.reset as u8);
        buf.put_u32_le(self.removals.len() as u32);
        for &s in &self.removals {
            buf.put_u32_le(s);
        }
        buf.put_u32_le(self.n_updates);
        buf.extend_from_slice(&self.updates);
        buf.freeze()
    }
}

/// A decoded replica delta frame. The header (reset flag, removals) is
/// materialized; the updates stay as an undecoded byte cursor drained
/// through [`ReplicaDelta::next_update_into`] into a caller-reused value
/// buffer — the per-peer per-tick receive path allocates nothing per
/// update.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReplicaDelta {
    pub reset: bool,
    pub removals: Vec<u32>,
    n_updates: u32,
    updates: Bytes,
}

impl ReplicaDelta {
    /// Masked updates carried by this frame (before any draining).
    pub fn updates_len(&self) -> u32 {
        self.n_updates
    }

    /// Decode the next masked update: returns `(slot, mask)` and fills
    /// `values` (cleared first) with the changed field values in field
    /// order (x, y, states). `None` once the frame is drained.
    pub fn next_update_into(&mut self, values: &mut Vec<f64>) -> Option<(u32, u32)> {
        if self.n_updates == 0 {
            return None;
        }
        self.n_updates -= 1;
        let slot = self.updates.get_u32_le();
        let mask = self.updates.get_u32_le();
        values.clear();
        values.extend((0..mask.count_ones()).map(|_| self.updates.get_f64_le()));
        Some((slot, mask))
    }
}

/// Decode a frame produced by [`ReplicaDeltaEnc::finish`]. Zero-length
/// input is the trivial frame.
pub fn decode_replica_delta(mut bytes: Bytes) -> ReplicaDelta {
    if bytes.is_empty() {
        return ReplicaDelta::default();
    }
    let reset = bytes.get_u8() != 0;
    let nr = bytes.get_u32_le() as usize;
    let removals = (0..nr).map(|_| bytes.get_u32_le()).collect();
    let n_updates = bytes.get_u32_le();
    ReplicaDelta { reset, removals, n_updates, updates: bytes }
}

/// Serialize partial effect rows straight from a column-major
/// [`EffectTable`](brace_core::EffectTable) — the payload of the second
/// reduce pass, on the worker's ship path. Gathers each row from the
/// columns into the output buffer directly, so shipping allocates nothing
/// per row.
pub fn encode_effect_table_rows(table: &brace_core::EffectTable, rows: &[(AgentId, u32)]) -> Bytes {
    let width = table.width();
    let mut buf = BytesMut::with_capacity(6 + rows.len() * (8 + width * 8));
    buf.put_u32_le(rows.len() as u32);
    buf.put_u16_le(width as u16);
    for &(id, row) in rows {
        buf.put_u64_le(id.raw());
        for f in 0..width {
            buf.put_f64_le(table.get(row, brace_common::FieldId::new(f as u16)));
        }
    }
    buf.freeze()
}

/// Serialize partial effect rows `(agent id, aggregated effect values)`
/// from materialized row slices — same wire format as
/// [`encode_effect_table_rows`], for callers that already hold rows.
pub fn encode_effect_rows<V: AsRef<[f64]>>(rows: impl IntoIterator<Item = (AgentId, V)>) -> Bytes {
    let mut body = BytesMut::new();
    let mut count = 0u32;
    let mut width: u16 = 0;
    for (id, vals) in rows {
        let vals = vals.as_ref();
        body.put_u64_le(id.raw());
        for &v in vals {
            body.put_f64_le(v);
        }
        width = vals.len() as u16;
        count += 1;
    }
    let mut buf = BytesMut::with_capacity(6 + body.len());
    buf.put_u32_le(count);
    buf.put_u16_le(width);
    buf.extend_from_slice(&body);
    buf.freeze()
}

/// Deserialize partial effect rows.
pub fn decode_effect_rows(mut bytes: Bytes) -> Vec<(AgentId, Vec<f64>)> {
    let count = bytes.get_u32_le() as usize;
    let width = bytes.get_u16_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let id = AgentId::new(bytes.get_u64_le());
        let mut vals = Vec::with_capacity(width);
        for _ in 0..width {
            vals.push(bytes.get_f64_le());
        }
        out.push((id, vals));
    }
    out
}

/// Serialize per-parent spawn-count runs — the payload of the spawn
/// sequencing round. `runs` must be ascending by parent id (the worker's
/// pending spawns sorted by parent; parents are globally unique, so the
/// receiver merges every peer's runs into one total order). An empty run
/// list encodes to **zero bytes** — non-spawning ticks cost nothing.
pub fn encode_spawn_runs(runs: &[(AgentId, u32)]) -> Bytes {
    if runs.is_empty() {
        return Bytes::new();
    }
    let mut buf = BytesMut::with_capacity(4 + runs.len() * 12);
    buf.put_u32_le(runs.len() as u32);
    for &(parent, count) in runs {
        buf.put_u64_le(parent.raw());
        buf.put_u32_le(count);
    }
    buf.freeze()
}

/// Decode a payload produced by [`encode_spawn_runs`]. Zero-length input
/// is the empty run list.
pub fn decode_spawn_runs(mut bytes: Bytes) -> Vec<(AgentId, u32)> {
    if bytes.is_empty() {
        return Vec::new();
    }
    let count = bytes.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let parent = AgentId::new(bytes.get_u64_le());
        out.push((parent, bytes.get_u32_le()));
    }
    out
}

/// A worker's checkpointable state: its simulation clock, its RNG (models
/// never consume it outside agent streams, but serialize it for
/// completeness) and its owned agents.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSnapshot {
    pub tick: u64,
    pub next_spawn_id: u64,
    pub rng: DetRng,
    pub agents: Vec<Agent>,
}

/// Serialize a worker snapshot (checkpoint payload).
pub fn encode_snapshot(s: &WorkerSnapshot) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u64_le(s.tick);
    buf.put_u64_le(s.next_spawn_id);
    let (state, counter) = s.rng.to_parts();
    buf.put_u64_le(state);
    buf.put_u64_le(counter);
    buf.put_u32_le(s.agents.len() as u32);
    for a in &s.agents {
        put_agent(&mut buf, a);
    }
    buf.freeze()
}

/// Deserialize a worker snapshot.
pub fn decode_snapshot(mut bytes: Bytes) -> WorkerSnapshot {
    let tick = bytes.get_u64_le();
    let next_spawn_id = bytes.get_u64_le();
    let state = bytes.get_u64_le();
    let counter = bytes.get_u64_le();
    let rng = DetRng::from_parts(state, counter);
    let count = bytes.get_u32_le() as usize;
    let mut agents = Vec::with_capacity(count);
    for _ in 0..count {
        agents.push(get_agent(&mut bytes));
    }
    WorkerSnapshot { tick, next_spawn_id, rng, agents }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brace_core::{AgentSchema, Combinator};

    fn schema() -> AgentSchema {
        AgentSchema::builder("T").state("v").effect("e", Combinator::Sum).build().unwrap()
    }

    fn agent(id: u64) -> Agent {
        let s = schema();
        let mut a = Agent::new(AgentId::new(id), Vec2::new(id as f64, -1.5), &s);
        a.state[0] = id as f64 * 0.25;
        a.effects[0] = 7.5;
        a
    }

    #[test]
    fn agent_round_trip() {
        let a = agent(42);
        let mut buf = BytesMut::new();
        put_agent(&mut buf, &a);
        assert_eq!(buf.len(), agent_wire_size(&a));
        let mut bytes = buf.freeze();
        let b = get_agent(&mut bytes);
        assert_eq!(a, b);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn batch_round_trip() {
        let batch: Vec<Agent> = (0..10).map(agent).collect();
        let encoded = encode_agents(&batch);
        let decoded = decode_agents(encoded);
        assert_eq!(batch, decoded);
    }

    #[test]
    fn empty_batch() {
        let encoded = encode_agents(&[]);
        assert_eq!(decode_agents(encoded), Vec::<Agent>::new());
    }

    #[test]
    fn pool_rows_encode_identically_to_agent_records() {
        let s = schema();
        let batch: Vec<Agent> = (0..6).map(agent).collect();
        let pool = AgentPool::from_agents(&s, &batch);
        let rows: Vec<u32> = [4u32, 0, 2].to_vec();
        let from_pool = encode_pool_rows(&pool, &rows);
        let picked: Vec<Agent> = rows.iter().map(|&r| batch[r as usize].clone()).collect();
        let from_records = encode_agents(&picked);
        assert_eq!(from_pool, from_records, "pool gather must be wire-identical");
        assert_eq!(decode_agents_opt(from_pool), picked);
        // Empty row list → zero bytes, decoded as empty.
        assert_eq!(encode_pool_rows(&pool, &[]), Bytes::new());
        assert!(decode_agents_opt(Bytes::new()).is_empty());
    }

    #[test]
    fn replica_delta_round_trip() {
        let s = schema();
        let batch: Vec<Agent> = (0..3).map(agent).collect();
        let pool = AgentPool::from_agents(&s, &batch);
        let mut enc = ReplicaDeltaEnc::new();
        enc.push_removal(5);
        enc.push_removal(1);
        enc.push_update(0, DELTA_MASK_X | (1 << 2), &pool, 2); // x + state 0
        enc.push_update(3, DELTA_MASK_Y, &pool, 1);
        let mut frame = decode_replica_delta(enc.finish());
        assert!(!frame.reset);
        assert_eq!(frame.removals, vec![5, 1]);
        assert_eq!(frame.updates_len(), 2);
        let mut values = Vec::new();
        assert_eq!(frame.next_update_into(&mut values), Some((0, DELTA_MASK_X | (1 << 2))));
        assert_eq!(values, vec![2.0, 0.5]);
        assert_eq!(frame.next_update_into(&mut values), Some((3, DELTA_MASK_Y)));
        assert_eq!(values, vec![-1.5]);
        assert_eq!(frame.next_update_into(&mut values), None);
    }

    #[test]
    fn trivial_delta_frame_is_zero_bytes() {
        let mut enc = ReplicaDeltaEnc::new();
        assert!(enc.is_trivial());
        assert_eq!(enc.finish(), Bytes::new());
        assert_eq!(decode_replica_delta(Bytes::new()), ReplicaDelta::default());
        enc.mark_reset();
        assert!(!enc.is_trivial());
        let frame = decode_replica_delta(enc.finish());
        assert!(frame.reset && frame.removals.is_empty() && frame.updates_len() == 0);
        enc.clear();
        assert!(enc.is_trivial());
    }

    #[test]
    fn effect_rows_round_trip() {
        let rows = vec![(AgentId::new(1), vec![1.0, 2.0]), (AgentId::new(9), vec![-0.5, f64::INFINITY])];
        let encoded = encode_effect_rows(rows.iter().map(|(id, v)| (*id, v.as_slice())));
        let decoded = decode_effect_rows(encoded);
        assert_eq!(rows, decoded);
    }

    #[test]
    fn spawn_runs_round_trip() {
        let runs = vec![(AgentId::new(3), 2u32), (AgentId::new(17), 1), (AgentId::new(40), 3)];
        let encoded = encode_spawn_runs(&runs);
        assert_eq!(decode_spawn_runs(encoded), runs);
        // Empty run list → zero bytes, decoded as empty.
        assert_eq!(encode_spawn_runs(&[]), Bytes::new());
        assert!(decode_spawn_runs(Bytes::new()).is_empty());
    }

    #[test]
    fn snapshot_round_trip_preserves_rng_position() {
        let mut rng = DetRng::seed_from_u64(5);
        rng.next_raw();
        rng.next_raw();
        let snap =
            WorkerSnapshot { tick: 99, next_spawn_id: 1234, rng: rng.clone(), agents: (0..3).map(agent).collect() };
        let restored = decode_snapshot(encode_snapshot(&snap));
        assert_eq!(snap, restored);
        // RNG continues identically after restore.
        let mut a = snap.rng.clone();
        let mut b = restored.rng.clone();
        assert_eq!(a.next_raw(), b.next_raw());
    }

    #[test]
    fn dead_agent_round_trip() {
        let s = schema();
        let mut a = Agent::new(AgentId::new(1), Vec2::ZERO, &s);
        a.alive = false;
        let decoded = decode_agents(encode_agents(&[a.clone()]));
        assert!(!decoded[0].alive);
    }
}
