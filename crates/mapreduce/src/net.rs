//! Network accounting — the seam where a real transport would sit.
//!
//! Every cross-worker message in the runtime passes through a
//! [`NetLedger`], which counts messages and payload bytes per category.
//! Collocated traffic (a worker handing agents to its own next tick) never
//! touches the ledger, which is exactly the saving the paper's collocation
//! design buys; the ablation benchmark flips collocation off by forcing
//! those hand-offs through the ledger and the codec.

use brace_telemetry::{Counter as TelCounter, Telemetry};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What a message carries, for per-category accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Traffic {
    /// Ownership transfers: agents that moved to another partition.
    Transfer,
    /// Full replica records: boundary agents *entering* a neighbor's
    /// visible band (or re-shipped wholesale under the full-redistribution
    /// ablation). Steady-state boundary populations never pay this.
    ReplicaFull,
    /// Columnar replica delta frames: membership removals plus masked
    /// field updates for replicas that *persist* in a neighbor's band. A
    /// stationary boundary population costs zero bytes here too — empty
    /// frames are never charged.
    ReplicaDelta,
    /// Partial effect rows shipped to owners (second reduce pass).
    Effects,
    /// Per-parent spawn-count runs exchanged so every worker sequences the
    /// tick's spawns globally by `(parent id, ordinal)`. Non-spawning ticks
    /// never pay this — empty runs are not charged.
    Spawns,
    /// Master ↔ worker coordination (epoch commands, stats, checkpoints).
    Control,
}

/// Aggregate counters for one traffic category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    pub messages: u64,
    pub bytes: u64,
}

/// Totals across categories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    pub transfer: Counter,
    pub replica_full: Counter,
    pub replica_delta: Counter,
    pub effects: Counter,
    pub spawns: Counter,
    pub control: Counter,
}

impl NetStats {
    pub fn total_bytes(&self) -> u64 {
        self.transfer.bytes + self.replica_bytes() + self.effects.bytes + self.spawns.bytes + self.control.bytes
    }

    pub fn total_messages(&self) -> u64 {
        self.transfer.messages
            + self.replica_full.messages
            + self.replica_delta.messages
            + self.effects.messages
            + self.spawns.messages
            + self.control.messages
    }

    /// Replica traffic across both encodings (the pre-delta `replica`
    /// category).
    pub fn replica_bytes(&self) -> u64 {
        self.replica_full.bytes + self.replica_delta.bytes
    }
}

/// Shared, thread-safe ledger. Cloning shares the underlying counters.
#[derive(Debug, Clone, Default)]
pub struct NetLedger {
    inner: Arc<Mutex<NetStats>>,
    /// Telemetry handle captured at construction; mirrors per-class byte
    /// totals into the process-wide registry (no-op when telemetry is off).
    tel: Telemetry,
}

impl NetLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one message of `bytes` payload in category `kind`.
    pub fn record(&self, kind: Traffic, bytes: usize) {
        let mut s = self.inner.lock();
        let c = match kind {
            Traffic::Transfer => &mut s.transfer,
            Traffic::ReplicaFull => &mut s.replica_full,
            Traffic::ReplicaDelta => &mut s.replica_delta,
            Traffic::Effects => &mut s.effects,
            Traffic::Spawns => &mut s.spawns,
            Traffic::Control => &mut s.control,
        };
        c.messages += 1;
        c.bytes += bytes as u64;
        drop(s);
        let counter = match kind {
            Traffic::Transfer => TelCounter::NetTransferBytes,
            Traffic::ReplicaFull => TelCounter::NetReplicaFullBytes,
            Traffic::ReplicaDelta => TelCounter::NetReplicaDeltaBytes,
            Traffic::Effects => TelCounter::NetEffectsBytes,
            Traffic::Spawns => TelCounter::NetSpawnsBytes,
            Traffic::Control => TelCounter::NetControlBytes,
        };
        self.tel.add(counter, bytes as u64);
    }

    /// Snapshot the totals.
    pub fn stats(&self) -> NetStats {
        *self.inner.lock()
    }

    /// Zero all counters (e.g. after warm-up).
    pub fn reset(&self) {
        *self.inner.lock() = NetStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_category() {
        let l = NetLedger::new();
        l.record(Traffic::Transfer, 100);
        l.record(Traffic::Transfer, 50);
        l.record(Traffic::Effects, 10);
        let s = l.stats();
        assert_eq!(s.transfer, Counter { messages: 2, bytes: 150 });
        assert_eq!(s.effects, Counter { messages: 1, bytes: 10 });
        assert_eq!(s.total_bytes(), 160);
        assert_eq!(s.total_messages(), 3);
    }

    #[test]
    fn clones_share_counters() {
        let l = NetLedger::new();
        let l2 = l.clone();
        l2.record(Traffic::ReplicaFull, 7);
        l2.record(Traffic::ReplicaDelta, 2);
        assert_eq!(l.stats().replica_full.bytes, 7);
        assert_eq!(l.stats().replica_delta.bytes, 2);
        assert_eq!(l.stats().replica_bytes(), 9);
    }

    #[test]
    fn reset_zeroes() {
        let l = NetLedger::new();
        l.record(Traffic::Control, 1);
        l.reset();
        assert_eq!(l.stats(), NetStats::default());
    }

    #[test]
    fn ledger_is_thread_safe() {
        let l = NetLedger::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = l.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        l.record(Traffic::ReplicaFull, 8);
                    }
                });
            }
        });
        assert_eq!(l.stats().replica_full.messages, 4000);
        assert_eq!(l.stats().replica_full.bytes, 32000);
    }
}
