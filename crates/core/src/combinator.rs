//! Effect combinators — the ⊕ operators of the state-effect pattern.
//!
//! "Each effect attribute has an associated decomposable and
//! order-independent combinator function for combining multiple assignments
//! during a tick" (§2.1). Order independence (commutativity + associativity)
//! is what lets BRACE aggregate effect assignments in any order, partially
//! on one node and finally on another, without synchronization. The property
//! is not merely assumed: `proptest` suites in this module and in
//! `tests/properties.rs` check it for every combinator over floats (within
//! the usual caveat that float addition is only approximately associative —
//! aggregation trees are compared with a tolerance).

use serde::{Deserialize, Serialize};
use std::fmt;

/// An order-independent aggregate function over `f64` effect values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Combinator {
    /// Addition; identity 0. The workhorse (vector sums in the fish model,
    /// neighbor counts, accumulated "hurt" in the predator model).
    Sum,
    /// Multiplication; identity 1. Survival probabilities and the like.
    Prod,
    /// Minimum; identity +∞. "Closest gap" style aggregates.
    Min,
    /// Maximum; identity −∞.
    Max,
    /// Logical OR over the encoding 0.0 = false / anything else = true;
    /// identity 0 (false). Used for boolean flags such as "was bitten".
    Or,
    /// Logical AND over the same encoding; identity 1 (true).
    And,
}

impl Combinator {
    /// The identity element θ for this combinator: combining it with any
    /// value yields that value. Effect slots are reset to θ at the end of
    /// every tick (Appendix A's "idempotent values").
    #[inline]
    pub fn identity(self) -> f64 {
        match self {
            Combinator::Sum => 0.0,
            Combinator::Prod => 1.0,
            Combinator::Min => f64::INFINITY,
            Combinator::Max => f64::NEG_INFINITY,
            Combinator::Or => 0.0,
            Combinator::And => 1.0,
        }
    }

    /// Apply the combinator: `a ⊕ b`.
    #[inline]
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            Combinator::Sum => a + b,
            Combinator::Prod => a * b,
            Combinator::Min => a.min(b),
            Combinator::Max => a.max(b),
            Combinator::Or => {
                if a != 0.0 || b != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Combinator::And => {
                if a != 0.0 && b != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Fold a sequence of values starting from the identity.
    pub fn fold<I: IntoIterator<Item = f64>>(self, values: I) -> f64 {
        values.into_iter().fold(self.identity(), |acc, v| self.combine(acc, v))
    }

    /// Parse from the BRASIL surface syntax (`effect float x : sum;`).
    pub fn parse(name: &str) -> Option<Combinator> {
        match name {
            "sum" => Some(Combinator::Sum),
            "prod" | "product" => Some(Combinator::Prod),
            "min" => Some(Combinator::Min),
            "max" => Some(Combinator::Max),
            "or" => Some(Combinator::Or),
            "and" => Some(Combinator::And),
            _ => None,
        }
    }

    /// All combinators, for exhaustive property tests.
    pub const ALL: [Combinator; 6] =
        [Combinator::Sum, Combinator::Prod, Combinator::Min, Combinator::Max, Combinator::Or, Combinator::And];
}

impl fmt::Display for Combinator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Combinator::Sum => "sum",
            Combinator::Prod => "prod",
            Combinator::Min => "min",
            Combinator::Max => "max",
            Combinator::Or => "or",
            Combinator::And => "and",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identities_are_neutral() {
        for c in Combinator::ALL {
            for v in [-3.5, 0.0, 1.0, 42.0] {
                let got = c.combine(c.identity(), v);
                // Or/And normalize to 0/1; compare through the combinator's
                // own equivalence (truthiness) for those.
                match c {
                    Combinator::Or | Combinator::And => {
                        assert_eq!(got != 0.0, v != 0.0, "{c} identity broke truthiness")
                    }
                    _ => assert_eq!(got, v, "{c} identity not neutral"),
                }
            }
        }
    }

    #[test]
    fn fold_examples() {
        assert_eq!(Combinator::Sum.fold([1.0, 2.0, 3.0]), 6.0);
        assert_eq!(Combinator::Prod.fold([2.0, 3.0]), 6.0);
        assert_eq!(Combinator::Min.fold([3.0, -1.0, 2.0]), -1.0);
        assert_eq!(Combinator::Max.fold([3.0, -1.0, 2.0]), 3.0);
        assert_eq!(Combinator::Or.fold([0.0, 0.0, 5.0]), 1.0);
        assert_eq!(Combinator::Or.fold([0.0, 0.0]), 0.0);
        assert_eq!(Combinator::And.fold([1.0, 2.0]), 1.0);
        assert_eq!(Combinator::And.fold([1.0, 0.0]), 0.0);
    }

    #[test]
    fn fold_of_empty_is_identity() {
        for c in Combinator::ALL {
            assert_eq!(c.fold([]), c.identity());
        }
    }

    #[test]
    fn parse_round_trips_display() {
        for c in Combinator::ALL {
            assert_eq!(Combinator::parse(&c.to_string()), Some(c));
        }
        assert_eq!(Combinator::parse("median"), None);
    }

    proptest! {
        #[test]
        fn commutative(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            for c in Combinator::ALL {
                prop_assert_eq!(c.combine(a, b).to_bits(), c.combine(b, a).to_bits());
            }
        }

        #[test]
        fn associative_exactly_for_lattice_ops(a in -1e6f64..1e6, b in -1e6f64..1e6, x in -1e6f64..1e6) {
            // Min/Max/Or/And are exactly associative on floats.
            for c in [Combinator::Min, Combinator::Max, Combinator::Or, Combinator::And] {
                let l = c.combine(c.combine(a, b), x);
                let r = c.combine(a, c.combine(b, x));
                prop_assert_eq!(l.to_bits(), r.to_bits());
            }
        }

        #[test]
        fn associative_approximately_for_arithmetic(a in -1e3f64..1e3, b in -1e3f64..1e3, x in -1e3f64..1e3) {
            for c in [Combinator::Sum, Combinator::Prod] {
                let l = c.combine(c.combine(a, b), x);
                let r = c.combine(a, c.combine(b, x));
                let scale = l.abs().max(r.abs()).max(1.0);
                prop_assert!((l - r).abs() <= 1e-9 * scale, "{} vs {}", l, r);
            }
        }

        #[test]
        fn fold_is_permutation_insensitive_for_lattice_ops(mut xs in proptest::collection::vec(-1e6f64..1e6, 0..20)) {
            for c in [Combinator::Min, Combinator::Max, Combinator::Or, Combinator::And] {
                let forward = c.fold(xs.iter().copied());
                xs.reverse();
                let backward = c.fold(xs.iter().copied());
                prop_assert_eq!(forward.to_bits(), backward.to_bits());
            }
        }
    }
}
