//! High-level single-node simulation API.
//!
//! [`Simulation`] wraps [`TickExecutor`] with a builder, validation and
//! the couple of conveniences every experiment harness wants (warm-up
//! discarding, snapshotting). It is one of the two engines behind the
//! backend-erased driver in `brace_scenario` — `Runner`/`SimHandle` drive
//! either this or `brace_mapreduce::ClusterSim` behind one facade, which
//! is the surface most callers should use; reach for `Simulation`
//! directly when embedding a single-node engine with a concrete behavior
//! type (it stays monomorphized over `B`, so model code inlines into the
//! probe loop).

use crate::agent::Agent;
use crate::behavior::Behavior;
use crate::executor::TickExecutor;
use crate::metrics::{SimMetrics, TickMetrics};
use brace_common::{BraceError, Result};
use brace_spatial::IndexKind;

/// Builder for a single-node [`Simulation`].
pub struct SimulationBuilder<B: Behavior> {
    behavior: B,
    agents: Vec<Agent>,
    index: IndexKind,
    seed: u64,
    parallelism: usize,
}

impl<B: Behavior> SimulationBuilder<B> {
    /// Initial population. Each agent must match the behavior's schema.
    pub fn agents(mut self, agents: Vec<Agent>) -> Self {
        self.agents = agents;
        self
    }

    /// Spatial index used by the query phase (default: KD-tree).
    pub fn index(mut self, kind: IndexKind) -> Self {
        self.index = kind;
        self
    }

    /// Master seed; every run with the same seed is bit-identical.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Thread budget for the query/update phases: `1` (default) runs the
    /// deterministic shard plan serially, `0` uses every available core,
    /// `n` caps at `n` threads. Results are identical for every setting —
    /// only wall time changes.
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<Simulation<B>> {
        let schema = self.behavior.schema();
        for a in &self.agents {
            if a.state.len() != schema.num_states() {
                return Err(BraceError::Schema(format!(
                    "agent {} has {} state slots, schema `{}` expects {}",
                    a.id,
                    a.state.len(),
                    schema.name(),
                    schema.num_states()
                )));
            }
            if a.effects.len() != schema.num_effects() {
                return Err(BraceError::Schema(format!(
                    "agent {} has {} effect slots, schema `{}` expects {}",
                    a.id,
                    a.effects.len(),
                    schema.name(),
                    schema.num_effects()
                )));
            }
        }
        let mut ids = std::collections::HashSet::new();
        for a in &self.agents {
            if !ids.insert(a.id) {
                return Err(BraceError::Config(format!("duplicate agent id {}", a.id)));
            }
        }
        let mut exec = TickExecutor::new(self.behavior, self.agents, self.index, self.seed);
        exec.set_parallelism(self.parallelism);
        Ok(Simulation { exec })
    }
}

/// A single-node behavioral simulation.
pub struct Simulation<B: Behavior> {
    exec: TickExecutor<B>,
}

impl<B: Behavior> Simulation<B> {
    /// Start building a simulation around `behavior`.
    pub fn builder(behavior: B) -> SimulationBuilder<B> {
        SimulationBuilder { behavior, agents: Vec::new(), index: IndexKind::KdTree, seed: 0, parallelism: 1 }
    }

    /// Execute one tick.
    pub fn step(&mut self) -> TickMetrics {
        self.exec.step()
    }

    /// Execute `n` ticks.
    pub fn run(&mut self, n: u64) {
        self.exec.run(n)
    }

    /// Execute `warmup` ticks, discard their metrics, then run `measured`
    /// ticks — the paper's transient-elimination protocol.
    pub fn run_measured(&mut self, warmup: u64, measured: u64) -> SimMetrics {
        self.exec.run(warmup);
        self.exec.reset_metrics();
        self.exec.run(measured);
        self.exec.metrics().clone()
    }

    /// Materialize the world as row records (the serialization boundary;
    /// hot paths read [`Simulation::pool`]).
    pub fn agents(&self) -> Vec<Agent> {
        self.exec.agents()
    }

    /// The executor's columnar working representation.
    pub fn pool(&self) -> &crate::agent::AgentPool {
        self.exec.pool()
    }

    pub fn behavior(&self) -> &B {
        self.exec.behavior()
    }

    pub fn tick(&self) -> u64 {
        self.exec.tick()
    }

    pub fn metrics(&self) -> &SimMetrics {
        self.exec.metrics()
    }

    /// Discard accumulated metrics (start-up transient elimination) without
    /// rewinding the simulation clock.
    pub fn reset_metrics(&mut self) {
        self.exec.reset_metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{Neighbors, UpdateCtx};
    use crate::effect::EffectWriter;
    use crate::schema::AgentSchema;
    use brace_common::{AgentId, DetRng, Vec2};

    struct Noop(AgentSchema);

    impl Behavior for Noop {
        fn schema(&self) -> &AgentSchema {
            &self.0
        }
        fn query(
            &self,
            _m: crate::agent::AgentRef<'_>,
            _n: &Neighbors<'_>,
            _e: &mut EffectWriter<'_>,
            _rng: &mut DetRng,
        ) {
        }
        fn update(&self, _m: &mut Agent, _c: &mut UpdateCtx<'_>) {}
    }

    fn noop() -> Noop {
        Noop(AgentSchema::builder("Noop").state("s").visibility(1.0).build().unwrap())
    }

    #[test]
    fn builder_validates_state_shape() {
        let b = noop();
        let bad = Agent { id: AgentId::new(0), pos: Vec2::ZERO, state: vec![], effects: vec![], alive: true };
        let err = Simulation::builder(b).agents(vec![bad]).build().err().expect("shape must be rejected");
        assert!(err.to_string().contains("state slots"));
    }

    #[test]
    fn builder_rejects_duplicate_ids() {
        let b = noop();
        let a1 = Agent::new(AgentId::new(1), Vec2::ZERO, b.schema());
        let a2 = Agent::new(AgentId::new(1), Vec2::new(1.0, 0.0), b.schema());
        let err = Simulation::builder(b).agents(vec![a1, a2]).build().err().expect("duplicate ids must be rejected");
        assert!(err.to_string().contains("duplicate agent id"));
    }

    #[test]
    fn run_measured_discards_warmup() {
        let b = noop();
        let agents = vec![Agent::new(AgentId::new(0), Vec2::ZERO, b.schema())];
        let mut sim = Simulation::builder(b).agents(agents).seed(1).build().unwrap();
        let m = sim.run_measured(3, 5);
        assert_eq!(m.ticks, 5);
        assert_eq!(sim.tick(), 8);
    }
}
