//! The agent record `a = ⟨oid, s, e⟩` of the paper's Appendix A.
//!
//! Agents are *dynamic* records: the number and meaning of their state and
//! effect slots comes from an [`AgentSchema`],
//! so the same engine runs hand-coded Rust models and compiled BRASIL
//! classes. The spatial location `ℓ(s)` is stored as an explicit
//! [`Vec2`] (`pos`) because every subsystem — indexing, partitioning,
//! replication — keys on it.

use crate::schema::AgentSchema;
use brace_common::{AgentId, FieldId, Vec2};
use serde::{Deserialize, Serialize};

/// One simulated agent.
///
/// Serializable so that checkpoints and worker-to-worker transfers are just
/// `serde` on `Vec<Agent>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Agent {
    /// Stable identity (`oid`). Replicas carry the owner's id.
    pub id: AgentId,
    /// Spatial location `ℓ(s)` — a distinguished pair of state attributes.
    pub pos: Vec2,
    /// Non-spatial state attributes, indexed by the schema's state fields.
    pub state: Vec<f64>,
    /// Effect attributes, indexed by the schema's effect fields. Reset to
    /// the combinator identities θ at every tick boundary.
    pub effects: Vec<f64>,
    /// Liveness flag: update rules may kill an agent (predator model); dead
    /// agents are removed by the executor at the end of the tick.
    pub alive: bool,
}

impl Agent {
    /// A new agent shaped by `schema`, with all state zeroed and effects at
    /// their identities.
    pub fn new(id: AgentId, pos: Vec2, schema: &AgentSchema) -> Self {
        Agent { id, pos, state: vec![0.0; schema.num_states()], effects: schema.effect_identities(), alive: true }
    }

    /// A new agent with explicit initial state values (length-checked by
    /// debug assertion; release builds trust the caller).
    pub fn with_state(id: AgentId, pos: Vec2, state: Vec<f64>, schema: &AgentSchema) -> Self {
        debug_assert_eq!(state.len(), schema.num_states(), "state vector shape mismatch");
        Agent { id, pos, state, effects: schema.effect_identities(), alive: true }
    }

    /// Read a state field.
    #[inline]
    pub fn get(&self, f: FieldId) -> f64 {
        self.state[f.index()]
    }

    /// Write a state field (update phase only — the executor enforces the
    /// discipline by never handing out `&mut Agent` during queries).
    #[inline]
    pub fn set(&mut self, f: FieldId, v: f64) {
        self.state[f.index()] = v;
    }

    /// Read an aggregated effect field (update phase).
    #[inline]
    pub fn effect(&self, f: FieldId) -> f64 {
        self.effects[f.index()]
    }

    /// Reset every effect slot to its combinator identity; called by the
    /// executor after the update phase consumed them.
    pub fn reset_effects(&mut self, schema: &AgentSchema) {
        for (slot, def) in self.effects.iter_mut().zip(schema.effect_defs()) {
            *slot = def.combinator.identity();
        }
    }

    /// Clamp a proposed new position to the agent's reachable region around
    /// `from` (the position at the start of the tick). BRASIL guarantees
    /// "the update rule is guaranteed to crop any changes to the x
    /// coordinate to at most one unit" — this is that crop.
    pub fn clamp_move(from: Vec2, proposed: Vec2, reachability: f64) -> Vec2 {
        if !reachability.is_finite() {
            return proposed;
        }
        Vec2::new(
            proposed.x.clamp(from.x - reachability, from.x + reachability),
            proposed.y.clamp(from.y - reachability, from.y + reachability),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinator::Combinator;

    fn schema() -> AgentSchema {
        AgentSchema::builder("T")
            .state("v")
            .state("w")
            .effect("acc", Combinator::Sum)
            .effect("closest", Combinator::Min)
            .visibility(2.0)
            .reachability(1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn new_agent_shape() {
        let s = schema();
        let a = Agent::new(AgentId::new(1), Vec2::new(1.0, 2.0), &s);
        assert_eq!(a.state, vec![0.0, 0.0]);
        assert_eq!(a.effects, vec![0.0, f64::INFINITY]);
        assert!(a.alive);
    }

    #[test]
    fn field_access_round_trip() {
        let s = schema();
        let mut a = Agent::new(AgentId::new(1), Vec2::ZERO, &s);
        let v = s.state_field("v").unwrap();
        a.set(v, 3.5);
        assert_eq!(a.get(v), 3.5);
    }

    #[test]
    fn reset_effects_restores_identities() {
        let s = schema();
        let mut a = Agent::new(AgentId::new(1), Vec2::ZERO, &s);
        a.effects = vec![5.0, -2.0];
        a.reset_effects(&s);
        assert_eq!(a.effects, vec![0.0, f64::INFINITY]);
    }

    #[test]
    fn clamp_move_crops_to_reachable_region() {
        let from = Vec2::new(10.0, 10.0);
        let out = Agent::clamp_move(from, Vec2::new(15.0, 10.4), 1.0);
        assert_eq!(out, Vec2::new(11.0, 10.4));
        // Infinite reachability is a no-op.
        let free = Agent::clamp_move(from, Vec2::new(1e9, -1e9), f64::INFINITY);
        assert_eq!(free, Vec2::new(1e9, -1e9));
    }

    #[test]
    fn with_state_uses_given_values() {
        let s = schema();
        let a = Agent::with_state(AgentId::new(2), Vec2::ZERO, vec![1.0, 2.0], &s);
        assert_eq!(a.state, vec![1.0, 2.0]);
    }
}
