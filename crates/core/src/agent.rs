//! Agent records and the struct-of-arrays agent pool.
//!
//! The paper's agent `a = ⟨oid, s, e⟩` (Appendix A) appears in two
//! physical layouts:
//!
//! * [`Agent`] — the row-oriented *serialization record*: one id, one
//!   position, one `Vec<f64>` of state slots, one of effect slots. This is
//!   what checkpoints, worker-to-worker transfers and model constructors
//!   speak, because `serde` on `Vec<Agent>` is the stable wire format.
//! * [`AgentPool`] — the **struct-of-arrays working representation** the
//!   executor actually runs on. Every attribute is its own flat column:
//!   `ids`, `xs`, `ys`, `alive`, one `Vec<f64>` per state field, and one
//!   effect column per effect field (owned by the pool's embedded
//!   [`EffectTable`]). The per-tick query phase — by far the hot path —
//!   touches positions and a couple of state fields for millions of
//!   neighbor visits; with the pool those reads are cache-linear column
//!   scans instead of two pointer chases (`Vec<Agent>` → `Agent.state`
//!   heap block) per field access, and the effect accumulator is the
//!   pool's own columns rather than a separate allocation that must be
//!   copied back (`EffectTable::write_into`) each tick.
//!
//! Conversion between the two lives at the serialization boundary only
//! ([`AgentPool::from_agents`] / [`AgentPool::to_agents`]): checkpoints
//! stay byte-compatible, and the executor never materializes row records
//! in its hot loops. During the query phase behaviors see rows through the
//! read-only [`AgentRef`] view; the update phase gathers one row at a time
//! into a reused scratch [`Agent`] (updates are O(fields) per agent and
//! touch every column anyway, so the gather adds no asymptotic cost while
//! keeping `Behavior::update`'s `&mut Agent` contract stable).

use crate::effect::EffectTable;
use crate::schema::AgentSchema;
use brace_common::{AgentId, FieldId, Vec2};
use serde::{Deserialize, Serialize};

/// One simulated agent, row layout.
///
/// Serializable so that checkpoints and worker-to-worker transfers are just
/// `serde` on `Vec<Agent>`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Agent {
    /// Stable identity (`oid`). Replicas carry the owner's id.
    pub id: AgentId,
    /// Spatial location `ℓ(s)` — a distinguished pair of state attributes.
    pub pos: Vec2,
    /// Non-spatial state attributes, indexed by the schema's state fields.
    pub state: Vec<f64>,
    /// Effect attributes, indexed by the schema's effect fields. Reset to
    /// the combinator identities θ at every tick boundary.
    pub effects: Vec<f64>,
    /// Liveness flag: update rules may kill an agent (predator model); dead
    /// agents are removed by the executor at the end of the tick.
    pub alive: bool,
}

impl Agent {
    /// A new agent shaped by `schema`, with all state zeroed and effects at
    /// their identities.
    pub fn new(id: AgentId, pos: Vec2, schema: &AgentSchema) -> Self {
        Agent { id, pos, state: vec![0.0; schema.num_states()], effects: schema.effect_identities(), alive: true }
    }

    /// A new agent with explicit initial state values (length-checked by
    /// debug assertion; release builds trust the caller).
    pub fn with_state(id: AgentId, pos: Vec2, state: Vec<f64>, schema: &AgentSchema) -> Self {
        debug_assert_eq!(state.len(), schema.num_states(), "state vector shape mismatch");
        Agent { id, pos, state, effects: schema.effect_identities(), alive: true }
    }

    /// Read a state field.
    #[inline]
    pub fn get(&self, f: FieldId) -> f64 {
        self.state[f.index()]
    }

    /// Write a state field (update phase only — the executor enforces the
    /// discipline by never handing out `&mut Agent` during queries).
    #[inline]
    pub fn set(&mut self, f: FieldId, v: f64) {
        self.state[f.index()] = v;
    }

    /// Read an aggregated effect field (update phase).
    #[inline]
    pub fn effect(&self, f: FieldId) -> f64 {
        self.effects[f.index()]
    }

    /// Reset every effect slot to its combinator identity; called by the
    /// serial reference executor after the update phase consumed them (the
    /// pool path resets whole columns instead).
    pub fn reset_effects(&mut self, schema: &AgentSchema) {
        for (slot, def) in self.effects.iter_mut().zip(schema.effect_defs()) {
            *slot = def.combinator.identity();
        }
    }

    /// Clamp a proposed new position to the agent's reachable region around
    /// `from` (the position at the start of the tick). BRASIL guarantees
    /// "the update rule is guaranteed to crop any changes to the x
    /// coordinate to at most one unit" — this is that crop.
    pub fn clamp_move(from: Vec2, proposed: Vec2, reachability: f64) -> Vec2 {
        if !reachability.is_finite() {
            return proposed;
        }
        Vec2::new(
            proposed.x.clamp(from.x - reachability, from.x + reachability),
            proposed.y.clamp(from.y - reachability, from.y + reachability),
        )
    }
}

/// Read-only access to an agent's identity, position and state — the
/// common surface of the row record ([`Agent`]) and the pool row view
/// ([`AgentRef`]). Interpreters that must run against both layouts (the
/// BRASIL executor evaluates expressions over the querying agent in the
/// query phase and over a snapshot record in the update phase) are generic
/// over this trait.
pub trait AgentRead {
    fn id(&self) -> AgentId;
    fn pos(&self) -> Vec2;
    /// Read state slot `slot` (schema order).
    fn state(&self, slot: u16) -> f64;
}

impl<T: AgentRead + ?Sized> AgentRead for &T {
    #[inline]
    fn id(&self) -> AgentId {
        (**self).id()
    }
    #[inline]
    fn pos(&self) -> Vec2 {
        (**self).pos()
    }
    #[inline]
    fn state(&self, slot: u16) -> f64 {
        (**self).state(slot)
    }
}

impl AgentRead for Agent {
    #[inline]
    fn id(&self) -> AgentId {
        self.id
    }
    #[inline]
    fn pos(&self) -> Vec2 {
        self.pos
    }
    #[inline]
    fn state(&self, slot: u16) -> f64 {
        self.state[slot as usize]
    }
}

/// The struct-of-arrays agent pool: the executor's working representation.
/// See the module docs for the layout rationale.
#[derive(Debug, Clone)]
pub struct AgentPool {
    ids: Vec<AgentId>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    alive: Vec<bool>,
    /// One flat column per state field (schema order).
    states: Vec<Vec<f64>>,
    /// Effect columns: the per-tick accumulator *is* the pool's storage —
    /// the sharded query phase merges straight into these columns and the
    /// update phase reads them back without any copy.
    effects: EffectTable,
}

impl AgentPool {
    /// An empty pool shaped by `schema`.
    pub fn new(schema: &AgentSchema) -> Self {
        AgentPool {
            ids: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            alive: Vec::new(),
            states: vec![Vec::new(); schema.num_states()],
            effects: EffectTable::new(schema),
        }
    }

    /// Convert row records into the columnar layout (the serialization
    /// boundary: checkpoints, worker transfers, model constructors).
    pub fn from_agents(schema: &AgentSchema, agents: &[Agent]) -> Self {
        let mut pool = AgentPool::new(schema);
        pool.extend_from_agents(agents);
        pool
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Drop every row, keeping the column allocations.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.xs.clear();
        self.ys.clear();
        self.alive.clear();
        for col in &mut self.states {
            col.clear();
        }
        self.effects.reset(0);
    }

    /// Append one row record (shape-checked in debug builds).
    pub fn push_agent(&mut self, a: &Agent) {
        debug_assert_eq!(a.state.len(), self.states.len(), "state shape mismatch");
        debug_assert_eq!(a.effects.len(), self.effects.width(), "effect shape mismatch");
        self.ids.push(a.id);
        self.xs.push(a.pos.x);
        self.ys.push(a.pos.y);
        self.alive.push(a.alive);
        for (col, &v) in self.states.iter_mut().zip(&a.state) {
            col.push(v);
        }
        self.effects.push_row(&a.effects);
    }

    /// Append a batch of row records.
    pub fn extend_from_agents(&mut self, agents: &[Agent]) {
        for a in agents {
            self.push_agent(a);
        }
    }

    /// Append a freshly spawned agent: given state, effects at their
    /// identities, alive.
    pub fn push_spawn(&mut self, id: AgentId, pos: Vec2, state: &[f64]) {
        debug_assert_eq!(state.len(), self.states.len(), "state shape mismatch");
        self.ids.push(id);
        self.xs.push(pos.x);
        self.ys.push(pos.y);
        self.alive.push(true);
        for (col, &v) in self.states.iter_mut().zip(state) {
            col.push(v);
        }
        self.effects.push_identity_row();
    }

    /// Overwrite row `dst` with row `src` (all columns, effects included).
    ///
    /// One of the **stable-row mutation primitives** the distributed
    /// runtime's persistent pool is built on: removal is "copy the last row
    /// into the hole, then pop", so every surviving row keeps its index and
    /// only one row moves. Callers maintaining an id ↔ row map (the worker)
    /// re-point the moved id after the copy.
    #[inline]
    pub fn copy_row_within(&mut self, src: u32, dst: u32) {
        let (s, d) = (src as usize, dst as usize);
        self.ids[d] = self.ids[s];
        self.xs[d] = self.xs[s];
        self.ys[d] = self.ys[s];
        self.alive[d] = self.alive[s];
        for col in &mut self.states {
            col[d] = col[s];
        }
        self.effects.copy_row_within(src, dst);
    }

    /// Append a copy of row `src` at the end (the persistent pool's
    /// owned-region insertion relocates the first replica-tail row here).
    pub fn push_row_copy(&mut self, src: u32) {
        let s = src as usize;
        self.ids.push(self.ids[s]);
        self.xs.push(self.xs[s]);
        self.ys.push(self.ys[s]);
        self.alive.push(self.alive[s]);
        for col in &mut self.states {
            let v = col[s];
            col.push(v);
        }
        self.effects.push_row_copy(src);
    }

    /// Remove the last row.
    pub fn pop_row(&mut self) {
        debug_assert!(!self.is_empty(), "pop from empty pool");
        self.ids.pop();
        self.xs.pop();
        self.ys.pop();
        self.alive.pop();
        for col in &mut self.states {
            col.pop();
        }
        self.effects.pop_row();
    }

    /// Overwrite row `r` in place from a row record (replica refresh,
    /// owned-region insertion into a relocated slot).
    pub fn overwrite_row(&mut self, r: u32, a: &Agent) {
        debug_assert_eq!(a.state.len(), self.states.len(), "state shape mismatch");
        debug_assert_eq!(a.effects.len(), self.effects.width(), "effect shape mismatch");
        let i = r as usize;
        self.ids[i] = a.id;
        self.xs[i] = a.pos.x;
        self.ys[i] = a.pos.y;
        self.alive[i] = a.alive;
        for (col, &v) in self.states.iter_mut().zip(&a.state) {
            col[i] = v;
        }
        self.effects.set_row(r, &a.effects);
    }

    /// Number of state fields per row (the schema's state width).
    #[inline]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Keep only rows `0..n` (drops replica rows after the query phase).
    pub fn truncate(&mut self, n: usize) {
        self.ids.truncate(n);
        self.xs.truncate(n);
        self.ys.truncate(n);
        self.alive.truncate(n);
        for col in &mut self.states {
            col.truncate(n);
        }
        self.effects.truncate_rows(n);
    }

    #[inline]
    pub fn id(&self, row: u32) -> AgentId {
        self.ids[row as usize]
    }

    #[inline]
    pub fn pos(&self, row: u32) -> Vec2 {
        Vec2::new(self.xs[row as usize], self.ys[row as usize])
    }

    #[inline]
    pub fn set_pos(&mut self, row: u32, p: Vec2) {
        self.xs[row as usize] = p.x;
        self.ys[row as usize] = p.y;
    }

    #[inline]
    pub fn state(&self, row: u32, f: FieldId) -> f64 {
        self.states[f.index()][row as usize]
    }

    #[inline]
    pub fn set_state(&mut self, row: u32, f: FieldId, v: f64) {
        self.states[f.index()][row as usize] = v;
    }

    #[inline]
    pub fn alive(&self, row: u32) -> bool {
        self.alive[row as usize]
    }

    /// The x-position column (index construction, partitioning sweeps).
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y-position column.
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// The id column.
    #[inline]
    pub fn ids(&self) -> &[AgentId] {
        &self.ids
    }

    /// The effect columns (post-query aggregates, pre-update reads).
    #[inline]
    pub fn effects(&self) -> &EffectTable {
        &self.effects
    }

    /// Mutable effect columns (the distributed runtime ⊕-merges shipped
    /// partial rows into them between the query and update phases).
    #[inline]
    pub fn effects_mut(&mut self) -> &mut EffectTable {
        &mut self.effects
    }

    /// Reset every effect column to its identity — one `fill` per column.
    pub fn reset_effects(&mut self) {
        let n = self.len();
        self.effects.reset(n);
    }

    /// Read-only view of the identity/position/state columns (what the
    /// query phase sees).
    #[inline]
    pub fn view(&self) -> PoolView<'_> {
        PoolView { ids: &self.ids, xs: &self.xs, ys: &self.ys, alive: &self.alive, states: &self.states }
    }

    /// Split the pool for the query phase: a frozen state view for the
    /// probe loops plus the mutable effect columns the shard results merge
    /// into. The borrow split is what enforces "states read-only, effects
    /// write-only" at zero cost.
    #[inline]
    pub fn split_query(&mut self) -> (PoolView<'_>, &mut EffectTable) {
        (
            PoolView { ids: &self.ids, xs: &self.xs, ys: &self.ys, alive: &self.alive, states: &self.states },
            &mut self.effects,
        )
    }

    /// Compact away rows whose `alive` flag is false, preserving order.
    /// Returns the number of removed rows. Effect columns are *not*
    /// compacted — callers reset them for the next tick right after (the
    /// update phase consumed them already).
    pub fn retain_alive(&mut self) -> usize {
        let before = self.len();
        if self.alive.iter().all(|&a| a) {
            return 0;
        }
        let mut w = 0usize;
        for r in 0..before {
            if self.alive[r] {
                if w != r {
                    self.ids[w] = self.ids[r];
                    self.xs[w] = self.xs[r];
                    self.ys[w] = self.ys[r];
                    for col in &mut self.states {
                        col[w] = col[r];
                    }
                }
                w += 1;
            }
        }
        self.ids.truncate(w);
        self.xs.truncate(w);
        self.ys.truncate(w);
        for col in &mut self.states {
            col.truncate(w);
        }
        self.alive.clear();
        self.alive.resize(w, true);
        before - w
    }

    /// Materialize row records (the serialization boundary out).
    pub fn to_agents(&self) -> Vec<Agent> {
        let mut out = Vec::new();
        self.write_agents_into(&mut out);
        out
    }

    /// [`AgentPool::to_agents`] into a reused buffer.
    pub fn write_agents_into(&self, out: &mut Vec<Agent>) {
        self.write_agents_prefix_into(self.len(), out);
    }

    /// Materialize rows `0..n` as row records (the distributed worker's
    /// snapshot boundary: owned rows only, replica tail excluded).
    pub fn write_agents_prefix_into(&self, n: usize, out: &mut Vec<Agent>) {
        debug_assert!(n <= self.len());
        out.clear();
        out.reserve(n);
        for r in 0..n {
            out.push(Agent {
                id: self.ids[r],
                pos: Vec2::new(self.xs[r], self.ys[r]),
                state: self.states.iter().map(|col| col[r]).collect(),
                effects: (0..self.effects.width())
                    .map(|f| self.effects.get(r as u32, FieldId::new(f as u16)))
                    .collect(),
                alive: self.alive[r],
            });
        }
    }

    /// Gather row `r` into a reused scratch record (update-phase entry).
    pub fn load_agent(&self, r: usize, into: &mut Agent) {
        into.id = self.ids[r];
        into.pos = Vec2::new(self.xs[r], self.ys[r]);
        into.alive = self.alive[r];
        into.state.clear();
        into.state.extend(self.states.iter().map(|col| col[r]));
        into.effects.clear();
        into.effects.extend((0..self.effects.width()).map(|f| self.effects.get(r as u32, FieldId::new(f as u16))));
    }

    /// Split the pool into disjoint mutable chunks of `counts` rows each
    /// (must sum to `len`), sharing the effect columns read-only — the
    /// parallel update phase's entry point.
    pub fn update_chunks(&mut self, counts: &[usize]) -> Vec<UpdateChunk<'_>> {
        debug_assert_eq!(counts.iter().sum::<usize>(), self.len(), "chunk plan must cover the pool");
        self.update_chunks_prefix(counts)
    }

    /// [`AgentPool::update_chunks`] over a prefix of the pool: `counts` may
    /// sum to less than `len`, leaving the remaining rows (the distributed
    /// worker's persistent replica tail) untouched and unborrowed.
    pub fn update_chunks_prefix(&mut self, counts: &[usize]) -> Vec<UpdateChunk<'_>> {
        debug_assert!(counts.iter().sum::<usize>() <= self.len(), "chunk plan exceeds the pool");
        let effects = &self.effects;
        let mut ids: &[AgentId] = &self.ids;
        let mut xs: &mut [f64] = &mut self.xs;
        let mut ys: &mut [f64] = &mut self.ys;
        let mut alive: &mut [bool] = &mut self.alive;
        let mut states: Vec<&mut [f64]> = self.states.iter_mut().map(|c| c.as_mut_slice()).collect();
        let mut out = Vec::with_capacity(counts.len());
        let mut base = 0usize;
        for &count in counts {
            let (id_head, id_tail) = ids.split_at(count);
            ids = id_tail;
            let (x_head, x_tail) = std::mem::take(&mut xs).split_at_mut(count);
            xs = x_tail;
            let (y_head, y_tail) = std::mem::take(&mut ys).split_at_mut(count);
            ys = y_tail;
            let (a_head, a_tail) = std::mem::take(&mut alive).split_at_mut(count);
            alive = a_tail;
            let mut s_heads = Vec::with_capacity(states.len());
            for s in states.iter_mut() {
                let (head, tail) = std::mem::take(s).split_at_mut(count);
                s_heads.push(head);
                *s = tail;
            }
            out.push(UpdateChunk {
                ids: id_head,
                xs: x_head,
                ys: y_head,
                alive: a_head,
                states: s_heads,
                effects,
                base,
            });
            base += count;
        }
        out
    }
}

/// Copyable read-only view of a pool's identity/position/state columns.
#[derive(Clone, Copy)]
pub struct PoolView<'a> {
    pub(crate) ids: &'a [AgentId],
    pub(crate) xs: &'a [f64],
    pub(crate) ys: &'a [f64],
    pub(crate) alive: &'a [bool],
    pub(crate) states: &'a [Vec<f64>],
}

impl<'a> PoolView<'a> {
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    #[inline]
    pub fn pos(&self, row: u32) -> Vec2 {
        Vec2::new(self.xs[row as usize], self.ys[row as usize])
    }

    #[inline]
    pub fn id(&self, row: u32) -> AgentId {
        self.ids[row as usize]
    }

    #[inline]
    pub fn alive(&self, row: u32) -> bool {
        self.alive[row as usize]
    }

    /// Row view handed to behaviors.
    #[inline]
    pub fn agent(&self, row: u32) -> AgentRef<'a> {
        AgentRef { view: *self, row }
    }
}

/// Read-only view of one pool row — what `Behavior::query` receives for
/// the querying agent and each neighbor. Copy-cheap (two words).
#[derive(Clone, Copy)]
pub struct AgentRef<'a> {
    pub(crate) view: PoolView<'a>,
    /// Row in the tick's visible set / effect table.
    pub row: u32,
}

impl AgentRef<'_> {
    /// Read a state field by resolved id.
    #[inline]
    pub fn get(&self, f: FieldId) -> f64 {
        self.view.states[f.index()][self.row as usize]
    }

    #[inline]
    pub fn alive(&self) -> bool {
        self.view.alive[self.row as usize]
    }
}

impl AgentRead for AgentRef<'_> {
    #[inline]
    fn id(&self) -> AgentId {
        AgentRef::id(self)
    }
    #[inline]
    fn pos(&self) -> Vec2 {
        AgentRef::pos(self)
    }
    #[inline]
    fn state(&self, slot: u16) -> f64 {
        AgentRef::state(self, slot)
    }
}

impl AgentRef<'_> {
    /// Identity (`oid`) of this row.
    #[inline]
    pub fn id(&self) -> AgentId {
        self.view.ids[self.row as usize]
    }

    /// Position `ℓ(s)` of this row.
    #[inline]
    pub fn pos(&self) -> Vec2 {
        Vec2::new(self.view.xs[self.row as usize], self.view.ys[self.row as usize])
    }

    /// Read state slot `slot` (schema order) — mirrors the model crates'
    /// `state::FOO` slot constants.
    #[inline]
    pub fn state(&self, slot: u16) -> f64 {
        self.view.states[slot as usize][self.row as usize]
    }
}

/// One contiguous mutable slice of the pool for the parallel update phase:
/// exclusive access to the id/position/state/alive columns of its rows,
/// shared read access to the aggregated effect columns.
pub struct UpdateChunk<'a> {
    ids: &'a [AgentId],
    xs: &'a mut [f64],
    ys: &'a mut [f64],
    alive: &'a mut [bool],
    states: Vec<&'a mut [f64]>,
    effects: &'a EffectTable,
    /// Global row index of this chunk's first row (effects addressing).
    base: usize,
}

impl UpdateChunk<'_> {
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Gather local row `i` into a reused scratch record.
    pub fn load(&self, i: usize, into: &mut Agent) {
        into.id = self.ids[i];
        into.pos = Vec2::new(self.xs[i], self.ys[i]);
        into.alive = self.alive[i];
        into.state.clear();
        into.state.extend(self.states.iter().map(|col| col[i]));
        into.effects.clear();
        into.effects.extend(
            (0..self.effects.width()).map(|f| self.effects.get((self.base + i) as u32, FieldId::new(f as u16))),
        );
    }

    /// Scatter the updated position/state/liveness of local row `i` back
    /// into the columns (effects are reset wholesale afterwards).
    pub fn store(&mut self, i: usize, from: &Agent) {
        self.xs[i] = from.pos.x;
        self.ys[i] = from.pos.y;
        self.alive[i] = from.alive;
        for (col, &v) in self.states.iter_mut().zip(&from.state) {
            col[i] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinator::Combinator;

    fn schema() -> AgentSchema {
        AgentSchema::builder("T")
            .state("v")
            .state("w")
            .effect("acc", Combinator::Sum)
            .effect("closest", Combinator::Min)
            .visibility(2.0)
            .reachability(1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn new_agent_shape() {
        let s = schema();
        let a = Agent::new(AgentId::new(1), Vec2::new(1.0, 2.0), &s);
        assert_eq!(a.state, vec![0.0, 0.0]);
        assert_eq!(a.effects, vec![0.0, f64::INFINITY]);
        assert!(a.alive);
    }

    #[test]
    fn field_access_round_trip() {
        let s = schema();
        let mut a = Agent::new(AgentId::new(1), Vec2::ZERO, &s);
        let v = s.state_field("v").unwrap();
        a.set(v, 3.5);
        assert_eq!(a.get(v), 3.5);
    }

    #[test]
    fn reset_effects_restores_identities() {
        let s = schema();
        let mut a = Agent::new(AgentId::new(1), Vec2::ZERO, &s);
        a.effects = vec![5.0, -2.0];
        a.reset_effects(&s);
        assert_eq!(a.effects, vec![0.0, f64::INFINITY]);
    }

    #[test]
    fn clamp_move_crops_to_reachable_region() {
        let from = Vec2::new(10.0, 10.0);
        let out = Agent::clamp_move(from, Vec2::new(15.0, 10.4), 1.0);
        assert_eq!(out, Vec2::new(11.0, 10.4));
        // Infinite reachability is a no-op.
        let free = Agent::clamp_move(from, Vec2::new(1e9, -1e9), f64::INFINITY);
        assert_eq!(free, Vec2::new(1e9, -1e9));
    }

    #[test]
    fn with_state_uses_given_values() {
        let s = schema();
        let a = Agent::with_state(AgentId::new(2), Vec2::ZERO, vec![1.0, 2.0], &s);
        assert_eq!(a.state, vec![1.0, 2.0]);
    }

    #[test]
    fn pool_round_trips_agents() {
        let s = schema();
        let mut agents: Vec<Agent> = (0..7)
            .map(|i| {
                let mut a = Agent::new(AgentId::new(i), Vec2::new(i as f64, -(i as f64)), &s);
                a.state[0] = i as f64 * 0.5;
                a.state[1] = -1.0;
                a
            })
            .collect();
        agents[3].effects = vec![2.5, 0.25];
        let pool = AgentPool::from_agents(&s, &agents);
        assert_eq!(pool.len(), 7);
        assert_eq!(pool.to_agents(), agents);
        assert_eq!(pool.pos(3), agents[3].pos);
        assert_eq!(pool.state(3, FieldId::new(0)), 1.5);
        assert_eq!(pool.effects().get(3, FieldId::new(0)), 2.5);
    }

    #[test]
    fn pool_view_and_agent_ref_read_columns() {
        let s = schema();
        let mut a = Agent::new(AgentId::new(9), Vec2::new(4.0, 5.0), &s);
        a.state[1] = 7.0;
        let pool = AgentPool::from_agents(&s, &[a]);
        let view = pool.view();
        let r = view.agent(0);
        assert_eq!(r.id(), AgentId::new(9));
        assert_eq!(r.pos(), Vec2::new(4.0, 5.0));
        assert_eq!(r.state(1), 7.0);
        assert_eq!(r.get(FieldId::new(1)), 7.0);
        assert!(r.alive());
    }

    #[test]
    fn retain_alive_compacts_in_order() {
        let s = schema();
        let agents: Vec<Agent> = (0..6)
            .map(|i| {
                let mut a = Agent::new(AgentId::new(i), Vec2::new(i as f64, 0.0), &s);
                a.alive = i % 2 == 0;
                a
            })
            .collect();
        let mut pool = AgentPool::from_agents(&s, &agents);
        let killed = pool.retain_alive();
        assert_eq!(killed, 3);
        assert_eq!(pool.len(), 3);
        let ids: Vec<u64> = (0..3).map(|r| pool.id(r).raw()).collect();
        assert_eq!(ids, vec![0, 2, 4]);
        assert_eq!(pool.pos(2), Vec2::new(4.0, 0.0));
    }

    #[test]
    fn spawn_rows_get_identity_effects() {
        let s = schema();
        let mut pool = AgentPool::new(&s);
        pool.push_spawn(AgentId::new(1), Vec2::new(1.0, 2.0), &[0.5, 0.6]);
        pool.reset_effects();
        let agents = pool.to_agents();
        assert_eq!(agents[0].effects, vec![0.0, f64::INFINITY]);
        assert_eq!(agents[0].state, vec![0.5, 0.6]);
    }

    #[test]
    fn stable_row_ops_compose_into_swap_removal() {
        let s = schema();
        let agents: Vec<Agent> = (0..5)
            .map(|i| {
                let mut a = Agent::new(AgentId::new(i), Vec2::new(i as f64, 0.0), &s);
                a.state[0] = 10.0 + i as f64;
                a.effects[0] = i as f64;
                a
            })
            .collect();
        let mut pool = AgentPool::from_agents(&s, &agents);
        // Swap-removal of row 1: copy last row in, pop.
        pool.copy_row_within(4, 1);
        pool.pop_row();
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.id(1), AgentId::new(4));
        assert_eq!(pool.state(1, FieldId::new(0)), 14.0);
        assert_eq!(pool.effects().get(1, FieldId::new(0)), 4.0);
        // Rows 0, 2, 3 kept their indices.
        assert_eq!(pool.id(0), AgentId::new(0));
        assert_eq!(pool.id(2), AgentId::new(2));
        assert_eq!(pool.id(3), AgentId::new(3));
        // Append a copy of row 0, then overwrite it in place.
        pool.push_row_copy(0);
        assert_eq!(pool.id(4), AgentId::new(0));
        let replacement = Agent::with_state(AgentId::new(9), Vec2::new(-1.0, -2.0), vec![7.0, 8.0], &s);
        pool.overwrite_row(4, &replacement);
        assert_eq!(pool.id(4), AgentId::new(9));
        assert_eq!(pool.pos(4), Vec2::new(-1.0, -2.0));
        assert_eq!(pool.state(4, FieldId::new(1)), 8.0);
    }

    #[test]
    fn write_agents_prefix_excludes_tail() {
        let s = schema();
        let agents: Vec<Agent> = (0..4).map(|i| Agent::new(AgentId::new(i), Vec2::new(i as f64, 0.0), &s)).collect();
        let pool = AgentPool::from_agents(&s, &agents);
        let mut out = Vec::new();
        pool.write_agents_prefix_into(2, &mut out);
        assert_eq!(out, &agents[..2]);
    }

    #[test]
    fn update_chunks_prefix_leaves_tail_unborrowed() {
        let s = schema();
        let agents: Vec<Agent> = (0..6).map(|i| Agent::new(AgentId::new(i), Vec2::new(i as f64, 0.0), &s)).collect();
        let mut pool = AgentPool::from_agents(&s, &agents);
        let chunks = pool.update_chunks_prefix(&[2, 2]);
        assert_eq!(chunks.len(), 2);
        let mut scratch = Agent::new(AgentId::new(0), Vec2::ZERO, &s);
        chunks[1].load(1, &mut scratch);
        assert_eq!(scratch.id, AgentId::new(3));
        drop(chunks);
        assert_eq!(pool.id(5), AgentId::new(5), "tail untouched");
    }

    #[test]
    fn update_chunks_split_disjointly() {
        let s = schema();
        let agents: Vec<Agent> = (0..10).map(|i| Agent::new(AgentId::new(i), Vec2::new(i as f64, 0.0), &s)).collect();
        let mut pool = AgentPool::from_agents(&s, &agents);
        let mut chunks = pool.update_chunks(&[4, 6]);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[1].len(), 6);
        let mut scratch = Agent::new(AgentId::new(0), Vec2::ZERO, &s);
        chunks[1].load(0, &mut scratch);
        assert_eq!(scratch.id, AgentId::new(4));
        scratch.pos.y = 9.0;
        chunks[1].store(0, &scratch);
        drop(chunks);
        assert_eq!(pool.pos(4), Vec2::new(4.0, 9.0));
    }
}
