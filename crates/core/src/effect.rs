//! Staged effect aggregation.
//!
//! During the query phase agents assign effect values; the state-effect
//! pattern requires those assignments to be aggregated by each field's
//! combinator, in any order, possibly partially on one node and finally on
//! another. [`EffectTable`] is the dense accumulator for one partition's
//! visible agent set; [`EffectWriter`] is the capability handed to a
//! behavior's query phase — it can *only* combine into effect slots, which
//! is how the executor enforces "state variables are read-only during the
//! query phase and effect variables are write-only" at the API level.
//!
//! The table is **column-major**: one flat `Vec<f64>` per effect field,
//! matching the [`AgentPool`](crate::agent::AgentPool)'s struct-of-arrays
//! layout — the pool's per-tick accumulator *is* an `EffectTable`, so the
//! final shard merge lands directly in the pool's effect columns and the
//! update phase reads them with no copy-back step. Column layout also
//! makes [`EffectTable::reset`] schema-aware and trivially fast: one
//! `slice::fill` with the field's identity per column, instead of writing
//! row-interleaved identity patterns.

use crate::agent::Agent;
use crate::combinator::Combinator;
use crate::schema::AgentSchema;
use brace_common::FieldId;

/// Dense per-tick effect accumulator: one column of `rows` slots per
/// effect field, initialized to combinator identities.
#[derive(Debug, Clone)]
pub struct EffectTable {
    identities: Vec<f64>,
    combs: Vec<Combinator>,
    cols: Vec<Vec<f64>>,
    rows: usize,
}

impl EffectTable {
    /// An empty table shaped by `schema`.
    pub fn new(schema: &AgentSchema) -> Self {
        let identities = schema.effect_identities();
        let combs = schema.effect_defs().iter().map(|d| d.combinator).collect();
        let cols = vec![Vec::new(); identities.len()];
        EffectTable { identities, combs, cols, rows: 0 }
    }

    /// Number of effect fields per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.identities.len()
    }

    /// Number of rows currently allocated.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Resize for `rows` agents and reset every slot to its identity.
    /// Reuses the allocations across ticks (hot path: called every tick by
    /// every shard): exactly one `resize` + `fill` per effect column.
    pub fn reset(&mut self, rows: usize) {
        self.rows = rows;
        for (col, &id) in self.cols.iter_mut().zip(&self.identities) {
            col.resize(rows, id);
            col.fill(id);
        }
    }

    /// Append one row holding the given values (pool construction path).
    pub fn push_row(&mut self, values: &[f64]) {
        debug_assert_eq!(values.len(), self.width(), "effect row shape mismatch");
        for (col, &v) in self.cols.iter_mut().zip(values) {
            col.push(v);
        }
        self.rows += 1;
    }

    /// Append one identity row (spawn path).
    pub fn push_identity_row(&mut self) {
        for (col, &id) in self.cols.iter_mut().zip(&self.identities) {
            col.push(id);
        }
        self.rows += 1;
    }

    /// Overwrite row `dst` with row `src` (same table). One of the
    /// stable-row mutation primitives backing the distributed runtime's
    /// persistent pool (swap-removal copies the last row into the hole).
    #[inline]
    pub fn copy_row_within(&mut self, src: u32, dst: u32) {
        for col in &mut self.cols {
            col[dst as usize] = col[src as usize];
        }
    }

    /// Append a copy of row `src` at the end.
    pub fn push_row_copy(&mut self, src: u32) {
        for col in &mut self.cols {
            let v = col[src as usize];
            col.push(v);
        }
        self.rows += 1;
    }

    /// Overwrite row `r` with the given values.
    pub fn set_row(&mut self, r: u32, values: &[f64]) {
        debug_assert_eq!(values.len(), self.width(), "effect row shape mismatch");
        for (col, &v) in self.cols.iter_mut().zip(values) {
            col[r as usize] = v;
        }
    }

    /// Remove the last row.
    pub fn pop_row(&mut self) {
        debug_assert!(self.rows > 0, "pop from empty effect table");
        for col in &mut self.cols {
            col.pop();
        }
        self.rows -= 1;
    }

    /// Drop rows `n..` (replica rows after the query phase).
    pub fn truncate_rows(&mut self, n: usize) {
        if n >= self.rows {
            return;
        }
        for col in &mut self.cols {
            col.truncate(n);
        }
        self.rows = n;
    }

    /// Combine `v` into `(row, field)` using the field's combinator (the
    /// table carries its schema's combinator vector, so the hot path needs
    /// no schema lookup).
    #[inline]
    pub fn combine(&mut self, row: u32, field: FieldId, v: f64) {
        let slot = &mut self.cols[field.index()][row as usize];
        *slot = self.combs[field.index()].combine(*slot, v);
    }

    /// Read one aggregated slot.
    #[inline]
    pub fn get(&self, row: u32, field: FieldId) -> f64 {
        self.cols[field.index()][row as usize]
    }

    /// One whole column (cache-linear reads for analytics / SIMD passes).
    #[inline]
    pub fn col(&self, field: FieldId) -> &[f64] {
        &self.cols[field.index()]
    }

    /// The aggregated row for one agent, gathered from the columns.
    /// Allocates — row extraction is a boundary operation (tests, shipping
    /// partial aggregates); hot paths read columns or single slots.
    pub fn row(&self, row: u32) -> Vec<f64> {
        self.cols.iter().map(|col| col[row as usize]).collect()
    }

    /// Gather the aggregated row for one agent into a reused buffer.
    pub fn copy_row_into(&self, row: u32, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.cols.iter().map(|col| col[row as usize]));
    }

    /// True if the row still holds only identities — such rows carry no
    /// information and the runtime skips shipping them (the paper's
    /// "∀i s.t. fᵗᵢ ≠ θ" filter).
    pub fn row_is_identity(&self, row: u32) -> bool {
        self.cols.iter().zip(&self.identities).all(|(col, id)| col[row as usize].to_bits() == id.to_bits())
    }

    /// ⊕-merge a partial aggregate row (shipped from another partition)
    /// into `row`. This is the second reduce pass's `⊕ⱼfᵗⱼ`.
    pub fn merge_row(&mut self, row: u32, partial: &[f64]) {
        debug_assert_eq!(partial.len(), self.width());
        for ((col, &p), &comb) in self.cols.iter_mut().zip(partial).zip(&self.combs) {
            let slot = &mut col[row as usize];
            *slot = comb.combine(*slot, p);
        }
    }

    /// Overwrite rows `dst_row..dst_row + src.rows()` of this table with the
    /// entire contents of `src`. Used by the sharded executor to merge a
    /// shard's disjoint row slice back into the tick's table: for
    /// local-effect schemas each shard owns its row range exclusively, so
    /// the merge is one bitwise column-segment copy per field — exactly the
    /// values the serial path would have produced.
    pub fn copy_rows_from(&mut self, src: &EffectTable, dst_row: usize) {
        debug_assert_eq!(src.width(), self.width(), "schema mismatch in copy_rows_from");
        debug_assert!(dst_row + src.rows() <= self.rows, "shard copy out of range");
        let n = src.rows();
        for (dst, s) in self.cols.iter_mut().zip(&src.cols) {
            dst[dst_row..dst_row + n].copy_from_slice(&s[..n]);
        }
    }

    /// ⊕-merge every row of `src` into this table (row `i` into row `i`).
    /// This is the shard-merge step for schemas with non-local effects,
    /// where any shard may have written to any visible row; callers must
    /// merge shards in a deterministic order (the executor uses ascending
    /// shard index) so float aggregation is reproducible run to run. The
    /// column layout turns this into one tight combine loop per field.
    pub fn merge_table(&mut self, src: &EffectTable) {
        debug_assert_eq!(src.width(), self.width(), "schema mismatch in merge_table");
        debug_assert!(src.rows() <= self.rows, "shard merge out of range");
        for ((dst, s), &comb) in self.cols.iter_mut().zip(&src.cols).zip(&self.combs) {
            for (d, &p) in dst.iter_mut().zip(s.iter()) {
                *d = comb.combine(*d, p);
            }
        }
    }

    /// Copy each agent's final aggregated row into `agent.effects`, making
    /// the effects readable for the update phase. Used by the `Vec<Agent>`
    /// reference path; the pool path reads the columns in place.
    pub fn write_into(&self, agents: &mut [Agent]) {
        debug_assert!(agents.len() <= self.rows);
        for (i, agent) in agents.iter_mut().enumerate() {
            agent.effects.clear();
            agent.effects.extend(self.cols.iter().map(|col| col[i]));
        }
    }
}

/// Write capability for one agent's query phase.
///
/// `me` addresses the querying agent's own row (local assignments, the
/// BRASIL `f <- v`); neighbor rows are addressed by their index in the
/// visible set (non-local assignments, `other.f <- v`).
pub struct EffectWriter<'a> {
    schema: &'a AgentSchema,
    table: &'a mut EffectTable,
    me: u32,
    /// Row offset of `table` within the tick's visible set: the sharded
    /// executor hands each shard a table covering only its own row range,
    /// and the writer translates global row addresses by `base`. `0` for a
    /// full-width table (the serial path and non-local shards).
    base: u32,
    nonlocal_writes: u64,
}

impl<'a> EffectWriter<'a> {
    pub fn new(schema: &'a AgentSchema, table: &'a mut EffectTable, me: u32) -> Self {
        EffectWriter { schema, table, me, base: 0, nonlocal_writes: 0 }
    }

    /// Writer over a shard-local table whose row 0 corresponds to global
    /// row `base` of the visible set. `me` stays a global row index.
    pub fn with_base(schema: &'a AgentSchema, table: &'a mut EffectTable, me: u32, base: u32) -> Self {
        debug_assert!(me >= base, "querying row below the shard base");
        EffectWriter { schema, table, me, base, nonlocal_writes: 0 }
    }

    /// `field <- v` on the querying agent itself.
    #[inline]
    pub fn local(&mut self, field: FieldId, v: f64) {
        self.table.combine(self.me - self.base, field, v);
    }

    /// `target.field <- v` on another visible agent. Models whose schema
    /// does not declare [`nonlocal_effects`](crate::schema::SchemaBuilder::nonlocal_effects)
    /// must not call this; debug builds assert it, and the runtime would
    /// otherwise silently drop the effect at partition boundaries.
    #[inline]
    pub fn remote(&mut self, target_row: u32, field: FieldId, v: f64) {
        debug_assert!(
            self.schema.has_nonlocal_effects() || target_row == self.me,
            "schema `{}` declares local effects only but wrote to another agent",
            self.schema.name()
        );
        if target_row != self.me {
            self.nonlocal_writes += 1;
        }
        // Shard writers of local-effect schemas have `base > 0`; a
        // contract-violating write below the shard base must fail loudly
        // (naming the violation) rather than wrap and index out of bounds.
        let row = target_row.checked_sub(self.base).unwrap_or_else(|| {
            panic!(
                "schema `{}` declares local effects only but wrote to row {} outside its shard",
                self.schema.name(),
                target_row
            )
        });
        self.table.combine(row, field, v);
    }

    /// Number of genuinely non-local writes performed through this writer
    /// (statistics for the optimizer's inversion payoff accounting).
    pub fn nonlocal_writes(&self) -> u64 {
        self.nonlocal_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinator::Combinator;
    use brace_common::{AgentId, Vec2};

    fn schema() -> AgentSchema {
        AgentSchema::builder("T")
            .effect("total", Combinator::Sum)
            .effect("closest", Combinator::Min)
            .nonlocal_effects(true)
            .build()
            .unwrap()
    }

    #[test]
    fn reset_fills_identities() {
        let s = schema();
        let mut t = EffectTable::new(&s);
        t.reset(3);
        assert_eq!(t.rows(), 3);
        for r in 0..3 {
            assert_eq!(t.row(r), &[0.0, f64::INFINITY]);
            assert!(t.row_is_identity(r));
        }
        // Columns are identity-filled per field, not row-interleaved.
        assert_eq!(t.col(FieldId::new(0)), &[0.0; 3]);
        assert_eq!(t.col(FieldId::new(1)), &[f64::INFINITY; 3]);
    }

    #[test]
    fn combine_aggregates_in_order_independent_way() {
        let s = schema();
        let mut t = EffectTable::new(&s);
        t.reset(1);
        let total = s.effect_field("total").unwrap();
        let closest = s.effect_field("closest").unwrap();
        t.combine(0, total, 2.0);
        t.combine(0, total, 3.0);
        t.combine(0, closest, 7.0);
        t.combine(0, closest, 4.0);
        assert_eq!(t.row(0), &[5.0, 4.0]);
        assert!(!t.row_is_identity(0));
    }

    #[test]
    fn merge_row_is_second_reduce_pass() {
        let s = schema();
        // Partition A aggregates partially…
        let mut a = EffectTable::new(&s);
        a.reset(1);
        a.combine(0, FieldId::new(0), 1.0);
        a.combine(0, FieldId::new(1), 9.0);
        // …partition B owns the agent and merges A's partial row.
        let mut b = EffectTable::new(&s);
        b.reset(1);
        b.combine(0, FieldId::new(0), 2.0);
        b.combine(0, FieldId::new(1), 5.0);
        b.merge_row(0, &a.row(0));
        assert_eq!(b.row(0), &[3.0, 5.0]);
    }

    #[test]
    fn merge_of_identity_row_is_noop() {
        let s = schema();
        let mut t = EffectTable::new(&s);
        t.reset(1);
        t.combine(0, FieldId::new(0), 4.0);
        let before = t.row(0);
        let identities = s.effect_identities();
        t.merge_row(0, &identities);
        assert_eq!(t.row(0), before);
    }

    #[test]
    fn write_into_copies_rows() {
        let s = schema();
        let mut t = EffectTable::new(&s);
        t.reset(2);
        t.combine(1, FieldId::new(0), 8.0);
        let mut agents = vec![Agent::new(AgentId::new(0), Vec2::ZERO, &s), Agent::new(AgentId::new(1), Vec2::ZERO, &s)];
        t.write_into(&mut agents);
        assert_eq!(agents[0].effects, vec![0.0, f64::INFINITY]);
        assert_eq!(agents[1].effects, vec![8.0, f64::INFINITY]);
    }

    #[test]
    fn push_and_truncate_rows() {
        let s = schema();
        let mut t = EffectTable::new(&s);
        t.push_row(&[1.0, 2.0]);
        t.push_identity_row();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert!(t.row_is_identity(1));
        t.truncate_rows(1);
        assert_eq!(t.rows(), 1);
        let mut buf = vec![9.0];
        t.copy_row_into(0, &mut buf);
        assert_eq!(buf, vec![1.0, 2.0]);
    }

    #[test]
    fn writer_local_and_remote() {
        let s = schema();
        let mut t = EffectTable::new(&s);
        t.reset(2);
        let mut w = EffectWriter::new(&s, &mut t, 0);
        w.local(FieldId::new(0), 1.0);
        w.remote(1, FieldId::new(0), 2.0);
        w.remote(0, FieldId::new(0), 3.0); // remote to self counts as local
        assert_eq!(w.nonlocal_writes(), 1);
        assert_eq!(t.get(0, FieldId::new(0)), 4.0);
        assert_eq!(t.get(1, FieldId::new(0)), 2.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "local effects only")]
    fn writer_rejects_undeclared_nonlocal() {
        let s = AgentSchema::builder("L").effect("e", Combinator::Sum).build().unwrap();
        let mut t = EffectTable::new(&s);
        t.reset(2);
        let mut w = EffectWriter::new(&s, &mut t, 0);
        w.remote(1, FieldId::new(0), 1.0);
    }
}
