//! Staged effect aggregation.
//!
//! During the query phase agents assign effect values; the state-effect
//! pattern requires those assignments to be aggregated by each field's
//! combinator, in any order, possibly partially on one node and finally on
//! another. [`EffectTable`] is the dense accumulator for one partition's
//! visible agent set; [`EffectWriter`] is the capability handed to a
//! behavior's query phase — it can *only* combine into effect slots, which
//! is how the executor enforces "state variables are read-only during the
//! query phase and effect variables are write-only" at the API level.

use crate::agent::Agent;
use crate::schema::AgentSchema;
use brace_common::FieldId;

/// Dense per-tick effect accumulator: one row of `num_effects` slots per
/// agent in the visible set, initialized to combinator identities.
#[derive(Debug, Clone)]
pub struct EffectTable {
    identities: Vec<f64>,
    slots: Vec<f64>,
    rows: usize,
}

impl EffectTable {
    /// An empty table shaped by `schema`.
    pub fn new(schema: &AgentSchema) -> Self {
        EffectTable { identities: schema.effect_identities(), slots: Vec::new(), rows: 0 }
    }

    /// Number of effect fields per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.identities.len()
    }

    /// Number of rows currently allocated.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Resize for `rows` agents and reset every slot to its identity.
    /// Reuses the allocation across ticks (hot path: called every tick).
    pub fn reset(&mut self, rows: usize) {
        self.rows = rows;
        let want = rows * self.identities.len();
        self.slots.clear();
        self.slots.reserve(want);
        for _ in 0..rows {
            self.slots.extend_from_slice(&self.identities);
        }
    }

    /// Combine `v` into `(row, field)` using the schema's combinator.
    #[inline]
    pub fn combine(&mut self, schema: &AgentSchema, row: u32, field: FieldId, v: f64) {
        let w = self.identities.len();
        let slot = &mut self.slots[row as usize * w + field.index()];
        *slot = schema.combinator(field).combine(*slot, v);
    }

    /// The aggregated row for one agent.
    #[inline]
    pub fn row(&self, row: u32) -> &[f64] {
        let w = self.identities.len();
        &self.slots[row as usize * w..(row as usize + 1) * w]
    }

    /// True if the row still holds only identities — such rows carry no
    /// information and the runtime skips shipping them (the paper's
    /// "∀i s.t. fᵗᵢ ≠ θ" filter).
    pub fn row_is_identity(&self, row: u32) -> bool {
        self.row(row).iter().zip(&self.identities).all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// ⊕-merge a partial aggregate row (shipped from another partition)
    /// into `row`. This is the second reduce pass's `⊕ⱼfᵗⱼ`.
    pub fn merge_row(&mut self, schema: &AgentSchema, row: u32, partial: &[f64]) {
        debug_assert_eq!(partial.len(), self.width());
        let w = self.identities.len();
        let base = row as usize * w;
        for (i, &p) in partial.iter().enumerate() {
            let comb = schema.combinator(FieldId::new(i as u16));
            let slot = &mut self.slots[base + i];
            *slot = comb.combine(*slot, p);
        }
    }

    /// Copy each agent's final aggregated row into `agent.effects`, making
    /// the effects readable for the update phase.
    pub fn write_into(&self, agents: &mut [Agent]) {
        debug_assert!(agents.len() <= self.rows);
        let w = self.identities.len();
        for (i, agent) in agents.iter_mut().enumerate() {
            agent.effects.clear();
            agent.effects.extend_from_slice(&self.slots[i * w..(i + 1) * w]);
        }
    }
}

/// Write capability for one agent's query phase.
///
/// `me` addresses the querying agent's own row (local assignments, the
/// BRASIL `f <- v`); neighbor rows are addressed by their index in the
/// visible set (non-local assignments, `other.f <- v`).
pub struct EffectWriter<'a> {
    schema: &'a AgentSchema,
    table: &'a mut EffectTable,
    me: u32,
    nonlocal_writes: u64,
}

impl<'a> EffectWriter<'a> {
    pub fn new(schema: &'a AgentSchema, table: &'a mut EffectTable, me: u32) -> Self {
        EffectWriter { schema, table, me, nonlocal_writes: 0 }
    }

    /// `field <- v` on the querying agent itself.
    #[inline]
    pub fn local(&mut self, field: FieldId, v: f64) {
        self.table.combine(self.schema, self.me, field, v);
    }

    /// `target.field <- v` on another visible agent. Models whose schema
    /// does not declare [`nonlocal_effects`](crate::schema::SchemaBuilder::nonlocal_effects)
    /// must not call this; debug builds assert it, and the runtime would
    /// otherwise silently drop the effect at partition boundaries.
    #[inline]
    pub fn remote(&mut self, target_row: u32, field: FieldId, v: f64) {
        debug_assert!(
            self.schema.has_nonlocal_effects() || target_row == self.me,
            "schema `{}` declares local effects only but wrote to another agent",
            self.schema.name()
        );
        if target_row != self.me {
            self.nonlocal_writes += 1;
        }
        self.table.combine(self.schema, target_row, field, v);
    }

    /// Number of genuinely non-local writes performed through this writer
    /// (statistics for the optimizer's inversion payoff accounting).
    pub fn nonlocal_writes(&self) -> u64 {
        self.nonlocal_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinator::Combinator;
    use brace_common::{AgentId, Vec2};

    fn schema() -> AgentSchema {
        AgentSchema::builder("T")
            .effect("total", Combinator::Sum)
            .effect("closest", Combinator::Min)
            .nonlocal_effects(true)
            .build()
            .unwrap()
    }

    #[test]
    fn reset_fills_identities() {
        let s = schema();
        let mut t = EffectTable::new(&s);
        t.reset(3);
        assert_eq!(t.rows(), 3);
        for r in 0..3 {
            assert_eq!(t.row(r), &[0.0, f64::INFINITY]);
            assert!(t.row_is_identity(r));
        }
    }

    #[test]
    fn combine_aggregates_in_order_independent_way() {
        let s = schema();
        let mut t = EffectTable::new(&s);
        t.reset(1);
        let total = s.effect_field("total").unwrap();
        let closest = s.effect_field("closest").unwrap();
        t.combine(&s, 0, total, 2.0);
        t.combine(&s, 0, total, 3.0);
        t.combine(&s, 0, closest, 7.0);
        t.combine(&s, 0, closest, 4.0);
        assert_eq!(t.row(0), &[5.0, 4.0]);
        assert!(!t.row_is_identity(0));
    }

    #[test]
    fn merge_row_is_second_reduce_pass() {
        let s = schema();
        // Partition A aggregates partially…
        let mut a = EffectTable::new(&s);
        a.reset(1);
        a.combine(&s, 0, FieldId::new(0), 1.0);
        a.combine(&s, 0, FieldId::new(1), 9.0);
        // …partition B owns the agent and merges A's partial row.
        let mut b = EffectTable::new(&s);
        b.reset(1);
        b.combine(&s, 0, FieldId::new(0), 2.0);
        b.combine(&s, 0, FieldId::new(1), 5.0);
        b.merge_row(&s, 0, a.row(0));
        assert_eq!(b.row(0), &[3.0, 5.0]);
    }

    #[test]
    fn merge_of_identity_row_is_noop() {
        let s = schema();
        let mut t = EffectTable::new(&s);
        t.reset(1);
        t.combine(&s, 0, FieldId::new(0), 4.0);
        let before = t.row(0).to_vec();
        let identities = s.effect_identities();
        t.merge_row(&s, 0, &identities);
        assert_eq!(t.row(0), &before[..]);
    }

    #[test]
    fn write_into_copies_rows() {
        let s = schema();
        let mut t = EffectTable::new(&s);
        t.reset(2);
        t.combine(&s, 1, FieldId::new(0), 8.0);
        let mut agents =
            vec![Agent::new(AgentId::new(0), Vec2::ZERO, &s), Agent::new(AgentId::new(1), Vec2::ZERO, &s)];
        t.write_into(&mut agents);
        assert_eq!(agents[0].effects, vec![0.0, f64::INFINITY]);
        assert_eq!(agents[1].effects, vec![8.0, f64::INFINITY]);
    }

    #[test]
    fn writer_local_and_remote() {
        let s = schema();
        let mut t = EffectTable::new(&s);
        t.reset(2);
        let mut w = EffectWriter::new(&s, &mut t, 0);
        w.local(FieldId::new(0), 1.0);
        w.remote(1, FieldId::new(0), 2.0);
        w.remote(0, FieldId::new(0), 3.0); // remote to self counts as local
        assert_eq!(w.nonlocal_writes(), 1);
        assert_eq!(t.row(0)[0], 4.0);
        assert_eq!(t.row(1)[0], 2.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "local effects only")]
    fn writer_rejects_undeclared_nonlocal() {
        let s = AgentSchema::builder("L").effect("e", Combinator::Sum).build().unwrap();
        let mut t = EffectTable::new(&s);
        t.reset(2);
        let mut w = EffectWriter::new(&s, &mut t, 0);
        w.remote(1, FieldId::new(0), 1.0);
    }
}
