//! The tick executor: query phase, effect finalization, update phase —
//! sharded for intra-worker parallelism, columnar, and incremental about
//! its spatial index.
//!
//! The two phase functions ([`query_phase_sharded`], [`update_phase_sharded`])
//! are exposed separately because the distributed runtime interleaves
//! communication between them (Table 1 of the paper):
//!
//! ```text
//!   mapᵗ        = update phase of t−1 + distribute (runtime)
//!   reduceᵗ₁    = query phase over owned agents       (this module)
//!   reduceᵗ₂    = ⊕-merge of shipped partial effects  (EffectTable::merge_row)
//!   mapᵗ⁺¹      = update phase                         (this module)
//! ```
//!
//! The single-node [`TickExecutor`] simply calls them back to back — it *is*
//! the one-partition special case of the runtime, and the integration tests
//! exploit that: the distributed engine must produce bit-identical agents.
//!
//! # Columnar working representation
//!
//! Both phases run over an [`AgentPool`] (struct-of-arrays; see
//! `crate::agent`). The query phase reads positions and state as flat
//! column scans through a copyable [`PoolView`], and the tick's aggregated
//! effects land directly in the pool's effect columns — there is no
//! separate final table and no per-tick `write_into` copy. `Vec<Agent>`
//! survives only at the serialization boundary; [`reference_step`] keeps a
//! row-oriented executable specification around for property tests (and
//! for the SoA-vs-AoS ablation in the benchmarks).
//!
//! # Incremental index maintenance
//!
//! The reachability bound caps per-tick movement, so the spatial index is
//! *maintained*, not rebuilt: a [`MaintainedIndex`] diffs the pool's
//! position columns against the positions it indexed last tick, applies
//! only the rows that actually moved ([`SpatialIndex::update`] — grid
//! bucket moves, KD-tree in-place slot updates with bound expansion), and
//! lets the index restructure lazily once accumulated motion exceeds a
//! budget of half the visibility range ([`SpatialIndex::maintain`] — the
//! KD-tree's per-subtree rebuild threshold). A full rebuild happens only
//! when the row ↔ agent mapping changed (spawns, kills, repartitioning) or
//! an index reports it cannot maintain itself. The
//! [`IndexMaintenance::Rebuild`] mode forces the old rebuild-every-tick
//! behavior for ablations.
//!
//! Probe results are **canonicalized** per index kind: grid and scan emit
//! range candidates in an order that is already a pure function of the
//! point set (`SpatialIndex::RANGE_CANONICAL`), the KD-tree's candidates
//! are row-sorted here, and k-NN ties break by row everywhere — so a
//! maintained index and a fresh rebuild aggregate float effects in exactly
//! the same order and produce bit-identical effect tables.
//!
//! # Sharded execution model
//!
//! The state-effect pattern makes the per-partition query phase
//! embarrassingly parallel: queries read only frozen previous-tick state,
//! and effect assignments combine through associative, commutative ⊕
//! operators. The executor exploits this by cutting the owned-row range
//! into **logical shards** and running shards on a pool of scoped threads
//! (the `parallelism` knob; `0` means one thread per available core):
//!
//! * Each shard accumulates into its **own** [`EffectTable`] and reuses its
//!   own candidate scratch buffer, so the hot loop performs no allocation
//!   and no synchronization. All per-tick buffers live in a
//!   [`TickScratch`] that persists across ticks.
//! * For **local-effect** schemas a shard's writes land only in its own row
//!   range, so its table covers just that slice and the merge is a bitwise
//!   column-segment copy — parallel output is identical to serial output at
//!   the bit level, for any shard plan and any thread count.
//! * For **non-local** schemas any shard may write to any visible row, so
//!   every shard table spans the visible set and shards are ⊕-merged in
//!   ascending shard order.
//! * The inner probe loop is monomorphized over the concrete index type
//!   ([`ScanIndex`] / [`KdTree`] / [`UniformGrid`]): the [`BuiltIndex`]
//!   enum is dispatched once per tick, not once per probe.
//!
//! # Determinism argument
//!
//! The shard plan is a pure function of `(n_owned, has_nonlocal_effects)` —
//! **never** of the thread count — and shards merge in ascending order, so
//! the ⊕ reduction tree is fixed: running with 1 thread or 64 produces
//! bit-identical effect tables and agent states (`tests/properties.rs`
//! proves this across seeds, populations and every [`IndexKind`]). Relative
//! to the unsharded serial reference ([`query_phase`]), results are also
//! bit-identical whenever effects are local (copy-merge) or the combinators
//! are exactly associative on the values involved (the lattice ops
//! Min/Max/Or/And always; Sum/Prod on integer-valued effects) — the same
//! contract the distributed runtime already imposes on cross-partition
//! effect aggregation. Candidate canonicalization extends the argument
//! across index state: incremental maintenance ≡ rebuild-every-tick at the
//! bit level, for every model (also proven in `tests/properties.rs`). The
//! update phase parallelizes with any contiguous chunking: each agent's
//! update depends only on `(seed, tick, agent)`, and per-chunk spawn
//! queues are concatenated in chunk order, preserving the serial spawn-id
//! assignment exactly.
//!
//! # Visible-set convention
//!
//! The pool passed to the query phase holds the *owned* agents first
//! (rows `0..n_owned`) followed by replicas shipped from other partitions.
//! Queries run only for owned rows; effects may land on any row.

use crate::agent::{Agent, AgentPool, PoolView, UpdateChunk};
use crate::behavior::{BatchScratch, Behavior, NeighborBatch, NeighborProbe, Neighbors, UpdateCtx};
use crate::effect::{EffectTable, EffectWriter};
use crate::metrics::{SimMetrics, TickMetrics};
use crate::schema::AgentSchema;
use brace_common::ids::AgentIdGen;
use brace_common::{AgentId, DetRng, Vec2};
use brace_spatial::{IndexKind, KdTree, ScanIndex, SpatialIndex, UniformGrid};
use brace_telemetry::{Counter, HistId, Telemetry};
use std::ops::Range;
use std::time::Instant;

/// Deterministic RNG stream for `(seed, tick, agent, phase)`. Phase 0 =
/// query, phase 1 = update. Placement- and order-independent by
/// construction.
#[inline]
pub fn agent_rng(seed: u64, tick: u64, agent: brace_common::AgentId, phase: u64) -> DetRng {
    DetRng::seed_from_u64(seed).stream(tick.wrapping_shl(1) | phase).stream(agent.raw())
}

/// Rows per logical shard of the query phase. Small enough to give a
/// thread pool slack for balancing, large enough that per-shard overhead
/// (a table reset and a merge) stays negligible.
pub const SHARD_ROWS: usize = 2048;

/// Shard-count cap for schemas with non-local effects, whose shard tables
/// span the whole visible set: bounds both memory (`shards × rows × width`)
/// and the ⊕-merge cost.
const MAX_NONLOCAL_SHARDS: usize = 8;

/// Fraction of the schema's visibility bound that accumulated index motion
/// may reach before the maintained index restructures (KD-tree subtree
/// rebuilds). Half the visible range keeps bounding-box inflation well
/// below the probe rectangle size, so pruning quality stays near-fresh.
const MOTION_BUDGET_VIS_FRACTION: f64 = 0.5;

/// The logical shard plan for `n_owned` rows: a pure function of the row
/// count, effect locality and the rows-per-shard granule — independent of
/// thread count, which is what makes parallel execution bit-reproducible
/// (see the module docs).
fn shard_count(n_owned: usize, nonlocal: bool, shard_rows: usize) -> usize {
    let k = n_owned.div_ceil(shard_rows.max(1));
    if nonlocal {
        k.min(MAX_NONLOCAL_SHARDS)
    } else {
        k
    }
}

/// Row range of shard `i` of `k` over `n` rows (balanced contiguous split).
fn shard_range(n: usize, k: usize, i: usize) -> Range<usize> {
    (i * n / k)..((i + 1) * n / k)
}

/// True when the id column is strictly increasing — the case for every
/// single-node pool (initial populations are id-ordered, spawns append
/// increasing ids, compaction preserves order). Distributed workers mutate
/// rows in place (swap-removal, persistent replica tails), so their pools
/// lose monotonicity; the query phase then canonicalizes candidates by
/// **agent id** instead of row, making per-agent neighbor iteration order —
/// and therefore float effect aggregation — a pure function of the agent
/// set, independent of row placement. When ids are monotone the two orders
/// coincide, so the fast row-order paths (and the committed golden
/// checksums) are untouched.
#[inline]
fn ids_strictly_increasing(ids: &[AgentId]) -> bool {
    ids.windows(2).all(|w| w[0] < w[1])
}

/// Resolve a `parallelism` knob: `0` = one thread per available core.
pub fn effective_parallelism(parallelism: usize) -> usize {
    if parallelism == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        parallelism
    }
}

/// An index over the visible set. The enum exists so [`IndexKind`] can
/// live in run configuration; it is dispatched **once per tick** into a
/// monomorphized shard loop, so no per-probe branching remains in the hot
/// path.
enum BuiltIndex {
    Scan(ScanIndex),
    Kd(KdTree),
    Grid(UniformGrid),
}

impl BuiltIndex {
    fn build(kind: IndexKind, points: &[(Vec2, u32)], vis: f64) -> BuiltIndex {
        match kind {
            IndexKind::Scan => BuiltIndex::Scan(ScanIndex::build(points)),
            IndexKind::KdTree => BuiltIndex::Kd(KdTree::build(points)),
            IndexKind::Grid => {
                // Cell ≈ visibility is the classic tuning; fall back to the
                // auto heuristic when visibility is unbounded.
                if vis.is_finite() && vis > 0.0 {
                    BuiltIndex::Grid(UniformGrid::with_cell(points, vis))
                } else {
                    BuiltIndex::Grid(UniformGrid::build(points))
                }
            }
        }
    }

    fn update(&mut self, moved: &[(u32, Vec2)]) -> bool {
        match self {
            BuiltIndex::Scan(i) => i.update(moved),
            BuiltIndex::Kd(i) => i.update(moved),
            BuiltIndex::Grid(i) => i.update(moved),
        }
    }

    fn maintain(&mut self, motion_budget: f64) {
        match self {
            BuiltIndex::Scan(i) => i.maintain(motion_budget),
            BuiltIndex::Kd(i) => i.maintain(motion_budget),
            BuiltIndex::Grid(i) => i.maintain(motion_budget),
        }
    }
}

/// Which implementation of the query phase's probe loop the executor runs
/// (ablation knob, like [`IndexMaintenance`]). The two are bit-identical —
/// proven by the kernel conformance properties in `tests/properties.rs` —
/// so the knob only ever changes speed, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryKernel {
    /// Batched lane kernels (default): behaviors run through
    /// [`Behavior::query_batch`] (vectorized per-candidate math, ordered
    /// emission), and indexes whose batched filter is gather-free
    /// (`SpatialIndex::RANGE_BATCH_NATIVE` — the scan's native columns,
    /// the grid's bucket-major SoA arena) answer range probes through
    /// `range_batch` (containment as a lane kernel) instead of the
    /// per-point test.
    #[default]
    Batched,
    /// The per-row scalar path (`range` + [`Behavior::query`]) — the
    /// pre-kernel behavior, kept as the ablation baseline.
    Scalar,
}

/// Index maintenance policy of a [`MaintainedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexMaintenance {
    /// Diff positions against the last sync and update the index in place;
    /// rebuild only on row-mapping changes (default).
    #[default]
    Incremental,
    /// Rebuild from scratch every tick (the pre-incremental behavior;
    /// kept as the ablation baseline).
    Rebuild,
}

/// A spatial index kept in sync with a pool's position columns across
/// ticks. Owns the policy described in the module docs: diff → in-place
/// update → lazy restructure, with full rebuilds only when the row ↔ agent
/// mapping changed or the index kind cannot maintain itself.
pub struct MaintainedIndex {
    kind: IndexKind,
    mode: IndexMaintenance,
    built: Option<BuiltIndex>,
    /// Ids as of the last sync: a cheap identity check that the pool's
    /// rows still mean the same agents (spawns/kills/redistribution all
    /// change this and force a rebuild).
    ids: Vec<AgentId>,
    /// Positions as of the last sync (the diff baseline).
    xs: Vec<f64>,
    ys: Vec<f64>,
    points: Vec<(Vec2, u32)>,
    moved: Vec<(u32, Vec2)>,
    rebuilds: u64,
    incremental_syncs: u64,
}

impl MaintainedIndex {
    pub fn new(kind: IndexKind) -> Self {
        Self::with_mode(kind, IndexMaintenance::default())
    }

    pub fn with_mode(kind: IndexKind, mode: IndexMaintenance) -> Self {
        MaintainedIndex {
            kind,
            mode,
            built: None,
            ids: Vec::new(),
            xs: Vec::new(),
            ys: Vec::new(),
            points: Vec::new(),
            moved: Vec::new(),
            rebuilds: 0,
            incremental_syncs: 0,
        }
    }

    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    pub fn mode(&self) -> IndexMaintenance {
        self.mode
    }

    /// Switch policy (the next sync under `Rebuild` starts from scratch).
    pub fn set_mode(&mut self, mode: IndexMaintenance) {
        self.mode = mode;
    }

    /// Full builds performed so far (ablation statistic).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Syncs served by in-place updates (ablation statistic).
    pub fn incremental_syncs(&self) -> u64 {
        self.incremental_syncs
    }

    /// Bring the index up to date with `view`'s positions.
    fn sync(&mut self, view: PoolView<'_>, vis: f64) {
        let n = view.len();
        if let Some(built) = &mut self.built {
            if self.mode == IndexMaintenance::Incremental && self.ids.as_slice() == view.ids {
                self.moved.clear();
                for r in 0..n {
                    if view.xs[r].to_bits() != self.xs[r].to_bits() || view.ys[r].to_bits() != self.ys[r].to_bits() {
                        self.moved.push((r as u32, Vec2::new(view.xs[r], view.ys[r])));
                    }
                }
                if built.update(&self.moved) {
                    let budget = if vis.is_finite() && vis > 0.0 { MOTION_BUDGET_VIS_FRACTION * vis } else { 0.0 };
                    built.maintain(budget);
                    self.xs.clear();
                    self.xs.extend_from_slice(view.xs);
                    self.ys.clear();
                    self.ys.extend_from_slice(view.ys);
                    self.incremental_syncs += 1;
                    return;
                }
            }
        }
        self.points.clear();
        self.points.extend((0..n).map(|r| (Vec2::new(view.xs[r], view.ys[r]), r as u32)));
        self.built = Some(BuiltIndex::build(self.kind, &self.points, vis));
        self.ids.clear();
        self.xs.clear();
        self.ys.clear();
        if self.mode == IndexMaintenance::Incremental {
            // Diff baselines are only consumed by incremental syncs; the
            // Rebuild ablation must not pay (or time) the column copies.
            self.ids.extend_from_slice(view.ids);
            self.xs.extend_from_slice(view.xs);
            self.ys.extend_from_slice(view.ys);
        }
        self.rebuilds += 1;
    }
}

/// Counters returned by the query phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    pub index_build_ns: u64,
    pub query_ns: u64,
    /// Time spent merging shard effect tables into the pool's effect
    /// columns — a subset of `query_ns`, broken out so the effect-merge
    /// phase is visible on its own (telemetry and the `--trace` output).
    pub merge_ns: u64,
    pub neighbor_visits: u64,
    pub nonlocal_writes: u64,
}

/// Reusable per-tick working memory, threaded through the executor so the
/// hot path allocates nothing after the first tick: one [`ShardScratch`]
/// (effect table + candidate buffer + spawn queue) per logical shard. One
/// `TickScratch` belongs to one behavior (its tables are shaped by the
/// behavior's schema).
#[derive(Default)]
pub struct TickScratch {
    shards: Vec<ShardScratch>,
}

/// Working memory of one logical shard.
struct ShardScratch {
    table: EffectTable,
    candidates: Vec<u32>,
    batch: BatchScratch,
    spawns: Vec<(Vec2, Vec<f64>)>,
    /// Parent agent id of each entry in `spawns`, in lockstep. Spawn ids are
    /// a pure function of `(parent id, ordinal)` so any placement of agents
    /// across shards or workers assigns the same ids.
    spawn_parents: Vec<AgentId>,
    visits: u64,
    nonlocal: u64,
}

impl ShardScratch {
    fn new(schema: &AgentSchema) -> Self {
        ShardScratch {
            table: EffectTable::new(schema),
            candidates: Vec::new(),
            batch: BatchScratch::default(),
            spawns: Vec::new(),
            spawn_parents: Vec::new(),
            visits: 0,
            nonlocal: 0,
        }
    }
}

impl TickScratch {
    pub fn new() -> Self {
        TickScratch::default()
    }

    /// Grow to at least `n` shard scratches shaped by `schema`.
    fn ensure_shards(&mut self, schema: &AgentSchema, n: usize) -> &mut [ShardScratch] {
        while self.shards.len() < n {
            self.shards.push(ShardScratch::new(schema));
        }
        &mut self.shards[..n]
    }
}

/// Serial reference implementation of the query phase: one pass over rows
/// `0..n_owned` into a single full-width `table` (which is reset first),
/// over an index built fresh for this call. This is the executable
/// specification the sharded path is tested against; production paths
/// ([`TickExecutor`], the MapReduce worker) call [`query_phase_sharded`].
///
/// After this returns, rows `0..n_owned` hold this partition's aggregated
/// local effects and rows `n_owned..` hold partial aggregates destined for
/// the replicas' owners (the runtime ships the non-identity ones).
pub fn query_phase<B: Behavior>(
    behavior: &B,
    pool: &AgentPool,
    n_owned: usize,
    kind: IndexKind,
    table: &mut EffectTable,
    tick: u64,
    seed: u64,
) -> QueryStats {
    let schema = behavior.schema();
    let vis = schema.visibility();
    let view = pool.view();
    let mut stats = QueryStats::default();
    table.reset(view.len());

    let t0 = Instant::now();
    let points: Vec<(Vec2, u32)> = (0..view.len()).map(|r| (view.pos(r as u32), r as u32)).collect();
    let index = BuiltIndex::build(kind, &points, vis);
    stats.index_build_ns = t0.elapsed().as_nanos() as u64;

    let t1 = Instant::now();
    let mut cands: Vec<u32> = Vec::new();
    let mut batch = BatchScratch::default();
    // The reference path is the *scalar* probe loop: `range` + per-row
    // `query`. The batched kernels are proven against it.
    let k = QueryKernel::Scalar;
    let id_rows = ids_strictly_increasing(view.ids);
    let (visits, nonlocal) = match &index {
        BuiltIndex::Scan(i) => {
            query_rows(behavior, schema, i, view, 0..n_owned, 0, table, &mut cands, &mut batch, tick, seed, k, id_rows)
        }
        BuiltIndex::Kd(i) => {
            query_rows(behavior, schema, i, view, 0..n_owned, 0, table, &mut cands, &mut batch, tick, seed, k, id_rows)
        }
        BuiltIndex::Grid(i) => {
            query_rows(behavior, schema, i, view, 0..n_owned, 0, table, &mut cands, &mut batch, tick, seed, k, id_rows)
        }
    };
    stats.neighbor_visits = visits;
    stats.nonlocal_writes = nonlocal;
    stats.query_ns = t1.elapsed().as_nanos() as u64;
    stats
}

/// The monomorphized inner loop: run the query phase for global rows
/// `rows`, writing into `table` whose row 0 is global row `base`. Returns
/// `(neighbor_visits, nonlocal_writes)`. Under [`QueryKernel::Batched`] the
/// range probe filters through the index's lane kernels
/// (`SpatialIndex::range_batch`) and the behavior runs through
/// [`Behavior::query_batch`]; under [`QueryKernel::Scalar`] both fall back
/// to the per-row path — bit-identical either way.
#[allow(clippy::too_many_arguments)]
fn query_rows<B: Behavior, I: SpatialIndex>(
    behavior: &B,
    schema: &AgentSchema,
    index: &I,
    view: PoolView<'_>,
    rows: Range<usize>,
    base: u32,
    table: &mut EffectTable,
    candidates: &mut Vec<u32>,
    batch: &mut BatchScratch,
    tick: u64,
    seed: u64,
    kernel: QueryKernel,
    rows_in_id_order: bool,
) -> (u64, u64) {
    let vis = schema.visibility();
    let probe = behavior.probe();
    // The behavior decides once per loop whether its batched kernel pays
    // for the candidate gather (`Behavior::batch_profitable`); the ablation
    // knob still forces the scalar path wholesale.
    let run_batched = kernel == QueryKernel::Batched && behavior.batch_profitable();
    let mut visits = 0u64;
    let mut nonlocal = 0u64;
    for row in rows {
        let row = row as u32;
        let me = view.agent(row);
        debug_assert!(me.alive(), "dead agent in query phase");
        let pos = me.pos();
        candidates.clear();
        match probe {
            NeighborProbe::Range => {
                if vis.is_finite() {
                    // Behaviors with a derived visibility predicate shrink
                    // the probe rect (pushdown); the default is the full
                    // visibility square. Semantically invisible candidates
                    // are excluded earlier, never added.
                    let rect = behavior.probe_rect(pos, vis);
                    // The lane-kernel filter is the default probe only
                    // where it is gather-free (`RANGE_BATCH_NATIVE`); see
                    // the trait docs for the measured tradeoff.
                    match kernel {
                        QueryKernel::Batched if I::RANGE_BATCH_NATIVE => index.range_batch(&rect, candidates),
                        _ => index.range(&rect, candidates),
                    }
                    // Canonical candidate order: **ascending agent id**,
                    // always. Per-agent neighbor iteration order — and
                    // therefore float effect aggregation — is a pure
                    // function of the agent set, independent of index
                    // state (maintained vs rebuilt) *and* of row placement
                    // (single-node pool vs a distributed worker's
                    // swap-mutated pool, which is what makes an N-worker
                    // cluster bit-identical to one node). When rows are
                    // already in id order (every single-node pool), row
                    // order *is* id order: scan (row-order columns) and
                    // grid (ascending-payload bucket merge) are then
                    // canonical by construction (`RANGE_CANONICAL`) and
                    // only the KD-tree (build-history emission order) pays
                    // a sort.
                    if !rows_in_id_order {
                        candidates.sort_unstable_by_key(|&r| (view.ids[r as usize], r));
                    } else if !I::RANGE_CANONICAL {
                        candidates.sort_unstable();
                    }
                } else {
                    candidates.extend(0..view.len() as u32);
                    if !rows_in_id_order {
                        candidates.sort_unstable_by_key(|&r| (view.ids[r as usize], r));
                    }
                }
            }
            NeighborProbe::Nearest(k) => {
                // Ask for k + 1 so self (always distance 0) doesn't crowd
                // out a real neighbor; crop to the visible region, which is
                // all the distributed runtime replicates. k-NN results are
                // canonical already ((distance, row) order); note the row
                // tie-break makes k-th-neighbor ties placement-dependent,
                // so Nearest-probe models carry a documented approximate
                // (not bit-exact) distributed-equivalence contract.
                index.k_nearest_into(pos, k + 1, None, candidates);
                if vis.is_finite() {
                    candidates.retain(|&i| view.pos(i).dist_linf(pos) <= vis);
                }
            }
        }
        visits += candidates.len() as u64;
        let mut writer = EffectWriter::with_base(schema, table, row, base);
        let mut rng = agent_rng(seed, tick, me.id(), 0);
        if run_batched {
            let mut nb = NeighborBatch::new(view, candidates, row, batch);
            behavior.query_batch(me, &mut nb, &mut writer, &mut rng);
        } else {
            let neighbors = Neighbors::new(view, candidates, row);
            behavior.query(me, &neighbors, &mut writer, &mut rng);
        }
        nonlocal += writer.nonlocal_writes();
    }
    (visits, nonlocal)
}

/// Sharded, optionally parallel query phase. Semantics match
/// [`query_phase`] (rows `0..n_owned` of the pool queried, effects for
/// every visible row aggregated into the **pool's own effect columns**),
/// executed over the deterministic shard plan described in the module docs
/// and against the incrementally maintained `index`. `parallelism` is the
/// physical thread budget (`0` = all cores, `1` = run shards inline); it
/// never affects results, only wall time.
#[allow(clippy::too_many_arguments)]
pub fn query_phase_sharded<B: Behavior>(
    behavior: &B,
    pool: &mut AgentPool,
    n_owned: usize,
    index: &mut MaintainedIndex,
    tick: u64,
    seed: u64,
    scratch: &mut TickScratch,
    parallelism: usize,
) -> QueryStats {
    query_phase_sharded_with(
        behavior,
        pool,
        n_owned,
        index,
        tick,
        seed,
        scratch,
        SHARD_ROWS,
        parallelism,
        QueryKernel::default(),
    )
}

/// [`query_phase_sharded`] with an explicit rows-per-shard granule and
/// query-kernel mode. Production uses [`SHARD_ROWS`] and the default
/// (batched) kernel; property tests pass tiny granules to exercise
/// many-shard merges on small worlds, and the kernel ablation passes
/// [`QueryKernel::Scalar`]. Results depend on the granule only through the
/// documented re-association of non-local float aggregates — never on
/// `parallelism` or `kernel`.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn query_phase_sharded_with<B: Behavior>(
    behavior: &B,
    pool: &mut AgentPool,
    n_owned: usize,
    index: &mut MaintainedIndex,
    tick: u64,
    seed: u64,
    scratch: &mut TickScratch,
    shard_rows: usize,
    parallelism: usize,
    kernel: QueryKernel,
) -> QueryStats {
    let schema = behavior.schema();
    let vis = schema.visibility();
    let mut stats = QueryStats::default();
    let (view, table) = pool.split_query();
    table.reset(view.len());

    let t0 = Instant::now();
    index.sync(view, vis);
    stats.index_build_ns = t0.elapsed().as_nanos() as u64;

    let nonlocal_schema = schema.has_nonlocal_effects();
    let k = shard_count(n_owned, nonlocal_schema, shard_rows);
    if k == 0 {
        return stats;
    }
    let threads = effective_parallelism(parallelism).min(k);
    let shards = scratch.ensure_shards(schema, k);

    let t1 = Instant::now();
    // Reset each shard's accumulator to the width it covers this tick.
    for (i, shard) in shards.iter_mut().enumerate() {
        let rows = if nonlocal_schema { view.len() } else { shard_range(n_owned, k, i).len() };
        shard.table.reset(rows);
        shard.visits = 0;
        shard.nonlocal = 0;
    }

    // One monomorphized dispatch per tick, then the shard loop runs against
    // the concrete index type. The id-order probe (once per tick, early-out
    // on the first inversion) picks the candidate canonicalization path.
    let id_rows = ids_strictly_increasing(view.ids);
    match index.built.as_ref().expect("sync built an index") {
        BuiltIndex::Scan(i) => run_query_shards(
            behavior,
            schema,
            i,
            view,
            n_owned,
            nonlocal_schema,
            shards,
            threads,
            tick,
            seed,
            kernel,
            id_rows,
        ),
        BuiltIndex::Kd(i) => run_query_shards(
            behavior,
            schema,
            i,
            view,
            n_owned,
            nonlocal_schema,
            shards,
            threads,
            tick,
            seed,
            kernel,
            id_rows,
        ),
        BuiltIndex::Grid(i) => run_query_shards(
            behavior,
            schema,
            i,
            view,
            n_owned,
            nonlocal_schema,
            shards,
            threads,
            tick,
            seed,
            kernel,
            id_rows,
        ),
    }

    // Deterministic merge, ascending shard order, directly into the pool's
    // effect columns. Local-effect shards own disjoint row ranges: a
    // bitwise column-segment copy. Non-local shards span the whole visible
    // set: copy the first, ⊕-merge the rest.
    let t2 = Instant::now();
    for (i, shard) in shards.iter().enumerate() {
        if nonlocal_schema {
            if i == 0 {
                table.copy_rows_from(&shard.table, 0);
            } else {
                table.merge_table(&shard.table);
            }
        } else {
            table.copy_rows_from(&shard.table, shard_range(n_owned, k, i).start);
        }
        stats.neighbor_visits += shard.visits;
        stats.nonlocal_writes += shard.nonlocal;
    }
    stats.merge_ns = t2.elapsed().as_nanos() as u64;
    stats.query_ns = t1.elapsed().as_nanos() as u64;
    stats
}

/// Distribute `shards` over up to `threads` scoped worker threads in
/// contiguous groups. Shard → result mapping is positional, so scheduling
/// cannot affect the merge order.
#[allow(clippy::too_many_arguments)]
fn run_query_shards<B: Behavior, I: SpatialIndex>(
    behavior: &B,
    schema: &AgentSchema,
    index: &I,
    view: PoolView<'_>,
    n_owned: usize,
    nonlocal_schema: bool,
    shards: &mut [ShardScratch],
    threads: usize,
    tick: u64,
    seed: u64,
    kernel: QueryKernel,
    rows_in_id_order: bool,
) {
    let k = shards.len();
    let run_one = |i: usize, shard: &mut ShardScratch| {
        let rows = shard_range(n_owned, k, i);
        let base = if nonlocal_schema { 0 } else { rows.start as u32 };
        let (visits, nonlocal) = query_rows(
            behavior,
            schema,
            index,
            view,
            rows,
            base,
            &mut shard.table,
            &mut shard.candidates,
            &mut shard.batch,
            tick,
            seed,
            kernel,
            rows_in_id_order,
        );
        shard.visits = visits;
        shard.nonlocal = nonlocal;
    };
    if threads <= 1 {
        for (i, shard) in shards.iter_mut().enumerate() {
            run_one(i, shard);
        }
        return;
    }
    std::thread::scope(|scope| {
        let mut rest = shards;
        let mut next = 0usize;
        for t in 0..threads {
            let group = shard_range(k, threads, t).len();
            let (head, tail) = rest.split_at_mut(group);
            rest = tail;
            let first = next;
            next += group;
            let run_one = &run_one;
            scope.spawn(move || {
                for (j, shard) in head.iter_mut().enumerate() {
                    run_one(first + j, shard);
                }
            });
        }
    });
}

/// Counters returned by the update phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    pub update_ns: u64,
    pub spawned: usize,
    pub killed: usize,
}

/// Serial reference implementation of the update phase over row records
/// (owned agents with final effects already written into `agent.effects`):
/// run updates, crop movement to the reachable region, remove killed
/// agents, materialize spawns with ids from `id_gen`, and reset effect
/// slots for the next tick. Production paths call
/// [`update_phase_sharded`]; this is the `Vec<Agent>` half of the
/// executable specification (see [`reference_step`]).
pub fn update_phase<B: Behavior>(
    behavior: &B,
    agents: &mut Vec<Agent>,
    tick: u64,
    seed: u64,
    id_gen: &mut AgentIdGen,
) -> UpdateStats {
    let schema = behavior.schema();
    let t0 = Instant::now();
    let mut spawns: Vec<(Vec2, Vec<f64>)> = Vec::new();
    update_rows(behavior, schema, agents, tick, seed, &mut spawns);
    let before = agents.len();
    agents.retain(|a| a.alive);
    let killed = before - agents.len();
    let mut spawned = 0;
    spawned += spawns.len();
    for (pos, state) in spawns.drain(..) {
        let id = id_gen.alloc().expect("agent id space exhausted");
        agents.push(Agent::with_state(id, pos, state, schema));
    }
    UpdateStats { update_ns: t0.elapsed().as_nanos() as u64, spawned, killed }
}

/// Update one contiguous run of row records, queueing spawns locally
/// (reference path).
fn update_rows<B: Behavior>(
    behavior: &B,
    schema: &AgentSchema,
    agents: &mut [Agent],
    tick: u64,
    seed: u64,
    spawns: &mut Vec<(Vec2, Vec<f64>)>,
) {
    let reach = schema.reachability();
    for agent in agents.iter_mut() {
        let from = agent.pos;
        let rng = agent_rng(seed, tick, agent.id, 1);
        let mut ctx = UpdateCtx::new(tick, rng, spawns);
        behavior.update(agent, &mut ctx);
        agent.pos = Agent::clamp_move(from, agent.pos, reach);
        debug_assert!(!agent.pos.is_nan(), "model produced NaN position for {}", agent.id);
        agent.reset_effects(schema);
    }
}

/// Sharded, optionally parallel update phase over the pool. Bit-identical
/// to [`update_phase`] for every chunking and thread count: each agent's
/// update is a pure function of `(seed, tick, agent)`, and per-chunk spawn
/// queues are concatenated in chunk order, which reproduces the serial
/// spawn ordering (and therefore id assignment) exactly. Each chunk
/// gathers one row at a time into a reused scratch record, scatters the
/// written state back into the columns, and the pool's effect columns are
/// reset wholesale (one fill per column) at the end.
pub fn update_phase_sharded<B: Behavior>(
    behavior: &B,
    pool: &mut AgentPool,
    tick: u64,
    seed: u64,
    id_gen: &mut AgentIdGen,
    scratch: &mut TickScratch,
    parallelism: usize,
) -> UpdateStats {
    let schema = behavior.schema();
    let t0 = Instant::now();
    let n = pool.len();
    let threads = effective_parallelism(parallelism).min(n).max(1);
    let shards = scratch.ensure_shards(schema, threads);
    for shard in shards.iter_mut() {
        shard.spawns.clear();
        shard.spawn_parents.clear();
    }
    {
        let counts: Vec<usize> = (0..threads).map(|t| shard_range(n, threads, t).len()).collect();
        let mut chunks = pool.update_chunks(&counts);
        if threads <= 1 {
            let ShardScratch { spawns, spawn_parents, .. } = &mut shards[0];
            update_chunk_rows(behavior, schema, &mut chunks[0], tick, seed, spawns, spawn_parents);
        } else {
            std::thread::scope(|scope| {
                let mut rest = &mut *shards;
                for mut chunk in chunks {
                    let (shard, tail) = rest.split_at_mut(1);
                    rest = tail;
                    let ShardScratch { spawns, spawn_parents, .. } = &mut shard[0];
                    scope.spawn(move || {
                        update_chunk_rows(behavior, schema, &mut chunk, tick, seed, spawns, spawn_parents)
                    });
                }
            });
        }
    }
    let killed = pool.retain_alive();
    let mut spawned = 0;
    for shard in shards.iter_mut() {
        spawned += shard.spawns.len();
        for (pos, state) in shard.spawns.drain(..) {
            let id = id_gen.alloc().expect("agent id space exhausted");
            pool.push_spawn(id, pos, &state);
        }
    }
    pool.reset_effects();
    UpdateStats { update_ns: t0.elapsed().as_nanos() as u64, spawned, killed }
}

/// A spawn requested during the update phase, before any agent id has been
/// assigned. Emitted by [`update_phase_prefix`] in the canonical order —
/// chunk-concatenation order, which within any one parent is that parent's
/// spawn-call order — tagged with the parent that requested it. The
/// distributed runtime assigns final ids by the **global** ascending
/// `(parent id, ordinal)` order across all workers, so id assignment is a
/// pure function of the previous tick's world, independent of partition
/// placement or worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingSpawn {
    /// The agent whose update requested this spawn.
    pub parent: AgentId,
    /// Spawn position (already clamped by the model's own logic, not by
    /// the parent's reachability — spawns are placements, not moves).
    pub pos: Vec2,
    /// Initial state vector (schema-width).
    pub state: Vec<f64>,
}

/// Sharded update phase over rows `0..n_owned` of a pool whose tail holds
/// **persistent replica rows that must survive the tick** — the distributed
/// worker's entry point. Unlike [`update_phase_sharded`] it mutates no pool
/// membership: killed rows are reported in `killed` (ascending row order)
/// for the caller to remove with its stable-row ops (keeping its id ↔ row
/// map in sync), and spawns are reported id-less as [`PendingSpawn`]s in
/// chunk order for the caller to sequence globally (the worker exchanges
/// per-parent spawn counts with its peers and derives each id from the
/// shared cross-worker counter). Effect columns are left for the caller to
/// reset once kills/spawns are applied.
#[allow(clippy::too_many_arguments)]
pub fn update_phase_prefix<B: Behavior>(
    behavior: &B,
    pool: &mut AgentPool,
    n_owned: usize,
    tick: u64,
    seed: u64,
    scratch: &mut TickScratch,
    parallelism: usize,
    killed: &mut Vec<u32>,
    spawned: &mut Vec<PendingSpawn>,
) -> UpdateStats {
    let schema = behavior.schema();
    let t0 = Instant::now();
    killed.clear();
    spawned.clear();
    let threads = effective_parallelism(parallelism).min(n_owned).max(1);
    let shards = scratch.ensure_shards(schema, threads);
    for shard in shards.iter_mut() {
        shard.spawns.clear();
        shard.spawn_parents.clear();
    }
    {
        let counts: Vec<usize> = (0..threads).map(|t| shard_range(n_owned, threads, t).len()).collect();
        let mut chunks = pool.update_chunks_prefix(&counts);
        if threads <= 1 {
            let ShardScratch { spawns, spawn_parents, .. } = &mut shards[0];
            update_chunk_rows(behavior, schema, &mut chunks[0], tick, seed, spawns, spawn_parents);
        } else {
            std::thread::scope(|scope| {
                let mut rest = &mut *shards;
                for mut chunk in chunks {
                    let (shard, tail) = rest.split_at_mut(1);
                    rest = tail;
                    let ShardScratch { spawns, spawn_parents, .. } = &mut shard[0];
                    scope.spawn(move || {
                        update_chunk_rows(behavior, schema, &mut chunk, tick, seed, spawns, spawn_parents)
                    });
                }
            });
        }
    }
    killed.extend((0..n_owned as u32).filter(|&r| !pool.alive(r)));
    let mut n_spawned = 0;
    for shard in shards.iter_mut() {
        n_spawned += shard.spawns.len();
        for ((pos, state), parent) in shard.spawns.drain(..).zip(shard.spawn_parents.drain(..)) {
            spawned.push(PendingSpawn { parent, pos, state });
        }
    }
    UpdateStats { update_ns: t0.elapsed().as_nanos() as u64, spawned: n_spawned, killed: killed.len() }
}

/// Update one pool chunk through a reused scratch record. Every spawn the
/// chunk queues is tagged with its requesting parent in `parents`
/// (lockstep with `spawns`).
#[allow(clippy::too_many_arguments)]
fn update_chunk_rows<B: Behavior>(
    behavior: &B,
    schema: &AgentSchema,
    chunk: &mut UpdateChunk<'_>,
    tick: u64,
    seed: u64,
    spawns: &mut Vec<(Vec2, Vec<f64>)>,
    parents: &mut Vec<AgentId>,
) {
    let reach = schema.reachability();
    let mut me = Agent {
        id: AgentId::new(0),
        pos: Vec2::ZERO,
        state: Vec::with_capacity(schema.num_states()),
        effects: Vec::with_capacity(schema.num_effects()),
        alive: true,
    };
    for i in 0..chunk.len() {
        chunk.load(i, &mut me);
        let from = me.pos;
        let rng = agent_rng(seed, tick, me.id, 1);
        let before = spawns.len();
        let mut ctx = UpdateCtx::new(tick, rng, spawns);
        behavior.update(&mut me, &mut ctx);
        for _ in before..spawns.len() {
            parents.push(me.id);
        }
        me.pos = Agent::clamp_move(from, me.pos, reach);
        debug_assert!(!me.pos.is_nan(), "model produced NaN position for {}", me.id);
        chunk.store(i, &me);
    }
}

/// One full tick over a `Vec<Agent>` world: convert to a fresh pool at the
/// boundary, run the unsharded reference query phase over a freshly built
/// index, copy effects back into the records, run the serial reference
/// update phase. This is the row-oriented executable specification the
/// pool-backed [`TickExecutor`] is property-tested against (bit-identical
/// worlds), and the AoS baseline of the throughput ablation.
pub fn reference_step<B: Behavior>(
    behavior: &B,
    agents: &mut Vec<Agent>,
    kind: IndexKind,
    tick: u64,
    seed: u64,
    id_gen: &mut AgentIdGen,
) -> (QueryStats, UpdateStats) {
    let schema = behavior.schema();
    let pool = AgentPool::from_agents(schema, agents);
    let mut table = EffectTable::new(schema);
    let qs = query_phase(behavior, &pool, agents.len(), kind, &mut table, tick, seed);
    table.write_into(agents);
    let us = update_phase(behavior, agents, tick, seed, id_gen);
    (qs, us)
}

/// Single-node executor: the reference implementation of a BRACE tick, and
/// the baseline of the paper's Figures 3 and 4. Owns the agent pool, the
/// maintained index and the shard scratch; runs the sharded phases with a
/// configurable thread budget ([`TickExecutor::set_parallelism`]; default
/// 1 = serial execution of the same deterministic shard plan).
pub struct TickExecutor<B: Behavior> {
    behavior: B,
    pool: AgentPool,
    index: MaintainedIndex,
    scratch: TickScratch,
    id_gen: AgentIdGen,
    parallelism: usize,
    kernel: QueryKernel,
    seed: u64,
    tick: u64,
    metrics: SimMetrics,
    /// Captured once at construction: recording when telemetry was enabled
    /// then, a branch-only no-op otherwise (the off path touches no
    /// atomics — see `brace_telemetry`).
    tel: Telemetry,
}

impl<B: Behavior> TickExecutor<B> {
    /// Create an executor. `agents` must already match the behavior's
    /// schema; the id generator starts above every existing agent id.
    pub fn new(behavior: B, agents: Vec<Agent>, kind: IndexKind, seed: u64) -> Self {
        let pool = AgentPool::from_agents(behavior.schema(), &agents);
        let max_id = agents.iter().map(|a| a.id.raw()).max().map_or(0, |m| m + 1);
        TickExecutor {
            behavior,
            pool,
            index: MaintainedIndex::new(kind),
            scratch: TickScratch::new(),
            id_gen: AgentIdGen::from(max_id),
            parallelism: 1,
            kernel: QueryKernel::default(),
            seed,
            tick: 0,
            metrics: SimMetrics::default(),
            tel: Telemetry::current(),
        }
    }

    /// Set the thread budget for the query and update phases: `1` (the
    /// default) runs the shard plan serially, `0` uses every available
    /// core, `n` uses up to `n` threads. Never changes results — only wall
    /// time (see the module's determinism argument).
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.parallelism = parallelism;
    }

    /// Current thread budget (`0` = auto).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Index maintenance policy (ablation knob): incremental (default) or
    /// rebuild-every-tick. Never changes results — proven by the
    /// incremental ≡ rebuild property.
    pub fn set_index_maintenance(&mut self, mode: IndexMaintenance) {
        self.index.set_mode(mode);
    }

    /// Query-kernel mode (ablation knob): batched lane kernels (default)
    /// or the per-row scalar path. Never changes results — proven by the
    /// kernel conformance properties.
    pub fn set_query_kernel(&mut self, kernel: QueryKernel) {
        self.kernel = kernel;
    }

    /// Current query-kernel mode.
    pub fn query_kernel(&self) -> QueryKernel {
        self.kernel
    }

    /// Full index builds performed so far (ablation statistic).
    pub fn index_rebuilds(&self) -> u64 {
        self.index.rebuilds()
    }

    /// Execute one tick (query → finalize effects → update).
    pub fn step(&mut self) -> TickMetrics {
        let n = self.pool.len();
        let qs = query_phase_sharded_with(
            &self.behavior,
            &mut self.pool,
            n,
            &mut self.index,
            self.tick,
            self.seed,
            &mut self.scratch,
            SHARD_ROWS,
            self.parallelism,
            self.kernel,
        );
        let us = update_phase_sharded(
            &self.behavior,
            &mut self.pool,
            self.tick,
            self.seed,
            &mut self.id_gen,
            &mut self.scratch,
            self.parallelism,
        );
        let tm = TickMetrics {
            tick: self.tick,
            n_agents: n,
            index_build_ns: qs.index_build_ns,
            query_ns: qs.query_ns,
            merge_ns: qs.merge_ns,
            update_ns: us.update_ns,
            neighbor_visits: qs.neighbor_visits,
            nonlocal_writes: qs.nonlocal_writes,
            spawned: us.spawned,
            killed: us.killed,
        };
        // Phase timings re-use the stats the executor already measured:
        // telemetry adds no clock reads to the tick, only these records.
        self.tel.observe(HistId::PhaseIndexMaintain, tm.index_build_ns);
        self.tel.observe(HistId::PhaseQuery, tm.query_ns);
        self.tel.observe(HistId::PhaseEffectMerge, tm.merge_ns);
        self.tel.observe(HistId::PhaseUpdate, tm.update_ns);
        self.tel.incr(Counter::ExecutorTicks);
        self.tel.add(Counter::ExecutorNeighborVisits, tm.neighbor_visits);
        self.tel.add(Counter::ExecutorNonlocalWrites, tm.nonlocal_writes);
        self.tel.add(Counter::ExecutorSpawned, tm.spawned as u64);
        self.tel.add(Counter::ExecutorKilled, tm.killed as u64);
        self.metrics.record(tm.clone());
        self.tick += 1;
        tm
    }

    /// Execute `n` ticks.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Materialize the world as row records (the serialization boundary;
    /// hot paths use [`TickExecutor::pool`]).
    pub fn agents(&self) -> Vec<Agent> {
        self.pool.to_agents()
    }

    /// The columnar working representation.
    pub fn pool(&self) -> &AgentPool {
        &self.pool
    }

    pub fn behavior(&self) -> &B {
        &self.behavior
    }

    pub fn tick(&self) -> u64 {
        self.tick
    }

    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Discard accumulated metrics (start-up transient elimination).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentRef;
    use crate::combinator::Combinator;
    use crate::schema::AgentSchema;
    use brace_common::{AgentId, FieldId, Vec2};

    /// Test model: each agent counts neighbors within distance 1 (L∞) into
    /// effect `n`, then moves right by 0.1 * n (cropped by reachability).
    struct CountAndDrift {
        schema: AgentSchema,
    }

    impl CountAndDrift {
        fn new() -> Self {
            let schema = AgentSchema::builder("CountAndDrift")
                .effect("n", Combinator::Sum)
                .visibility(1.0)
                .reachability(0.5)
                .build()
                .unwrap();
            CountAndDrift { schema }
        }
    }

    impl Behavior for CountAndDrift {
        fn schema(&self) -> &AgentSchema {
            &self.schema
        }

        fn query(&self, _me: AgentRef<'_>, nbrs: &Neighbors<'_>, eff: &mut EffectWriter<'_>, _rng: &mut DetRng) {
            for _ in nbrs.iter() {
                eff.local(FieldId::new(0), 1.0);
            }
        }

        fn update(&self, me: &mut Agent, _ctx: &mut UpdateCtx<'_>) {
            let n = me.effect(FieldId::new(0));
            me.pos.x += 0.1 * n;
        }
    }

    fn line_of_agents(schema: &AgentSchema, n: usize, gap: f64) -> Vec<Agent> {
        (0..n).map(|i| Agent::new(AgentId::new(i as u64), Vec2::new(i as f64 * gap, 0.0), schema)).collect()
    }

    #[test]
    fn neighbor_counts_are_correct() {
        let b = CountAndDrift::new();
        let agents = line_of_agents(b.schema(), 5, 0.9); // each sees adjacent only
        let mut exec = TickExecutor::new(b, agents, IndexKind::KdTree, 1);
        let tm = exec.step();
        assert_eq!(tm.n_agents, 5);
        // After the tick, agents moved: ends saw 1 neighbor (moved 0.1),
        // middles saw 2 (moved 0.2).
        let xs: Vec<f64> = exec.agents().iter().map(|a| a.pos.x).collect();
        assert!((xs[0] - 0.1).abs() < 1e-12);
        assert!((xs[1] - (0.9 + 0.2)).abs() < 1e-12);
        assert!((xs[4] - (3.6 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn all_index_kinds_agree() {
        let run = |kind: IndexKind| {
            let b = CountAndDrift::new();
            let agents = line_of_agents(b.schema(), 40, 0.3);
            let mut e = TickExecutor::new(b, agents, kind, 7);
            e.run(5);
            e.agents().iter().map(|a| a.pos).collect::<Vec<_>>()
        };
        let k = run(IndexKind::KdTree);
        assert_eq!(k, run(IndexKind::Scan));
        assert_eq!(k, run(IndexKind::Grid));
    }

    #[test]
    fn movement_cropped_to_reachability() {
        // One dense cluster: counts are large, drift would exceed 0.5.
        let b = CountAndDrift::new();
        let agents: Vec<Agent> = (0..20).map(|i| Agent::new(AgentId::new(i), Vec2::ZERO, b.schema())).collect();
        let mut exec = TickExecutor::new(b, agents, IndexKind::KdTree, 1);
        exec.step();
        for a in exec.agents() {
            assert!((a.pos.x - 0.5).abs() < 1e-12, "movement not cropped: {}", a.pos.x);
        }
    }

    #[test]
    fn effects_reset_between_ticks() {
        let b = CountAndDrift::new();
        let agents = line_of_agents(b.schema(), 3, 0.5);
        let mut exec = TickExecutor::new(b, agents, IndexKind::KdTree, 1);
        exec.step();
        for a in exec.agents() {
            assert_eq!(a.effects, vec![0.0], "effects must be identity after tick");
        }
    }

    /// Model that spawns one child per tick per agent at tick 0 and kills
    /// agents with odd ids at tick 1. Exercises spawn/kill handling.
    struct SpawnKill {
        schema: AgentSchema,
    }

    impl Behavior for SpawnKill {
        fn schema(&self) -> &AgentSchema {
            &self.schema
        }
        fn query(&self, _m: AgentRef<'_>, _n: &Neighbors<'_>, _e: &mut EffectWriter<'_>, _rng: &mut DetRng) {}
        fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
            if ctx.tick == 0 {
                ctx.spawn(me.pos + Vec2::new(0.1, 0.0), vec![]);
            }
            if ctx.tick == 1 && me.id.raw() % 2 == 1 {
                me.alive = false;
            }
        }
    }

    #[test]
    fn spawn_and_kill_lifecycle() {
        let schema = AgentSchema::builder("SpawnKill").visibility(1.0).build().unwrap();
        let b = SpawnKill { schema };
        let agents: Vec<Agent> =
            (0..4).map(|i| Agent::new(AgentId::new(i), Vec2::new(i as f64, 0.0), b.schema())).collect();
        let mut exec = TickExecutor::new(b, agents, IndexKind::KdTree, 1);
        let tm0 = exec.step();
        assert_eq!(tm0.spawned, 4);
        assert_eq!(exec.agents().len(), 8);
        // Spawned ids continue above the original max.
        assert!(exec.agents().iter().any(|a| a.id.raw() >= 4));
        let tm1 = exec.step();
        assert!(tm1.killed > 0);
        assert!(exec.agents().iter().all(|a| a.alive));
    }

    #[test]
    fn determinism_same_seed_same_world() {
        let run = |seed| {
            let b = CountAndDrift::new();
            let agents = line_of_agents(b.schema(), 30, 0.4);
            let mut e = TickExecutor::new(b, agents, IndexKind::KdTree, seed);
            e.run(10);
            e.agents().iter().map(|a| (a.id, a.pos)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn metrics_accumulate() {
        let b = CountAndDrift::new();
        let agents = line_of_agents(b.schema(), 10, 0.4);
        let mut exec = TickExecutor::new(b, agents, IndexKind::KdTree, 1);
        exec.run(4);
        assert_eq!(exec.metrics().ticks, 4);
        assert_eq!(exec.metrics().agent_ticks, 40);
        exec.reset_metrics();
        assert_eq!(exec.metrics().ticks, 0);
        assert_eq!(exec.tick(), 4, "reset_metrics must not rewind the clock");
    }

    #[test]
    fn parallel_executor_matches_serial_executor() {
        // Same world stepped with 1 and 4 threads: bit-identical states.
        let run = |threads: usize| {
            let b = CountAndDrift::new();
            let agents = line_of_agents(b.schema(), 500, 0.2);
            let mut e = TickExecutor::new(b, agents, IndexKind::KdTree, 9);
            e.set_parallelism(threads);
            e.run(8);
            e.agents()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn incremental_executor_matches_rebuild_executor() {
        // Incremental index maintenance must never change results — for
        // any index kind (the canonical-candidate argument).
        for kind in [IndexKind::Scan, IndexKind::KdTree, IndexKind::Grid] {
            let run = |mode: IndexMaintenance| {
                let b = CountAndDrift::new();
                let agents = line_of_agents(b.schema(), 300, 0.25);
                let mut e = TickExecutor::new(b, agents, kind, 11);
                e.set_index_maintenance(mode);
                e.run(10);
                e.agents()
            };
            let inc = run(IndexMaintenance::Incremental);
            let reb = run(IndexMaintenance::Rebuild);
            assert_eq!(inc, reb, "{kind:?} diverged under incremental maintenance");
        }
    }

    #[test]
    fn incremental_mode_actually_skips_rebuilds() {
        let b = CountAndDrift::new();
        let agents = line_of_agents(b.schema(), 300, 0.25);
        let mut e = TickExecutor::new(b, agents, IndexKind::Grid, 11);
        e.run(10);
        // Tick 0 builds; the stable population lets every later tick sync
        // incrementally.
        assert_eq!(e.index_rebuilds(), 1, "stable population must not rebuild");
    }

    #[test]
    fn pool_executor_matches_reference_step() {
        let b = CountAndDrift::new();
        let mut world = line_of_agents(b.schema(), 120, 0.3);
        let mut exec = TickExecutor::new(CountAndDrift::new(), world.clone(), IndexKind::Grid, 13);
        let mut id_gen = AgentIdGen::from(world.iter().map(|a| a.id.raw()).max().unwrap() + 1);
        for tick in 0..6 {
            exec.step();
            reference_step(&b, &mut world, IndexKind::Grid, tick, 13, &mut id_gen);
        }
        assert_eq!(exec.agents(), world);
    }

    #[test]
    fn sharded_phases_match_serial_reference() {
        // Direct phase-level comparison against the unsharded reference:
        // 5000 owned rows put the deterministic plan at 3 shards, and a
        // local-effect schema merges by copy, so the tables must agree
        // bit for bit.
        let b = CountAndDrift::new();
        let agents = line_of_agents(b.schema(), 5000, 0.2);
        let pool = AgentPool::from_agents(b.schema(), &agents);
        let mut ref_table = EffectTable::new(b.schema());
        let ref_stats = query_phase(&b, &pool, pool.len(), IndexKind::Grid, &mut ref_table, 0, 3);
        let mut sh_pool = AgentPool::from_agents(b.schema(), &agents);
        let n = sh_pool.len();
        let mut index = MaintainedIndex::new(IndexKind::Grid);
        let mut scratch = TickScratch::new();
        let sh_stats = query_phase_sharded(&b, &mut sh_pool, n, &mut index, 0, 3, &mut scratch, 2);
        assert_eq!(ref_stats.neighbor_visits, sh_stats.neighbor_visits);
        for r in 0..n as u32 {
            assert_eq!(ref_table.row(r), sh_pool.effects().row(r), "row {r}");
        }
    }

    #[test]
    fn scratch_reuse_is_transparent_across_population_changes() {
        // Spawning grows the population across SHARD_ROWS boundaries while
        // the scratch persists; results must stay deterministic.
        let schema = AgentSchema::builder("Spawner").visibility(1.0).build().unwrap();
        struct Spawner(AgentSchema);
        impl Behavior for Spawner {
            fn schema(&self) -> &AgentSchema {
                &self.0
            }
            fn query(&self, _m: AgentRef<'_>, _n: &Neighbors<'_>, _e: &mut EffectWriter<'_>, _rng: &mut DetRng) {}
            fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
                if me.id.raw().is_multiple_of(3) {
                    ctx.spawn(me.pos + Vec2::new(0.01, 0.0), vec![]);
                }
            }
        }
        let run = |threads: usize| {
            let b = Spawner(schema.clone());
            let agents: Vec<Agent> =
                (0..1500).map(|i| Agent::new(AgentId::new(i), Vec2::new(i as f64 * 0.1, 0.0), &schema)).collect();
            let mut e = TickExecutor::new(b, agents, IndexKind::Grid, 2);
            e.set_parallelism(threads);
            e.run(3); // population: 1500 -> 2000 -> ~2667 -> crosses 2048
            e.agents().iter().map(|a| (a.id, a.pos)).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(3));
    }
}
