//! The tick executor: query phase, effect finalization, update phase.
//!
//! The two phase functions ([`query_phase`], [`update_phase`]) are exposed
//! separately because the distributed runtime interleaves communication
//! between them (Table 1 of the paper):
//!
//! ```text
//!   mapᵗ        = update phase of t−1 + distribute (runtime)
//!   reduceᵗ₁    = query_phase over owned agents        (this module)
//!   reduceᵗ₂    = ⊕-merge of shipped partial effects   (EffectTable::merge_row)
//!   mapᵗ⁺¹      = update_phase                          (this module)
//! ```
//!
//! The single-node [`TickExecutor`] simply calls them back to back — it *is*
//! the one-partition special case of the runtime, and the integration tests
//! exploit that: the distributed engine must produce bit-identical agents.
//!
//! # Visible-set convention
//!
//! The agent pool passed to [`query_phase`] holds the *owned* agents first
//! (rows `0..n_owned`) followed by replicas shipped from other partitions.
//! Queries run only for owned rows; effects may land on any row.

use crate::agent::Agent;
use crate::behavior::{Behavior, Neighbors, UpdateCtx};
use crate::effect::{EffectTable, EffectWriter};
use crate::metrics::{SimMetrics, TickMetrics};
use brace_common::ids::AgentIdGen;
use brace_common::{DetRng, Rect};
use brace_spatial::{IndexKind, KdTree, ScanIndex, SpatialIndex, UniformGrid};
use std::time::Instant;

/// Deterministic RNG stream for `(seed, tick, agent, phase)`. Phase 0 =
/// query, phase 1 = update. Placement- and order-independent by
/// construction.
#[inline]
pub fn agent_rng(seed: u64, tick: u64, agent: brace_common::AgentId, phase: u64) -> DetRng {
    DetRng::seed_from_u64(seed).stream(tick.wrapping_shl(1) | phase).stream(agent.raw())
}

/// An index built for one tick over the visible set. Dispatch is dynamic at
/// tick granularity (one enum branch per *probe*, negligible next to the
/// probe itself) so [`IndexKind`] can live in run configuration.
enum BuiltIndex {
    Scan(ScanIndex),
    Kd(KdTree),
    Grid(UniformGrid),
}

impl BuiltIndex {
    fn build(kind: IndexKind, points: &[(brace_common::Vec2, u32)], vis: f64) -> BuiltIndex {
        match kind {
            IndexKind::Scan => BuiltIndex::Scan(ScanIndex::build(points)),
            IndexKind::KdTree => BuiltIndex::Kd(KdTree::build(points)),
            IndexKind::Grid => {
                // Cell ≈ visibility is the classic tuning; fall back to the
                // auto heuristic when visibility is unbounded.
                if vis.is_finite() && vis > 0.0 {
                    BuiltIndex::Grid(UniformGrid::with_cell(points, vis))
                } else {
                    BuiltIndex::Grid(UniformGrid::build(points))
                }
            }
        }
    }

    #[inline]
    fn range(&self, rect: &Rect, out: &mut Vec<u32>) {
        match self {
            BuiltIndex::Scan(i) => i.range(rect, out),
            BuiltIndex::Kd(i) => i.range(rect, out),
            BuiltIndex::Grid(i) => i.range(rect, out),
        }
    }

    #[inline]
    fn k_nearest(&self, q: brace_common::Vec2, k: usize, exclude: Option<u32>) -> Vec<u32> {
        match self {
            BuiltIndex::Scan(i) => i.k_nearest(q, k, exclude),
            BuiltIndex::Kd(i) => i.k_nearest(q, k, exclude),
            BuiltIndex::Grid(i) => i.k_nearest(q, k, exclude),
        }
    }
}

/// Counters returned by [`query_phase`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    pub index_build_ns: u64,
    pub query_ns: u64,
    pub neighbor_visits: u64,
    pub nonlocal_writes: u64,
}

/// Run the query phase for rows `0..n_owned` of `visible`, aggregating
/// effects for *every* visible row into `table` (which is reset first).
///
/// After this returns, rows `0..n_owned` hold this partition's aggregated
/// local effects and rows `n_owned..` hold partial aggregates destined for
/// the replicas' owners (the runtime ships the non-identity ones).
pub fn query_phase<B: Behavior>(
    behavior: &B,
    visible: &[Agent],
    n_owned: usize,
    kind: IndexKind,
    table: &mut EffectTable,
    tick: u64,
    seed: u64,
) -> QueryStats {
    let schema = behavior.schema();
    let vis = schema.visibility();
    let mut stats = QueryStats::default();
    table.reset(visible.len());

    let t0 = Instant::now();
    let points: Vec<(brace_common::Vec2, u32)> =
        visible.iter().enumerate().map(|(i, a)| (a.pos, i as u32)).collect();
    let index = BuiltIndex::build(kind, &points, vis);
    stats.index_build_ns = t0.elapsed().as_nanos() as u64;

    let probe = behavior.probe();
    let t1 = Instant::now();
    let mut candidates: Vec<u32> = Vec::new();
    for row in 0..n_owned as u32 {
        let me = &visible[row as usize];
        debug_assert!(me.alive, "dead agent in query phase");
        candidates.clear();
        match probe {
            crate::behavior::NeighborProbe::Range => {
                if vis.is_finite() {
                    index.range(&Rect::centered(me.pos, vis), &mut candidates);
                } else {
                    candidates.extend(0..visible.len() as u32);
                }
            }
            crate::behavior::NeighborProbe::Nearest(k) => {
                // Ask for k + 1 so self (always distance 0) doesn't crowd
                // out a real neighbor; crop to the visible region, which is
                // all the distributed runtime replicates.
                candidates = index.k_nearest(me.pos, k + 1, None);
                if vis.is_finite() {
                    candidates.retain(|&i| visible[i as usize].pos.dist_linf(me.pos) <= vis);
                }
            }
        }
        stats.neighbor_visits += candidates.len() as u64;
        let neighbors = Neighbors::new(visible, &candidates, row);
        let mut writer = EffectWriter::new(schema, table, row);
        let mut rng = agent_rng(seed, tick, me.id, 0);
        behavior.query(me, row, &neighbors, &mut writer, &mut rng);
        stats.nonlocal_writes += writer.nonlocal_writes();
    }
    stats.query_ns = t1.elapsed().as_nanos() as u64;
    stats
}

/// Counters returned by [`update_phase`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    pub update_ns: u64,
    pub spawned: usize,
    pub killed: usize,
}

/// Run the update phase over `agents` (owned agents with final effects
/// already written into `agent.effects`), then: crop movement to the
/// reachable region, remove killed agents, materialize spawns with ids from
/// `id_gen`, and reset effect slots for the next tick.
pub fn update_phase<B: Behavior>(
    behavior: &B,
    agents: &mut Vec<Agent>,
    tick: u64,
    seed: u64,
    id_gen: &mut AgentIdGen,
) -> UpdateStats {
    let schema = behavior.schema();
    let reach = schema.reachability();
    let t0 = Instant::now();
    let mut spawns: Vec<(brace_common::Vec2, Vec<f64>)> = Vec::new();
    for agent in agents.iter_mut() {
        let from = agent.pos;
        let rng = agent_rng(seed, tick, agent.id, 1);
        let mut ctx = UpdateCtx::new(tick, rng, &mut spawns);
        behavior.update(agent, &mut ctx);
        agent.pos = Agent::clamp_move(from, agent.pos, reach);
        debug_assert!(!agent.pos.is_nan(), "model produced NaN position for {}", agent.id);
        agent.reset_effects(schema);
    }
    let before = agents.len();
    agents.retain(|a| a.alive);
    let killed = before - agents.len();
    let spawned = spawns.len();
    for (pos, state) in spawns {
        let id = id_gen.alloc().expect("agent id space exhausted");
        agents.push(Agent::with_state(id, pos, state, schema));
    }
    UpdateStats { update_ns: t0.elapsed().as_nanos() as u64, spawned, killed }
}

/// Single-node executor: the reference implementation of a BRACE tick, and
/// the baseline of the paper's Figures 3 and 4.
pub struct TickExecutor<B: Behavior> {
    behavior: B,
    agents: Vec<Agent>,
    table: EffectTable,
    id_gen: AgentIdGen,
    kind: IndexKind,
    seed: u64,
    tick: u64,
    metrics: SimMetrics,
}

impl<B: Behavior> TickExecutor<B> {
    /// Create an executor. `agents` must already match the behavior's
    /// schema; `id_gen` must start above every existing agent id.
    pub fn new(behavior: B, agents: Vec<Agent>, kind: IndexKind, seed: u64) -> Self {
        let table = EffectTable::new(behavior.schema());
        let max_id = agents.iter().map(|a| a.id.raw()).max().map_or(0, |m| m + 1);
        TickExecutor { behavior, agents, table, id_gen: AgentIdGen::from(max_id), kind, seed, tick: 0, metrics: SimMetrics::default() }
    }

    /// Execute one tick (query → finalize effects → update).
    pub fn step(&mut self) -> TickMetrics {
        let n = self.agents.len();
        let qs = query_phase(&self.behavior, &self.agents, n, self.kind, &mut self.table, self.tick, self.seed);
        self.table.write_into(&mut self.agents);
        let us = update_phase(&self.behavior, &mut self.agents, self.tick, self.seed, &mut self.id_gen);
        let tm = TickMetrics {
            tick: self.tick,
            n_agents: n,
            index_build_ns: qs.index_build_ns,
            query_ns: qs.query_ns,
            update_ns: us.update_ns,
            neighbor_visits: qs.neighbor_visits,
            nonlocal_writes: qs.nonlocal_writes,
            spawned: us.spawned,
            killed: us.killed,
        };
        self.metrics.record(tm.clone());
        self.tick += 1;
        tm
    }

    /// Execute `n` ticks.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    pub fn agents(&self) -> &[Agent] {
        &self.agents
    }

    pub fn agents_mut(&mut self) -> &mut Vec<Agent> {
        &mut self.agents
    }

    pub fn behavior(&self) -> &B {
        &self.behavior
    }

    pub fn tick(&self) -> u64 {
        self.tick
    }

    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Discard accumulated metrics (start-up transient elimination).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinator::Combinator;
    use crate::schema::AgentSchema;
    use brace_common::{AgentId, FieldId, Vec2};

    /// Test model: each agent counts neighbors within distance 1 (L∞) into
    /// effect `n`, then moves right by 0.1 * n (cropped by reachability).
    struct CountAndDrift {
        schema: AgentSchema,
    }

    impl CountAndDrift {
        fn new() -> Self {
            let schema = AgentSchema::builder("CountAndDrift")
                .effect("n", Combinator::Sum)
                .visibility(1.0)
                .reachability(0.5)
                .build()
                .unwrap();
            CountAndDrift { schema }
        }
    }

    impl Behavior for CountAndDrift {
        fn schema(&self) -> &AgentSchema {
            &self.schema
        }

        fn query(&self, _me: &Agent, _row: u32, nbrs: &Neighbors<'_>, eff: &mut EffectWriter<'_>, _rng: &mut DetRng) {
            for _ in nbrs.iter() {
                eff.local(FieldId::new(0), 1.0);
            }
        }

        fn update(&self, me: &mut Agent, _ctx: &mut UpdateCtx<'_>) {
            let n = me.effect(FieldId::new(0));
            me.pos.x += 0.1 * n;
        }
    }

    fn line_of_agents(schema: &AgentSchema, n: usize, gap: f64) -> Vec<Agent> {
        (0..n).map(|i| Agent::new(AgentId::new(i as u64), Vec2::new(i as f64 * gap, 0.0), schema)).collect()
    }

    #[test]
    fn neighbor_counts_are_correct() {
        let b = CountAndDrift::new();
        let agents = line_of_agents(b.schema(), 5, 0.9); // each sees adjacent only
        let mut exec = TickExecutor::new(b, agents, IndexKind::KdTree, 1);
        let tm = exec.step();
        assert_eq!(tm.n_agents, 5);
        // After the tick, agents moved: ends saw 1 neighbor (moved 0.1),
        // middles saw 2 (moved 0.2).
        let xs: Vec<f64> = exec.agents().iter().map(|a| a.pos.x).collect();
        assert!((xs[0] - 0.1).abs() < 1e-12);
        assert!((xs[1] - (0.9 + 0.2)).abs() < 1e-12);
        assert!((xs[4] - (3.6 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn all_index_kinds_agree() {
        let mk = || {
            let b = CountAndDrift::new();
            let agents = line_of_agents(b.schema(), 40, 0.3);
            TickExecutor::new(b, agents, IndexKind::KdTree, 7)
        };
        let mut kd = mk();
        let mut scan = TickExecutor::new(CountAndDrift::new(), line_of_agents(&CountAndDrift::new().schema, 40, 0.3), IndexKind::Scan, 7);
        let mut grid = TickExecutor::new(CountAndDrift::new(), line_of_agents(&CountAndDrift::new().schema, 40, 0.3), IndexKind::Grid, 7);
        for _ in 0..5 {
            kd.step();
            scan.step();
            grid.step();
        }
        let k: Vec<_> = kd.agents().iter().map(|a| a.pos).collect();
        let s: Vec<_> = scan.agents().iter().map(|a| a.pos).collect();
        let g: Vec<_> = grid.agents().iter().map(|a| a.pos).collect();
        assert_eq!(k, s);
        assert_eq!(k, g);
    }

    #[test]
    fn movement_cropped_to_reachability() {
        // One dense cluster: counts are large, drift would exceed 0.5.
        let b = CountAndDrift::new();
        let agents: Vec<Agent> = (0..20).map(|i| Agent::new(AgentId::new(i), Vec2::ZERO, b.schema())).collect();
        let mut exec = TickExecutor::new(b, agents, IndexKind::KdTree, 1);
        exec.step();
        for a in exec.agents() {
            assert!((a.pos.x - 0.5).abs() < 1e-12, "movement not cropped: {}", a.pos.x);
        }
    }

    #[test]
    fn effects_reset_between_ticks() {
        let b = CountAndDrift::new();
        let agents = line_of_agents(b.schema(), 3, 0.5);
        let mut exec = TickExecutor::new(b, agents, IndexKind::KdTree, 1);
        exec.step();
        for a in exec.agents() {
            assert_eq!(a.effects, vec![0.0], "effects must be identity after tick");
        }
    }

    /// Model that spawns one child per tick per agent at tick 0 and kills
    /// agents with odd ids at tick 1. Exercises spawn/kill handling.
    struct SpawnKill {
        schema: AgentSchema,
    }

    impl Behavior for SpawnKill {
        fn schema(&self) -> &AgentSchema {
            &self.schema
        }
        fn query(&self, _m: &Agent, _r: u32, _n: &Neighbors<'_>, _e: &mut EffectWriter<'_>, _rng: &mut DetRng) {}
        fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
            if ctx.tick == 0 {
                ctx.spawn(me.pos + Vec2::new(0.1, 0.0), vec![]);
            }
            if ctx.tick == 1 && me.id.raw() % 2 == 1 {
                me.alive = false;
            }
        }
    }

    #[test]
    fn spawn_and_kill_lifecycle() {
        let schema = AgentSchema::builder("SpawnKill").visibility(1.0).build().unwrap();
        let b = SpawnKill { schema };
        let agents: Vec<Agent> = (0..4).map(|i| Agent::new(AgentId::new(i), Vec2::new(i as f64, 0.0), b.schema())).collect();
        let mut exec = TickExecutor::new(b, agents, IndexKind::KdTree, 1);
        let tm0 = exec.step();
        assert_eq!(tm0.spawned, 4);
        assert_eq!(exec.agents().len(), 8);
        // Spawned ids continue above the original max.
        assert!(exec.agents().iter().any(|a| a.id.raw() >= 4));
        let tm1 = exec.step();
        assert!(tm1.killed > 0);
        assert!(exec.agents().iter().all(|a| a.alive));
    }

    #[test]
    fn determinism_same_seed_same_world() {
        let run = |seed| {
            let b = CountAndDrift::new();
            let agents = line_of_agents(b.schema(), 30, 0.4);
            let mut e = TickExecutor::new(b, agents, IndexKind::KdTree, seed);
            e.run(10);
            e.agents().iter().map(|a| (a.id, a.pos)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn metrics_accumulate() {
        let b = CountAndDrift::new();
        let agents = line_of_agents(b.schema(), 10, 0.4);
        let mut exec = TickExecutor::new(b, agents, IndexKind::KdTree, 1);
        exec.run(4);
        assert_eq!(exec.metrics().ticks, 4);
        assert_eq!(exec.metrics().agent_ticks, 40);
        exec.reset_metrics();
        assert_eq!(exec.metrics().ticks, 0);
        assert_eq!(exec.tick(), 4, "reset_metrics must not rewind the clock");
    }
}
