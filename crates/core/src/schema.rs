//! Agent schemas: the typed shape of an agent class.
//!
//! A schema declares the agent's *state* fields, its *effect* fields (each
//! with a [`Combinator`]) and the spatial constraints the BRASIL `#range`
//! tag expresses: a **visibility** bound (how far the agent can read or
//! assign effects, L∞) and a **reachability** bound (how far it can move in
//! one update). The runtime derives replication (from visibility) and
//! partitioning stability (from reachability) purely from the schema — the
//! paper's point that "everything in the language follows from the
//! state-effect pattern and neighborhood property".

use crate::combinator::Combinator;
use brace_common::{BraceError, FieldId, Result};
use serde::{Deserialize, Serialize};

/// Definition of one state field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateFieldDef {
    pub name: String,
}

/// Definition of one effect field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EffectFieldDef {
    pub name: String,
    pub combinator: Combinator,
}

/// The schema of an agent class. Construct through [`SchemaBuilder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentSchema {
    name: String,
    states: Vec<StateFieldDef>,
    effects: Vec<EffectFieldDef>,
    visibility: f64,
    reachability: f64,
    has_nonlocal_effects: bool,
}

impl AgentSchema {
    /// Start building a schema for class `name`.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            states: Vec::new(),
            effects: Vec::new(),
            visibility: f64::INFINITY,
            reachability: f64::INFINITY,
            has_nonlocal_effects: false,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    pub fn num_effects(&self) -> usize {
        self.effects.len()
    }

    pub fn state_defs(&self) -> &[StateFieldDef] {
        &self.states
    }

    pub fn effect_defs(&self) -> &[EffectFieldDef] {
        &self.effects
    }

    /// Resolve a state field by name.
    pub fn state_field(&self, name: &str) -> Option<FieldId> {
        self.states.iter().position(|f| f.name == name).map(|i| FieldId::new(i as u16))
    }

    /// Resolve an effect field by name.
    pub fn effect_field(&self, name: &str) -> Option<FieldId> {
        self.effects.iter().position(|f| f.name == name).map(|i| FieldId::new(i as u16))
    }

    /// Combinator of effect field `f`. Panics on out-of-range ids (an id can
    /// only come from this schema).
    #[inline]
    pub fn combinator(&self, f: FieldId) -> Combinator {
        self.effects[f.index()].combinator
    }

    /// The θ vector: one identity value per effect field; agents' effect
    /// slots are reset to this at tick boundaries.
    pub fn effect_identities(&self) -> Vec<f64> {
        self.effects.iter().map(|e| e.combinator.identity()).collect()
    }

    /// Visibility bound (L∞ half-extent of the visible region). Infinite
    /// when the class has no `#range` constraint — which disables the
    /// neighborhood optimizations but stays correct (everything is visible).
    pub fn visibility(&self) -> f64 {
        self.visibility
    }

    /// Reachability bound: maximum per-tick movement along either axis.
    pub fn reachability(&self) -> f64 {
        self.reachability
    }

    /// Whether the model performs non-local effect assignments, i.e. writes
    /// to effect fields of *other* agents. Decides between the single
    /// reduce pass (local only) and the map-reduce-reduce pipeline (§3.2).
    pub fn has_nonlocal_effects(&self) -> bool {
        self.has_nonlocal_effects
    }
}

/// Builder for [`AgentSchema`]; validates name uniqueness and bounds.
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    name: String,
    states: Vec<StateFieldDef>,
    effects: Vec<EffectFieldDef>,
    visibility: f64,
    reachability: f64,
    has_nonlocal_effects: bool,
}

impl SchemaBuilder {
    /// Add a state field.
    pub fn state(mut self, name: impl Into<String>) -> Self {
        self.states.push(StateFieldDef { name: name.into() });
        self
    }

    /// Add an effect field with its combinator.
    pub fn effect(mut self, name: impl Into<String>, combinator: Combinator) -> Self {
        self.effects.push(EffectFieldDef { name: name.into(), combinator });
        self
    }

    /// Set the visibility bound (L∞).
    pub fn visibility(mut self, vis: f64) -> Self {
        self.visibility = vis;
        self
    }

    /// Set the reachability bound (L∞ per tick).
    pub fn reachability(mut self, reach: f64) -> Self {
        self.reachability = reach;
        self
    }

    /// Declare that the model assigns effects to other agents.
    pub fn nonlocal_effects(mut self, yes: bool) -> Self {
        self.has_nonlocal_effects = yes;
        self
    }

    /// Validate and produce the schema.
    pub fn build(self) -> Result<AgentSchema> {
        let mut seen = std::collections::HashSet::new();
        for n in self.states.iter().map(|f| &f.name).chain(self.effects.iter().map(|f| &f.name)) {
            if !seen.insert(n.clone()) {
                return Err(BraceError::Schema(format!("duplicate field name `{n}`")));
            }
        }
        if self.visibility < 0.0 || self.visibility.is_nan() {
            return Err(BraceError::Schema("visibility must be non-negative".into()));
        }
        if self.reachability < 0.0 || self.reachability.is_nan() {
            return Err(BraceError::Schema("reachability must be non-negative".into()));
        }
        if self.states.len() > u16::MAX as usize || self.effects.len() > u16::MAX as usize {
            return Err(BraceError::Schema("too many fields".into()));
        }
        Ok(AgentSchema {
            name: self.name,
            states: self.states,
            effects: self.effects,
            visibility: self.visibility,
            reachability: self.reachability,
            has_nonlocal_effects: self.has_nonlocal_effects,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fish_schema() -> AgentSchema {
        AgentSchema::builder("Fish")
            .state("vx")
            .state("vy")
            .effect("avoidx", Combinator::Sum)
            .effect("avoidy", Combinator::Sum)
            .effect("count", Combinator::Sum)
            .visibility(1.0)
            .reachability(1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn field_resolution() {
        let s = fish_schema();
        assert_eq!(s.name(), "Fish");
        assert_eq!(s.num_states(), 2);
        assert_eq!(s.num_effects(), 3);
        assert_eq!(s.state_field("vx"), Some(FieldId::new(0)));
        assert_eq!(s.state_field("vy"), Some(FieldId::new(1)));
        assert_eq!(s.effect_field("count"), Some(FieldId::new(2)));
        assert_eq!(s.state_field("count"), None);
        assert_eq!(s.effect_field("vx"), None);
    }

    #[test]
    fn effect_identities_follow_combinators() {
        let s = AgentSchema::builder("T")
            .effect("a", Combinator::Sum)
            .effect("b", Combinator::Min)
            .effect("c", Combinator::Prod)
            .build()
            .unwrap();
        assert_eq!(s.effect_identities(), vec![0.0, f64::INFINITY, 1.0]);
        assert_eq!(s.combinator(FieldId::new(1)), Combinator::Min);
    }

    #[test]
    fn duplicate_names_rejected_across_kinds() {
        let err = AgentSchema::builder("T").state("x").effect("x", Combinator::Sum).build().unwrap_err();
        assert!(err.to_string().contains("duplicate field name `x`"));
    }

    #[test]
    fn negative_bounds_rejected() {
        assert!(AgentSchema::builder("T").visibility(-1.0).build().is_err());
        assert!(AgentSchema::builder("T").reachability(f64::NAN).build().is_err());
    }

    #[test]
    fn default_bounds_are_unbounded() {
        let s = AgentSchema::builder("T").build().unwrap();
        assert_eq!(s.visibility(), f64::INFINITY);
        assert_eq!(s.reachability(), f64::INFINITY);
        assert!(!s.has_nonlocal_effects());
    }

    #[test]
    fn nonlocal_flag_propagates() {
        let s = AgentSchema::builder("Shark").nonlocal_effects(true).build().unwrap();
        assert!(s.has_nonlocal_effects());
    }
}
