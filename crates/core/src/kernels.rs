//! Per-thread derived-column scratch for batched behaviors.
//!
//! A [`Behavior::query_batch`](crate::Behavior::query_batch) override
//! typically runs in two halves: a vectorizable per-candidate *map* (lane
//! kernels writing distances, unit directions, gaps — one derived column
//! per quantity, parallel to the gathered candidate columns) followed by an
//! ordered scalar *fold* that emits effects in canonical candidate order
//! (the bit-identity argument; see `brace_spatial::kernels`). The map needs
//! somewhere allocation-free to write: these reused per-thread columns.
//! They are deliberately anonymous (`a`/`b`/`c`) — each model kernel binds
//! its own meaning per probe, and no state survives between probes.

/// Three reusable derived-value columns — enough for the widest current
/// model kernel (fish: distance², unit-x, unit-y; traffic: offset, lead
/// gap, rear gap) — plus a dynamically-sized register pool for compiled
/// lane programs (BRASIL's mechanical kernel emission), whose register
/// count is decided at script-compile time, not here.
#[derive(Debug, Default)]
pub struct LaneScratch {
    pub a: Vec<f64>,
    pub b: Vec<f64>,
    pub c: Vec<f64>,
    pub cols: Vec<Vec<f64>>,
}

impl LaneScratch {
    /// Ensure at least `n` register columns exist and return them. Contents
    /// are stale; callers overwrite before reading, like `a`/`b`/`c`.
    pub fn ensure_cols(&mut self, n: usize) -> &mut [Vec<f64>] {
        while self.cols.len() < n {
            self.cols.push(Vec::new());
        }
        &mut self.cols[..n]
    }
}

brace_common::tls_scratch!(
    /// Run `f` with the thread's reusable [`LaneScratch`]. Not reentrant: a
    /// kernel must not invoke another kernel that also takes the scratch
    /// (no current model does — each probe maps, folds, and returns).
    pub fn with_lane_scratch -> LaneScratch
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_reused_across_calls() {
        with_lane_scratch(|s| {
            s.a.clear();
            s.a.resize(8, 1.5);
        });
        with_lane_scratch(|s| {
            // Same thread-local buffer: capacity persists, contents are the
            // caller's responsibility (every kernel resizes before writing).
            assert!(s.a.capacity() >= 8);
        });
    }
}
