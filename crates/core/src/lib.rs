//! # brace-core — the state-effect pattern and the single-node engine
//!
//! The paper observes (§2.1) that nearly all behavioral simulations share a
//! structure it calls the **state-effect pattern**: agent attributes divide
//! into *states* (public, frozen during a tick, updated only at tick
//! boundaries) and *effects* (write-only intermediate values aggregated by
//! decomposable, order-independent *combinator* functions). Each tick is a
//! **query phase** (read states / assign effects) followed by an **update
//! phase** (read own state + aggregated effects / write own next state).
//! Combined with the **neighborhood property** — agents only interact within
//! a bounded *visible region* and move within a bounded *reachable region* —
//! a tick becomes a spatial self-join that can be partitioned.
//!
//! This crate implements that model:
//!
//! * [`combinator`] — the ⊕ aggregate operators with their identities;
//! * [`schema`] — agent schemas: state fields, effect fields with
//!   combinators, visibility/reachability bounds;
//! * [`agent`] — the dynamic agent record `⟨oid, s, e⟩` of Appendix A,
//!   plus the struct-of-arrays [`AgentPool`] the executor runs on;
//! * [`behavior`] — the [`Behavior`] trait every model
//!   (hand-coded Rust or compiled BRASIL) implements, plus the
//!   [`Neighbors`] view and
//!   [`EffectWriter`] through which the query phase
//!   runs;
//! * [`effect`] — staged, order-independent effect aggregation;
//! * [`executor`] — the sharded tick executor (build index → query shards
//!   in parallel → deterministic merge → update), the unit the MapReduce
//!   runtime replicates per partition;
//! * [`engine`] — a high-level `Simulation` builder for single-node runs;
//! * [`metrics`] — per-tick timing and throughput accounting.
//!
//! This crate is the *engine* layer. User-facing entry points live one
//! level up in `brace_scenario`: a `Scenario` registry (every workload —
//! hand-coded or BRASIL-compiled — behind one trait) and a backend-erased
//! `Runner` that drives a `Simulation` or a `brace_mapreduce` cluster
//! through one facade, bit-identically.

pub mod agent;
pub mod behavior;
pub mod combinator;
pub mod effect;
pub mod engine;
pub mod executor;
pub mod kernels;
pub mod metrics;
pub mod schema;

pub use agent::{Agent, AgentPool, AgentRead, AgentRef, PoolView};
pub use behavior::{BatchScratch, Behavior, GatheredBatch, NeighborBatch, NeighborRef, Neighbors, UpdateCtx};
pub use combinator::Combinator;
pub use effect::{EffectTable, EffectWriter};
pub use engine::{Simulation, SimulationBuilder};
pub use executor::{IndexMaintenance, MaintainedIndex, PendingSpawn, QueryKernel, TickExecutor, TickScratch};
pub use metrics::{SimMetrics, TickMetrics};
pub use schema::{AgentSchema, SchemaBuilder};
