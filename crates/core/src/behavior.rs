//! The [`Behavior`] trait: what a simulation model is.
//!
//! A model supplies exactly the two phases of the state-effect pattern:
//!
//! * [`Behavior::query`] — runs once per owned agent per tick. It may read
//!   `me`'s state (an [`AgentRef`] row view over the
//!   [`AgentPool`](crate::agent::AgentPool)'s columns), iterate the agents
//!   in `me`'s visible region through [`Neighbors`], and assign effects
//!   through [`EffectWriter`]. It *cannot* mutate any state — enforced by
//!   the types: row views only hand out reads.
//! * [`Behavior::update`] — runs once per owned agent at the tick boundary.
//!   It receives a gathered row record (`&mut Agent`) whose effects hold
//!   the tick's aggregates; it may read state + effects and write next
//!   state (including the position, which the executor crops to the
//!   reachable region). It sees no other agent — also enforced by types.
//!
//! The same trait object drives the single-node executor and every reducer
//! of the distributed runtime, which is precisely the paper's claim that
//! programming the agent once suffices ("hides all the complexities of
//! modeling computations in MapReduce").

use crate::agent::{Agent, AgentRef, PoolView};
use crate::effect::EffectWriter;
use crate::schema::AgentSchema;
use brace_common::{DetRng, Rect, Vec2};

/// A reference to a visible neighbor: the row view (previous-tick state)
/// plus its row index in the visible set, which is how non-local effect
/// assignments address it.
#[derive(Clone, Copy)]
pub struct NeighborRef<'a> {
    /// Row in the tick's visible set / effect table.
    pub row: u32,
    /// The neighbor's frozen (previous-tick) columns.
    pub agent: AgentRef<'a>,
}

/// The visible neighborhood of one querying agent: the result of the
/// spatial-join probe, excluding the agent itself.
pub struct Neighbors<'a> {
    view: PoolView<'a>,
    candidates: &'a [u32],
    me: u32,
}

impl<'a> Neighbors<'a> {
    /// `view` is the partition's visible agent columns; `candidates` are
    /// row indices produced by the index probe (they may include `me`,
    /// which iteration skips).
    pub fn new(view: PoolView<'a>, candidates: &'a [u32], me: u32) -> Self {
        Neighbors { view, candidates, me }
    }

    /// Iterate the visible neighbors (self excluded).
    pub fn iter(&self) -> impl Iterator<Item = NeighborRef<'a>> + '_ {
        let me = self.me;
        let view = self.view;
        self.candidates
            .iter()
            .copied()
            .filter(move |&i| i != me)
            .map(move |i| NeighborRef { row: i, agent: view.agent(i) })
    }

    /// Upper bound on the neighbor count (candidates may include self).
    pub fn len_hint(&self) -> usize {
        self.candidates.len()
    }

    /// The nearest neighbor by Euclidean distance, if any. Linear in the
    /// candidate set — the candidates already come from an index probe.
    pub fn nearest(&self, to: Vec2) -> Option<NeighborRef<'a>> {
        self.iter().min_by(|a, b| a.agent.pos().dist2(to).total_cmp(&b.agent.pos().dist2(to)))
    }
}

/// Reusable gather columns backing one shard's [`NeighborBatch`]: candidate
/// positions and any state columns a batched behavior asks for, gathered
/// once per probe into flat, reused `f64` buffers so the lane kernels read
/// contiguous memory. Owned by the executor's per-shard scratch; behaviors
/// only ever see it through [`NeighborBatch::gather`].
#[derive(Debug, Default)]
pub struct BatchScratch {
    xs: Vec<f64>,
    ys: Vec<f64>,
    states: Vec<Vec<f64>>,
}

/// The candidate batch handed to [`Behavior::query_batch`]: the probe's
/// candidate rows (canonical order, possibly including `me`) plus the means
/// to materialize them as SoA columns. The default `query_batch` never
/// gathers — it falls back to the per-row [`Behavior::query`] through
/// [`NeighborBatch::neighbors`] at zero extra cost; batched behaviors call
/// [`NeighborBatch::gather`] and run lane kernels over the returned columns.
pub struct NeighborBatch<'a> {
    view: PoolView<'a>,
    rows: &'a [u32],
    me: u32,
    scratch: &'a mut BatchScratch,
}

impl<'a> NeighborBatch<'a> {
    /// `rows` are the probe's candidate row indices (they may include `me`,
    /// which batched emission loops must skip exactly like [`Neighbors`]).
    pub fn new(view: PoolView<'a>, rows: &'a [u32], me: u32, scratch: &'a mut BatchScratch) -> Self {
        NeighborBatch { view, rows, me, scratch }
    }

    /// Number of candidates (self included when the probe emitted it).
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The candidate rows, in canonical probe order.
    #[inline]
    pub fn rows(&self) -> &'a [u32] {
        self.rows
    }

    /// Row index of the querying agent (for self-exclusion).
    #[inline]
    pub fn me(&self) -> u32 {
        self.me
    }

    /// The per-row neighbor view over the same candidates — the default
    /// [`Behavior::query_batch`] fallback path.
    #[inline]
    pub fn neighbors(&self) -> Neighbors<'a> {
        Neighbors::new(self.view, self.rows, self.me)
    }

    /// Gather candidate positions and the requested state columns
    /// (`state_slots`, schema order) into the reused scratch columns and
    /// return them as a SoA view parallel to [`NeighborBatch::rows`]. The
    /// gather itself is the batched layer's only indexed access; everything
    /// downstream streams flat `f64` columns.
    pub fn gather(&mut self, state_slots: &[u16]) -> GatheredBatch<'_> {
        let s = &mut *self.scratch;
        s.xs.clear();
        s.xs.extend(self.rows.iter().map(|&r| self.view.xs[r as usize]));
        s.ys.clear();
        s.ys.extend(self.rows.iter().map(|&r| self.view.ys[r as usize]));
        while s.states.len() < state_slots.len() {
            s.states.push(Vec::new());
        }
        for (gathered, &slot) in s.states.iter_mut().zip(state_slots) {
            let col = &self.view.states[slot as usize];
            gathered.clear();
            gathered.extend(self.rows.iter().map(|&r| col[r as usize]));
        }
        GatheredBatch { rows: self.rows, me: self.me, xs: &s.xs, ys: &s.ys, states: &s.states[..state_slots.len()] }
    }
}

/// SoA view of a gathered candidate batch: coordinate and state columns
/// parallel to `rows`. All slices share one length ([`GatheredBatch::len`]).
pub struct GatheredBatch<'g> {
    /// Candidate rows, canonical probe order (may include `me`).
    pub rows: &'g [u32],
    /// Row index of the querying agent.
    pub me: u32,
    /// Candidate x coordinates.
    pub xs: &'g [f64],
    /// Candidate y coordinates.
    pub ys: &'g [f64],
    states: &'g [Vec<f64>],
}

impl GatheredBatch<'_> {
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The `i`-th gathered state column, in the order the slots were passed
    /// to [`NeighborBatch::gather`].
    #[inline]
    pub fn state(&self, i: usize) -> &[f64] {
        &self.states[i]
    }
}

/// Context for the update phase: the tick number, a deterministic per-agent
/// RNG stream, and the spawn queue (agents created this tick enter the
/// simulation at the next tick, with ids assigned by the executor).
pub struct UpdateCtx<'a> {
    /// Tick being completed.
    pub tick: u64,
    /// Per-agent, per-tick RNG stream: identical regardless of worker
    /// placement or iteration order.
    pub rng: DetRng,
    spawns: &'a mut Vec<(Vec2, Vec<f64>)>,
}

impl<'a> UpdateCtx<'a> {
    pub fn new(tick: u64, rng: DetRng, spawns: &'a mut Vec<(Vec2, Vec<f64>)>) -> Self {
        UpdateCtx { tick, rng, spawns }
    }

    /// Queue a new agent at `pos` with the given initial state vector. The
    /// executor materializes it with a fresh id after the update phase.
    pub fn spawn(&mut self, pos: Vec2, state: Vec<f64>) {
        self.spawns.push((pos, state));
    }

    /// Number of spawns queued so far (by all agents this tick).
    pub fn queued_spawns(&self) -> usize {
        self.spawns.len()
    }
}

/// How the engine materializes a behavior's neighborhood each tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NeighborProbe {
    /// Orthogonal range query over the visible region — the paper's
    /// compiled form of a BRASIL `foreach` under `#range` (default).
    #[default]
    Range,
    /// The `k` nearest agents (Euclidean), cropped to the visible region —
    /// the paper's nearest-neighbor-indexing extension ("planned future
    /// work" in §5.2, needed for parity with MITSIM's hand-coded lookup).
    /// Correctness note: candidates beyond the schema's visibility bound
    /// are filtered out, because the distributed runtime replicates only
    /// the visible region — k-NN cannot see further than `#range` allows.
    Nearest(usize),
}

/// A simulation model: the query and update phases over a fixed schema.
/// Minimum per-candidate kernel cost — in analyzer ALU-op units (cheap
/// arithmetic and compares 1, divides and square roots 8, transcendentals
/// 16; the BRASIL analyzer's `expr_cost` scale) — at which a batched lane
/// kernel pays for its candidate gather. One threshold governs every
/// behavior: the BRASIL compiler scores its generated lane programs
/// against it, and the hand-coded models score their hand-written kernels
/// on the same scale through [`batch_engaged`]. Calibrated on the
/// reference container: fish's force math (sqrt, divide, distance terms)
/// engages; traffic's three-subtraction gap scan (measured ≈0.75× batched)
/// and the predator's subtract-multiply bite scan do not.
pub const BATCH_COST_THRESHOLD: u32 = 10;

/// The one batch-engagement rule: run the lane kernel when the estimated
/// per-candidate cost reaches [`BATCH_COST_THRESHOLD`], unless the caller
/// pins the decision. Pure scheduling policy — the scalar and batched
/// query paths are bit-identical by contract — so overrides exist for
/// conformance tests and bench ablations, never for correctness.
pub fn batch_engaged(per_candidate_cost: u32, engagement_override: Option<bool>) -> bool {
    engagement_override.unwrap_or(per_candidate_cost >= BATCH_COST_THRESHOLD)
}

pub trait Behavior: Send + Sync {
    /// The agent schema this behavior operates on. The executor shapes
    /// agents, effect tables and replication from it; it must not change
    /// between calls.
    fn schema(&self) -> &AgentSchema;

    /// Neighborhood materialization (default: range query).
    fn probe(&self) -> NeighborProbe {
        NeighborProbe::Range
    }

    /// The rect handed to the spatial index for a [`NeighborProbe::Range`]
    /// probe centered on `pos` with visibility bound `vis`. The default is
    /// the full visibility square; a behavior that can *prove* its query
    /// ignores part of that square (BRASIL's visibility-predicate pushdown)
    /// may return a tighter rect so the index does the filtering. Contract:
    /// the returned rect must contain every candidate whose inclusion can
    /// change any observable result — shrinking it is an optimization,
    /// never a semantic change, and replica shipping still covers the full
    /// visibility region on every backend.
    fn probe_rect(&self, pos: Vec2, vis: f64) -> Rect {
        Rect::centered(pos, vis)
    }

    /// Query phase for one agent. `me` is the querying agent's row view
    /// (`me.row` addresses it in the effect table); `rng` is a
    /// deterministic stream derived from `(seed, agent id, tick)`.
    fn query(&self, me: AgentRef<'_>, neighbors: &Neighbors<'_>, eff: &mut EffectWriter<'_>, rng: &mut DetRng);

    /// Whether the executor's batched mode should route this behavior
    /// through [`Behavior::query_batch`] (`true`, the default) or keep the
    /// per-row [`Behavior::query`]. Pure scheduling policy, never
    /// semantics — the two paths are bit-identical by contract — mirroring
    /// `SpatialIndex::RANGE_BATCH_NATIVE` on the index side: a batched
    /// kernel pays a gather pass over every candidate, which only
    /// amortizes when the per-candidate map is expensive enough. Behaviors
    /// with a cost estimate for their per-candidate kernel should decide
    /// through [`batch_engaged`], the one engagement rule shared by the
    /// BRASIL compiler's lane programs and the hand-coded models.
    fn batch_profitable(&self) -> bool {
        true
    }

    /// Batched query phase for one agent: the same contract as
    /// [`Behavior::query`], but over a [`NeighborBatch`] whose candidates
    /// can be gathered into SoA columns for lane kernels. Overrides **must
    /// be bit-identical** to `query` — the executor treats the two as
    /// interchangeable (its `QueryKernel` ablation knob runs either), and
    /// the kernel conformance properties in `tests/properties.rs` enforce
    /// the equivalence. The default gathers nothing and falls back to the
    /// per-row path.
    fn query_batch(
        &self,
        me: AgentRef<'_>,
        batch: &mut NeighborBatch<'_>,
        eff: &mut EffectWriter<'_>,
        rng: &mut DetRng,
    ) {
        self.query(me, &batch.neighbors(), eff, rng)
    }

    /// Update phase for one agent: consume `me.effects`, write `me.state` /
    /// `me.pos` (cropped to reachability by the executor), optionally kill
    /// (`me.alive = false`) or spawn (`ctx.spawn`).
    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>);
}

/// Blanket impl so `Arc<B>` / `Box<B>` / `&B` are behaviors too — the
/// runtime shares one behavior across worker threads via `Arc`.
impl<B: Behavior + ?Sized> Behavior for &B {
    fn schema(&self) -> &AgentSchema {
        (**self).schema()
    }
    fn probe(&self) -> NeighborProbe {
        (**self).probe()
    }
    fn probe_rect(&self, pos: Vec2, vis: f64) -> Rect {
        (**self).probe_rect(pos, vis)
    }
    fn query(&self, me: AgentRef<'_>, neighbors: &Neighbors<'_>, eff: &mut EffectWriter<'_>, rng: &mut DetRng) {
        (**self).query(me, neighbors, eff, rng)
    }
    fn batch_profitable(&self) -> bool {
        (**self).batch_profitable()
    }
    fn query_batch(
        &self,
        me: AgentRef<'_>,
        batch: &mut NeighborBatch<'_>,
        eff: &mut EffectWriter<'_>,
        rng: &mut DetRng,
    ) {
        (**self).query_batch(me, batch, eff, rng)
    }
    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        (**self).update(me, ctx)
    }
}

impl<B: Behavior + ?Sized> Behavior for std::sync::Arc<B> {
    fn schema(&self) -> &AgentSchema {
        (**self).schema()
    }
    fn probe(&self) -> NeighborProbe {
        (**self).probe()
    }
    fn probe_rect(&self, pos: Vec2, vis: f64) -> Rect {
        (**self).probe_rect(pos, vis)
    }
    fn query(&self, me: AgentRef<'_>, neighbors: &Neighbors<'_>, eff: &mut EffectWriter<'_>, rng: &mut DetRng) {
        (**self).query(me, neighbors, eff, rng)
    }
    fn batch_profitable(&self) -> bool {
        (**self).batch_profitable()
    }
    fn query_batch(
        &self,
        me: AgentRef<'_>,
        batch: &mut NeighborBatch<'_>,
        eff: &mut EffectWriter<'_>,
        rng: &mut DetRng,
    ) {
        (**self).query_batch(me, batch, eff, rng)
    }
    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        (**self).update(me, ctx)
    }
}

impl<B: Behavior + ?Sized> Behavior for Box<B> {
    fn schema(&self) -> &AgentSchema {
        (**self).schema()
    }
    fn probe(&self) -> NeighborProbe {
        (**self).probe()
    }
    fn probe_rect(&self, pos: Vec2, vis: f64) -> Rect {
        (**self).probe_rect(pos, vis)
    }
    fn query(&self, me: AgentRef<'_>, neighbors: &Neighbors<'_>, eff: &mut EffectWriter<'_>, rng: &mut DetRng) {
        (**self).query(me, neighbors, eff, rng)
    }
    fn batch_profitable(&self) -> bool {
        (**self).batch_profitable()
    }
    fn query_batch(
        &self,
        me: AgentRef<'_>,
        batch: &mut NeighborBatch<'_>,
        eff: &mut EffectWriter<'_>,
        rng: &mut DetRng,
    ) {
        (**self).query_batch(me, batch, eff, rng)
    }
    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        (**self).update(me, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentPool;
    use crate::combinator::Combinator;
    use brace_common::AgentId;

    fn schema() -> AgentSchema {
        AgentSchema::builder("T").effect("n", Combinator::Sum).build().unwrap()
    }

    fn pool(schema: &AgentSchema) -> AgentPool {
        let agents: Vec<Agent> =
            (0..4).map(|i| Agent::new(AgentId::new(i), Vec2::new(i as f64, 0.0), schema)).collect();
        AgentPool::from_agents(schema, &agents)
    }

    #[test]
    fn neighbors_exclude_self() {
        let s = schema();
        let p = pool(&s);
        let cands = [0u32, 1, 2, 3];
        let n = Neighbors::new(p.view(), &cands, 2);
        let rows: Vec<u32> = n.iter().map(|r| r.row).collect();
        assert_eq!(rows, vec![0, 1, 3]);
        assert_eq!(n.len_hint(), 4);
    }

    #[test]
    fn neighbors_nearest() {
        let s = schema();
        let p = pool(&s);
        let cands = [0u32, 1, 2, 3];
        let n = Neighbors::new(p.view(), &cands, 0);
        let near = n.nearest(Vec2::new(0.0, 0.0)).unwrap();
        assert_eq!(near.row, 1);
        // Empty candidate set -> None.
        let empty = Neighbors::new(p.view(), &[], 0);
        assert!(empty.nearest(Vec2::ZERO).is_none());
    }

    #[test]
    fn update_ctx_spawn_queues() {
        let mut spawns = Vec::new();
        let mut ctx = UpdateCtx::new(3, DetRng::seed_from_u64(1), &mut spawns);
        assert_eq!(ctx.tick, 3);
        ctx.spawn(Vec2::new(1.0, 1.0), vec![0.5]);
        assert_eq!(ctx.queued_spawns(), 1);
        let _ = ctx;
        assert_eq!(spawns.len(), 1);
        assert_eq!(spawns[0].0, Vec2::new(1.0, 1.0));
    }
}
