//! Tick and run metrics.
//!
//! The paper reports *total simulation time* for single-node experiments
//! (Figures 3, 4) and *agent-ticks per second* for cluster experiments
//! (Figures 5–7), discarding start-up transients. [`SimMetrics`] collects
//! exactly what those harnesses need, with per-phase breakdowns for the
//! ablation benchmarks.

use brace_common::Welford;
use serde::{Deserialize, Serialize};

/// Timing and counters for one executed tick.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TickMetrics {
    pub tick: u64,
    /// Agents processed (owned agents at the start of the tick).
    pub n_agents: usize,
    /// Nanoseconds spent building the spatial index.
    pub index_build_ns: u64,
    /// Nanoseconds spent in the query phase (probes + behavior queries +
    /// the shard effect-table merge).
    pub query_ns: u64,
    /// Nanoseconds of `query_ns` spent ⊕-merging shard effect tables into
    /// the pool's effect columns (a subset, not an additional phase —
    /// `total_ns` must not count it twice).
    pub merge_ns: u64,
    /// Nanoseconds spent in the update phase.
    pub update_ns: u64,
    /// Total neighbor candidates visited across all probes (the join's
    /// output cardinality plus index false positives).
    pub neighbor_visits: u64,
    /// Non-local effect writes performed.
    pub nonlocal_writes: u64,
    pub spawned: usize,
    pub killed: usize,
}

impl TickMetrics {
    pub fn total_ns(&self) -> u64 {
        self.index_build_ns + self.query_ns + self.update_ns
    }
}

/// Accumulated metrics over a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimMetrics {
    pub ticks: u64,
    pub agent_ticks: u64,
    pub total_ns: u64,
    pub index_build_ns: u64,
    pub query_ns: u64,
    /// Shard effect-table merge time (a subset of `query_ns`).
    pub merge_ns: u64,
    pub update_ns: u64,
    pub neighbor_visits: u64,
    pub nonlocal_writes: u64,
    pub spawned: u64,
    pub killed: u64,
    /// Distribution of per-tick wall time (for the Fig. 8 epoch-time view).
    pub tick_time: Welford,
    /// Most recent tick, for probes/diagnostics.
    pub last: Option<TickMetrics>,
}

impl SimMetrics {
    pub fn record(&mut self, tm: TickMetrics) {
        self.ticks += 1;
        self.agent_ticks += tm.n_agents as u64;
        self.total_ns += tm.total_ns();
        self.index_build_ns += tm.index_build_ns;
        self.query_ns += tm.query_ns;
        self.merge_ns += tm.merge_ns;
        self.update_ns += tm.update_ns;
        self.neighbor_visits += tm.neighbor_visits;
        self.nonlocal_writes += tm.nonlocal_writes;
        self.spawned += tm.spawned as u64;
        self.killed += tm.killed as u64;
        self.tick_time.push(tm.total_ns() as f64);
        self.last = Some(tm);
    }

    /// Merge metrics from another executor (per-worker → per-run roll-up).
    pub fn merge(&mut self, other: &SimMetrics) {
        self.ticks = self.ticks.max(other.ticks);
        self.agent_ticks += other.agent_ticks;
        self.total_ns += other.total_ns;
        self.index_build_ns += other.index_build_ns;
        self.query_ns += other.query_ns;
        self.merge_ns += other.merge_ns;
        self.update_ns += other.update_ns;
        self.neighbor_visits += other.neighbor_visits;
        self.nonlocal_writes += other.nonlocal_writes;
        self.spawned += other.spawned;
        self.killed += other.killed;
        self.tick_time.merge(&other.tick_time);
    }

    /// Agent-ticks per second of accumulated executor time. For wall-clock
    /// throughput across parallel workers use the harness's own wall timer;
    /// this figure is the single-thread-equivalent rate.
    pub fn throughput(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.agent_ticks as f64 / (self.total_ns as f64 / 1e9)
    }

    /// Total time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Forget everything (used to discard start-up transients, as the
    /// paper does: "we eliminate start-up transients by discarding initial
    /// ticks until a stable tick rate is achieved").
    pub fn reset(&mut self) {
        *self = SimMetrics::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tm(tick: u64, agents: usize, q: u64, u: u64) -> TickMetrics {
        TickMetrics { tick, n_agents: agents, query_ns: q, update_ns: u, ..Default::default() }
    }

    #[test]
    fn record_accumulates() {
        let mut m = SimMetrics::default();
        m.record(tm(0, 10, 100, 50));
        m.record(tm(1, 12, 200, 60));
        assert_eq!(m.ticks, 2);
        assert_eq!(m.agent_ticks, 22);
        assert_eq!(m.total_ns, 410);
        assert_eq!(m.query_ns, 300);
        assert_eq!(m.last.as_ref().unwrap().tick, 1);
    }

    #[test]
    fn throughput_uses_agent_ticks() {
        let mut m = SimMetrics::default();
        m.record(TickMetrics { n_agents: 1000, query_ns: 500_000_000, ..Default::default() });
        // 1000 agent-ticks in 0.5 s -> 2000/s.
        assert!((m.throughput() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears() {
        let mut m = SimMetrics::default();
        m.record(tm(0, 5, 10, 10));
        m.reset();
        assert_eq!(m.ticks, 0);
        assert_eq!(m.throughput(), 0.0);
        assert!(m.last.is_none());
    }

    #[test]
    fn merge_sums_work_and_keeps_max_ticks() {
        let mut a = SimMetrics::default();
        a.record(tm(0, 5, 10, 5));
        let mut b = SimMetrics::default();
        b.record(tm(0, 7, 20, 5));
        b.record(tm(1, 7, 20, 5));
        a.merge(&b);
        assert_eq!(a.ticks, 2);
        assert_eq!(a.agent_ticks, 5 + 14);
        assert_eq!(a.query_ns, 50);
    }
}
