//! # brace-telemetry — zero-cost-when-off observability for BRACE
//!
//! The paper's BSP tick loop (map₁/query → shuffle → map₂/update) is
//! exactly the structure worth *seeing*: per-phase wall time, candidate
//! volumes, per-traffic-class replica bytes and barrier stalls are the
//! quantities that decide every optimisation in the paper's evaluation.
//! This crate is the one place they are recorded:
//!
//! * a **static registry** of metrics — monotonic [`Counter`]s, [`Gauge`]s
//!   and log₂-bucketed [`Hist`]ograms — held in fixed arrays of
//!   `AtomicU64`, so recording is one relaxed `fetch_add` with no locks,
//!   no allocation and no labels to hash;
//! * a copyable [`Telemetry`] handle that components capture **once** at
//!   construction. The handle is an `Option<&'static Registry>`: when
//!   telemetry is disabled it is `None`, and every recording call is a
//!   single predictable branch that touches **no atomics and no clock** —
//!   the off path costs nothing measurable (pinned by the bench ablation);
//! * a scoped [`PhaseTimer`] for the tick loop: started through the
//!   handle, it reads the clock only when enabled and records elapsed
//!   nanoseconds into a histogram on drop;
//! * a Prometheus **text-format v0.0.4** renderer
//!   ([`render_prometheus`]) that `brace-serve` exposes as
//!   `GET /metrics`.
//!
//! ## Determinism contract
//!
//! Telemetry observes, never perturbs: nothing recorded here feeds back
//! into simulation state, RNG streams, shard plans or iteration order, so
//! every golden checksum and conformance form is bit-identical with
//! telemetry on and off (`tests/telemetry_equivalence.rs` pins this
//! across the whole scenario registry, single-node and cluster).
//!
//! ## The metric catalogue
//!
//! | family | kind | source |
//! |---|---|---|
//! | `brace_phase_index_maintain_ns` | histogram | executor: index sync/rebuild |
//! | `brace_phase_query_ns` | histogram | executor: query phase (incl. merge) |
//! | `brace_phase_effect_merge_ns` | histogram | executor: shard-table ⊕-merge |
//! | `brace_phase_update_ns` | histogram | executor: update phase |
//! | `brace_epoch_barrier_wait_ns` | histogram | cluster worker: epoch wall − busy |
//! | `brace_checkpoint_write_ns` | histogram | cluster master: checkpoint store |
//! | `brace_serve_run_latency_ns` | histogram | serve: accepted-run wall time |
//! | `brace_executor_ticks_total` … | counter | executor per-tick counters |
//! | `brace_net_*_bytes_total` | counter | cluster `NetLedger`, per traffic class |
//! | `brace_cluster_epochs_total`, `brace_cluster_checkpoints_total` | counter | cluster master |
//! | `brace_serve_cache_{hits,misses}_total`, `brace_serve_runs_total` | counter | serve result cache / admissions |
//! | `brace_serve_queue_depth` | gauge | serve admission queue (set at scrape) |

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic counters. The discriminant is the registry slot; `NAMES`
/// (kept in lockstep) carries the Prometheus family name and help line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    ExecutorTicks = 0,
    ExecutorNeighborVisits,
    ExecutorNonlocalWrites,
    ExecutorSpawned,
    ExecutorKilled,
    NetTransferBytes,
    NetReplicaFullBytes,
    NetReplicaDeltaBytes,
    NetEffectsBytes,
    NetSpawnsBytes,
    NetControlBytes,
    ClusterEpochs,
    ClusterCheckpoints,
    ServeRuns,
    ServeCacheHits,
    ServeCacheMisses,
}

const COUNTER_NAMES: &[(&str, &str)] = &[
    ("brace_executor_ticks_total", "Ticks executed by single-node tick executors"),
    ("brace_executor_neighbor_visits_total", "Neighbor candidates visited across all query probes"),
    ("brace_executor_nonlocal_writes_total", "Non-local effect writes performed in query phases"),
    ("brace_executor_spawned_total", "Agents spawned by update phases"),
    ("brace_executor_killed_total", "Agents killed by update phases"),
    ("brace_net_transfer_bytes_total", "Cluster bytes: agent ownership transfers"),
    ("brace_net_replica_full_bytes_total", "Cluster bytes: full replica distribution"),
    ("brace_net_replica_delta_bytes_total", "Cluster bytes: masked columnar replica deltas"),
    ("brace_net_effects_bytes_total", "Cluster bytes: shipped partial effect aggregates"),
    ("brace_net_spawns_bytes_total", "Cluster bytes: spawn-run exchange"),
    ("brace_net_control_bytes_total", "Cluster bytes: master control traffic"),
    ("brace_cluster_epochs_total", "Cluster epochs coordinated by masters"),
    ("brace_cluster_checkpoints_total", "Coordinated cluster checkpoints written"),
    ("brace_serve_runs_total", "Runs accepted by the serve control plane"),
    ("brace_serve_cache_hits_total", "Serve result-cache hits"),
    ("brace_serve_cache_misses_total", "Serve result-cache misses"),
];

/// Instantaneous gauges (last-set-wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    ServeQueueDepth = 0,
}

const GAUGE_NAMES: &[(&str, &str)] = &[("brace_serve_queue_depth", "Jobs waiting in the serve admission queue")];

/// Log₂-bucketed histograms. All record **nanoseconds**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistId {
    PhaseIndexMaintain = 0,
    PhaseQuery,
    PhaseEffectMerge,
    PhaseUpdate,
    EpochBarrierWait,
    CheckpointWrite,
    ServeRunLatency,
}

const HIST_NAMES: &[(&str, &str)] = &[
    ("brace_phase_index_maintain_ns", "Per-tick spatial index maintain/rebuild time"),
    ("brace_phase_query_ns", "Per-tick query phase time (probes, behavior queries, shard merge)"),
    ("brace_phase_effect_merge_ns", "Per-tick shard effect-table merge time"),
    ("brace_phase_update_ns", "Per-tick update phase time"),
    ("brace_epoch_barrier_wait_ns", "Per-epoch worker barrier wait (epoch wall time minus busy time)"),
    ("brace_checkpoint_write_ns", "Coordinated checkpoint write time"),
    ("brace_serve_run_latency_ns", "Wall time of accepted (non-cached) serve runs"),
];

const N_COUNTERS: usize = COUNTER_NAMES.len();
const N_GAUGES: usize = GAUGE_NAMES.len();
const N_HISTS: usize = HIST_NAMES.len();

/// Finite histogram buckets: upper bounds `2^0 .. 2^(N_BUCKETS-2)` ns, then
/// `+Inf`. 40 finite buckets reach 2³⁹ ns ≈ 9 minutes — far beyond any
/// single phase this records.
const N_BUCKETS: usize = 41;

/// One log₂ histogram: per-bucket counts (not cumulative — the renderer
/// accumulates), plus sum and count for the Prometheus `_sum`/`_count`
/// series.
pub struct Hist {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Hist {
    const fn new() -> Hist {
        Hist { buckets: [const { AtomicU64::new(0) }; N_BUCKETS], sum: AtomicU64::new(0), count: AtomicU64::new(0) }
    }

    /// Index of the smallest bucket whose upper bound holds `v`:
    /// `le = 2^i` with minimal `i` such that `v ≤ 2^i`, capped at `+Inf`.
    #[inline]
    fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros() as usize).min(N_BUCKETS - 1)
        }
    }

    #[inline]
    fn observe(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// The static metric registry: every family lives here, at a fixed slot,
/// for the whole process lifetime. There is exactly one ([`Telemetry`]
/// handles either point at it or at nothing).
pub struct Registry {
    counters: [AtomicU64; N_COUNTERS],
    gauges: [AtomicU64; N_GAUGES],
    hists: [Hist; N_HISTS],
}

static REGISTRY: Registry = Registry {
    counters: [const { AtomicU64::new(0) }; N_COUNTERS],
    gauges: [const { AtomicU64::new(0) }; N_GAUGES],
    hists: [const { Hist::new() }; N_HISTS],
};

/// The global enable flag. Read **once** per [`Telemetry::current`] call —
/// never on the per-record path, which is what makes the off path free.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn recording on or off process-wide. Handles captured **after** the
/// change observe it; handles captured before keep their state (components
/// capture at construction, so flip this before building what you want to
/// observe).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Current state of the global enable flag.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Zero every metric (tests and bench ablations; production never resets).
pub fn reset() {
    for c in &REGISTRY.counters {
        c.store(0, Ordering::Relaxed);
    }
    for g in &REGISTRY.gauges {
        g.store(0, Ordering::Relaxed);
    }
    for h in &REGISTRY.hists {
        h.reset();
    }
}

/// The recording handle: a copyable `Option<&'static Registry>`. Capture
/// one at component construction ([`Telemetry::current`]); every recording
/// method is a single branch on the option — when disabled, no atomic is
/// touched and no clock is read.
#[derive(Clone, Copy)]
pub struct Telemetry {
    inner: Option<&'static Registry>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::current()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.inner.is_some()).finish()
    }
}

impl Telemetry {
    /// A permanently-disabled handle (`const`, for defaults).
    pub const fn off() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A handle bound to the current state of the global flag: recording if
    /// telemetry is enabled **now**, a no-op handle otherwise.
    pub fn current() -> Telemetry {
        if ENABLED.load(Ordering::Relaxed) {
            Telemetry { inner: Some(&REGISTRY) }
        } else {
            Telemetry { inner: None }
        }
    }

    /// Is this handle recording?
    #[inline]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `v` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, v: u64) {
        if let Some(r) = self.inner {
            r.counters[c as usize].fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Set a gauge to `v` (last write wins).
    #[inline]
    pub fn gauge_set(&self, g: Gauge, v: u64) {
        if let Some(r) = self.inner {
            r.gauges[g as usize].store(v, Ordering::Relaxed);
        }
    }

    /// Record one observation (nanoseconds) into a histogram.
    #[inline]
    pub fn observe(&self, h: HistId, v: u64) {
        if let Some(r) = self.inner {
            r.hists[h as usize].observe(v);
        }
    }

    /// Start a scoped phase timer that records into `h` on drop. When the
    /// handle is off the timer never reads the clock.
    #[inline]
    pub fn timer(&self, h: HistId) -> PhaseTimer {
        PhaseTimer { tel: *self, hist: h, start: self.inner.map(|_| Instant::now()) }
    }
}

/// Scoped timer for one phase of the tick loop: created through
/// [`Telemetry::timer`], records elapsed nanoseconds into its histogram
/// when dropped. On a disabled handle it holds no start time and drops for
/// free.
pub struct PhaseTimer {
    tel: Telemetry,
    hist: HistId,
    start: Option<Instant>,
}

impl PhaseTimer {
    /// Stop and record now (drop does the same; this names the intent).
    pub fn stop(self) {}
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.tel.observe(self.hist, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Render every registered family as Prometheus text exposition format
/// v0.0.4. Families render unconditionally (a zero counter is still a
/// family), so scrapers see a stable catalogue from the first scrape.
/// Histogram buckets are emitted cumulatively with `le` labels, closed by
/// `+Inf`, `_sum` and `_count`, per the format spec.
pub fn render_prometheus() -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(8192);
    for (i, (name, help)) in COUNTER_NAMES.iter().enumerate() {
        let v = REGISTRY.counters[i].load(Ordering::Relaxed);
        let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} counter\n{name} {v}");
    }
    for (i, (name, help)) in GAUGE_NAMES.iter().enumerate() {
        let v = REGISTRY.gauges[i].load(Ordering::Relaxed);
        let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}");
    }
    for (i, (name, help)) in HIST_NAMES.iter().enumerate() {
        let h = &REGISTRY.hists[i];
        let _ = writeln!(out, "# HELP {name} {help}\n# TYPE {name} histogram");
        let mut cum = 0u64;
        for (b, bucket) in h.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            if b == N_BUCKETS - 1 {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            } else {
                let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", 1u64 << b);
            }
        }
        let _ = writeln!(out, "{name}_sum {}", h.sum.load(Ordering::Relaxed));
        let _ = writeln!(out, "{name}_count {}", h.count.load(Ordering::Relaxed));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The process-global flag is shared by every test in this binary, so
    /// tests that flip it serialize behind one mutex and restore the prior
    /// state on drop.
    struct FlagGuard {
        was: bool,
        _lock: std::sync::MutexGuard<'static, ()>,
    }

    static FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn enable_for_test() -> FlagGuard {
        let lock = FLAG_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let was = enabled();
        set_enabled(true);
        reset();
        FlagGuard { was, _lock: lock }
    }

    impl Drop for FlagGuard {
        fn drop(&mut self) {
            reset();
            set_enabled(self.was);
        }
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // le bounds are 1, 2, 4, …: a value lands in the smallest bucket
        // whose bound holds it, exactly at the boundary included.
        assert_eq!(Hist::bucket_index(0), 0);
        assert_eq!(Hist::bucket_index(1), 0);
        assert_eq!(Hist::bucket_index(2), 1);
        assert_eq!(Hist::bucket_index(3), 2);
        assert_eq!(Hist::bucket_index(4), 2);
        assert_eq!(Hist::bucket_index(5), 3);
        assert_eq!(Hist::bucket_index(8), 3);
        assert_eq!(Hist::bucket_index(9), 4);
        for i in 0..N_BUCKETS - 1 {
            let bound = 1u64 << i;
            assert_eq!(Hist::bucket_index(bound), i, "2^{i} must land in its own bucket");
            if bound > 1 {
                assert_eq!(Hist::bucket_index(bound + 1), i + 1, "2^{i}+1 must spill to the next");
            }
        }
        // Beyond the largest finite bound: the +Inf bucket.
        assert_eq!(Hist::bucket_index(u64::MAX), N_BUCKETS - 1);
        assert_eq!(Hist::bucket_index(1u64 << (N_BUCKETS - 1)), N_BUCKETS - 1);
    }

    #[test]
    fn off_handle_records_nothing() {
        let _g = enable_for_test();
        let off = Telemetry::off();
        off.incr(Counter::ExecutorTicks);
        off.observe(HistId::PhaseQuery, 123);
        off.gauge_set(Gauge::ServeQueueDepth, 9);
        let t = off.timer(HistId::PhaseUpdate);
        assert!(t.start.is_none(), "off timers must not read the clock");
        drop(t);
        let text = render_prometheus();
        assert!(text.contains("brace_executor_ticks_total 0"), "{text}");
        assert!(text.contains("brace_phase_query_ns_count 0"), "{text}");
    }

    #[test]
    fn on_handle_counts_and_renders() {
        let _g = enable_for_test();
        let tel = Telemetry::current();
        assert!(tel.is_on());
        tel.add(Counter::NetEffectsBytes, 640);
        tel.incr(Counter::ServeCacheHits);
        tel.gauge_set(Gauge::ServeQueueDepth, 3);
        tel.observe(HistId::PhaseQuery, 5); // bucket le=8
        tel.observe(HistId::PhaseQuery, 8); // same bucket
        tel.observe(HistId::PhaseQuery, 9); // le=16
        let text = render_prometheus();
        assert!(text.contains("brace_net_effects_bytes_total 640"), "{text}");
        assert!(text.contains("brace_serve_cache_hits_total 1"), "{text}");
        assert!(text.contains("brace_serve_queue_depth 3"), "{text}");
        // Cumulative buckets: ≤4 none, ≤8 two, ≤16 all three.
        assert!(text.contains("brace_phase_query_ns_bucket{le=\"4\"} 0"), "{text}");
        assert!(text.contains("brace_phase_query_ns_bucket{le=\"8\"} 2"), "{text}");
        assert!(text.contains("brace_phase_query_ns_bucket{le=\"16\"} 3"), "{text}");
        assert!(text.contains("brace_phase_query_ns_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("brace_phase_query_ns_sum 22"), "{text}");
        assert!(text.contains("brace_phase_query_ns_count 3"), "{text}");
    }

    #[test]
    fn phase_timer_records_on_drop() {
        let _g = enable_for_test();
        let tel = Telemetry::current();
        tel.timer(HistId::CheckpointWrite).stop();
        {
            let _t = tel.timer(HistId::CheckpointWrite);
        }
        let text = render_prometheus();
        assert!(text.contains("brace_checkpoint_write_ns_count 2"), "{text}");
    }

    #[test]
    fn every_family_renders_with_help_and_type() {
        let _g = enable_for_test();
        let text = render_prometheus();
        for (name, _) in COUNTER_NAMES.iter().chain(GAUGE_NAMES).chain(HIST_NAMES) {
            assert!(text.contains(&format!("# HELP {name} ")), "missing HELP for {name}");
            assert!(text.contains(&format!("# TYPE {name} ")), "missing TYPE for {name}");
        }
    }

    #[test]
    fn handles_capture_the_flag_at_construction() {
        let _g = enable_for_test();
        let on = Telemetry::current();
        set_enabled(false);
        let off = Telemetry::current();
        assert!(on.is_on() && !off.is_on());
        // The earlier handle keeps recording: capture-at-construction, not
        // per-call flag reads.
        on.incr(Counter::ExecutorTicks);
        off.incr(Counter::ExecutorTicks);
        assert!(render_prometheus().contains("brace_executor_ticks_total 1"));
        set_enabled(true);
    }
}
