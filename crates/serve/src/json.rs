//! A minimal JSON layer: recursive-descent parser for request bodies and
//! string escaping for responses.
//!
//! The vendored `serde` is an API-surface stub (see `vendor/README.md`),
//! so the control plane hand-rolls the ~150 lines of JSON it needs. The
//! parser accepts the full value grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) with a recursion-depth limit, and
//! rejects trailing garbage — a malformed body must produce a clean `400`,
//! never a panic (pinned by `tests/serve_api.rs`). Response bodies are
//! assembled with `format!` plus [`escape`]; the shapes are simple enough
//! that an emitter DOM would be ceremony.

/// A parsed JSON value. Numbers are kept as `f64`: every integer the API
/// accepts (seeds, ticks, sizes) is well under 2^53, so the round-trip is
/// exact where it matters and [`Json::as_u64`] enforces integrality.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (first match; duplicate keys are a caller bug).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as an exact non-negative integer, or `None` if it is
    /// fractional, negative, or beyond exact `f64` integer range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9_007_199_254_740_992.0 => Some(*n as u64),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5).ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are rejected rather than
                            // recombined; nothing in the API needs them.
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| "invalid UTF-8")?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text.parse().map_err(|_| format!("bad number `{text}`"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number `{text}`"));
        }
        Ok(Json::Num(n))
    }
}

/// Escape a string for embedding in a JSON document (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shapes() {
        let body = r#"{"scenario":"epidemic","ticks":20,"seed":42,"conformance":true}"#;
        let v = Json::parse(body).unwrap();
        assert_eq!(v.get("scenario").and_then(Json::as_str), Some("epidemic"));
        assert_eq!(v.get("ticks").and_then(Json::as_u64), Some(20));
        assert_eq!(v.get("conformance").and_then(Json::as_bool), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nesting_strings_and_numbers() {
        let v = Json::parse(r#"{"a":[1,2.5,-3,1e3],"b":{"c":"he said \"hi\"\n"},"d":null}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0), Json::Num(1000.0)]))
        );
        assert_eq!(v.get("b").unwrap().get("c").and_then(Json::as_str), Some("he said \"hi\"\n"));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(Json::parse(r#""\u0041""#).unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn rejects_malformed_documents_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1,}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1}extra",
            "\"\\q\"",
            "[1 2]",
            "{\"a\" 1}",
            "nul",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should not parse");
        }
        // Depth bomb: errors out instead of blowing the stack.
        let deep = "[".repeat(2000) + &"]".repeat(2000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn as_u64_enforces_exact_non_negative_integers() {
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line\nbreak \"quote\" back\\slash \t tab \u{1} control";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap(), Json::Str(nasty.into()));
    }
}
