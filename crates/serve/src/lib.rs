//! `brace-serve`: simulation-as-a-service over the scenario runner.
//!
//! The PR-5 `Runner`/`SimHandle`/`Observer` seam turned every backend into
//! a launch-poll-collect state machine; this crate puts that seam on a
//! socket. A [`Server`] owns a [`Registry`] catalogue, a bounded pool of
//! simulation workers, and a content-addressed result cache, and speaks
//! just enough HTTP/1.1 (hand-rolled over [`std::net`] threads — the
//! vendored-dependency constraint rules out a real web stack) to expose:
//!
//! | endpoint | what |
//! |---|---|
//! | `GET /scenarios` | the registry catalogue |
//! | `POST /runs` | submit a run (scenario, backend, ticks, agents, seed, …) |
//! | `GET /runs/:id` | status and result metrics |
//! | `GET /runs/:id/stream` | chunked per-tick observations, then the result |
//! | `GET /stats` | pool, admission and cache counters |
//! | `GET /metrics` | Prometheus text exposition of the telemetry registry |
//!
//! **Admission control** is explicit: jobs wait in a bounded queue and a
//! `POST` that finds the queue full is rejected with `503` plus a
//! `Retry-After` header instead of being buffered without bound — the
//! control plane's version of the paper's position that overload should
//! surface as backpressure, not latency.
//!
//! **The result cache** is what determinism buys. The canonical job line
//! ([`RunKey::canonical`]) fully determines the result bits, so a repeat
//! `POST /runs` is answered from the stored checksum and observation
//! frames without re-simulating — bit-identical to the original, counted
//! on `GET /stats`, and pinned end-to-end by `tests/serve_api.rs`.
//!
//! **Run records are bounded.** A finished (Done/Failed) record stays
//! addressable at `GET /runs/:id` only until it ages past
//! [`ServeConfig::run_ttl_secs`] or more than [`ServeConfig::max_runs`]
//! newer runs have completed — then it is evicted (oldest-completed first,
//! counted as `evicted_runs` on `GET /stats`) and the id answers `404`.
//! Queued and running records are never evicted, so a long-lived service
//! cannot leak memory per submitted run while an in-flight run can never
//! lose its record. The canonical *result* usually outlives the record in
//! the result cache: re-`POST`ing the same job is still a hit.

mod cache;
mod http;
mod json;

pub use cache::{CachedRun, ResultCache, MAX_CACHED_FRAMES};
pub use json::Json;

use brace_common::Result;
use brace_scenario::runner::DEFAULT_SEED;
use brace_scenario::{Backend, JobSpec, Observer, Progress, Registry, RunKey, Runner};
use brace_spatial::IndexKind;
use brace_telemetry::{Counter as TelCounter, Gauge, HistId, Telemetry};
use http::{ChunkedWriter, HttpError, Request};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Everything tunable about a [`Server`]. `Default` suits tests (ephemeral
/// port, small pool); the CLI overrides from flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see [`Server::addr`]).
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// Bounded admission queue: jobs accepted but not yet picked up by a
    /// worker. A `POST` past this bound gets `503` + `Retry-After`.
    pub queue_cap: usize,
    /// Result-cache capacity in entries (LRU beyond it).
    pub cache_cap: usize,
    /// Value of the `Retry-After` header on saturation rejections.
    pub retry_after_secs: u64,
    /// Largest accepted run horizon.
    pub max_ticks: u64,
    /// Largest accepted population override.
    pub max_agents: usize,
    /// Bound on *terminal* run records kept for `GET /runs/:id`: once more
    /// than this many runs have finished, the oldest-completed are evicted
    /// (counted in `evicted_runs` on `GET /stats`). Queued/running records
    /// are never evicted — only completion starts the clock.
    pub max_runs: usize,
    /// Time-to-live of a terminal run record; records older than this are
    /// evicted on the next sweep even when the map is under `max_runs`.
    pub run_ttl_secs: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 8,
            cache_cap: 64,
            retry_after_secs: 1,
            max_ticks: 1_000_000,
            max_agents: 10_000_000,
            max_runs: 256,
            run_ttl_secs: 3600,
        }
    }
}

/// Monotonic service counters, readable without any lock on `GET /stats`.
#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    bad_requests: AtomicU64,
    rejected_saturated: AtomicU64,
    runs_accepted: AtomicU64,
    runs_completed: AtomicU64,
    runs_failed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    evicted_runs: AtomicU64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Queued,
    Running,
    Done,
    Failed,
}

impl Status {
    fn name(self) -> &'static str {
        match self {
            Status::Queued => "queued",
            Status::Running => "running",
            Status::Done => "done",
            Status::Failed => "failed",
        }
    }
}

/// Result metrics of a finished run.
#[derive(Debug, Clone, Copy)]
struct Finished {
    checksum: u64,
    agents: usize,
    wall_secs: f64,
    agents_per_sec: f64,
}

struct RunState {
    status: Status,
    /// `(tick, agents)` per completed tick (epoch on the cluster backend),
    /// appended live by the observer; `GET /runs/:id/stream` tails this.
    frames: Vec<(u64, usize)>,
    result: Option<Finished>,
    error: Option<String>,
    /// Served from the result cache without re-simulating.
    cached: bool,
    /// Frames the cached replay shed to the [`MAX_CACHED_FRAMES`] cap
    /// (always 0 for a live run, which streams every frame).
    frames_dropped: usize,
}

impl RunState {
    fn terminal(&self) -> bool {
        matches!(self.status, Status::Done | Status::Failed)
    }
}

/// One submitted run: the key that identifies it plus live state that the
/// worker writes and status/stream handlers wait on via the condvar.
struct RunRecord {
    id: String,
    key: RunKey,
    state: Mutex<RunState>,
    progressed: Condvar,
}

impl RunRecord {
    fn new(id: String, key: RunKey, state: RunState) -> Arc<RunRecord> {
        Arc::new(RunRecord { id, key, state: Mutex::new(state), progressed: Condvar::new() })
    }
}

/// Bridges [`Observer`] ticks into the record's frame log so stream
/// handlers (waiting on the condvar) see progress as it happens.
struct RecordObserver {
    record: Arc<RunRecord>,
}

impl Observer for RecordObserver {
    fn on_tick(&mut self, progress: &Progress) {
        let mut st = self.record.state.lock().unwrap();
        st.frames.push((progress.tick, progress.agents));
        drop(st);
        self.record.progressed.notify_all();
    }
}

struct App {
    registry: Registry,
    cfg: ServeConfig,
    runs: Mutex<HashMap<String, Arc<RunRecord>>>,
    /// Terminal run ids in completion order, stamped with their completion
    /// instant — the eviction queue behind the bounded `runs` map (TTL +
    /// LRU-by-completion cap; see [`ServeConfig::max_runs`]). Only ids of
    /// Done/Failed records ever enter, so a sweep can never evict a run
    /// that is still queued or executing. Lock order: `completed` before
    /// `runs` (only [`sweep_runs`] takes both).
    completed: Mutex<VecDeque<(String, std::time::Instant)>>,
    next_id: AtomicU64,
    queue: Mutex<VecDeque<Arc<RunRecord>>>,
    queue_ready: Condvar,
    cache: Mutex<ResultCache>,
    stats: Stats,
    shutdown: AtomicBool,
    /// Telemetry handle captured after [`Server::start`] enables the
    /// registry, so every serve metric records.
    tel: Telemetry,
}

/// A running control plane. Bind with [`Server::start`]; the accept loop
/// and workers run on background threads until [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    app: Arc<App>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the worker pool and the accept loop, return immediately.
    pub fn start(registry: Registry, cfg: ServeConfig) -> Result<Server> {
        // The control plane is the natural owner of the observability
        // surface: serving turns telemetry on so `GET /metrics` has data.
        brace_telemetry::set_enabled(true);
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| brace_common::BraceError::Config(format!("bind {}: {e}", cfg.addr)))?;
        let addr = listener.local_addr().expect("bound listener has a local addr");
        let app = Arc::new(App {
            cache: Mutex::new(ResultCache::new(cfg.cache_cap)),
            registry,
            cfg,
            runs: Mutex::new(HashMap::new()),
            completed: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(1),
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            tel: Telemetry::current(),
        });
        for _ in 0..app.cfg.workers.max(1) {
            let app = Arc::clone(&app);
            thread::spawn(move || worker_loop(&app));
        }
        let accept_app = Arc::clone(&app);
        let accept = thread::spawn(move || accept_loop(&listener, &accept_app));
        Ok(Server { addr, app, accept: Some(accept) })
    }

    /// The bound address (resolves port 0 to the ephemeral port picked).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and wake idle workers so they exit.
    /// Workers mid-simulation finish their current job and then exit; they
    /// are not joined (a simulation cannot be interrupted midway).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.app.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.app.queue_ready.notify_all();
        // Unblock `accept` with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, app: &Arc<App>) {
    for stream in listener.incoming() {
        if app.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        let app = Arc::clone(app);
        thread::spawn(move || handle_connection(&app, stream));
    }
}

fn worker_loop(app: &Arc<App>) {
    loop {
        let record = {
            let mut queue = app.queue.lock().unwrap();
            loop {
                if app.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(r) = queue.pop_front() {
                    break r;
                }
                queue = app.queue_ready.wait(queue).unwrap();
            }
        };
        execute(app, &record);
    }
}

/// Run one job to completion and publish the result (and cache entry).
fn execute(app: &Arc<App>, record: &Arc<RunRecord>) {
    {
        let mut st = record.state.lock().unwrap();
        st.status = Status::Running;
    }
    record.progressed.notify_all();

    let outcome = (|| {
        let key = &record.key;
        let scenario = app.registry.get_or_err(&key.job.scenario)?;
        let backend = Backend::parse(&key.backend)?; // validated at POST time
        let mut runner = Runner::new(scenario).backend(backend).seed(key.seed);
        if key.job.conformance {
            runner = runner.conformance();
        } else {
            if let Some(size) = key.job.size {
                runner = runner.population(size);
            }
            if let Some(kind) = key.index {
                runner = runner.index(kind);
            }
        }
        runner = runner.observe(Box::new(RecordObserver { record: Arc::clone(record) }));
        runner.run(key.ticks)
    })();

    match outcome {
        Ok(report) => {
            app.tel.observe(HistId::ServeRunLatency, (report.wall_secs * 1e9) as u64);
            let finished = Finished {
                checksum: report.checksum,
                agents: report.agents,
                wall_secs: report.wall_secs,
                agents_per_sec: report.agents_per_sec,
            };
            let frames = {
                let mut st = record.state.lock().unwrap();
                st.status = Status::Done;
                st.result = Some(finished);
                st.frames.clone()
            };
            let frames_dropped = frames.len().saturating_sub(MAX_CACHED_FRAMES);
            let mut frames = frames;
            frames.truncate(MAX_CACHED_FRAMES);
            let entry = CachedRun {
                checksum: finished.checksum,
                agents: finished.agents,
                ticks: record.key.ticks,
                wall_secs: finished.wall_secs,
                agents_per_sec: finished.agents_per_sec,
                frames,
                frames_dropped,
            };
            let evicted = app.cache.lock().unwrap().insert(record.key.cache_key(), entry);
            app.stats.cache_evictions.fetch_add(evicted as u64, Ordering::Relaxed);
            app.stats.runs_completed.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => {
            let mut st = record.state.lock().unwrap();
            st.status = Status::Failed;
            st.error = Some(e.to_string());
            drop(st);
            app.stats.runs_failed.fetch_add(1, Ordering::Relaxed);
        }
    }
    record.progressed.notify_all();
    note_terminal(app, &record.id);
}

/// Record that `id` reached a terminal state (Done/Failed), then sweep.
/// Entering the completion queue is what makes a record evictable.
fn note_terminal(app: &Arc<App>, id: &str) {
    app.completed.lock().unwrap().push_back((id.to_string(), std::time::Instant::now()));
    sweep_runs(app);
}

/// Evict terminal run records that are past their TTL or beyond the
/// `max_runs` cap (oldest-completed first). Live records are untouched by
/// construction: only terminal ids are in the completion queue. Evicted
/// ids answer `404` afterwards — the canonical job result itself usually
/// survives longer in the result cache, which has its own LRU.
fn sweep_runs(app: &Arc<App>) {
    let now = std::time::Instant::now();
    let ttl = Duration::from_secs(app.cfg.run_ttl_secs);
    let mut completed = app.completed.lock().unwrap();
    let mut runs = app.runs.lock().unwrap();
    let mut evicted = 0u64;
    while let Some((id, at)) = completed.front() {
        let over_cap = completed.len() > app.cfg.max_runs.max(1);
        let expired = now.duration_since(*at) >= ttl;
        if !over_cap && !expired {
            break;
        }
        runs.remove(id);
        completed.pop_front();
        evicted += 1;
    }
    if evicted > 0 {
        app.stats.evicted_runs.fetch_add(evicted, Ordering::Relaxed);
    }
}

fn handle_connection(app: &Arc<App>, mut stream: TcpStream) {
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(HttpError::Io(_)) => return, // peer gone; nothing to answer
        Err(HttpError::Bad(status, msg)) => {
            app.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = error_response(&mut stream, status, &msg);
            return;
        }
    };
    app.stats.requests.fetch_add(1, Ordering::Relaxed);
    let _ = route(app, &mut stream, &request);
}

fn route(app: &Arc<App>, stream: &mut TcpStream, req: &Request) -> std::io::Result<()> {
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/") => ok_json(stream, &index_body()),
        ("GET", "/scenarios") => ok_json(stream, &scenarios_body(app)),
        ("GET", "/stats") => ok_json(stream, &stats_body(app)),
        ("GET", "/metrics") => metrics(app, stream),
        ("POST", "/runs") => post_run(app, stream, &req.body),
        ("GET", _) if path.starts_with("/runs/") => {
            let rest = &path["/runs/".len()..];
            match rest.split_once('/') {
                None => run_status(app, stream, rest),
                Some((id, "stream")) => run_stream(app, stream, id),
                Some(_) => not_found(app, stream, path),
            }
        }
        ("POST" | "PUT" | "DELETE", _) | ("GET", _) => not_found(app, stream, path),
        _ => {
            app.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            error_response(stream, 405, &format!("method {} not supported", req.method))
        }
    }
}

// ---- endpoint bodies -------------------------------------------------------

fn index_body() -> String {
    "{\"service\":\"brace-serve\",\"endpoints\":[\"GET /scenarios\",\"POST /runs\",\"GET /runs/:id\",\
     \"GET /runs/:id/stream\",\"GET /stats\",\"GET /metrics\"]}"
        .to_string()
}

/// Prometheus text exposition (v0.0.4) of the process-wide telemetry
/// registry. Point-in-time gauges (queue depth) are sampled at scrape.
fn metrics(app: &Arc<App>, stream: &mut TcpStream) -> std::io::Result<()> {
    app.tel.gauge_set(Gauge::ServeQueueDepth, app.queue.lock().unwrap().len() as u64);
    let body = brace_telemetry::render_prometheus();
    http::write_response(stream, 200, "OK", &[], "text/plain; version=0.0.4", &body)
}

fn scenarios_body(app: &Arc<App>) -> String {
    let items: Vec<String> = app
        .registry
        .iter()
        .map(|s| {
            format!(
                "{{\"name\":\"{}\",\"description\":\"{}\",\"default_population\":{}}}",
                json::escape(s.name()),
                json::escape(s.description()),
                s.default_population()
            )
        })
        .collect();
    format!("{{\"scenarios\":[{}]}}", items.join(","))
}

fn stats_body(app: &Arc<App>) -> String {
    let s = &app.stats;
    let queue_depth = app.queue.lock().unwrap().len();
    let (cache_entries, cache_cap) = {
        let c = app.cache.lock().unwrap();
        (c.len(), app.cfg.cache_cap)
    };
    let runs = app.runs.lock().unwrap().len();
    format!(
        "{{\"workers\":{},\"queue_cap\":{},\"queue_depth\":{queue_depth},\"runs\":{runs},\
         \"max_runs\":{},\"evicted_runs\":{},\
         \"requests\":{},\"bad_requests\":{},\"rejected_saturated\":{},\
         \"runs_accepted\":{},\"runs_completed\":{},\"runs_failed\":{},\
         \"cache\":{{\"capacity\":{cache_cap},\"entries\":{cache_entries},\"hits\":{},\"misses\":{},\"evictions\":{}}}}}",
        app.cfg.workers,
        app.cfg.queue_cap,
        app.cfg.max_runs,
        s.evicted_runs.load(Ordering::Relaxed),
        s.requests.load(Ordering::Relaxed),
        s.bad_requests.load(Ordering::Relaxed),
        s.rejected_saturated.load(Ordering::Relaxed),
        s.runs_accepted.load(Ordering::Relaxed),
        s.runs_completed.load(Ordering::Relaxed),
        s.runs_failed.load(Ordering::Relaxed),
        s.cache_hits.load(Ordering::Relaxed),
        s.cache_misses.load(Ordering::Relaxed),
        s.cache_evictions.load(Ordering::Relaxed),
    )
}

/// Parse and validate a `POST /runs` body into the run's canonical key.
/// Unknown fields are ignored (same forward-compatibility stance as the
/// job-line parser). Errors are `(status, message)`.
fn parse_run_spec(body: &str, registry: &Registry, cfg: &ServeConfig) -> std::result::Result<RunKey, (u16, String)> {
    let doc = Json::parse(body).map_err(|e| (400, format!("malformed JSON body: {e}")))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err((400, "body must be a JSON object".into()));
    }
    let scenario = doc
        .get("scenario")
        .and_then(Json::as_str)
        .ok_or((400, "body must name a \"scenario\" (string)".to_string()))?
        .to_string();
    if registry.get(&scenario).is_none() {
        return Err((404, format!("unknown scenario `{scenario}` (see GET /scenarios)")));
    }

    let field_u64 = |name: &str, default: u64| -> std::result::Result<u64, (u16, String)> {
        match doc.get(name) {
            None | Some(Json::Null) => Ok(default),
            Some(v) => v.as_u64().ok_or((400, format!("\"{name}\" must be a non-negative integer"))),
        }
    };
    let ticks = field_u64("ticks", 20)?;
    if ticks == 0 || ticks > cfg.max_ticks {
        return Err((400, format!("\"ticks\" must be between 1 and {}", cfg.max_ticks)));
    }
    let seed = field_u64("seed", DEFAULT_SEED)?;
    let agents = match doc.get("agents") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let n = v.as_u64().ok_or((400, "\"agents\" must be a non-negative integer".to_string()))?;
            if n == 0 || n > cfg.max_agents as u64 {
                return Err((400, format!("\"agents\" must be between 1 and {}", cfg.max_agents)));
            }
            Some(n as usize)
        }
    };
    let conformance = match doc.get("conformance") {
        None | Some(Json::Null) => false,
        Some(v) => v.as_bool().ok_or((400, "\"conformance\" must be a boolean".to_string()))?,
    };
    let backend = match doc.get("backend") {
        None | Some(Json::Null) => Backend::single(),
        Some(v) => {
            let s = v.as_str().ok_or((400, "\"backend\" must be a string".to_string()))?;
            Backend::parse(s).map_err(|e| (400, e.to_string()))?
        }
    };
    let index = match doc.get("index") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let s = v.as_str().ok_or((400, "\"index\" must be a string".to_string()))?;
            Some(match s {
                "kd" | "kdtree" => IndexKind::KdTree,
                "grid" => IndexKind::Grid,
                "scan" => IndexKind::Scan,
                other => return Err((400, format!("unknown index `{other}` (kd|grid|scan)"))),
            })
        }
    };
    // Mirror the Runner's conformance fixed-point rule at admission so the
    // conflict is a clean 400, not a failed run.
    if conformance && (agents.is_some() || index.is_some()) {
        return Err((
            400,
            "\"agents\"/\"index\" overrides conflict with \"conformance\": true \
             (the conformance configuration is part of the exactly-distributable contract)"
                .into(),
        ));
    }

    Ok(RunKey { job: JobSpec { scenario, size: agents, conformance }, seed, ticks, index, backend: backend.label() })
}

fn post_run(app: &Arc<App>, stream: &mut TcpStream, body: &str) -> std::io::Result<()> {
    let key = match parse_run_spec(body, &app.registry, &app.cfg) {
        Ok(k) => k,
        Err((status, msg)) => {
            app.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            return error_response(stream, status, &msg);
        }
    };

    // Cache first: a hit materializes a finished record immediately — no
    // queue slot, no worker, no simulation.
    let cached = app.cache.lock().unwrap().get(key.cache_key());
    if let Some(hit) = cached {
        app.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        app.tel.incr(TelCounter::ServeCacheHits);
        let id = format!("r{}", app.next_id.fetch_add(1, Ordering::Relaxed));
        let record = RunRecord::new(
            id.clone(),
            key,
            RunState {
                status: Status::Done,
                frames: hit.frames.clone(),
                result: Some(Finished {
                    checksum: hit.checksum,
                    agents: hit.agents,
                    wall_secs: hit.wall_secs,
                    agents_per_sec: hit.agents_per_sec,
                }),
                error: None,
                cached: true,
                frames_dropped: hit.frames_dropped,
            },
        );
        app.runs.lock().unwrap().insert(id.clone(), record);
        app.stats.runs_accepted.fetch_add(1, Ordering::Relaxed);
        app.tel.incr(TelCounter::ServeRuns);
        // A cache-hit record is born terminal: evictable immediately.
        note_terminal(app, &id);
        let body = format!(
            "{{\"run_id\":\"{id}\",\"status\":\"done\",\"cached\":true,\"checksum\":\"{:#018X}\"}}",
            hit.checksum
        );
        return http::write_response(stream, 200, "OK", &[], "application/json", &body);
    }
    app.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
    app.tel.incr(TelCounter::ServeCacheMisses);
    // TTL-expire old terminal records even when nothing is completing.
    sweep_runs(app);

    // Admission: bounded queue, explicit backpressure past the bound.
    let id = format!("r{}", app.next_id.fetch_add(1, Ordering::Relaxed));
    let record = RunRecord::new(
        id.clone(),
        key,
        RunState {
            status: Status::Queued,
            frames: Vec::new(),
            result: None,
            error: None,
            cached: false,
            frames_dropped: 0,
        },
    );
    {
        let mut queue = app.queue.lock().unwrap();
        if queue.len() >= app.cfg.queue_cap {
            app.stats.rejected_saturated.fetch_add(1, Ordering::Relaxed);
            let retry = app.cfg.retry_after_secs.to_string();
            let body = format!("{{\"error\":\"admission queue full ({} waiting); retry later\"}}", queue.len());
            drop(queue);
            return http::write_response(
                stream,
                503,
                "Service Unavailable",
                &[("Retry-After", retry)],
                "application/json",
                &body,
            );
        }
        queue.push_back(Arc::clone(&record));
    }
    app.queue_ready.notify_one();
    app.runs.lock().unwrap().insert(id.clone(), record);
    app.stats.runs_accepted.fetch_add(1, Ordering::Relaxed);
    app.tel.incr(TelCounter::ServeRuns);
    let body = format!("{{\"run_id\":\"{id}\",\"status\":\"queued\",\"cached\":false}}");
    http::write_response(stream, 202, "Accepted", &[], "application/json", &body)
}

fn lookup(app: &Arc<App>, id: &str) -> Option<Arc<RunRecord>> {
    app.runs.lock().unwrap().get(id).cloned()
}

fn run_status(app: &Arc<App>, stream: &mut TcpStream, id: &str) -> std::io::Result<()> {
    let Some(record) = lookup(app, id) else {
        return not_found(app, stream, &format!("/runs/{id}"));
    };
    let st = record.state.lock().unwrap();
    let mut body = format!(
        "{{\"run_id\":\"{}\",\"job\":\"{}\",\"status\":\"{}\",\"cached\":{},\"ticks\":{},\"frames\":{}",
        record.id,
        json::escape(&record.key.canonical()),
        st.status.name(),
        st.cached,
        record.key.ticks,
        st.frames.len()
    );
    if let Some(r) = st.result {
        body.push_str(&format!(
            ",\"checksum\":\"{:#018X}\",\"agents\":{},\"wall_secs\":{:.6},\"agents_per_sec\":{:.1}",
            r.checksum, r.agents, r.wall_secs, r.agents_per_sec
        ));
    }
    if let Some(e) = &st.error {
        body.push_str(&format!(",\"error\":\"{}\"", json::escape(e)));
    }
    body.push('}');
    drop(st);
    ok_json(stream, &body)
}

/// Stream per-tick frames as NDJSON chunks, then one terminal line, then
/// end. Blocks (on the record's condvar) while the run is in flight, so a
/// client — or the CI smoke test — can `curl` this URL and read the final
/// checksum the moment the simulation finishes. Cached runs replay their
/// stored frames instantly.
fn run_stream(app: &Arc<App>, stream: &mut TcpStream, id: &str) -> std::io::Result<()> {
    let Some(record) = lookup(app, id) else {
        return not_found(app, stream, &format!("/runs/{id}/stream"));
    };
    // A stream can outlive the read timeout set at accept; it is bounded
    // instead by the run itself (and the write timeout if the peer stalls).
    let mut writer = ChunkedWriter::start(stream, "application/x-ndjson")?;
    let mut sent = 0usize;
    loop {
        let (new_frames, terminal) = {
            let mut st = record.state.lock().unwrap();
            while st.frames.len() == sent && !st.terminal() {
                st = record.progressed.wait(st).unwrap();
            }
            (st.frames[sent..].to_vec(), if st.terminal() { Some(terminal_line(&record, &st)) } else { None })
        };
        let mut chunk = String::new();
        for (tick, agents) in &new_frames {
            chunk.push_str(&format!("{{\"tick\":{tick},\"agents\":{agents}}}\n"));
        }
        sent += new_frames.len();
        if let Some(last) = terminal {
            chunk.push_str(&last);
            writer.chunk(&chunk)?;
            return writer.finish();
        }
        writer.chunk(&chunk)?;
    }
}

fn terminal_line(record: &RunRecord, st: &RunState) -> String {
    match (&st.result, &st.error) {
        (Some(r), _) => {
            // A cached replay that shed frames to the cache cap says so, so
            // the short stream is not mistaken for a short run.
            let dropped = if st.frames_dropped > 0 {
                format!(",\"frames_dropped\":{}", st.frames_dropped)
            } else {
                String::new()
            };
            format!(
                "{{\"done\":true,\"status\":\"done\",\"cached\":{},\"checksum\":\"{:#018X}\",\"agents\":{},\"ticks\":{}{dropped}}}\n",
                st.cached, r.checksum, r.agents, record.key.ticks
            )
        }
        (None, Some(e)) => {
            format!("{{\"done\":true,\"status\":\"failed\",\"error\":\"{}\"}}\n", json::escape(e))
        }
        (None, None) => "{\"done\":true,\"status\":\"failed\",\"error\":\"no result recorded\"}\n".into(),
    }
}

// ---- response helpers ------------------------------------------------------

fn ok_json(stream: &mut TcpStream, body: &str) -> std::io::Result<()> {
    http::write_response(stream, 200, "OK", &[], "application/json", body)
}

fn error_response(stream: &mut TcpStream, status: u16, msg: &str) -> std::io::Result<()> {
    let reason = match status {
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let body = format!("{{\"error\":\"{}\"}}", json::escape(msg));
    http::write_response(stream, status, reason, &[], "application/json", &body)
}

fn not_found(app: &Arc<App>, stream: &mut TcpStream, path: &str) -> std::io::Result<()> {
    app.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
    error_response(stream, 404, &format!("no such resource `{path}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        Registry::builtin()
    }

    #[test]
    fn run_spec_defaults_and_canonical_key() {
        let key = parse_run_spec(r#"{"scenario":"epidemic","conformance":true}"#, &registry(), &ServeConfig::default())
            .unwrap();
        assert_eq!(
            key.canonical(),
            format!("scenario=epidemic size=default conformance=true seed={DEFAULT_SEED} ticks=20 index=auto backend=single")
        );
    }

    #[test]
    fn run_spec_rejects_bad_requests_with_the_right_status() {
        let cfg = ServeConfig::default();
        let r = registry();
        let cases: [(&str, u16); 8] = [
            ("not json", 400),
            ("{\"ticks\":5}", 400),                                        // no scenario
            (r#"{"scenario":"nope"}"#, 404),                               // unknown scenario
            (r#"{"scenario":"fish","ticks":0}"#, 400),                     // zero horizon
            (r#"{"scenario":"fish","ticks":-3}"#, 400),                    // negative
            (r#"{"scenario":"fish","backend":"gpu"}"#, 400),               // unknown backend
            (r#"{"scenario":"fish","index":"octree"}"#, 400),              // unknown index
            (r#"{"scenario":"fish","conformance":true,"agents":5}"#, 400), // contract conflict
        ];
        for (body, want) in cases {
            let got = parse_run_spec(body, &r, &cfg).unwrap_err().0;
            assert_eq!(got, want, "body `{body}`");
        }
    }

    #[test]
    fn run_spec_ignores_unknown_fields() {
        let key =
            parse_run_spec(r#"{"scenario":"fish","ticks":3,"future":"field"}"#, &registry(), &ServeConfig::default())
                .unwrap();
        assert_eq!(key.ticks, 3);
        assert_eq!(key.job.scenario, "fish");
    }
}
