//! Just enough HTTP/1.1 over [`std::net`] for the control plane.
//!
//! The vendored-dependency constraint rules out hyper/axum, and the
//! surface we need is tiny: parse one request per connection (method,
//! path, `Content-Length` body), write one response, close. Responses are
//! either fixed-length (`Content-Length`) or streamed
//! (`Transfer-Encoding: chunked`, via [`ChunkedWriter`]) — the latter is
//! what lets `GET /runs/:id/stream` deliver per-tick observations while a
//! simulation is still running.
//!
//! Limits are deliberate: request heads over [`MAX_HEAD`] bytes and
//! bodies over [`MAX_BODY`] bytes are rejected with `413` rather than
//! buffered, and sockets carry read/write timeouts so a stalled peer
//! cannot pin a connection thread forever.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Maximum accepted size of the request line plus headers.
pub const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted request body size.
pub const MAX_BODY: usize = 64 * 1024;

/// One parsed request. Only what the router consumes: everything else
/// (headers we do not key on, the HTTP version) is validated just enough
/// to find the body and then dropped.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
}

/// Why a request could not be served at the transport layer.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (peer vanished, timeout): nothing to send
    /// back. The payload is carried for `Debug` diagnostics only.
    Io(#[allow(dead_code)] io::Error),
    /// Protocol violation worth answering: `(status, message)`.
    Bad(u16, String),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn bad(status: u16, msg: impl Into<String>) -> HttpError {
    HttpError::Bad(status, msg.into())
}

/// Read and parse one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(bad(413, format!("request head exceeds {MAX_HEAD} bytes")));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            // Peer closed before a full head arrived; includes the empty
            // probe connections health checks and shutdown wakes send.
            return Err(HttpError::Io(io::ErrorKind::UnexpectedEof.into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad(400, "request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad(400, "empty request line"))?.to_string();
    let path = parts.next().ok_or_else(|| bad(400, "request line names no path"))?.to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((key, value)) = line.split_once(':') {
            if key.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| bad(400, format!("bad Content-Length `{}`", value.trim())))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad(413, format!("request body exceeds {MAX_BODY} bytes")));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad(400, "connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| bad(400, "request body is not UTF-8"))?;

    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Write a complete fixed-length response and flush. Every response closes
/// the connection — one request per connection keeps the threading model
/// trivially correct at the price of a TCP handshake per call, which is
/// nothing next to a simulation run.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, String)],
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// An in-flight `Transfer-Encoding: chunked` response. Each [`chunk`] is
/// flushed immediately so a streaming client observes ticks as they
/// complete, not when the run ends.
///
/// [`chunk`]: ChunkedWriter::chunk
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Write the response head and switch the connection to chunked mode.
    pub fn start(stream: &'a mut TcpStream, content_type: &str) -> io::Result<ChunkedWriter<'a>> {
        let head = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    pub fn chunk(&mut self, data: &str) -> io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data.as_bytes())?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the stream with the zero-length chunk.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
