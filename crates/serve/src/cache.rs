//! Content-addressed result cache: canonical job line in, finished run out.
//!
//! Keys are [`RunKey::cache_key`](brace_scenario::RunKey::cache_key)
//! hashes of the canonical job line, which *fully determines the result
//! bits* (scenario builds are pure functions of `(size, seed)`, the
//! engine is deterministic given world + index + backend, and the backend
//! label is part of the key). That is the whole soundness argument: a hit
//! can be served without re-simulating because an equal key provably
//! yields a bit-identical checksum — `tests/serve_api.rs` pins this by
//! comparing a cached response against a fresh
//! [`Runner`](brace_scenario::Runner) run.
//!
//! Eviction is LRU over a bounded entry count. Per-tick frames are stored
//! for stream replay only up to [`MAX_CACHED_FRAMES`]; longer runs keep
//! the first `MAX_CACHED_FRAMES` frames and record how many were shed in
//! [`CachedRun::frames_dropped`], which a replayed stream reports on its
//! terminal line — results stay exact, only observation granularity is
//! shed, and the truncation is visible instead of silent.

use std::collections::HashMap;

/// Stored per-tick frames are capped so one long run cannot occupy the
/// whole cache's memory budget; see the module docs for the degradation.
pub const MAX_CACHED_FRAMES: usize = 4096;

/// A finished run, reduced to what replaying it requires.
#[derive(Debug, Clone)]
pub struct CachedRun {
    /// `world_checksum` of the final world.
    pub checksum: u64,
    /// Final live population.
    pub agents: usize,
    /// Ticks executed.
    pub ticks: u64,
    /// Wall time of the *original* execution (kept for honesty: a cached
    /// response reports the cost of the run it replays, not ~0).
    pub wall_secs: f64,
    /// Agent-ticks per second of the original execution.
    pub agents_per_sec: f64,
    /// Per-tick `(tick, agents)` observation frames for stream replay;
    /// truncated to the first [`MAX_CACHED_FRAMES`] of a longer run.
    pub frames: Vec<(u64, usize)>,
    /// Frames shed by that truncation (0 when everything fit). A replayed
    /// stream's terminal line reports this so the gap is not mistaken for
    /// a short run.
    pub frames_dropped: usize,
}

/// Bounded LRU map from canonical-job-line hash to [`CachedRun`].
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<u64, CachedRun>,
    /// Recency order, least recent first. Linear maintenance is fine: the
    /// cache is consulted once per `POST /runs`, not per tick.
    order: Vec<u64>,
}

impl ResultCache {
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache { capacity: capacity.max(1), entries: HashMap::new(), order: Vec::new() }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look a key up, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<CachedRun> {
        let hit = self.entries.get(&key).cloned()?;
        self.touch(key);
        Some(hit)
    }

    /// Insert (or refresh) an entry. Returns how many entries were evicted
    /// to make room (0 or 1 — counted, because `GET /stats` reports it).
    pub fn insert(&mut self, key: u64, run: CachedRun) -> usize {
        if self.entries.insert(key, run).is_some() {
            // Same canonical line finished twice (two identical POSTs were
            // in flight together): identical bits, refresh recency only.
            self.touch(key);
            return 0;
        }
        self.order.push(key);
        let mut evicted = 0;
        while self.entries.len() > self.capacity {
            let oldest = self.order.remove(0);
            self.entries.remove(&oldest);
            evicted += 1;
        }
        evicted
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.push(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(checksum: u64) -> CachedRun {
        CachedRun {
            checksum,
            agents: 10,
            ticks: 5,
            wall_secs: 0.1,
            agents_per_sec: 500.0,
            frames: vec![(1, 10)],
            frames_dropped: 0,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        assert_eq!(c.insert(1, run(0xa)), 0);
        assert_eq!(c.insert(2, run(0xb)), 0);
        // Touch 1 so 2 becomes the eviction candidate.
        assert_eq!(c.get(1).unwrap().checksum, 0xa);
        assert_eq!(c.insert(3, run(0xc)), 1);
        assert!(c.get(2).is_none(), "least-recent entry should have been evicted");
        assert_eq!(c.get(1).unwrap().checksum, 0xa);
        assert_eq!(c.get(3).unwrap().checksum, 0xc);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn double_insert_refreshes_without_evicting() {
        let mut c = ResultCache::new(2);
        c.insert(1, run(0xa));
        c.insert(2, run(0xb));
        assert_eq!(c.insert(1, run(0xa)), 0);
        assert_eq!(c.len(), 2);
        // 2 is now least recent despite being inserted later.
        c.insert(3, run(0xc));
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
    }
}
