//! A two-dimensional KD-tree (Bentley-style, array-backed).
//!
//! This is the index the BRACE prototype used ("a generic KD-tree based
//! spatial index capability \[3\]", citing Bentley's semidynamic k-d trees).
//! The engine rebuilds it each tick, so the implementation optimizes bulk
//! build + query throughput rather than incremental updates:
//!
//! * nodes live in a flat `Vec` in build order (no per-node allocation);
//! * construction is the classic median split with Hoare partitioning
//!   (`select_nth_unstable_by`), alternating split axes — O(n log n);
//! * leaves hold up to a fixed number of points (16) and are scanned linearly, which
//!   beats deeper recursion for the query sizes behavioral simulations see;
//! * orthogonal range queries and nearest-neighbor search both prune by the
//!   node bounding boxes maintained during the build.
//!
//! Bentley's *semidynamic* flavor (delete/undelete without restructure) is
//! supported through [`KdTree::deactivate`]/[`KdTree::reactivate`]: the
//! predator model kills agents mid-tick-sequence and it is cheaper to mask
//! them than rebuild.

use crate::index::SpatialIndex;
use brace_common::{Rect, Vec2};

/// Maximum number of points in a leaf node. 16 keeps the tree shallow while
/// the per-leaf scan stays within a cache line or two of point data.
const LEAF_SIZE: usize = 16;

#[derive(Debug, Clone)]
enum Node {
    /// Internal node: splits `axis` at `split`; children are `left`/`right`
    /// indices into the node vec. `bounds` is the bounding box of the whole
    /// subtree (used for pruning).
    Inner { axis: u8, split: f64, left: u32, right: u32, bounds: Rect },
    /// Leaf: a `start..end` range into the `points` array.
    Leaf { start: u32, end: u32, bounds: Rect },
}

/// Array-backed 2-D KD-tree. See the module docs for design rationale.
#[derive(Debug, Clone, Default)]
pub struct KdTree {
    nodes: Vec<Node>,
    /// Points permuted into build order, so each leaf is a contiguous slice.
    points: Vec<(Vec2, u32)>,
    /// `active[i]` mirrors `points[i]`; deactivated points are invisible to
    /// all queries (Bentley's "deletion").
    active: Vec<bool>,
    root: Option<u32>,
    live: usize,
}

impl KdTree {
    /// Bounding box of all points (empty rect for an empty tree).
    pub fn bounds(&self) -> Rect {
        match self.root {
            Some(r) => match &self.nodes[r as usize] {
                Node::Inner { bounds, .. } | Node::Leaf { bounds, .. } => *bounds,
            },
            None => Rect::EMPTY,
        }
    }

    /// Depth of the tree (0 for empty); exposed for testing the build shape.
    pub fn depth(&self) -> usize {
        fn go(nodes: &[Node], n: u32) -> usize {
            match &nodes[n as usize] {
                Node::Leaf { .. } => 1,
                Node::Inner { left, right, .. } => 1 + go(nodes, *left).max(go(nodes, *right)),
            }
        }
        self.root.map_or(0, |r| go(&self.nodes, r))
    }

    /// Mask every point carrying `payload` out of all queries. Returns how
    /// many points were newly deactivated. O(n) scan: payloads are not
    /// indexed because deactivation is rare compared to queries.
    pub fn deactivate(&mut self, payload: u32) -> usize {
        let mut n = 0;
        for (i, &(_, pl)) in self.points.iter().enumerate() {
            if pl == payload && self.active[i] {
                self.active[i] = false;
                n += 1;
            }
        }
        self.live -= n;
        n
    }

    /// Undo [`KdTree::deactivate`] for `payload`. Returns how many points
    /// were reactivated.
    pub fn reactivate(&mut self, payload: u32) -> usize {
        let mut n = 0;
        for (i, &(_, pl)) in self.points.iter().enumerate() {
            if pl == payload && !self.active[i] {
                self.active[i] = true;
                n += 1;
            }
        }
        self.live += n;
        n
    }

    /// Number of active (query-visible) points.
    pub fn live_len(&self) -> usize {
        self.live
    }

    fn build_rec(points: &mut [(Vec2, u32)], offset: u32, nodes: &mut Vec<Node>) -> u32 {
        let bounds = points.iter().fold(Rect::EMPTY, |b, &(p, _)| b.extended(p));
        if points.len() <= LEAF_SIZE {
            nodes.push(Node::Leaf { start: offset, end: offset + points.len() as u32, bounds });
            return (nodes.len() - 1) as u32;
        }
        // Split the wider axis of the actual bounding box rather than simply
        // alternating: degenerate distributions (all agents on a highway
        // line) otherwise produce sliver cells and deep trees.
        let axis = if bounds.width() >= bounds.height() { 0u8 } else { 1u8 };
        let mid = points.len() / 2;
        let key = |p: &(Vec2, u32)| if axis == 0 { p.0.x } else { p.0.y };
        points.select_nth_unstable_by(mid, |a, b| key(a).total_cmp(&key(b)));
        let split = key(&points[mid]);
        let (lo, hi) = points.split_at_mut(mid);
        let placeholder = nodes.len() as u32;
        nodes.push(Node::Leaf { start: 0, end: 0, bounds: Rect::EMPTY }); // patched below
        let left = Self::build_rec(lo, offset, nodes);
        let right = Self::build_rec(hi, offset + mid as u32, nodes);
        nodes[placeholder as usize] = Node::Inner { axis, split, left, right, bounds };
        placeholder
    }

    fn range_rec(&self, n: u32, rect: &Rect, out: &mut Vec<u32>) {
        match &self.nodes[n as usize] {
            Node::Leaf { start, end, bounds } => {
                if !rect.intersects(bounds) {
                    return;
                }
                for i in *start as usize..*end as usize {
                    if self.active[i] && rect.contains(self.points[i].0) {
                        out.push(self.points[i].1);
                    }
                }
            }
            Node::Inner { left, right, bounds, .. } => {
                if !rect.intersects(bounds) {
                    return;
                }
                if rect.contains_rect(bounds) {
                    // Whole subtree inside the query: report without tests.
                    self.report_subtree(n, out);
                    return;
                }
                self.range_rec(*left, rect, out);
                self.range_rec(*right, rect, out);
            }
        }
    }

    fn report_subtree(&self, n: u32, out: &mut Vec<u32>) {
        match &self.nodes[n as usize] {
            Node::Leaf { start, end, .. } => {
                for i in *start as usize..*end as usize {
                    if self.active[i] {
                        out.push(self.points[i].1);
                    }
                }
            }
            Node::Inner { left, right, .. } => {
                self.report_subtree(*left, out);
                self.report_subtree(*right, out);
            }
        }
    }

    fn nearest_rec(&self, n: u32, q: Vec2, exclude: Option<u32>, best: &mut (f64, Option<u32>)) {
        match &self.nodes[n as usize] {
            Node::Leaf { start, end, bounds } => {
                if bounds.dist2_to_point(q) > best.0 {
                    return;
                }
                for i in *start as usize..*end as usize {
                    if !self.active[i] {
                        continue;
                    }
                    let (p, payload) = self.points[i];
                    if Some(payload) == exclude {
                        continue;
                    }
                    let d = p.dist2(q);
                    if d < best.0 {
                        *best = (d, Some(payload));
                    }
                }
            }
            Node::Inner { axis, split, left, right, bounds } => {
                if bounds.dist2_to_point(q) > best.0 {
                    return;
                }
                let qk = if *axis == 0 { q.x } else { q.y };
                // Descend the side containing q first so `best` shrinks
                // early and prunes the far side.
                let (near, far) = if qk <= *split { (*left, *right) } else { (*right, *left) };
                self.nearest_rec(near, q, exclude, best);
                self.nearest_rec(far, q, exclude, best);
            }
        }
    }

    fn knn_rec(&self, n: u32, q: Vec2, exclude: Option<u32>, k: usize, heap: &mut Vec<(f64, u32)>) {
        let worst = if heap.len() < k { f64::INFINITY } else { heap.last().unwrap().0 };
        match &self.nodes[n as usize] {
            Node::Leaf { start, end, bounds } => {
                if bounds.dist2_to_point(q) > worst {
                    return;
                }
                for i in *start as usize..*end as usize {
                    if !self.active[i] {
                        continue;
                    }
                    let (p, payload) = self.points[i];
                    if Some(payload) == exclude {
                        continue;
                    }
                    let d = p.dist2(q);
                    let worst = if heap.len() < k { f64::INFINITY } else { heap.last().unwrap().0 };
                    if d < worst {
                        let pos = heap.partition_point(|&(hd, _)| hd < d);
                        heap.insert(pos, (d, payload));
                        if heap.len() > k {
                            heap.pop();
                        }
                    }
                }
            }
            Node::Inner { axis, split, left, right, bounds } => {
                if bounds.dist2_to_point(q) > worst {
                    return;
                }
                let qk = if *axis == 0 { q.x } else { q.y };
                let (near, far) = if qk <= *split { (*left, *right) } else { (*right, *left) };
                self.knn_rec(near, q, exclude, k, heap);
                self.knn_rec(far, q, exclude, k, heap);
            }
        }
    }
}

impl SpatialIndex for KdTree {
    fn build(points: &[(Vec2, u32)]) -> Self {
        if points.is_empty() {
            return KdTree::default();
        }
        let mut pts = points.to_vec();
        let mut nodes = Vec::with_capacity(2 * points.len() / LEAF_SIZE + 1);
        let root = Self::build_rec(&mut pts, 0, &mut nodes);
        let live = pts.len();
        KdTree { nodes, active: vec![true; pts.len()], points: pts, root: Some(root), live }
    }

    fn range(&self, rect: &Rect, out: &mut Vec<u32>) {
        if let Some(r) = self.root {
            self.range_rec(r, rect, out);
        }
    }

    fn nearest(&self, q: Vec2, exclude: Option<u32>) -> Option<u32> {
        let r = self.root?;
        let mut best = (f64::INFINITY, None);
        self.nearest_rec(r, q, exclude, &mut best);
        best.1
    }

    /// Branch-and-bound k-NN over the tree: a sorted bounded buffer plays
    /// the max-heap, and subtree bounding boxes prune against its worst
    /// entry.
    fn k_nearest(&self, q: Vec2, k: usize, exclude: Option<u32>) -> Vec<u32> {
        if k == 0 || self.root.is_none() {
            return Vec::new();
        }
        let mut heap: Vec<(f64, u32)> = Vec::with_capacity(k + 1);
        self.knn_rec(self.root.unwrap(), q, exclude, k, &mut heap);
        heap.sort_by(|a, b| a.0.total_cmp(&b.0));
        heap.into_iter().map(|(_, p)| p).collect()
    }

    fn len(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ScanIndex;
    use brace_common::DetRng;

    fn random_points(n: usize, seed: u64) -> Vec<(Vec2, u32)> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n).map(|i| (Vec2::new(rng.range(-100.0, 100.0), rng.range(-100.0, 100.0)), i as u32)).collect()
    }

    #[test]
    fn empty_tree_behaves() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.nearest(Vec2::ZERO, None), None);
        assert_eq!(t.depth(), 0);
        assert!(t.bounds().is_empty());
        let mut out = Vec::new();
        t.range(&Rect::EVERYTHING, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(&[(Vec2::new(1.0, 2.0), 42)]);
        assert_eq!(t.nearest(Vec2::ZERO, None), Some(42));
        assert_eq!(t.nearest(Vec2::ZERO, Some(42)), None);
        let mut out = Vec::new();
        t.range(&Rect::centered(Vec2::new(1.0, 2.0), 0.1), &mut out);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn range_matches_scan_on_random_data() {
        let pts = random_points(500, 1);
        let tree = KdTree::build(&pts);
        let scan = ScanIndex::build(&pts);
        let mut rng = DetRng::seed_from_u64(2);
        for _ in 0..50 {
            let c = Vec2::new(rng.range(-110.0, 110.0), rng.range(-110.0, 110.0));
            let rect = Rect::centered(c, rng.range(0.0, 40.0));
            let mut a = Vec::new();
            let mut b = Vec::new();
            tree.range(&rect, &mut a);
            scan.range(&rect, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "range mismatch for {rect}");
        }
    }

    #[test]
    fn nearest_matches_scan_on_random_data() {
        let pts = random_points(300, 3);
        let tree = KdTree::build(&pts);
        let scan = ScanIndex::build(&pts);
        let mut rng = DetRng::seed_from_u64(4);
        for _ in 0..100 {
            let q = Vec2::new(rng.range(-120.0, 120.0), rng.range(-120.0, 120.0));
            let a = tree.nearest(q, None).unwrap();
            let b = scan.nearest(q, None).unwrap();
            // Distances must match (payload may differ on exact ties).
            let da = pts[a as usize].0.dist2(q);
            let db = pts[b as usize].0.dist2(q);
            assert!((da - db).abs() < 1e-12);
        }
    }

    #[test]
    fn knn_sorted_and_correct() {
        let pts = random_points(200, 5);
        let tree = KdTree::build(&pts);
        let q = Vec2::new(3.0, -7.0);
        let got = tree.k_nearest(q, 10, None);
        assert_eq!(got.len(), 10);
        // Verify ordering.
        let dists: Vec<f64> = got.iter().map(|&i| pts[i as usize].0.dist2(q)).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
        // Verify against brute force.
        let mut all: Vec<(f64, u32)> = pts.iter().map(|&(p, i)| (p.dist2(q), i)).collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0));
        let brute: Vec<f64> = all.iter().take(10).map(|&(d, _)| d).collect();
        for (g, b) in dists.iter().zip(&brute) {
            assert!((g - b).abs() < 1e-12);
        }
    }

    #[test]
    fn knn_more_than_available() {
        let pts = random_points(5, 6);
        let tree = KdTree::build(&pts);
        let got = tree.k_nearest(Vec2::ZERO, 10, None);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn duplicate_positions_all_reported() {
        let p = Vec2::new(1.0, 1.0);
        let pts: Vec<(Vec2, u32)> = (0..40).map(|i| (p, i)).collect();
        let tree = KdTree::build(&pts);
        let mut out = Vec::new();
        tree.range(&Rect::centered(p, 0.5), &mut out);
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn collinear_points_stay_balanced() {
        // Highway-like degenerate input: all on y = 0.
        let pts: Vec<(Vec2, u32)> = (0..1024).map(|i| (Vec2::new(i as f64, 0.0), i as u32)).collect();
        let tree = KdTree::build(&pts);
        // A balanced tree over 1024 points with leaves of 16 has depth ~7..9.
        assert!(tree.depth() <= 12, "depth {} too deep for collinear input", tree.depth());
        let mut out = Vec::new();
        tree.range(&Rect::from_bounds(10.0, 20.0, -1.0, 1.0), &mut out);
        out.sort_unstable();
        assert_eq!(out, (10..=20).collect::<Vec<u32>>());
    }

    #[test]
    fn deactivate_hides_from_all_queries() {
        let pts = random_points(100, 7);
        let mut tree = KdTree::build(&pts);
        assert_eq!(tree.live_len(), 100);
        let removed = tree.deactivate(17);
        assert_eq!(removed, 1);
        assert_eq!(tree.live_len(), 99);
        let mut out = Vec::new();
        tree.range(&Rect::EVERYTHING, &mut out);
        assert_eq!(out.len(), 99);
        assert!(!out.contains(&17));
        let q = pts[17].0;
        assert_ne!(tree.nearest(q, None), Some(17));
        assert!(!tree.k_nearest(q, 100, None).contains(&17));
        // Reactivate restores visibility.
        assert_eq!(tree.reactivate(17), 1);
        assert_eq!(tree.live_len(), 100);
        assert_eq!(tree.nearest(q, None), Some(17));
    }

    #[test]
    fn bounds_covers_all_points() {
        let pts = random_points(64, 8);
        let tree = KdTree::build(&pts);
        let b = tree.bounds();
        for &(p, _) in &pts {
            assert!(b.contains(p));
        }
    }
}
