//! A two-dimensional KD-tree (Bentley-style, array-backed).
//!
//! This is the index the BRACE prototype used ("a generic KD-tree based
//! spatial index capability \[3\]", citing Bentley's semidynamic k-d trees).
//! The implementation optimizes bulk build + query throughput:
//!
//! * nodes live in a flat `Vec` in build order (no per-node allocation);
//! * construction is the classic median split with Hoare partitioning
//!   (`select_nth_unstable_by`), alternating split axes — O(n log n);
//! * leaves hold up to a fixed number of points (16) and are scanned linearly, which
//!   beats deeper recursion for the query sizes behavioral simulations see;
//! * orthogonal range queries and nearest-neighbor search both prune by the
//!   node bounding boxes maintained during the build.
//!
//! Bentley's *semidynamic* flavor (delete/undelete without restructure) is
//! supported through [`KdTree::deactivate`]/[`KdTree::reactivate`]: the
//! predator model kills agents mid-tick-sequence and it is cheaper to mask
//! them than rebuild.
//!
//! # Incremental maintenance
//!
//! Because reachability bounds per-tick movement, the tree also supports
//! [`SpatialIndex::update`]: a moved point is overwritten in its slot and
//! the bounding boxes on its leaf-to-root path are *expanded* to cover the
//! new position. Expanded boxes keep every query exactly correct (pruning
//! is bounds-based only; split planes merely order the descent), they just
//! prune less as motion accumulates. [`SpatialIndex::maintain`] repairs
//! that lazily: each node counts the moves applied inside its subtree
//! since it was last built, and once the accumulated motion exceeds the
//! caller's budget, the *highest* subtrees whose move count crosses the
//! rebuild threshold are rebuilt in place (their point ranges are
//! contiguous by construction) while merely-grazed subtrees only re-tighten
//! their boxes. Localized motion therefore rebuilds localized subtrees;
//! whole-population drift degenerates to the full rebuild it genuinely
//! requires.

use crate::index::{dense_slots, knn_cmp, with_knn_scratch, SpatialIndex};
use brace_common::{Rect, Vec2};

/// Maximum number of points in a leaf node. 16 keeps the tree shallow while
/// the per-leaf scan stays within a cache line or two of point data.
const LEAF_SIZE: usize = 16;

/// Fraction of a subtree's points that must have moved before `maintain`
/// rebuilds it instead of re-tightening boxes along the touched paths.
const REBUILD_NUM: u32 = 1;
const REBUILD_DEN: u32 = 2;

#[derive(Debug, Clone)]
enum Node {
    /// Internal node: splits `axis` at `split`; children are `left`/`right`
    /// indices into the node vec. `bounds` is the bounding box of the whole
    /// subtree (used for pruning).
    Inner { axis: u8, split: f64, left: u32, right: u32, bounds: Rect },
    /// Leaf: a `start..end` range into the `points` array.
    Leaf { start: u32, end: u32, bounds: Rect },
}

impl Node {
    #[inline]
    fn bounds(&self) -> Rect {
        match self {
            Node::Inner { bounds, .. } | Node::Leaf { bounds, .. } => *bounds,
        }
    }
}

/// Array-backed 2-D KD-tree. See the module docs for design rationale.
#[derive(Debug, Clone, Default)]
pub struct KdTree {
    nodes: Vec<Node>,
    /// Points permuted into build order, so each leaf is a contiguous slice.
    points: Vec<(Vec2, u32)>,
    /// `active[i]` mirrors `points[i]`; deactivated points are invisible to
    /// all queries (Bentley's "deletion").
    active: Vec<bool>,
    root: Option<u32>,
    live: usize,
    // --- incremental-maintenance bookkeeping ------------------------------
    /// Parent node of each node (`u32::MAX` at the root).
    parent: Vec<u32>,
    /// Leaf node holding each point slot.
    leaf_of: Vec<u32>,
    /// `payload -> slot` when payloads are dense/unique; empty disables
    /// `update` (the caller rebuilds instead).
    slot_of: Vec<u32>,
    /// Moves applied within each node's subtree since it was (re)built.
    node_moves: Vec<u32>,
    /// Accumulated per-batch maximum L∞ displacement since the last
    /// restructure — compared against the caller's motion budget.
    stale_motion: f64,
}

impl KdTree {
    /// Bounding box of all points (empty rect for an empty tree).
    pub fn bounds(&self) -> Rect {
        match self.root {
            Some(r) => self.nodes[r as usize].bounds(),
            None => Rect::EMPTY,
        }
    }

    /// Depth of the tree (0 for empty); exposed for testing the build shape.
    pub fn depth(&self) -> usize {
        fn go(nodes: &[Node], n: u32) -> usize {
            match &nodes[n as usize] {
                Node::Leaf { .. } => 1,
                Node::Inner { left, right, .. } => 1 + go(nodes, *left).max(go(nodes, *right)),
            }
        }
        self.root.map_or(0, |r| go(&self.nodes, r))
    }

    /// Accumulated motion applied through [`SpatialIndex::update`] since
    /// the last restructure (diagnostic / policy input).
    pub fn stale_motion(&self) -> f64 {
        self.stale_motion
    }

    /// Mask every point carrying `payload` out of all queries. Returns how
    /// many points were newly deactivated. O(n) scan: payloads are not
    /// indexed because deactivation is rare compared to queries.
    pub fn deactivate(&mut self, payload: u32) -> usize {
        let mut n = 0;
        for (i, &(_, pl)) in self.points.iter().enumerate() {
            if pl == payload && self.active[i] {
                self.active[i] = false;
                n += 1;
            }
        }
        self.live -= n;
        n
    }

    /// Undo [`KdTree::deactivate`] for `payload`. Returns how many points
    /// were reactivated.
    pub fn reactivate(&mut self, payload: u32) -> usize {
        let mut n = 0;
        for (i, &(_, pl)) in self.points.iter().enumerate() {
            if pl == payload && !self.active[i] {
                self.active[i] = true;
                n += 1;
            }
        }
        self.live += n;
        n
    }

    /// Number of active (query-visible) points.
    pub fn live_len(&self) -> usize {
        self.live
    }

    fn build_rec(points: &mut [(Vec2, u32)], offset: u32, nodes: &mut Vec<Node>) -> u32 {
        let bounds = points.iter().fold(Rect::EMPTY, |b, &(p, _)| b.extended(p));
        if points.len() <= LEAF_SIZE {
            nodes.push(Node::Leaf { start: offset, end: offset + points.len() as u32, bounds });
            return (nodes.len() - 1) as u32;
        }
        // Split the wider axis of the actual bounding box rather than simply
        // alternating: degenerate distributions (all agents on a highway
        // line) otherwise produce sliver cells and deep trees.
        let axis = if bounds.width() >= bounds.height() { 0u8 } else { 1u8 };
        let mid = points.len() / 2;
        let key = |p: &(Vec2, u32)| if axis == 0 { p.0.x } else { p.0.y };
        points.select_nth_unstable_by(mid, |a, b| key(a).total_cmp(&key(b)));
        let split = key(&points[mid]);
        let (lo, hi) = points.split_at_mut(mid);
        let placeholder = nodes.len() as u32;
        nodes.push(Node::Leaf { start: 0, end: 0, bounds: Rect::EMPTY }); // patched below
        let left = Self::build_rec(lo, offset, nodes);
        let right = Self::build_rec(hi, offset + mid as u32, nodes);
        nodes[placeholder as usize] = Node::Inner { axis, split, left, right, bounds };
        placeholder
    }

    /// (Re)derive parent links, slot→leaf and payload→slot maps for the
    /// subtree at `n` (whose leaves cover a contiguous slot range).
    fn assign_topology(&mut self, n: u32, parent: u32) {
        self.parent[n as usize] = parent;
        match self.nodes[n as usize] {
            Node::Leaf { start, end, .. } => {
                for i in start..end {
                    self.leaf_of[i as usize] = n;
                    let payload = self.points[i as usize].1;
                    if let Some(slot) = self.slot_of.get_mut(payload as usize) {
                        *slot = i;
                    }
                }
            }
            Node::Inner { left, right, .. } => {
                self.assign_topology(left, n);
                self.assign_topology(right, n);
            }
        }
    }

    /// Rebuild the whole tree in place from the current point positions,
    /// compacting the node arena (garbage from subtree rebuilds is dropped).
    fn rebuild_full(&mut self) {
        if self.points.is_empty() {
            return;
        }
        self.nodes.clear();
        let root = Self::build_rec(&mut self.points, 0, &mut self.nodes);
        self.root = Some(root);
        self.parent.clear();
        self.parent.resize(self.nodes.len(), u32::MAX);
        self.node_moves.clear();
        self.node_moves.resize(self.nodes.len(), 0);
        self.leaf_of.resize(self.points.len(), 0);
        self.assign_topology(root, u32::MAX);
        self.stale_motion = 0.0;
    }

    /// First and one-past-last point slot of the subtree at `n` (contiguous
    /// by construction).
    fn subtree_range(&self, n: u32) -> (u32, u32) {
        let mut lo = n;
        let start = loop {
            match &self.nodes[lo as usize] {
                Node::Leaf { start, .. } => break *start,
                Node::Inner { left, .. } => lo = *left,
            }
        };
        let mut hi = n;
        let end = loop {
            match &self.nodes[hi as usize] {
                Node::Leaf { end, .. } => break *end,
                Node::Inner { right, .. } => hi = *right,
            }
        };
        (start, end)
    }

    /// Rebuild the subtree at `n` over its contiguous slot range, patch the
    /// parent's child pointer, and re-derive the topology maps for the
    /// range. Returns the replacement node. The old nodes become
    /// unreachable garbage (reclaimed by the next full rebuild).
    fn rebuild_subtree(&mut self, n: u32) -> u32 {
        let parent = self.parent[n as usize];
        if parent == u32::MAX {
            self.rebuild_full();
            return self.root.expect("non-empty tree");
        }
        let (start, end) = self.subtree_range(n);
        let new = Self::build_rec(&mut self.points[start as usize..end as usize], start, &mut self.nodes);
        match &mut self.nodes[parent as usize] {
            Node::Inner { left, right, .. } => {
                if *left == n {
                    *left = new;
                } else {
                    debug_assert_eq!(*right, n, "stale parent link");
                    *right = new;
                }
            }
            Node::Leaf { .. } => unreachable!("leaf cannot be a parent"),
        }
        self.parent.resize(self.nodes.len(), u32::MAX);
        self.node_moves.resize(self.nodes.len(), 0);
        self.assign_topology(new, parent);
        new
    }

    /// The `maintain` walk: rebuild the highest subtrees whose move count
    /// crossed the threshold; re-tighten the boxes of subtrees that were
    /// only grazed. Returns the node's (possibly replaced) tight bounds.
    fn maintain_rec(&mut self, n: u32) -> Rect {
        if self.node_moves[n as usize] == 0 {
            return self.nodes[n as usize].bounds();
        }
        match self.nodes[n as usize] {
            Node::Leaf { start, end, .. } => {
                let tight =
                    self.points[start as usize..end as usize].iter().fold(Rect::EMPTY, |b, &(p, _)| b.extended(p));
                if let Node::Leaf { bounds, .. } = &mut self.nodes[n as usize] {
                    *bounds = tight;
                }
                self.node_moves[n as usize] = 0;
                tight
            }
            Node::Inner { left, right, .. } => {
                let (start, end) = self.subtree_range(n);
                let len = end - start;
                if self.node_moves[n as usize].saturating_mul(REBUILD_DEN) >= len * REBUILD_NUM {
                    let new = self.rebuild_subtree(n);
                    return self.nodes[new as usize].bounds();
                }
                let lb = self.maintain_rec(left);
                let rb = self.maintain_rec(right);
                let tight = lb.union(&rb);
                if let Node::Inner { bounds, .. } = &mut self.nodes[n as usize] {
                    *bounds = tight;
                }
                self.node_moves[n as usize] = 0;
                tight
            }
        }
    }

    fn range_rec(&self, n: u32, rect: &Rect, out: &mut Vec<u32>) {
        match &self.nodes[n as usize] {
            Node::Leaf { start, end, bounds } => {
                if !rect.intersects(bounds) {
                    return;
                }
                for i in *start as usize..*end as usize {
                    if self.active[i] && rect.contains(self.points[i].0) {
                        out.push(self.points[i].1);
                    }
                }
            }
            Node::Inner { left, right, bounds, .. } => {
                if !rect.intersects(bounds) {
                    return;
                }
                if rect.contains_rect(bounds) {
                    // Whole subtree inside the query: report without tests.
                    self.report_subtree(n, out);
                    return;
                }
                self.range_rec(*left, rect, out);
                self.range_rec(*right, rect, out);
            }
        }
    }

    /// The batched-range walk: fully contained subtrees report their
    /// payloads directly (no test needed, exactly like [`KdTree::range_rec`]);
    /// boundary leaves gather their active points into the SoA scratch for
    /// one lane-kernel containment pass afterwards. The candidate *set*
    /// equals `range`'s; order may differ, which is fine — the KD-tree is
    /// not `RANGE_CANONICAL` and callers sort either way.
    fn gather_rec(&self, n: u32, rect: &Rect, s: &mut crate::kernels::GatherScratch, out: &mut Vec<u32>) {
        match &self.nodes[n as usize] {
            Node::Leaf { start, end, bounds } => {
                if !rect.intersects(bounds) {
                    return;
                }
                if rect.contains_rect(bounds) {
                    self.report_subtree(n, out);
                    return;
                }
                for i in *start as usize..*end as usize {
                    if self.active[i] {
                        let (p, payload) = self.points[i];
                        s.push(p.x, p.y, payload);
                    }
                }
            }
            Node::Inner { left, right, bounds, .. } => {
                if !rect.intersects(bounds) {
                    return;
                }
                if rect.contains_rect(bounds) {
                    self.report_subtree(n, out);
                    return;
                }
                self.gather_rec(*left, rect, s, out);
                self.gather_rec(*right, rect, s, out);
            }
        }
    }

    fn report_subtree(&self, n: u32, out: &mut Vec<u32>) {
        match &self.nodes[n as usize] {
            Node::Leaf { start, end, .. } => {
                for i in *start as usize..*end as usize {
                    if self.active[i] {
                        out.push(self.points[i].1);
                    }
                }
            }
            Node::Inner { left, right, .. } => {
                self.report_subtree(*left, out);
                self.report_subtree(*right, out);
            }
        }
    }

    fn nearest_rec(&self, n: u32, q: Vec2, exclude: Option<u32>, best: &mut (f64, Option<u32>)) {
        match &self.nodes[n as usize] {
            Node::Leaf { start, end, bounds } => {
                if bounds.dist2_to_point(q) > best.0 {
                    return;
                }
                for i in *start as usize..*end as usize {
                    if !self.active[i] {
                        continue;
                    }
                    let (p, payload) = self.points[i];
                    if Some(payload) == exclude {
                        continue;
                    }
                    let d = p.dist2(q);
                    if d < best.0 {
                        *best = (d, Some(payload));
                    }
                }
            }
            Node::Inner { axis, split, left, right, bounds } => {
                if bounds.dist2_to_point(q) > best.0 {
                    return;
                }
                let qk = if *axis == 0 { q.x } else { q.y };
                // Descend the side containing q first so `best` shrinks
                // early and prunes the far side.
                let (near, far) = if qk <= *split { (*left, *right) } else { (*right, *left) };
                self.nearest_rec(near, q, exclude, best);
                self.nearest_rec(far, q, exclude, best);
            }
        }
    }

    fn knn_rec(&self, n: u32, q: Vec2, exclude: Option<u32>, k: usize, heap: &mut Vec<(f64, u32)>) {
        let worst = if heap.len() < k { f64::INFINITY } else { heap.last().unwrap().0 };
        match &self.nodes[n as usize] {
            Node::Leaf { start, end, bounds } => {
                if bounds.dist2_to_point(q) > worst {
                    return;
                }
                for i in *start as usize..*end as usize {
                    if !self.active[i] {
                        continue;
                    }
                    let (p, payload) = self.points[i];
                    if Some(payload) == exclude {
                        continue;
                    }
                    let cand = (p.dist2(q), payload);
                    // Canonical (distance, payload) order so ties resolve
                    // identically for every build history.
                    if heap.len() < k || knn_cmp(&cand, heap.last().unwrap()).is_lt() {
                        let pos = heap.partition_point(|h| knn_cmp(h, &cand).is_lt());
                        heap.insert(pos, cand);
                        if heap.len() > k {
                            heap.pop();
                        }
                    }
                }
            }
            Node::Inner { axis, split, left, right, bounds } => {
                if bounds.dist2_to_point(q) > worst {
                    return;
                }
                let qk = if *axis == 0 { q.x } else { q.y };
                let (near, far) = if qk <= *split { (*left, *right) } else { (*right, *left) };
                self.knn_rec(near, q, exclude, k, heap);
                self.knn_rec(far, q, exclude, k, heap);
            }
        }
    }
}

impl SpatialIndex for KdTree {
    fn build(points: &[(Vec2, u32)]) -> Self {
        if points.is_empty() {
            return KdTree::default();
        }
        let mut tree = KdTree {
            points: points.to_vec(),
            active: vec![true; points.len()],
            live: points.len(),
            slot_of: dense_slots(points).unwrap_or_default(),
            ..KdTree::default()
        };
        tree.rebuild_full();
        tree
    }

    fn range(&self, rect: &Rect, out: &mut Vec<u32>) {
        if let Some(r) = self.root {
            self.range_rec(r, rect, out);
        }
    }

    fn range_batch(&self, rect: &Rect, out: &mut Vec<u32>) {
        let Some(r) = self.root else { return };
        crate::kernels::with_gather_scratch(|s| {
            s.clear();
            self.gather_rec(r, rect, s, out);
            crate::kernels::filter_rect(&s.xs, &s.ys, &s.payloads, rect, out);
        });
    }

    fn nearest(&self, q: Vec2, exclude: Option<u32>) -> Option<u32> {
        let r = self.root?;
        let mut best = (f64::INFINITY, None);
        self.nearest_rec(r, q, exclude, &mut best);
        best.1
    }

    /// Branch-and-bound k-NN over the tree: a sorted bounded buffer plays
    /// the max-heap, and subtree bounding boxes prune against its worst
    /// entry.
    fn k_nearest_into(&self, q: Vec2, k: usize, exclude: Option<u32>, out: &mut Vec<u32>) {
        out.clear();
        let Some(root) = self.root else { return };
        if k == 0 {
            return;
        }
        with_knn_scratch(|heap| {
            heap.clear();
            self.knn_rec(root, q, exclude, k, heap);
            out.extend(heap.iter().map(|&(_, p)| p));
        });
    }

    fn update(&mut self, moved: &[(u32, Vec2)]) -> bool {
        if moved.is_empty() {
            return true;
        }
        if self.root.is_none() || self.slot_of.is_empty() || self.live != self.points.len() {
            return false;
        }
        // Dense batches (whole-population drift) would pay the per-point
        // leaf-to-root walk *and* promptly cross the restructure threshold
        // anyway — a straight rebuild is strictly cheaper, so decline and
        // let the caller rebuild. In-place maintenance is the win for
        // sparse/localized motion.
        if moved.len() * 2 >= self.points.len() {
            return false;
        }
        let mut batch_motion = 0.0f64;
        for &(payload, new) in moved {
            let slot = match self.slot_of.get(payload as usize) {
                Some(&s) if s != u32::MAX => s as usize,
                _ => return false,
            };
            let old = self.points[slot].0;
            batch_motion = batch_motion.max(old.dist_linf(new));
            self.points[slot].0 = new;
            // Expand boxes and bump move counters on the leaf-to-root path.
            let mut n = self.leaf_of[slot];
            loop {
                self.node_moves[n as usize] = self.node_moves[n as usize].saturating_add(1);
                match &mut self.nodes[n as usize] {
                    Node::Inner { bounds, .. } | Node::Leaf { bounds, .. } => *bounds = bounds.extended(new),
                }
                match self.parent[n as usize] {
                    u32::MAX => break,
                    p => n = p,
                }
            }
        }
        self.stale_motion += batch_motion;
        true
    }

    fn maintain(&mut self, motion_budget: f64) {
        let Some(root) = self.root else { return };
        if self.stale_motion <= motion_budget || self.live != self.points.len() {
            return;
        }
        // Subtree rebuilds leave garbage nodes behind; once the arena has
        // doubled past the compact size, a full rebuild is cheaper than
        // carrying the slack.
        let compact = 2 * self.points.len() / LEAF_SIZE + 1;
        if self.nodes.len() > 2 * compact {
            self.rebuild_full();
            return;
        }
        self.maintain_rec(root);
        self.stale_motion = 0.0;
    }

    fn len(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ScanIndex;
    use brace_common::DetRng;

    fn random_points(n: usize, seed: u64) -> Vec<(Vec2, u32)> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n).map(|i| (Vec2::new(rng.range(-100.0, 100.0), rng.range(-100.0, 100.0)), i as u32)).collect()
    }

    /// Collecting k-NN helper for assertions over `k_nearest_into`.
    fn knn(t: &KdTree, q: Vec2, k: usize, exclude: Option<u32>) -> Vec<u32> {
        let mut out = Vec::new();
        t.k_nearest_into(q, k, exclude, &mut out);
        out
    }

    #[test]
    fn empty_tree_behaves() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.nearest(Vec2::ZERO, None), None);
        assert_eq!(t.depth(), 0);
        assert!(t.bounds().is_empty());
        let mut out = Vec::new();
        t.range(&Rect::EVERYTHING, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(&[(Vec2::new(1.0, 2.0), 42)]);
        assert_eq!(t.nearest(Vec2::ZERO, None), Some(42));
        assert_eq!(t.nearest(Vec2::ZERO, Some(42)), None);
        let mut out = Vec::new();
        t.range(&Rect::centered(Vec2::new(1.0, 2.0), 0.1), &mut out);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn range_matches_scan_on_random_data() {
        let pts = random_points(500, 1);
        let tree = KdTree::build(&pts);
        let scan = ScanIndex::build(&pts);
        let mut rng = DetRng::seed_from_u64(2);
        for _ in 0..50 {
            let c = Vec2::new(rng.range(-110.0, 110.0), rng.range(-110.0, 110.0));
            let rect = Rect::centered(c, rng.range(0.0, 40.0));
            let mut a = Vec::new();
            let mut b = Vec::new();
            tree.range(&rect, &mut a);
            scan.range(&rect, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "range mismatch for {rect}");
        }
    }

    #[test]
    fn nearest_matches_scan_on_random_data() {
        let pts = random_points(300, 3);
        let tree = KdTree::build(&pts);
        let scan = ScanIndex::build(&pts);
        let mut rng = DetRng::seed_from_u64(4);
        for _ in 0..100 {
            let q = Vec2::new(rng.range(-120.0, 120.0), rng.range(-120.0, 120.0));
            let a = tree.nearest(q, None).unwrap();
            let b = scan.nearest(q, None).unwrap();
            // Distances must match (payload may differ on exact ties).
            let da = pts[a as usize].0.dist2(q);
            let db = pts[b as usize].0.dist2(q);
            assert!((da - db).abs() < 1e-12);
        }
    }

    #[test]
    fn knn_sorted_and_correct() {
        let pts = random_points(200, 5);
        let tree = KdTree::build(&pts);
        let q = Vec2::new(3.0, -7.0);
        let got = knn(&tree, q, 10, None);
        assert_eq!(got.len(), 10);
        // Verify ordering.
        let dists: Vec<f64> = got.iter().map(|&i| pts[i as usize].0.dist2(q)).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
        // Verify against brute force.
        let mut all: Vec<(f64, u32)> = pts.iter().map(|&(p, i)| (p.dist2(q), i)).collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0));
        let brute: Vec<f64> = all.iter().take(10).map(|&(d, _)| d).collect();
        for (g, b) in dists.iter().zip(&brute) {
            assert!((g - b).abs() < 1e-12);
        }
    }

    #[test]
    fn knn_more_than_available() {
        let pts = random_points(5, 6);
        let tree = KdTree::build(&pts);
        let got = knn(&tree, Vec2::ZERO, 10, None);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn knn_into_reuses_buffer() {
        let pts = random_points(64, 9);
        let tree = KdTree::build(&pts);
        let mut out = vec![99u32; 32];
        tree.k_nearest_into(Vec2::ZERO, 4, None, &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out, knn(&tree, Vec2::ZERO, 4, None));
    }

    #[test]
    fn knn_ties_break_by_payload() {
        // Four coincident points: the canonical result is ascending payload.
        let p = Vec2::new(1.0, 1.0);
        let pts = vec![(p, 3), (p, 1), (p, 2), (p, 0)];
        let tree = KdTree::build(&pts);
        assert_eq!(knn(&tree, Vec2::ZERO, 3, None), vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_positions_all_reported() {
        let p = Vec2::new(1.0, 1.0);
        let pts: Vec<(Vec2, u32)> = (0..40).map(|i| (p, i)).collect();
        let tree = KdTree::build(&pts);
        let mut out = Vec::new();
        tree.range(&Rect::centered(p, 0.5), &mut out);
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn collinear_points_stay_balanced() {
        // Highway-like degenerate input: all on y = 0.
        let pts: Vec<(Vec2, u32)> = (0..1024).map(|i| (Vec2::new(i as f64, 0.0), i as u32)).collect();
        let tree = KdTree::build(&pts);
        // A balanced tree over 1024 points with leaves of 16 has depth ~7..9.
        assert!(tree.depth() <= 12, "depth {} too deep for collinear input", tree.depth());
        let mut out = Vec::new();
        tree.range(&Rect::from_bounds(10.0, 20.0, -1.0, 1.0), &mut out);
        out.sort_unstable();
        assert_eq!(out, (10..=20).collect::<Vec<u32>>());
    }

    #[test]
    fn deactivate_hides_from_all_queries() {
        let pts = random_points(100, 7);
        let mut tree = KdTree::build(&pts);
        assert_eq!(tree.live_len(), 100);
        let removed = tree.deactivate(17);
        assert_eq!(removed, 1);
        assert_eq!(tree.live_len(), 99);
        let mut out = Vec::new();
        tree.range(&Rect::EVERYTHING, &mut out);
        assert_eq!(out.len(), 99);
        assert!(!out.contains(&17));
        let q = pts[17].0;
        assert_ne!(tree.nearest(q, None), Some(17));
        assert!(!knn(&tree, q, 100, None).contains(&17));
        // Reactivate restores visibility.
        assert_eq!(tree.reactivate(17), 1);
        assert_eq!(tree.live_len(), 100);
        assert_eq!(tree.nearest(q, None), Some(17));
        // A deactivated tree refuses in-place updates (the mask would be
        // permuted by a rebuild).
        tree.deactivate(3);
        assert!(!tree.update(&[(5, Vec2::ZERO)]));
    }

    #[test]
    fn bounds_covers_all_points() {
        let pts = random_points(64, 8);
        let tree = KdTree::build(&pts);
        let b = tree.bounds();
        for &(p, _) in &pts {
            assert!(b.contains(p));
        }
    }

    /// Reference check: after arbitrary bounded moves + maintain, every
    /// query answers exactly like a fresh build over the moved points.
    #[test]
    fn incremental_updates_match_fresh_rebuild() {
        let mut pts = random_points(400, 21);
        let mut tree = KdTree::build(&pts);
        let mut rng = DetRng::seed_from_u64(22);
        for round in 0..12 {
            // Bounded per-tick motion, heavier in one corner so some
            // subtrees cross the rebuild threshold while others are idle.
            let moved: Vec<(u32, Vec2)> = pts
                .iter()
                .filter(|&&(p, _)| p.x < 0.0 || round % 3 == 0)
                .map(|&(p, payload)| (payload, p + Vec2::new(rng.range(-0.9, 0.9), rng.range(-0.9, 0.9))))
                .collect();
            for &(payload, new) in &moved {
                pts[payload as usize].0 = new;
            }
            // Dense batches are declined by contract (rebuild is cheaper);
            // that is exactly what the executor does on `false`.
            if !tree.update(&moved) {
                tree = KdTree::build(&pts);
            }
            tree.maintain(2.0);
            let fresh = KdTree::build(&pts);
            let mut probe_rng = DetRng::seed_from_u64(round);
            for _ in 0..30 {
                let c = Vec2::new(probe_rng.range(-110.0, 110.0), probe_rng.range(-110.0, 110.0));
                let rect = Rect::centered(c, probe_rng.range(0.0, 20.0));
                let (mut a, mut b) = (Vec::new(), Vec::new());
                tree.range(&rect, &mut a);
                fresh.range(&rect, &mut b);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "range diverged after incremental maintenance");
                assert_eq!(knn(&tree, c, 5, None), knn(&fresh, c, 5, None), "k-NN diverged");
            }
        }
    }

    /// Localized motion must not force a full rebuild: subtree rebuilds
    /// keep the arena bounded and reset staleness.
    #[test]
    fn maintain_resets_staleness() {
        let pts = random_points(256, 23);
        let mut tree = KdTree::build(&pts);
        let moved: Vec<(u32, Vec2)> = (0..32u32).map(|i| (i, pts[i as usize].0 + Vec2::new(0.5, 0.5))).collect();
        assert!(tree.update(&moved));
        assert!(tree.stale_motion() > 0.0);
        tree.maintain(0.0);
        assert_eq!(tree.stale_motion(), 0.0);
    }
}
