//! Quadtree spatial partitioning.
//!
//! The paper names two candidate partitioning functions: "a regular grid or
//! a quadtree" (§3.2, Appendix A). The grid ([`GridPartitioning`](crate::partition::GridPartitioning)) is what
//! the prototype's 1-D load balancer manages; the quadtree is the
//! *adaptive* alternative — it subdivides space until no leaf holds more
//! than a target number of agents, so a skewed initial distribution (a
//! dense school in an empty ocean) gets balanced partitions without any
//! balancing protocol. The trade-off: boundaries are fixed at construction
//! (rebuilding mid-run would transfer many agents), so the quadtree suits
//! workloads whose density profile is stable, the grid+balancer suits
//! drifting ones.
//!
//! The tree is built over a sample of agent positions and then *flattened*:
//! leaves are numbered left-to-right and become the partitions. Ownership
//! lookups descend the tree (O(depth)); replica enumeration walks exactly
//! the subtrees intersecting the dilated query box.

use crate::partition::Partitioner;
use brace_common::{PartitionId, Rect, Vec2};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum QNode {
    /// Leaf: partition id.
    Leaf(u32),
    /// Internal: children in quadrant order [SW, SE, NW, NE], split at
    /// `(cx, cy)`.
    Inner { cx: f64, cy: f64, children: [usize; 4] },
}

/// Adaptive quadtree partitioning. Construct with [`QuadTreePartitioning::build`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuadTreePartitioning {
    nodes: Vec<QNode>,
    root: usize,
    bounds: Rect,
    /// Owned region per partition (border leaves extended to infinity so
    /// the partitioning covers the plane).
    regions: Vec<Rect>,
}

impl QuadTreePartitioning {
    /// Build over `points`: subdivide `bounds` until every leaf holds at
    /// most `max_per_leaf` of the given points or `max_depth` is reached.
    pub fn build(points: &[Vec2], bounds: Rect, max_per_leaf: usize, max_depth: u32) -> Self {
        assert!(!bounds.is_empty(), "quadtree needs a non-empty bounding box");
        assert!(max_per_leaf > 0, "leaf capacity must be positive");
        let mut nodes = Vec::new();
        let mut regions = Vec::new();
        let idx: Vec<usize> = (0..points.len()).collect();
        let root = Self::build_rec(points, idx, bounds, max_per_leaf, max_depth, &mut nodes, &mut regions);
        // Extend border regions to infinity (clamping semantics).
        let mut out = QuadTreePartitioning { nodes, root, bounds, regions };
        for r in &mut out.regions {
            if r.lo.x <= bounds.lo.x {
                r.lo.x = f64::NEG_INFINITY;
            }
            if r.lo.y <= bounds.lo.y {
                r.lo.y = f64::NEG_INFINITY;
            }
            if r.hi.x >= bounds.hi.x {
                r.hi.x = f64::INFINITY;
            }
            if r.hi.y >= bounds.hi.y {
                r.hi.y = f64::INFINITY;
            }
        }
        out
    }

    fn build_rec(
        points: &[Vec2],
        idx: Vec<usize>,
        cell: Rect,
        cap: usize,
        depth_left: u32,
        nodes: &mut Vec<QNode>,
        regions: &mut Vec<Rect>,
    ) -> usize {
        if idx.len() <= cap || depth_left == 0 {
            let pid = regions.len() as u32;
            regions.push(cell);
            nodes.push(QNode::Leaf(pid));
            return nodes.len() - 1;
        }
        let c = cell.center();
        let mut quads: [Vec<usize>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for i in idx {
            let p = points[i];
            let q = Self::quadrant(p, c.x, c.y);
            quads[q].push(i);
        }
        let children_cells = [
            Rect::new(cell.lo, c),
            Rect::from_bounds(c.x, cell.hi.x, cell.lo.y, c.y),
            Rect::from_bounds(cell.lo.x, c.x, c.y, cell.hi.y),
            Rect::new(c, cell.hi),
        ];
        let slot = nodes.len();
        nodes.push(QNode::Leaf(u32::MAX)); // placeholder, patched below
        let mut children = [0usize; 4];
        for (q, (sub, sub_cell)) in quads.into_iter().zip(children_cells).enumerate() {
            children[q] = Self::build_rec(points, sub, sub_cell, cap, depth_left - 1, nodes, regions);
        }
        nodes[slot] = QNode::Inner { cx: c.x, cy: c.y, children };
        slot
    }

    /// Quadrant of `p` relative to split `(cx, cy)`: SW=0, SE=1, NW=2, NE=3.
    #[inline]
    fn quadrant(p: Vec2, cx: f64, cy: f64) -> usize {
        ((p.x >= cx) as usize) | (((p.y >= cy) as usize) << 1)
    }

    /// Leaves = partitions.
    pub fn num_leaves(&self) -> usize {
        self.regions.len()
    }

    /// Tree depth (1 = a single leaf).
    pub fn depth(&self) -> usize {
        fn go(nodes: &[QNode], n: usize) -> usize {
            match &nodes[n] {
                QNode::Leaf(_) => 1,
                QNode::Inner { children, .. } => 1 + children.iter().map(|&c| go(nodes, c)).max().unwrap(),
            }
        }
        go(&self.nodes, self.root)
    }

    fn collect_intersecting(&self, n: usize, query: &Rect, out: &mut Vec<PartitionId>) {
        match &self.nodes[n] {
            QNode::Leaf(pid) => {
                if query.intersects(&self.regions[*pid as usize]) {
                    out.push(PartitionId::new(*pid));
                }
            }
            QNode::Inner { children, .. } => {
                for &c in children {
                    self.collect_intersecting(c, query, out);
                }
            }
        }
    }
}

impl Partitioner for QuadTreePartitioning {
    fn num_partitions(&self) -> usize {
        self.regions.len()
    }

    fn partition_of(&self, p: Vec2) -> PartitionId {
        // Clamp into bounds, then descend.
        let p = p.clamped(&Rect::new(self.bounds.lo, self.bounds.hi));
        let mut n = self.root;
        loop {
            match &self.nodes[n] {
                QNode::Leaf(pid) => return PartitionId::new(*pid),
                QNode::Inner { cx, cy, children } => {
                    n = children[Self::quadrant(p, *cx, *cy)];
                }
            }
        }
    }

    fn owned_region(&self, pid: PartitionId) -> Rect {
        self.regions[pid.index()]
    }

    fn replica_targets(&self, p: Vec2, vis: f64, out: &mut Vec<PartitionId>) {
        let query = Rect::centered(p, vis);
        self.collect_intersecting(self.root, &query, out);
        // `intersects` over the extended border regions covers the clamped
        // semantics; ensure the owner is present even for far-out points.
        let owner = self.partition_of(p);
        if !out.contains(&owner) {
            out.push(owner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::{nested_loop_join, partitioned_join};
    use brace_common::DetRng;

    fn clustered_points(n: usize, seed: u64) -> Vec<Vec2> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                if rng.chance(0.8) {
                    // Dense cluster in one corner.
                    Vec2::new(rng.range(0.0, 10.0), rng.range(0.0, 10.0))
                } else {
                    Vec2::new(rng.range(0.0, 100.0), rng.range(0.0, 100.0))
                }
            })
            .collect()
    }

    fn space() -> Rect {
        Rect::from_bounds(0.0, 100.0, 0.0, 100.0)
    }

    #[test]
    fn single_leaf_when_under_capacity() {
        let pts = vec![Vec2::new(1.0, 1.0); 5];
        let qt = QuadTreePartitioning::build(&pts, space(), 10, 8);
        assert_eq!(qt.num_leaves(), 1);
        assert_eq!(qt.depth(), 1);
        assert_eq!(qt.partition_of(Vec2::new(50.0, 50.0)), PartitionId::new(0));
    }

    #[test]
    fn subdivides_dense_regions_deeper() {
        let pts = clustered_points(400, 1);
        let qt = QuadTreePartitioning::build(&pts, space(), 32, 8);
        assert!(qt.num_leaves() > 4, "skew must force subdivision, got {}", qt.num_leaves());
        // Leaves in the dense corner are small; far corner stays coarse.
        let dense = qt.owned_region(qt.partition_of(Vec2::new(5.0, 5.0)));
        let sparse = qt.owned_region(qt.partition_of(Vec2::new(90.0, 90.0)));
        let finite_area = |r: Rect| {
            let rr = r.intersection(&space());
            rr.area()
        };
        assert!(
            finite_area(dense) < finite_area(sparse),
            "dense leaf {dense} should be smaller than sparse leaf {sparse}"
        );
    }

    #[test]
    fn ownership_matches_owned_regions() {
        let pts = clustered_points(300, 2);
        let qt = QuadTreePartitioning::build(&pts, space(), 16, 8);
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..500 {
            let p = Vec2::new(rng.range(-20.0, 120.0), rng.range(-20.0, 120.0));
            let owner = qt.partition_of(p);
            assert!(qt.owned_region(owner).contains(p), "{p} not inside its owner's region {}", qt.owned_region(owner));
        }
    }

    #[test]
    fn owned_set_sizes_are_balanced_on_skewed_data() {
        let pts = clustered_points(1000, 4);
        let qt = QuadTreePartitioning::build(&pts, space(), 64, 10);
        let mut counts = vec![0usize; qt.num_partitions()];
        for &p in &pts {
            counts[qt.partition_of(p).index()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max <= 64, "no leaf may exceed its capacity, got {max}");
    }

    #[test]
    fn replica_targets_match_visible_region_definition() {
        let pts = clustered_points(200, 5);
        let qt = QuadTreePartitioning::build(&pts, space(), 16, 8);
        let mut rng = DetRng::seed_from_u64(6);
        for _ in 0..300 {
            let p = Vec2::new(rng.range(-5.0, 105.0), rng.range(-5.0, 105.0));
            let vis = rng.range(0.0, 15.0);
            let mut targets = Vec::new();
            qt.replica_targets(p, vis, &mut targets);
            targets.sort_unstable();
            targets.dedup();
            let expected: Vec<PartitionId> = (0..qt.num_partitions())
                .map(|i| PartitionId::new(i as u32))
                .filter(|&pid| qt.visible_region(pid, vis).contains(p))
                .collect();
            assert_eq!(targets, expected, "p={p} vis={vis}");
        }
    }

    #[test]
    fn partitioned_join_through_quadtree_equals_reference() {
        let pts = clustered_points(250, 7);
        let qt = QuadTreePartitioning::build(&pts, space(), 24, 8);
        for vis in [0.5, 2.0, 8.0] {
            let mut reference = nested_loop_join(&pts, vis);
            let mut got = partitioned_join(&pts, &qt, vis);
            reference.sort_unstable();
            got.sort_unstable();
            assert_eq!(reference, got, "vis={vis}");
        }
    }

    #[test]
    fn max_depth_caps_subdivision() {
        // Everything at one point: capacity can never be met, depth must cap.
        let pts = vec![Vec2::new(1.0, 1.0); 100];
        let qt = QuadTreePartitioning::build(&pts, space(), 2, 3);
        assert!(qt.depth() <= 4); // root + 3 levels
    }
}
