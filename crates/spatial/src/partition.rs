//! Spatial partitioning — the function `P : L → P` of the paper's
//! Appendix A.
//!
//! The map tasks use a partitioning function to assign each agent to a
//! disjoint region of space (its *owner*) and to compute which other
//! partitions need a *replica* of the agent because it falls inside their
//! visible region `VR(p) = owned(p) ⊕ visibility`. The BRACE prototype used
//! "a simple rectilinear grid partitioning scheme, which assigns each grid
//! cell to a separate slave node", with a one-dimensional load balancer that
//! moves the cell boundaries. [`GridPartitioning`] implements exactly that:
//! sorted boundary arrays per axis, movable at epoch boundaries.

use brace_common::{PartitionId, Rect, Vec2};
use serde::{Deserialize, Serialize};

/// A spatial partitioning function.
///
/// Implementations must cover all of space: every position maps to exactly
/// one owning partition (points outside the configured bounds clamp to the
/// border cells — the fish "ocean" is unbounded).
pub trait Partitioner: Send + Sync {
    /// Total number of partitions.
    fn num_partitions(&self) -> usize;

    /// The unique owner of position `p`.
    fn partition_of(&self, p: Vec2) -> PartitionId;

    /// The owned region of `pid`. Border cells extend to infinity so that
    /// the owned regions tile the whole plane.
    fn owned_region(&self, pid: PartitionId) -> Rect;

    /// Append to `out` every partition whose *visible region* (owned region
    /// expanded by `vis`) contains `p` — i.e. every partition that must
    /// receive a replica of an agent at `p`. The owner itself is always
    /// included. `vis` is the visibility bound in L∞ (rectangular ranges).
    fn replica_targets(&self, p: Vec2, vis: f64, out: &mut Vec<PartitionId>);

    /// The visible region of a partition: `VR(p) = ⋃_{l ∈ owned(p)} VR(l)`.
    fn visible_region(&self, pid: PartitionId, vis: f64) -> Rect {
        self.owned_region(pid).expanded(vis)
    }
}

/// Rectilinear grid partitioning with movable boundaries.
///
/// `cols × rows` cells; cell `(ci, ri)` is partition `ri * cols + ci`.
/// Column boundaries (`x_bounds`, length `cols + 1`) and row boundaries
/// (`y_bounds`, length `rows + 1`) are strictly increasing; the outermost
/// boundaries are conceptual only — ownership clamps to the border cells, so
/// the partitioning covers unbounded space.
///
/// The 1-D load balancer of the paper corresponds to `rows == 1` with
/// movable `x_bounds`; the constructor [`GridPartitioning::columns`] builds
/// that directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPartitioning {
    x_bounds: Vec<f64>,
    y_bounds: Vec<f64>,
}

impl GridPartitioning {
    /// Uniform `cols × rows` grid over `space`.
    pub fn uniform(space: Rect, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid needs at least one cell");
        assert!(!space.is_empty(), "space must be non-empty");
        let x_bounds = (0..=cols).map(|i| space.lo.x + space.width() * i as f64 / cols as f64).collect();
        let y_bounds = (0..=rows).map(|i| space.lo.y + space.height() * i as f64 / rows as f64).collect();
        GridPartitioning { x_bounds, y_bounds }
    }

    /// One-dimensional column partitioning over `[x0, x1]` (the layout the
    /// load balancer manages); `y` is unbounded within each column.
    pub fn columns(x0: f64, x1: f64, cols: usize) -> Self {
        Self::uniform(Rect::from_bounds(x0, x1, 0.0, 1.0), cols, 1)
    }

    /// Build directly from boundary arrays (used by the load balancer to
    /// install a recomputed partitioning). Boundaries must be strictly
    /// increasing and have length ≥ 2.
    pub fn from_bounds(x_bounds: Vec<f64>, y_bounds: Vec<f64>) -> Self {
        assert!(x_bounds.len() >= 2 && y_bounds.len() >= 2, "need at least one cell per axis");
        assert!(x_bounds.windows(2).all(|w| w[0] < w[1]), "x bounds must increase");
        assert!(y_bounds.windows(2).all(|w| w[0] < w[1]), "y bounds must increase");
        GridPartitioning { x_bounds, y_bounds }
    }

    pub fn cols(&self) -> usize {
        self.x_bounds.len() - 1
    }

    pub fn rows(&self) -> usize {
        self.y_bounds.len() - 1
    }

    /// Current column boundaries (exposed for the load balancer).
    pub fn x_bounds(&self) -> &[f64] {
        &self.x_bounds
    }

    pub fn y_bounds(&self) -> &[f64] {
        &self.y_bounds
    }

    /// Replace the column boundaries, keeping the number of columns. This is
    /// the load balancer's repartitioning primitive: the master broadcasts
    /// the new bounds and workers switch at an epoch boundary.
    pub fn set_x_bounds(&mut self, x_bounds: Vec<f64>) {
        assert_eq!(x_bounds.len(), self.x_bounds.len(), "column count must not change");
        assert!(x_bounds.windows(2).all(|w| w[0] < w[1]), "x bounds must increase");
        self.x_bounds = x_bounds;
    }

    /// Index of the cell interval containing `v` along boundaries `bounds`,
    /// clamped to the border cells.
    fn axis_cell(bounds: &[f64], v: f64) -> usize {
        // partition_point returns the first boundary > v; cells are
        // [b[i], b[i+1]) with the last cell closed above by clamping.
        let cells = bounds.len() - 1;
        let i = bounds.partition_point(|&b| b <= v);
        i.saturating_sub(1).min(cells - 1)
    }

    /// Range of cell indices along one axis whose expanded interval
    /// intersects `[lo, hi]`.
    fn axis_range(bounds: &[f64], lo: f64, hi: f64) -> (usize, usize) {
        (Self::axis_cell(bounds, lo), Self::axis_cell(bounds, hi))
    }

    fn pid(&self, ci: usize, ri: usize) -> PartitionId {
        PartitionId::new((ri * self.cols() + ci) as u32)
    }

    /// Columnar ownership scan: `out[i]` = partition index owning
    /// `(xs[i], ys[i])`. This is the distribute phase of the pool-resident
    /// worker — one pass over the pool's position columns instead of a
    /// per-record `partition_of` on materialized agents. The boundary
    /// arrays are tiny (≤ workers + 1 entries), so the inner comparison
    /// loop is branch-free and lane-friendly: owner = Σⱼ [x ≥ bⱼ] over the
    /// interior boundaries, exactly `axis_cell`'s `partition_point`
    /// arithmetic unrolled into adds.
    pub fn owners_into(&self, xs: &[f64], ys: &[f64], out: &mut Vec<u32>) {
        debug_assert_eq!(xs.len(), ys.len());
        out.clear();
        out.reserve(xs.len());
        let xb = &self.x_bounds[1..self.x_bounds.len() - 1]; // interior boundaries
        if self.rows() == 1 {
            // 1-D columns layout (the paper's load-balanced partitioning):
            // pure x scan, no row term.
            out.extend(xs.iter().map(|&x| xb.iter().map(|&b| (x >= b) as u32).sum::<u32>()));
        } else {
            let yb = &self.y_bounds[1..self.y_bounds.len() - 1];
            let cols = self.cols() as u32;
            out.extend(xs.iter().zip(ys).map(|(&x, &y)| {
                let ci = xb.iter().map(|&b| (x >= b) as u32).sum::<u32>();
                let ri = yb.iter().map(|&b| (y >= b) as u32).sum::<u32>();
                ri * cols + ci
            }));
        }
    }

    /// Inclusive column range `[c0, c1]` of cells whose visible region
    /// contains x-position `x` under visibility `vis` — the 1-D fast path
    /// of [`Partitioner::replica_targets`] for the `rows() == 1` layout
    /// (every target has row 0, so the cell range *is* the target list).
    #[inline]
    pub fn replica_col_range(&self, x: f64, vis: f64) -> (u32, u32) {
        let (c0, c1) = Self::axis_range(&self.x_bounds, x - vis, x + vis);
        (c0 as u32, c1 as u32)
    }

    fn cell_of(&self, pid: PartitionId) -> (usize, usize) {
        let cols = self.cols();
        let idx = pid.index();
        (idx % cols, idx / cols)
    }
}

impl Partitioner for GridPartitioning {
    fn num_partitions(&self) -> usize {
        self.cols() * self.rows()
    }

    fn partition_of(&self, p: Vec2) -> PartitionId {
        let ci = Self::axis_cell(&self.x_bounds, p.x);
        let ri = Self::axis_cell(&self.y_bounds, p.y);
        self.pid(ci, ri)
    }

    fn owned_region(&self, pid: PartitionId) -> Rect {
        let (ci, ri) = self.cell_of(pid);
        assert!(ci < self.cols() && ri < self.rows(), "partition id out of range: {pid}");
        // Border cells extend to infinity: ownership clamps outside points
        // to the border, so the owned region must reflect that.
        let x0 = if ci == 0 { f64::NEG_INFINITY } else { self.x_bounds[ci] };
        let x1 = if ci == self.cols() - 1 { f64::INFINITY } else { self.x_bounds[ci + 1] };
        let y0 = if ri == 0 { f64::NEG_INFINITY } else { self.y_bounds[ri] };
        let y1 = if ri == self.rows() - 1 { f64::INFINITY } else { self.y_bounds[ri + 1] };
        Rect::from_bounds(x0, x1, y0, y1)
    }

    fn replica_targets(&self, p: Vec2, vis: f64, out: &mut Vec<PartitionId>) {
        debug_assert!(vis >= 0.0);
        let (c0, c1) = Self::axis_range(&self.x_bounds, p.x - vis, p.x + vis);
        let (r0, r1) = Self::axis_range(&self.y_bounds, p.y - vis, p.y + vis);
        for ri in r0..=r1 {
            for ci in c0..=c1 {
                out.push(self.pid(ci, ri));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brace_common::DetRng;

    fn grid3x2() -> GridPartitioning {
        GridPartitioning::uniform(Rect::from_bounds(0.0, 30.0, 0.0, 20.0), 3, 2)
    }

    #[test]
    fn uniform_grid_cell_assignment() {
        let g = grid3x2();
        assert_eq!(g.num_partitions(), 6);
        assert_eq!(g.partition_of(Vec2::new(5.0, 5.0)), PartitionId::new(0));
        assert_eq!(g.partition_of(Vec2::new(15.0, 5.0)), PartitionId::new(1));
        assert_eq!(g.partition_of(Vec2::new(25.0, 5.0)), PartitionId::new(2));
        assert_eq!(g.partition_of(Vec2::new(5.0, 15.0)), PartitionId::new(3));
        assert_eq!(g.partition_of(Vec2::new(29.9, 19.9)), PartitionId::new(5));
    }

    #[test]
    fn points_outside_clamp_to_border_cells() {
        let g = grid3x2();
        assert_eq!(g.partition_of(Vec2::new(-100.0, -100.0)), PartitionId::new(0));
        assert_eq!(g.partition_of(Vec2::new(1e9, 1e9)), PartitionId::new(5));
        assert_eq!(g.partition_of(Vec2::new(15.0, -5.0)), PartitionId::new(1));
    }

    #[test]
    fn owned_regions_tile_the_plane() {
        let g = grid3x2();
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..1000 {
            let p = Vec2::new(rng.range(-100.0, 130.0), rng.range(-100.0, 120.0));
            let owner = g.partition_of(p);
            // The point must be in its owner's region…
            assert!(g.owned_region(owner).contains(p), "{p} not in {owner}");
            // …and in no other region's interior (boundaries shared).
            let inside_count = (0..g.num_partitions())
                .filter(|&i| {
                    let r = g.owned_region(PartitionId::new(i as u32));
                    p.x > r.lo.x && p.x < r.hi.x && p.y > r.lo.y && p.y < r.hi.y
                })
                .count();
            assert!(inside_count <= 1);
        }
    }

    #[test]
    fn replica_targets_match_visible_region_definition() {
        let g = grid3x2();
        let mut rng = DetRng::seed_from_u64(2);
        for _ in 0..500 {
            let p = Vec2::new(rng.range(-5.0, 35.0), rng.range(-5.0, 25.0));
            let vis = rng.range(0.0, 12.0);
            let mut targets = Vec::new();
            g.replica_targets(p, vis, &mut targets);
            targets.sort_unstable();
            // Ground truth: p must be replicated to exactly the partitions
            // whose visible region contains p.
            let expected: Vec<PartitionId> = (0..g.num_partitions())
                .map(|i| PartitionId::new(i as u32))
                .filter(|&pid| g.visible_region(pid, vis).contains(p))
                .collect();
            assert_eq!(targets, expected, "p={p} vis={vis}");
        }
    }

    #[test]
    fn replica_targets_include_owner() {
        let g = grid3x2();
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..200 {
            let p = Vec2::new(rng.range(-50.0, 80.0), rng.range(-50.0, 70.0));
            let mut targets = Vec::new();
            g.replica_targets(p, 0.0, &mut targets);
            assert!(targets.contains(&g.partition_of(p)));
        }
    }

    #[test]
    fn zero_visibility_single_owner_interior() {
        let g = grid3x2();
        // Strictly interior point: only its owner needs it.
        let mut targets = Vec::new();
        g.replica_targets(Vec2::new(5.0, 5.0), 0.0, &mut targets);
        assert_eq!(targets, vec![PartitionId::new(0)]);
    }

    #[test]
    fn boundary_agent_replicated_to_both_sides() {
        let g = grid3x2();
        // x = 10 is the boundary between columns 0 and 1; with vis 1.0 the
        // agent is visible from both.
        let mut targets = Vec::new();
        g.replica_targets(Vec2::new(10.0, 5.0), 1.0, &mut targets);
        targets.sort_unstable();
        assert_eq!(targets, vec![PartitionId::new(0), PartitionId::new(1)]);
    }

    #[test]
    fn columns_layout_is_one_dimensional() {
        let g = GridPartitioning::columns(0.0, 100.0, 4);
        assert_eq!(g.num_partitions(), 4);
        assert_eq!(g.rows(), 1);
        // y never affects ownership.
        assert_eq!(g.partition_of(Vec2::new(30.0, -1e6)), g.partition_of(Vec2::new(30.0, 1e6)));
    }

    #[test]
    fn set_x_bounds_moves_ownership() {
        let mut g = GridPartitioning::columns(0.0, 100.0, 2);
        assert_eq!(g.partition_of(Vec2::new(40.0, 0.0)), PartitionId::new(0));
        g.set_x_bounds(vec![0.0, 30.0, 100.0]);
        assert_eq!(g.partition_of(Vec2::new(40.0, 0.0)), PartitionId::new(1));
    }

    #[test]
    #[should_panic(expected = "column count must not change")]
    fn set_x_bounds_rejects_resize() {
        let mut g = GridPartitioning::columns(0.0, 100.0, 2);
        g.set_x_bounds(vec![0.0, 100.0]);
    }

    #[test]
    #[should_panic(expected = "must increase")]
    fn from_bounds_rejects_unsorted() {
        GridPartitioning::from_bounds(vec![0.0, 2.0, 1.0], vec![0.0, 1.0]);
    }

    #[test]
    fn owners_into_matches_partition_of() {
        let mut rng = DetRng::seed_from_u64(7);
        for grid in [grid3x2(), GridPartitioning::columns(0.0, 100.0, 4), GridPartitioning::columns(-5.0, 5.0, 1)] {
            let (xs, ys): (Vec<f64>, Vec<f64>) =
                (0..500).map(|_| (rng.range(-50.0, 150.0), rng.range(-50.0, 150.0))).unzip();
            let mut owners = Vec::new();
            grid.owners_into(&xs, &ys, &mut owners);
            assert_eq!(owners.len(), xs.len());
            for i in 0..xs.len() {
                assert_eq!(
                    owners[i],
                    grid.partition_of(Vec2::new(xs[i], ys[i])).index() as u32,
                    "point ({}, {})",
                    xs[i],
                    ys[i]
                );
            }
        }
    }

    #[test]
    fn replica_col_range_matches_replica_targets_for_columns() {
        let g = GridPartitioning::columns(0.0, 100.0, 4);
        let mut rng = DetRng::seed_from_u64(9);
        for _ in 0..500 {
            let p = Vec2::new(rng.range(-20.0, 120.0), rng.range(-5.0, 5.0));
            let vis = rng.range(0.0, 40.0);
            let (c0, c1) = g.replica_col_range(p.x, vis);
            let mut targets = Vec::new();
            g.replica_targets(p, vis, &mut targets);
            targets.sort_unstable();
            let expected: Vec<PartitionId> = (c0..=c1).map(PartitionId::new).collect();
            assert_eq!(targets, expected, "p={p} vis={vis}");
        }
    }

    #[test]
    fn visible_region_expands_owned() {
        let g = grid3x2();
        let vr = g.visible_region(PartitionId::new(1), 2.0);
        // Column 1 owns x in [10, 20]; expanded by 2 -> [8, 22].
        assert!(vr.contains(Vec2::new(8.0, 5.0)));
        assert!(!vr.contains(Vec2::new(7.9, 5.0)));
    }
}
