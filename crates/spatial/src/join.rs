//! Spatial self-join: the formal core of a simulation tick.
//!
//! "We join each agent with the set of agents in its visible region and
//! perform the query phase using only these agents" (§3.1). This module
//! provides the join both as ground truth (nested loop) and as the
//! index-accelerated form the engine actually runs, plus the
//! partitioned/replicated decomposition that the MapReduce runtime uses —
//! so tests can assert that *partitioned join == single-node join*, the key
//! correctness property behind Table 1.

use crate::index::SpatialIndex;
use crate::partition::Partitioner;
use brace_common::{PartitionId, Rect, Vec2};

/// All pairs `(i, j)`, `i != j`, where point `j` lies inside the visibility
/// rectangle of point `i` (L∞ ball of radius `vis`). O(n²) reference
/// implementation.
pub fn nested_loop_join(points: &[Vec2], vis: f64) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (i, &a) in points.iter().enumerate() {
        let region = Rect::centered(a, vis);
        for (j, &b) in points.iter().enumerate() {
            if i != j && region.contains(b) {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

/// The same join computed through a [`SpatialIndex`]; O(n · (log n + k)) for
/// a KD-tree with k results per probe.
pub fn index_join<I: SpatialIndex>(points: &[Vec2], vis: f64) -> Vec<(u32, u32)> {
    let indexed: Vec<(Vec2, u32)> = points.iter().enumerate().map(|(i, &p)| (p, i as u32)).collect();
    let index = I::build(&indexed);
    let mut out = Vec::new();
    let mut probe = Vec::new();
    for (i, &a) in points.iter().enumerate() {
        probe.clear();
        index.range(&Rect::centered(a, vis), &mut probe);
        for &j in &probe {
            if j != i as u32 {
                out.push((i as u32, j));
            }
        }
    }
    out
}

/// One partition's slice of the distributed join: the owned agents and the
/// replicas shipped to it.
#[derive(Debug, Clone, Default)]
pub struct PartitionSlice {
    /// Indices of agents owned by this partition.
    pub owned: Vec<u32>,
    /// Indices of all agents in the partition's visible region (its `owned`
    /// set plus replicas). This is what the reducer gets to see.
    pub visible: Vec<u32>,
}

/// Distribute points over a partitioner exactly like the runtime's map task
/// does: each agent goes to its owner's `owned` list and to the `visible`
/// list of every partition whose visible region contains it.
pub fn distribute<P: Partitioner>(points: &[Vec2], part: &P, vis: f64) -> Vec<PartitionSlice> {
    let mut slices: Vec<PartitionSlice> = (0..part.num_partitions()).map(|_| PartitionSlice::default()).collect();
    let mut targets: Vec<PartitionId> = Vec::new();
    for (i, &p) in points.iter().enumerate() {
        let owner = part.partition_of(p);
        slices[owner.index()].owned.push(i as u32);
        targets.clear();
        part.replica_targets(p, vis, &mut targets);
        for &t in &targets {
            slices[t.index()].visible.push(i as u32);
        }
    }
    slices
}

/// The distributed join: run the per-partition join over each slice (each
/// owned agent probes only the slice's visible set) and concatenate.
/// Correctness of the whole BRACE decomposition rests on this equaling
/// [`nested_loop_join`]; `tests` and the cross-crate integration tests
/// assert it.
pub fn partitioned_join<P: Partitioner>(points: &[Vec2], part: &P, vis: f64) -> Vec<(u32, u32)> {
    let slices = distribute(points, part, vis);
    let mut out = Vec::new();
    for slice in &slices {
        for &i in &slice.owned {
            let region = Rect::centered(points[i as usize], vis);
            for &j in &slice.visible {
                if j != i && region.contains(points[j as usize]) {
                    out.push((i, j));
                }
            }
        }
    }
    out
}

/// Total number of replicas (agent copies beyond the owned one) a
/// distribution produces — the communication volume the paper's replication
/// analysis reasons about.
pub fn replication_overhead(slices: &[PartitionSlice]) -> usize {
    let visible: usize = slices.iter().map(|s| s.visible.len()).sum();
    let owned: usize = slices.iter().map(|s| s.owned.len()).sum();
    visible - owned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kdtree::KdTree;
    use crate::partition::GridPartitioning;
    use brace_common::DetRng;

    fn random_points(n: usize, seed: u64, extent: f64) -> Vec<Vec2> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n).map(|_| Vec2::new(rng.range(0.0, extent), rng.range(0.0, extent))).collect()
    }

    fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn index_join_equals_nested_loop() {
        let pts = random_points(300, 21, 100.0);
        let a = sorted(nested_loop_join(&pts, 8.0));
        let b = sorted(index_join::<KdTree>(&pts, 8.0));
        assert_eq!(a, b);
    }

    #[test]
    fn partitioned_join_equals_single_node() {
        let pts = random_points(250, 22, 100.0);
        let part = GridPartitioning::uniform(Rect::from_bounds(0.0, 100.0, 0.0, 100.0), 4, 2);
        for vis in [0.5, 3.0, 10.0, 30.0] {
            let reference = sorted(nested_loop_join(&pts, vis));
            let dist = sorted(partitioned_join(&pts, &part, vis));
            assert_eq!(reference, dist, "vis={vis}");
        }
    }

    #[test]
    fn partitioned_join_handles_out_of_space_agents() {
        // Agents outside the partitioned space (unbounded ocean) must still
        // join correctly via border-cell clamping.
        let mut pts = random_points(100, 23, 100.0);
        pts.push(Vec2::new(-50.0, -50.0));
        pts.push(Vec2::new(150.0, 150.0));
        pts.push(Vec2::new(-49.0, -50.0));
        let part = GridPartitioning::uniform(Rect::from_bounds(0.0, 100.0, 0.0, 100.0), 3, 3);
        let reference = sorted(nested_loop_join(&pts, 5.0));
        let dist = sorted(partitioned_join(&pts, &part, 5.0));
        assert_eq!(reference, dist);
        // The two far agents see each other.
        let n = pts.len() as u32;
        assert!(reference.contains(&(n - 3, n - 1)));
    }

    #[test]
    fn replication_grows_with_visibility() {
        let pts = random_points(500, 24, 100.0);
        let part = GridPartitioning::uniform(Rect::from_bounds(0.0, 100.0, 0.0, 100.0), 4, 4);
        let r_small = replication_overhead(&distribute(&pts, &part, 1.0));
        let r_big = replication_overhead(&distribute(&pts, &part, 20.0));
        assert!(r_big > r_small, "replication {r_small} -> {r_big} should grow with visibility");
    }

    #[test]
    fn zero_visibility_join_only_exact_overlaps() {
        let pts = vec![Vec2::ZERO, Vec2::ZERO, Vec2::new(1.0, 0.0)];
        let j = sorted(nested_loop_join(&pts, 0.0));
        assert_eq!(j, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn distribute_owned_sets_partition_points() {
        let pts = random_points(200, 25, 100.0);
        let part = GridPartitioning::uniform(Rect::from_bounds(0.0, 100.0, 0.0, 100.0), 5, 1);
        let slices = distribute(&pts, &part, 4.0);
        let total_owned: usize = slices.iter().map(|s| s.owned.len()).sum();
        assert_eq!(total_owned, pts.len());
        // Each owned agent appears in exactly one owned list.
        let mut seen = vec![false; pts.len()];
        for s in &slices {
            for &i in &s.owned {
                assert!(!seen[i as usize], "agent {i} owned twice");
                seen[i as usize] = true;
            }
        }
        // Every partition's visible list contains its own owned agents.
        for s in &slices {
            for &i in &s.owned {
                assert!(s.visible.contains(&i));
            }
        }
    }
}
