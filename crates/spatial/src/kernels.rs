//! Batched lane kernels over candidate columns.
//!
//! The state-effect pattern freezes every position for the whole query
//! phase, so the probe hot path — *"which of these candidate points lie in
//! this rectangle / within this squared distance?"* — is a pure map over
//! flat `f64` columns with no loop-carried dependence. That is exactly the
//! shape that vectorizes, and this module is the single home for the
//! fixed-width kernels the indexes and the executor batch through.
//!
//! # Lane-width / tail contract
//!
//! Every kernel processes its input in exact chunks of [`LANES`] elements
//! followed by a scalar tail of `len % LANES` elements. Both halves perform
//! the *same IEEE-754 operation sequence per element* (compare, multiply,
//! add, subtract, divide, square root — each correctly rounded and therefore
//! identical lane-wise and scalar; no FMA contraction, no reassociation), so
//! a kernel's output is bit-identical to the naive per-element loop for
//! every input length. The tail boundary can never change results — only
//! which instructions produce them. `tests` pins the remainder handling at
//! candidate counts of 0, 1, `LANES−1`, `LANES`, `LANES+1` and `2·LANES−1`.
//!
//! # Why canonicalized candidate order makes vectorization order-safe
//!
//! Filtering kernels *select*, they never *combine*: the emitted candidate
//! subsequence preserves the input order, so a batched filter composed with
//! the indexes' canonical emission order ([`crate::SpatialIndex::RANGE_CANONICAL`])
//! feeds the behavior's effect aggregation in exactly the order the scalar
//! path would have. Reduction-shaped model kernels (fish forces, traffic
//! gap scans) keep the same guarantee by splitting into a vectorized
//! per-candidate map (distances, directions, gaps — independent elements)
//! followed by an ordered scalar fold over the mapped columns: the fold
//! runs in canonical candidate order, so float aggregation is bit-identical
//! to the per-row path by construction. `tests/properties.rs` proves the
//! equivalence end to end (`kernel_*` conformance properties).
//!
//! The portable kernels are written so stable LLVM autovectorizes them
//! (branch-free masks, exact chunking); on x86-64 an explicit `std::arch`
//! AVX path is selected by runtime feature detection
//! ([`std::arch::is_x86_feature_detected`]) — it computes the identical
//! comparisons, so the dispatch never affects results, only speed.

use brace_common::Rect;

/// Fixed lane width of the batched kernels: 4 × `f64` is one 256-bit AVX
/// register (two 128-bit SSE2 registers on older cores).
pub const LANES: usize = 4;

/// Reusable per-thread gather columns for batched range filtering: indexes
/// without native SoA storage gather candidate points (the KD-tree's
/// boundary-leaf slices) into these columns, then run [`filter_rect`] over
/// them. One scratch per thread keeps `SpatialIndex::range_batch`
/// allocation-free after warm-up. The scan and the grid never gather —
/// they filter their own columns in place (`RANGE_BATCH_NATIVE`).
#[derive(Debug, Default)]
pub struct GatherScratch {
    pub xs: Vec<f64>,
    pub ys: Vec<f64>,
    pub payloads: Vec<u32>,
}

impl GatherScratch {
    /// Drop gathered candidates, keeping the allocations.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.payloads.clear();
    }

    /// Append one candidate point.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64, payload: u32) {
        self.xs.push(x);
        self.ys.push(y);
        self.payloads.push(payload);
    }

    /// Number of gathered candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }
}

brace_common::tls_scratch!(
    /// Run `f` with the thread's reusable [`GatherScratch`].
    pub fn with_gather_scratch -> GatherScratch
);

/// Append `payloads[i]` to `out` for every `i` with `(xs[i], ys[i])` inside
/// the closed rectangle `rect`, preserving input order. Bit-identical to
/// the scalar `Rect::contains` loop for every input (see the module docs);
/// an empty `rect` emits nothing, exactly like `contains`.
pub fn filter_rect(xs: &[f64], ys: &[f64], payloads: &[u32], rect: &Rect, out: &mut Vec<u32>) {
    debug_assert_eq!(xs.len(), ys.len(), "coordinate columns must be parallel");
    debug_assert_eq!(xs.len(), payloads.len(), "payload column must be parallel");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX support was just detected at runtime.
        unsafe { filter_rect_avx(xs, ys, payloads, rect, out) };
        return;
    }
    filter_rect_lanes(xs, ys, payloads, rect, out);
}

/// Portable lane implementation of [`filter_rect`]: branch-free containment
/// masks over exact [`LANES`]-wide chunks (written so LLVM autovectorizes
/// the compares on stable), then a scalar tail.
fn filter_rect_lanes(xs: &[f64], ys: &[f64], payloads: &[u32], rect: &Rect, out: &mut Vec<u32>) {
    let n = xs.len();
    let (lox, hix, loy, hiy) = (rect.lo.x, rect.hi.x, rect.lo.y, rect.hi.y);
    let head = n - n % LANES;
    let mut i = 0;
    while i < head {
        let mut mask = [false; LANES];
        for j in 0..LANES {
            let (x, y) = (xs[i + j], ys[i + j]);
            // `&` (not `&&`): no short-circuit branches inside the lane.
            mask[j] = (x >= lox) & (x <= hix) & (y >= loy) & (y <= hiy);
        }
        for j in 0..LANES {
            if mask[j] {
                out.push(payloads[i + j]);
            }
        }
        i += LANES;
    }
    for j in head..n {
        let (x, y) = (xs[j], ys[j]);
        if (x >= lox) & (x <= hix) & (y >= loy) & (y <= hiy) {
            out.push(payloads[j]);
        }
    }
}

/// Explicit AVX form of [`filter_rect`]: four doubles per compare, a
/// movemask per chunk, the same scalar tail. The `_CMP_GE_OQ`/`_CMP_LE_OQ`
/// predicates are the ordered-quiet forms of `>=`/`<=`, so NaN coordinates
/// fail containment exactly as they do in scalar code.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn filter_rect_avx(xs: &[f64], ys: &[f64], payloads: &[u32], rect: &Rect, out: &mut Vec<u32>) {
    use std::arch::x86_64::*;
    let n = xs.len();
    let lox = _mm256_set1_pd(rect.lo.x);
    let hix = _mm256_set1_pd(rect.hi.x);
    let loy = _mm256_set1_pd(rect.lo.y);
    let hiy = _mm256_set1_pd(rect.hi.y);
    let head = n - n % LANES;
    let mut i = 0;
    while i < head {
        let x = _mm256_loadu_pd(xs.as_ptr().add(i));
        let y = _mm256_loadu_pd(ys.as_ptr().add(i));
        let mx = _mm256_and_pd(_mm256_cmp_pd::<_CMP_GE_OQ>(x, lox), _mm256_cmp_pd::<_CMP_LE_OQ>(x, hix));
        let my = _mm256_and_pd(_mm256_cmp_pd::<_CMP_GE_OQ>(y, loy), _mm256_cmp_pd::<_CMP_LE_OQ>(y, hiy));
        let mut bits = _mm256_movemask_pd(_mm256_and_pd(mx, my)) as u32;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            out.push(payloads[i + j]);
            bits &= bits - 1;
        }
        i += LANES;
    }
    for j in head..n {
        let (x, y) = (xs[j], ys[j]);
        if (x >= rect.lo.x) & (x <= rect.hi.x) & (y >= rect.lo.y) & (y <= rect.hi.y) {
            out.push(payloads[j]);
        }
    }
}

/// Write the squared Euclidean distance from `(qx, qy)` to every
/// `(xs[i], ys[i])` into `out` (cleared and resized to the input length).
/// Each element is `dx*dx + dy*dy` — the exact operation sequence of
/// `Vec2::dist2` — so batched k-NN gathering aggregates the same bits the
/// per-point path would.
pub fn dist2(xs: &[f64], ys: &[f64], qx: f64, qy: f64, out: &mut Vec<f64>) {
    debug_assert_eq!(xs.len(), ys.len(), "coordinate columns must be parallel");
    out.clear();
    out.extend(xs.iter().zip(ys).map(|(&x, &y)| {
        let (dx, dy) = (x - qx, y - qy);
        dx * dx + dy * dy
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use brace_common::{DetRng, Vec2};

    fn naive_filter(xs: &[f64], ys: &[f64], payloads: &[u32], rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        for i in 0..xs.len() {
            if rect.contains(Vec2::new(xs[i], ys[i])) {
                out.push(payloads[i]);
            }
        }
        out
    }

    fn columns(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<u32>) {
        let mut rng = DetRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| rng.range(-10.0, 10.0)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.range(-10.0, 10.0)).collect();
        let pls: Vec<u32> = (0..n as u32).collect();
        (xs, ys, pls)
    }

    /// The scalar-tail contract: candidate counts of 0, 1, LANES−1, LANES,
    /// LANES+1 and 2·LANES−1 pin the remainder handling of both dispatch
    /// paths against the naive per-element loop.
    #[test]
    fn filter_rect_tail_counts_match_naive() {
        let rect = Rect::from_bounds(-5.0, 5.0, -5.0, 5.0);
        for n in [0, 1, LANES - 1, LANES, LANES + 1, 2 * LANES - 1] {
            let (xs, ys, pls) = columns(n, n as u64 + 7);
            let mut got = Vec::new();
            filter_rect(&xs, &ys, &pls, &rect, &mut got);
            assert_eq!(got, naive_filter(&xs, &ys, &pls, &rect), "count {n}");
            // The portable lane path must agree with whatever `filter_rect`
            // dispatched to (the AVX path on x86-64 with AVX).
            let mut lanes = Vec::new();
            filter_rect_lanes(&xs, &ys, &pls, &rect, &mut lanes);
            assert_eq!(lanes, got, "lane/arch dispatch divergence at count {n}");
        }
    }

    #[test]
    fn filter_rect_preserves_input_order() {
        let (xs, ys, pls) = columns(97, 3);
        let rect = Rect::from_bounds(-4.0, 9.0, -8.0, 3.0);
        let mut got = Vec::new();
        filter_rect(&xs, &ys, &pls, &rect, &mut got);
        assert_eq!(got, naive_filter(&xs, &ys, &pls, &rect));
        // Emission preserves input order (payloads were assigned in order).
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn filter_rect_boundary_and_empty_rect() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [0.0; 5];
        let pls = [0, 1, 2, 3, 4];
        // Closed containment: both boundary points included.
        let mut out = Vec::new();
        filter_rect(&xs, &ys, &pls, &Rect::from_bounds(2.0, 4.0, 0.0, 0.0), &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        // Empty rectangle (lo > hi) admits nothing — same as Rect::contains.
        out.clear();
        filter_rect(&xs, &ys, &pls, &Rect::EMPTY, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn filter_rect_denormal_and_signed_zero_positions() {
        let tiny = f64::MIN_POSITIVE; // smallest normal
        let denormal = f64::from_bits(1); // smallest subnormal
        let xs = [0.0, -0.0, denormal, -denormal, tiny, 1.0, -1.0];
        let ys = [denormal, 0.0, -0.0, tiny, -tiny, 0.0, 0.0];
        let pls: Vec<u32> = (0..xs.len() as u32).collect();
        let rect = Rect::from_bounds(-0.0, tiny, -tiny, tiny);
        let mut got = Vec::new();
        filter_rect(&xs, &ys, &pls, &rect, &mut got);
        assert_eq!(got, naive_filter(&xs, &ys, &pls, &rect));
        // ±0.0 compare equal: both zero-x points are inside [-0.0, tiny].
        assert!(got.contains(&0) && got.contains(&1));
    }

    #[test]
    fn dist2_matches_per_point_ops_at_tail_counts() {
        for n in [0, 1, LANES - 1, LANES, LANES + 1, 2 * LANES - 1] {
            let (xs, ys, _) = columns(n, n as u64 + 31);
            let q = Vec2::new(0.25, -3.5);
            let mut got = Vec::new();
            dist2(&xs, &ys, q.x, q.y, &mut got);
            assert_eq!(got.len(), n);
            for i in 0..n {
                let want = Vec2::new(xs[i], ys[i]).dist2(q);
                assert_eq!(got[i].to_bits(), want.to_bits(), "count {n} element {i}");
            }
        }
    }

    #[test]
    fn gather_scratch_reuses_and_clears() {
        with_gather_scratch(|s| {
            s.clear();
            assert!(s.is_empty());
            s.push(1.0, 2.0, 7);
            assert_eq!(s.len(), 1);
        });
        with_gather_scratch(|s| {
            s.clear();
            assert!(s.is_empty(), "clear must drop candidates across uses");
        });
    }
}
