//! Uniform-grid (bucket) spatial index with bucket-major SoA storage.
//!
//! The ablation alternative to the KD-tree: space is covered by square cells
//! of side `cell`; each cell holds the points inside it. Range queries visit
//! only the cells overlapping the query rectangle. For the roughly uniform
//! densities of the traffic workload a grid with cell ≈ visibility radius is
//! hard to beat; for strongly clustered workloads (fish schools) the KD-tree
//! adapts where the grid degrades — which is exactly why the comparison is
//! interesting (see `bench/benches/spatial_index.rs`).
//!
//! The grid hashes unbounded space: cell coordinates are derived by flooring
//! and looked up in a hash map, so the "unbounded ocean" of the fish model
//! needs no special casing.
//!
//! # Bucket-major SoA arena
//!
//! Storage is one contiguous arena of three parallel columns (`xs`, `ys`,
//! `payloads`); each bucket owns a *run* — a `[start, start+len)` range of
//! those columns, with `cap ≥ len` slack so nearby churn stays in place. A
//! probe therefore streams each overlapping bucket's coordinates straight
//! through the lane kernels ([`crate::kernels::filter_rect`]) with **no
//! per-probe gather**, which is what lets the grid declare
//! [`SpatialIndex::RANGE_BATCH_NATIVE`] (see `range_batch` below).
//!
//! The arena is maintained incrementally: a moved agent either stays in its
//! bucket (coordinates overwritten in place — the common case when cell ≈
//! visibility ≫ reachability) or moves to an adjacent bucket (one shift-out
//! of the old run + one sorted shift-in to the new run; a full run relocates
//! to the arena tail with doubled slack). Dead slots left behind by
//! relocation are reclaimed by an amortized compaction once they outnumber
//! live ones — a pure re-layout, invisible to queries, *not* an
//! executor-visible rebuild: stable populations still do zero rebuilds.
//!
//! Range emission is globally **ascending by payload**: each run is kept
//! payload-sorted and probes merge the overlapping runs by payload, so
//! candidates stream out in id order on any id-ordered pool. That makes the
//! grid's canonical order identical to the cluster collector's, i.e.
//! order-sensitive float-sum models are exactly distributable on the grid
//! (see `brace_scenario::builtin`). Crucially the order is a pure function
//! of the matching point *set* — arena layout (and therefore relocation or
//! compaction history) can never leak into results.

use crate::index::{dense_slots, finish_knn, with_dist2_scratch, with_knn_scratch, SpatialIndex};
use crate::kernels::{dist2, filter_rect};
use brace_common::{Rect, Vec2};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Widest rectangle (in overlapped buckets) served by the allocation-free
/// k-way run merge; wider probes fall back to gather-and-sort.
const MERGE_WIDTH: usize = 16;

/// Slack capacity given to a freshly created (post-build) bucket run.
const NEW_BUCKET_CAP: u32 = 4;

/// One bucket's run in the column arena: `[start, start+len)` live slots,
/// `[start+len, start+cap)` slack for incremental inserts.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    start: u32,
    len: u32,
    cap: u32,
}

impl Bucket {
    const EMPTY: Bucket = Bucket { start: 0, len: 0, cap: 0 };
}

/// Bucket index over uniform square cells. See module docs.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    cell: f64,
    /// Bucket-major SoA columns: one contiguous arena shared by every
    /// bucket's run. Slack/dead slots hold `NaN`/`u32::MAX` and are never
    /// read (runs address only their live `[start, start+len)` range).
    xs: Vec<f64>,
    ys: Vec<f64>,
    payloads: Vec<u32>,
    buckets: HashMap<(i64, i64), Bucket>,
    len: usize,
    /// Arena slots abandoned by run relocation / bucket death; compacted
    /// away once they outnumber live points.
    dead: usize,
    /// `payload -> current cell key`, when payloads are dense (enables
    /// `update`); runs are kept sorted by payload so removal is a binary
    /// search rather than a scan.
    locator: Option<Vec<(i64, i64)>>,
}

/// Default cell size when the caller builds through the generic
/// [`SpatialIndex::build`] (which cannot pass a size): chosen from the data
/// so that an average cell holds a handful of points.
fn auto_cell(points: &[(Vec2, u32)]) -> f64 {
    if points.is_empty() {
        return 1.0;
    }
    let bounds = points.iter().fold(Rect::EMPTY, |b, &(p, _)| b.extended(p));
    let area = (bounds.width().max(1e-9)) * (bounds.height().max(1e-9));
    // Target ~4 points per cell.
    (area * 4.0 / points.len() as f64).sqrt().max(1e-9)
}

impl UniformGrid {
    /// Build with an explicit cell size (normally the visibility bound).
    pub fn with_cell(points: &[(Vec2, u32)], cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell size must be positive");
        let mut groups: HashMap<(i64, i64), Vec<(Vec2, u32)>> = HashMap::new();
        let mut order: Vec<(i64, i64)> = Vec::new();
        for &(p, payload) in points {
            match groups.entry(Self::key(p, cell)) {
                Entry::Occupied(mut e) => e.get_mut().push((p, payload)),
                Entry::Vacant(e) => {
                    order.push(*e.key());
                    e.insert(vec![(p, payload)]);
                }
            }
        }
        let mut xs = Vec::with_capacity(points.len());
        let mut ys = Vec::with_capacity(points.len());
        let mut payloads = Vec::with_capacity(points.len());
        let mut buckets = HashMap::with_capacity(order.len());
        for key in order {
            let mut group = groups.remove(&key).expect("grouped above");
            group.sort_unstable_by_key(|&(_, payload)| payload);
            let start = xs.len() as u32;
            for &(p, payload) in &group {
                xs.push(p.x);
                ys.push(p.y);
                payloads.push(payload);
            }
            let n = group.len() as u32;
            buckets.insert(key, Bucket { start, len: n, cap: n });
        }
        let locator = dense_slots(points).map(|slots| {
            let mut loc = vec![(i64::MAX, i64::MAX); slots.len()];
            for &(p, payload) in points {
                loc[payload as usize] = Self::key(p, cell);
            }
            loc
        });
        UniformGrid { cell, xs, ys, payloads, buckets, len: points.len(), dead: 0, locator }
    }

    #[inline]
    fn key(p: Vec2, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// The configured cell side length.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of non-empty cells (diagnostic for load-skew analysis).
    pub fn occupied_cells(&self) -> usize {
        self.buckets.len()
    }

    /// Arena slots currently dead (diagnostic: relocation/compaction churn).
    pub fn dead_slots(&self) -> usize {
        self.dead
    }

    #[inline]
    fn run_bounds(b: Bucket) -> (usize, usize) {
        (b.start as usize, (b.start + b.len) as usize)
    }

    /// True when cell `key` lies entirely inside `rect`, with enough
    /// conservative slack that *every point whose floored key equals `key`*
    /// is guaranteed contained. Bucket membership is `floor(p/c) == key`
    /// under floating-point division, so a member can sit a few ulp outside
    /// the real-arithmetic cell; the `1e-9`-relative margin is ~10⁶ ulp —
    /// vastly more than division/multiplication rounding can produce, and
    /// still negligible against any real probe rect (which extends a full
    /// visibility radius beyond a covered cell). A covered bucket's run is
    /// emitted whole, skipping the per-point containment test; when the
    /// test fails we just filter — never a correctness question.
    #[inline]
    fn cell_covered(&self, key: (i64, i64), rect: &Rect) -> bool {
        let c = self.cell;
        let lox = key.0 as f64 * c;
        let loy = key.1 as f64 * c;
        let hix = lox + c;
        let hiy = loy + c;
        let m = 1e-9 * (c + lox.abs().max(hix.abs()) + loy.abs().max(hiy.abs()));
        rect.lo.x <= lox - m && hix + m <= rect.hi.x && rect.lo.y <= loy - m && hiy + m <= rect.hi.y
    }

    /// Append the payloads of `bucket`'s points inside `rect` to `buf`, in
    /// run (= ascending payload) order, streaming the arena columns through
    /// the lane kernel — the gather-free native filter. Fully covered cells
    /// skip the kernel and emit the run whole (identical output by
    /// [`Self::cell_covered`]'s guarantee).
    #[inline]
    fn filter_run(&self, key: (i64, i64), bucket: Bucket, rect: &Rect, buf: &mut Vec<u32>) {
        let (s, e) = Self::run_bounds(bucket);
        if self.cell_covered(key, rect) {
            buf.extend_from_slice(&self.payloads[s..e]);
        } else {
            filter_rect(&self.xs[s..e], &self.ys[s..e], &self.payloads[s..e], rect, buf);
        }
    }

    /// Collect the ≤[`MERGE_WIDTH`] buckets overlapping `rect` into `runs`.
    /// Returns `(n_runs, overflow, sparse, keys)` — `overflow` when the
    /// rect overlaps more buckets than the fixed-width merge handles,
    /// `sparse` when iterating cells would visit more cells than exist
    /// (degenerate/huge rects: scan occupied buckets instead).
    #[inline]
    fn collect_runs(
        &self,
        rect: &Rect,
        runs: &mut [((i64, i64), Bucket); MERGE_WIDTH],
    ) -> (usize, bool, bool, (i64, i64), (i64, i64)) {
        let (x0, y0) = Self::key(rect.lo, self.cell);
        let (x1, y1) = Self::key(rect.hi, self.cell);
        // Guard against absurd query rectangles producing gigantic loops:
        // iterate cells only when the cell count is smaller than the bucket
        // count; otherwise scan the occupied buckets directly (hash-map
        // iteration order must never leak into results — the payload merge
        // or sort below canonicalizes it away).
        let cell_count = (x1 - x0 + 1).saturating_mul(y1 - y0 + 1);
        let sparse = cell_count as usize > self.buckets.len();
        let mut n_runs = 0;
        let mut overflow = sparse;
        if !sparse {
            'collect: for cx in x0..=x1 {
                for cy in y0..=y1 {
                    if let Some(&bucket) = self.buckets.get(&(cx, cy)) {
                        if n_runs == MERGE_WIDTH {
                            overflow = true;
                            break 'collect;
                        }
                        runs[n_runs] = ((cx, cy), bucket);
                        n_runs += 1;
                    }
                }
            }
        }
        (n_runs, overflow, sparse, (x0, y0), (x1, y1))
    }

    /// Visit every point of the buckets overlapping `rect` in globally
    /// ascending payload order. Runs stay payload-sorted through `update`s,
    /// so the typical ≤3×3 overlap is an allocation-free k-way merge of
    /// sorted runs; wider rectangles (and the sparse-occupancy fallback,
    /// which scans every occupied bucket) gather into a per-thread scratch
    /// and sort by payload once. This is the scalar reference path behind
    /// [`SpatialIndex::range`] (inline containment test) — the batched
    /// [`SpatialIndex::range_batch`] emits candidates from exactly the same
    /// payload-ascending sequence by construction (filter-then-merge over
    /// the same runs).
    ///
    /// Payloads are pool row indices, and every single-node pool stores
    /// rows in id order — so ascending-payload emission *is* id-sorted
    /// emission, the cluster collector's canonical order. That makes
    /// order-sensitive float-sum models exactly distributable on the grid
    /// (see `brace_scenario::builtin`); before this merge the emission was
    /// bucket-major, an order no distributed reduction can reproduce.
    fn for_merged_points(&self, rect: &Rect, mut f: impl FnMut(Vec2, u32)) {
        if rect.is_empty() || self.len == 0 {
            return;
        }
        let mut runs = [((0i64, 0i64), Bucket::EMPTY); MERGE_WIDTH];
        let (n_runs, overflow, sparse, (x0, y0), (x1, y1)) = self.collect_runs(rect, &mut runs);
        if overflow {
            // Wide rectangle or degenerate occupancy: one gather + one
            // payload sort beats an O(points × buckets) min-scan here.
            with_merge_scratch(|pairs| {
                pairs.clear();
                let mut gather = |b: Bucket| {
                    let (s, e) = Self::run_bounds(b);
                    pairs.extend(
                        self.xs[s..e]
                            .iter()
                            .zip(&self.ys[s..e])
                            .zip(&self.payloads[s..e])
                            .map(|((&x, &y), &payload)| (Vec2::new(x, y), payload)),
                    );
                };
                if sparse {
                    self.buckets.values().for_each(|&b| gather(b));
                } else {
                    for cx in x0..=x1 {
                        for cy in y0..=y1 {
                            if let Some(&b) = self.buckets.get(&(cx, cy)) {
                                gather(b);
                            }
                        }
                    }
                }
                pairs.sort_unstable_by_key(|&(_, payload)| payload);
                for &(p, payload) in pairs.iter() {
                    f(p, payload);
                }
            });
            return;
        }
        // Common case: merge the payload-sorted runs with a linear
        // min-scan over ≤16 cursors — no allocation, no per-probe sort.
        let mut cursors = [0u32; MERGE_WIDTH];
        loop {
            let mut best: Option<(u32, usize)> = None;
            for (i, &(_, b)) in runs[..n_runs].iter().enumerate() {
                if cursors[i] < b.len {
                    let payload = self.payloads[(b.start + cursors[i]) as usize];
                    if best.is_none_or(|(bp, _)| payload < bp) {
                        best = Some((payload, i));
                    }
                }
            }
            let Some((payload, i)) = best else { return };
            let at = (runs[i].1.start + cursors[i]) as usize;
            cursors[i] += 1;
            f(Vec2::new(self.xs[at], self.ys[at]), payload);
        }
    }

    /// Remove `payload` from the run at `key`: shift-left within the run
    /// (the vacated tail slot becomes slack); an emptied bucket's whole run
    /// becomes dead and the bucket leaves the map.
    fn remove_from(&mut self, key: (i64, i64), payload: u32) {
        let b = self.buckets.get_mut(&key).expect("locator points at a live bucket");
        let (s, e) = (b.start as usize, (b.start + b.len) as usize);
        let i = self.payloads[s..e].binary_search(&payload).expect("payload in its bucket");
        self.xs.copy_within(s + i + 1..e, s + i);
        self.ys.copy_within(s + i + 1..e, s + i);
        self.payloads.copy_within(s + i + 1..e, s + i);
        b.len -= 1;
        if b.len == 0 {
            let cap = b.cap as usize;
            self.buckets.remove(&key);
            self.dead += cap;
        }
    }

    /// Insert `(p, payload)` into the run at `key`, keeping it
    /// payload-sorted: shift-in when the run has slack, otherwise relocate
    /// the run to the arena tail with doubled capacity (the old run becomes
    /// dead slots, reclaimed by [`Self::compact`]).
    fn insert_into(&mut self, key: (i64, i64), p: Vec2, payload: u32) {
        match self.buckets.entry(key) {
            Entry::Occupied(mut entry) => {
                let b = entry.get_mut();
                let (s, len) = (b.start as usize, b.len as usize);
                let i = self.payloads[s..s + len].binary_search(&payload).unwrap_err();
                if b.len < b.cap {
                    self.xs.copy_within(s + i..s + len, s + i + 1);
                    self.ys.copy_within(s + i..s + len, s + i + 1);
                    self.payloads.copy_within(s + i..s + len, s + i + 1);
                    self.xs[s + i] = p.x;
                    self.ys[s + i] = p.y;
                    self.payloads[s + i] = payload;
                    b.len += 1;
                } else {
                    let cap = (b.cap.saturating_mul(2)).max(NEW_BUCKET_CAP) as usize;
                    let start = self.xs.len();
                    self.xs.extend_from_within(s..s + i);
                    self.ys.extend_from_within(s..s + i);
                    self.payloads.extend_from_within(s..s + i);
                    self.xs.push(p.x);
                    self.ys.push(p.y);
                    self.payloads.push(payload);
                    self.xs.extend_from_within(s + i..s + len);
                    self.ys.extend_from_within(s + i..s + len);
                    self.payloads.extend_from_within(s + i..s + len);
                    self.xs.resize(start + cap, f64::NAN);
                    self.ys.resize(start + cap, f64::NAN);
                    self.payloads.resize(start + cap, u32::MAX);
                    self.dead += b.cap as usize;
                    *b = Bucket { start: start as u32, len: len as u32 + 1, cap: cap as u32 };
                }
            }
            Entry::Vacant(entry) => {
                let start = self.xs.len();
                self.xs.push(p.x);
                self.ys.push(p.y);
                self.payloads.push(payload);
                self.xs.resize(start + NEW_BUCKET_CAP as usize, f64::NAN);
                self.ys.resize(start + NEW_BUCKET_CAP as usize, f64::NAN);
                self.payloads.resize(start + NEW_BUCKET_CAP as usize, u32::MAX);
                entry.insert(Bucket { start: start as u32, len: 1, cap: NEW_BUCKET_CAP });
            }
        }
    }

    /// Fold `bucket`'s points into the running `(dist², payload)` best for
    /// the expanding-ring nearest search.
    fn consider_bucket(&self, b: Bucket, q: Vec2, exclude: Option<u32>, best: &mut Option<(f64, u32)>) {
        let (s, e) = Self::run_bounds(b);
        for i in s..e {
            let payload = self.payloads[i];
            if Some(payload) == exclude {
                continue;
            }
            let d = Vec2::new(self.xs[i], self.ys[i]).dist2(q);
            if best.is_none_or(|(bd, _)| d < bd) {
                *best = Some((d, payload));
            }
        }
    }

    /// Re-layout every live run contiguously and drop dead slots. A pure
    /// storage re-pack: bucket membership, run sort order and therefore
    /// every query answer are untouched (emission is payload-canonical, so
    /// even the new run placement — hash-map iteration order — cannot leak
    /// into results). This is *not* an executor-visible rebuild.
    fn compact(&mut self) {
        let mut xs = Vec::with_capacity(self.len);
        let mut ys = Vec::with_capacity(self.len);
        let mut payloads = Vec::with_capacity(self.len);
        for b in self.buckets.values_mut() {
            let (s, e) = (b.start as usize, (b.start + b.len) as usize);
            let start = xs.len() as u32;
            xs.extend_from_slice(&self.xs[s..e]);
            ys.extend_from_slice(&self.ys[s..e]);
            payloads.extend_from_slice(&self.payloads[s..e]);
            b.start = start;
            b.cap = b.len;
        }
        self.xs = xs;
        self.ys = ys;
        self.payloads = payloads;
        self.dead = 0;
    }
}

brace_common::tls_scratch!(
    /// Reusable per-thread point buffer for range probes too wide for the
    /// fixed-width bucket merge, which must still emit in ascending
    /// payload order without a per-probe allocation.
    fn with_merge_scratch -> Vec<(Vec2, u32)>
);

brace_common::tls_scratch!(
    /// Reusable per-thread payload buffer for the native batched probe:
    /// holds each overlapping run's lane-filter output as a contiguous
    /// segment, which the k-way payload merge then drains into the
    /// caller's buffer.
    fn with_filter_scratch -> Vec<u32>
);

impl SpatialIndex for UniformGrid {
    /// Emission is globally **ascending by payload** (runs stay
    /// payload-sorted through `update`s and range probes merge them by
    /// payload), so the order is a pure function of the matching point set
    /// alone — not even the cell size can perturb it. Since payloads are
    /// id-ordered pool rows on every single-node pool, this is exactly the
    /// id-sorted order the cluster collector canonicalizes to, making the
    /// grid exactly distributable for order-sensitive float reductions.
    const RANGE_CANONICAL: bool = true;

    /// The batched filter streams the grid's **own** bucket-major SoA
    /// columns through the lane kernel — no per-probe gather since the
    /// arena rewrite, so the executor's batched mode probes through
    /// `range_batch` here just like the scan. (The previous AoS-bucket
    /// storage had to gather per probe and measured 0.7–0.9× scalar; see
    /// `BENCH_tick_throughput.json` for the native columns' speedups.)
    const RANGE_BATCH_NATIVE: bool = true;

    fn build(points: &[(Vec2, u32)]) -> Self {
        UniformGrid::with_cell(points, auto_cell(points))
    }

    fn range(&self, rect: &Rect, out: &mut Vec<u32>) {
        self.for_merged_points(rect, |p, payload| {
            if rect.contains(p) {
                out.push(payload);
            }
        });
    }

    /// Native batched range: each overlapping run's columns stream through
    /// the lane kernel ([`filter_rect`]) into a per-thread scratch — one
    /// ascending-payload segment per bucket, no gather — and the surviving
    /// segments k-way merge into the caller's buffer. The filter *selects*
    /// (per-run order is preserved) and the merge is the same
    /// lowest-payload-first rule as [`Self::for_merged_points`], so the
    /// emitted sequence is exactly [`SpatialIndex::range`]'s: the ascending
    /// payloads of the matching point set (the canonical-order contract).
    /// Wide/sparse probes filter every overlapped run and sort the
    /// surviving payloads once, mirroring the scalar gather+sort fallback.
    fn range_batch(&self, rect: &Rect, out: &mut Vec<u32>) {
        if rect.is_empty() || self.len == 0 {
            return;
        }
        let mut runs = [((0i64, 0i64), Bucket::EMPTY); MERGE_WIDTH];
        let (n_runs, overflow, sparse, (x0, y0), (x1, y1)) = self.collect_runs(rect, &mut runs);
        with_filter_scratch(|buf| {
            buf.clear();
            if overflow {
                if sparse {
                    for (&key, &b) in self.buckets.iter() {
                        self.filter_run(key, b, rect, buf);
                    }
                } else {
                    for cx in x0..=x1 {
                        for cy in y0..=y1 {
                            if let Some(&b) = self.buckets.get(&(cx, cy)) {
                                self.filter_run((cx, cy), b, rect, buf);
                            }
                        }
                    }
                }
                buf.sort_unstable();
                out.extend_from_slice(buf);
                return;
            }
            let mut segs = [(0u32, 0u32); MERGE_WIDTH];
            let mut n_segs = 0;
            for &(key, b) in &runs[..n_runs] {
                let s0 = buf.len() as u32;
                self.filter_run(key, b, rect, buf);
                if buf.len() as u32 > s0 {
                    segs[n_segs] = (s0, buf.len() as u32);
                    n_segs += 1;
                }
            }
            match n_segs {
                0 => {}
                // One surviving segment: already ascending, copy through.
                1 => out.extend_from_slice(&buf[segs[0].0 as usize..segs[0].1 as usize]),
                _ => {
                    // Min-scan merge over the filtered segments — same
                    // rule as the scalar merge, but over survivors only.
                    let mut cursors = [0u32; MERGE_WIDTH];
                    for (c, &(s, _)) in cursors.iter_mut().zip(&segs[..n_segs]) {
                        *c = s;
                    }
                    loop {
                        let mut best: Option<(u32, usize)> = None;
                        for i in 0..n_segs {
                            if cursors[i] < segs[i].1 {
                                let payload = buf[cursors[i] as usize];
                                if best.is_none_or(|(bp, _)| payload < bp) {
                                    best = Some((payload, i));
                                }
                            }
                        }
                        let Some((payload, i)) = best else { return };
                        cursors[i] += 1;
                        out.push(payload);
                    }
                }
            }
        });
    }

    fn nearest(&self, q: Vec2, exclude: Option<u32>) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        // Expanding ring search over cells; falls back to a full scan once
        // the ring is larger than the populated area.
        let (qx, qy) = Self::key(q, self.cell);
        let mut best: Option<(f64, u32)> = None;
        let mut ring = 0i64;
        loop {
            let mut saw_any = false;
            for cx in (qx - ring)..=(qx + ring) {
                for cy in (qy - ring)..=(qy + ring) {
                    // Only the ring boundary (inner cells were already done).
                    if ring > 0 && cx != qx - ring && cx != qx + ring && cy != qy - ring && cy != qy + ring {
                        continue;
                    }
                    if let Some(&b) = self.buckets.get(&(cx, cy)) {
                        saw_any = true;
                        self.consider_bucket(b, q, exclude, &mut best);
                    }
                }
            }
            // A hit in ring r guarantees the true nearest is within ring
            // r+1 (cell geometry), so scan one extra ring then stop.
            if let Some((bd, _)) = best {
                let safe_radius = (ring as f64) * self.cell;
                if bd.sqrt() <= safe_radius || ring as usize > self.buckets.len() {
                    return best.map(|(_, p)| p);
                }
            }
            if !saw_any && ring > 0 && (ring as u64) > 2 * self.len as u64 + 2 {
                // Degenerate spread; brute force the remainder.
                for &b in self.buckets.values() {
                    self.consider_bucket(b, q, exclude, &mut best);
                }
                return best.map(|(_, p)| p);
            }
            ring += 1;
        }
    }

    /// Grid k-NN: gather-and-select over the occupied buckets. Correct but
    /// not ring-pruned — the KD-tree is the index of choice for k-NN
    /// probes; the grid's implementation exists so every index satisfies
    /// the full trait (ablations can still measure the difference). Since
    /// the arena rewrite the squared distances run as a lane kernel per
    /// bucket run directly over the native columns ([`dist2`] — the exact
    /// per-element operation sequence of `Vec2::dist2`, so results are
    /// bit-identical to the per-point loop). The canonical
    /// `(distance, payload)` selection makes the result independent of the
    /// hash map's iteration order.
    fn k_nearest_into(&self, q: Vec2, k: usize, exclude: Option<u32>, out: &mut Vec<u32>) {
        out.clear();
        if k == 0 {
            return;
        }
        with_knn_scratch(|scratch| {
            scratch.clear();
            with_dist2_scratch(|d2| {
                for &b in self.buckets.values() {
                    let (s, e) = Self::run_bounds(b);
                    dist2(&self.xs[s..e], &self.ys[s..e], q.x, q.y, d2);
                    scratch.extend(
                        d2.iter()
                            .zip(&self.payloads[s..e])
                            .filter(|&(_, &payload)| Some(payload) != exclude)
                            .map(|(&d, &payload)| (d, payload)),
                    );
                }
            });
            finish_knn(scratch, k, out);
        });
    }

    fn update(&mut self, moved: &[(u32, Vec2)]) -> bool {
        if self.locator.is_none() {
            return false;
        }
        for &(payload, new) in moved {
            let old_key = match self.locator.as_ref().expect("checked above").get(payload as usize) {
                Some(&key) if key != (i64::MAX, i64::MAX) => key,
                _ => return false,
            };
            let new_key = Self::key(new, self.cell);
            if new_key == old_key {
                // Same bucket (the common case with cell ≈ visibility ≫
                // reachability): overwrite the coordinates in place.
                let b = *self.buckets.get(&old_key).expect("locator points at a live bucket");
                let (s, e) = Self::run_bounds(b);
                let i = self.payloads[s..e].binary_search(&payload).expect("payload in its bucket");
                self.xs[s + i] = new.x;
                self.ys[s + i] = new.y;
            } else {
                self.remove_from(old_key, payload);
                self.insert_into(new_key, new, payload);
                self.locator.as_mut().expect("checked above")[payload as usize] = new_key;
            }
        }
        // Amortized arena hygiene: once relocations have abandoned more
        // slots than there are live points, re-pack. O(live) work paid at
        // most every O(live) relocations — queries never see it.
        if self.dead > self.len.max(NEW_BUCKET_CAP as usize) {
            self.compact();
        }
        true
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ScanIndex;
    use brace_common::DetRng;

    fn random_points(n: usize, seed: u64) -> Vec<(Vec2, u32)> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n).map(|i| (Vec2::new(rng.range(-50.0, 50.0), rng.range(-50.0, 50.0)), i as u32)).collect()
    }

    #[test]
    fn grid_range_matches_scan() {
        let pts = random_points(400, 11);
        let grid = UniformGrid::with_cell(&pts, 7.0);
        let scan = ScanIndex::build(&pts);
        let mut rng = DetRng::seed_from_u64(12);
        for _ in 0..50 {
            let c = Vec2::new(rng.range(-60.0, 60.0), rng.range(-60.0, 60.0));
            let rect = Rect::centered(c, rng.range(0.0, 25.0));
            let mut a = Vec::new();
            let mut b = Vec::new();
            grid.range(&rect, &mut a);
            scan.range(&rect, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn grid_nearest_matches_scan() {
        let pts = random_points(200, 13);
        let grid = UniformGrid::with_cell(&pts, 5.0);
        let scan = ScanIndex::build(&pts);
        let mut rng = DetRng::seed_from_u64(14);
        for _ in 0..100 {
            let q = Vec2::new(rng.range(-70.0, 70.0), rng.range(-70.0, 70.0));
            let a = grid.nearest(q, None).unwrap();
            let b = scan.nearest(q, None).unwrap();
            let da = pts[a as usize].0.dist2(q);
            let db = pts[b as usize].0.dist2(q);
            assert!((da - db).abs() < 1e-12, "grid {da} vs scan {db}");
        }
    }

    #[test]
    fn grid_handles_negative_coordinates() {
        let pts = vec![(Vec2::new(-10.5, -0.1), 0), (Vec2::new(-9.9, -0.2), 1)];
        let grid = UniformGrid::with_cell(&pts, 1.0);
        let mut out = Vec::new();
        grid.range(&Rect::from_bounds(-11.0, -10.0, -1.0, 0.0), &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn auto_cell_build_works() {
        let pts = random_points(100, 15);
        let grid = UniformGrid::build(&pts);
        assert_eq!(grid.len(), 100);
        assert!(grid.cell_size() > 0.0);
        let mut out = Vec::new();
        grid.range(&Rect::EVERYTHING.intersection(&Rect::from_bounds(-50.0, 50.0, -50.0, 50.0)), &mut out);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn empty_grid() {
        let grid = UniformGrid::build(&[]);
        assert!(grid.is_empty());
        assert_eq!(grid.nearest(Vec2::ZERO, None), None);
    }

    #[test]
    fn nearest_with_exclusion() {
        let pts = vec![(Vec2::ZERO, 0), (Vec2::new(1.0, 0.0), 1)];
        let grid = UniformGrid::with_cell(&pts, 1.0);
        assert_eq!(grid.nearest(Vec2::new(0.1, 0.0), Some(0)), Some(1));
    }

    #[test]
    fn far_query_still_finds_nearest() {
        let pts = vec![(Vec2::new(1000.0, 1000.0), 7)];
        let grid = UniformGrid::with_cell(&pts, 1.0);
        assert_eq!(grid.nearest(Vec2::ZERO, None), Some(7));
    }

    /// The canonical-order guarantee itself: every probe — narrow (k-way
    /// merge), wide (gather + sort) and sparse-occupancy fallback — emits
    /// payloads in globally ascending order, and the native `range_batch`
    /// emits the exact same sequence from the arena columns.
    #[test]
    fn grid_range_emits_ascending_payloads_on_every_path() {
        let pts = random_points(400, 21);
        let grid = UniformGrid::with_cell(&pts, 7.0);
        let mut rng = DetRng::seed_from_u64(22);
        let mut probes: Vec<Rect> = (0..40)
            .map(|_| {
                let c = Vec2::new(rng.range(-60.0, 60.0), rng.range(-60.0, 60.0));
                Rect::centered(c, rng.range(0.0, 8.0)) // ≤ 3×3 buckets: merge path
            })
            .collect();
        probes.push(Rect::centered(Vec2::ZERO, 40.0)); // > 16 buckets: gather + sort
        probes.push(Rect::from_bounds(-1e9, 1e9, -1e9, 1e9)); // sparse fallback
        for rect in probes {
            let (mut scalar, mut batched) = (Vec::new(), Vec::new());
            grid.range(&rect, &mut scalar);
            grid.range_batch(&rect, &mut batched);
            assert!(scalar.windows(2).all(|w| w[0] < w[1]), "non-ascending emission for {rect:?}: {scalar:?}");
            assert_eq!(scalar, batched, "range_batch sequence diverged for {rect:?}");
        }
    }

    /// Ascending emission survives incremental updates that shuffle points
    /// across buckets (shift-out + sorted shift-in keeps every run sorted),
    /// and the native batched path keeps emitting the identical sequence
    /// through run relocations and arena compactions.
    #[test]
    fn grid_emission_stays_ascending_after_updates() {
        let pts = random_points(120, 23);
        let mut grid = UniformGrid::with_cell(&pts, 5.0);
        let mut rng = DetRng::seed_from_u64(24);
        for round in 0..10 {
            let moved: Vec<(u32, Vec2)> = (0..40)
                .map(|_| {
                    let payload = rng.range(0.0, 120.0) as u32 % 120;
                    (payload, Vec2::new(rng.range(-50.0, 50.0), rng.range(-50.0, 50.0)))
                })
                .collect();
            assert!(grid.update(&moved));
            let rect = Rect::centered(Vec2::new(rng.range(-40.0, 40.0), rng.range(-40.0, 40.0)), 9.0);
            let (mut out, mut batched) = (Vec::new(), Vec::new());
            grid.range(&rect, &mut out);
            grid.range_batch(&rect, &mut batched);
            assert!(out.windows(2).all(|w| w[0] < w[1]), "round {round}: non-ascending {out:?}");
            assert_eq!(out, batched, "round {round}: batched sequence diverged");
        }
    }

    /// Arena stability under adversarial churn: every agent funneled into
    /// one hotspot cell (maximal run relocation + growth), then scattered
    /// back out (bucket death + compaction). After each phase the grid must
    /// answer exactly like a fresh build over the moved points, on both the
    /// scalar and the native batched path.
    #[test]
    fn soa_arena_survives_hotspot_collapse_and_scatter() {
        let pts = random_points(200, 31);
        let mut grid = UniformGrid::with_cell(&pts, 5.0);
        let mut current = pts.clone();
        let mut rng = DetRng::seed_from_u64(32);
        for phase in 0..6 {
            let collapse = phase % 2 == 0;
            let moved: Vec<(u32, Vec2)> = (0..200u32)
                .map(|payload| {
                    let p = if collapse {
                        // Everyone into one cell: runs relocate and double.
                        Vec2::new(rng.range(0.0, 4.9), rng.range(0.0, 4.9))
                    } else {
                        Vec2::new(rng.range(-50.0, 50.0), rng.range(-50.0, 50.0))
                    };
                    (payload, p)
                })
                .collect();
            assert!(grid.update(&moved));
            for &(payload, p) in &moved {
                current[payload as usize].0 = p;
            }
            let fresh = UniformGrid::with_cell(&current, 5.0);
            for _ in 0..20 {
                let c = Vec2::new(rng.range(-55.0, 55.0), rng.range(-55.0, 55.0));
                let rect = Rect::centered(c, rng.range(0.0, 12.0));
                let (mut inc, mut inc_b, mut ref_s) = (Vec::new(), Vec::new(), Vec::new());
                grid.range(&rect, &mut inc);
                grid.range_batch(&rect, &mut inc_b);
                fresh.range(&rect, &mut ref_s);
                assert_eq!(inc, ref_s, "phase {phase}: incremental != fresh for {rect:?}");
                assert_eq!(inc, inc_b, "phase {phase}: batched sequence diverged for {rect:?}");
            }
            assert_eq!(grid.len(), 200);
        }
        // The collapse/scatter cycles must actually have exercised the
        // relocation machinery; compaction keeps dead slots bounded.
        assert!(grid.dead_slots() <= grid.len().max(NEW_BUCKET_CAP as usize), "compaction never engaged");
    }

    /// A rect that fully covers interior cells takes the covered-run fast
    /// path (whole runs emitted without the lane filter); the emission must
    /// still be exactly the scalar sequence.
    #[test]
    fn covered_cell_fast_path_matches_scalar() {
        let pts = random_points(300, 41);
        let grid = UniformGrid::with_cell(&pts, 7.0);
        let mut rng = DetRng::seed_from_u64(42);
        for _ in 0..30 {
            let c = Vec2::new(rng.range(-30.0, 30.0), rng.range(-30.0, 30.0));
            // Half-extent 10.5–14 over 7.0-cells: 3–5 cells per axis, the
            // interior ones fully covered.
            let rect = Rect::centered(c, rng.range(10.5, 14.0));
            let (mut scalar, mut batched) = (Vec::new(), Vec::new());
            grid.range(&rect, &mut scalar);
            grid.range_batch(&rect, &mut batched);
            assert_eq!(scalar, batched, "covered fast path diverged for {rect:?}");
            assert!(!scalar.is_empty(), "probe should hit points");
        }
    }

    /// Duplicate payloads disable the locator (no `update`) but every range
    /// path must still work over the arena and agree scalar ≡ batched as a
    /// value sequence.
    #[test]
    fn duplicate_payloads_still_query_correctly() {
        let mut pts = random_points(64, 51);
        for (i, p) in pts.iter_mut().enumerate() {
            p.1 = (i % 8) as u32; // heavy duplication
        }
        let mut grid = UniformGrid::with_cell(&pts, 5.0);
        assert!(!grid.update(&[(0, Vec2::ZERO)]), "duplicates cannot maintain in place");
        let mut rng = DetRng::seed_from_u64(52);
        for _ in 0..20 {
            let rect = Rect::centered(Vec2::new(rng.range(-40.0, 40.0), rng.range(-40.0, 40.0)), rng.range(0.0, 20.0));
            let (mut scalar, mut batched) = (Vec::new(), Vec::new());
            grid.range(&rect, &mut scalar);
            grid.range_batch(&rect, &mut batched);
            assert_eq!(scalar, batched, "duplicate-payload sequence diverged for {rect:?}");
        }
    }
}
