//! Uniform-grid (bucket) spatial index.
//!
//! The ablation alternative to the KD-tree: space is covered by square cells
//! of side `cell`; each cell holds the points inside it. Range queries visit
//! only the cells overlapping the query rectangle. For the roughly uniform
//! densities of the traffic workload a grid with cell ≈ visibility radius is
//! hard to beat; for strongly clustered workloads (fish schools) the KD-tree
//! adapts where the grid degrades — which is exactly why the comparison is
//! interesting (see `bench/benches/spatial_index.rs`).
//!
//! The grid hashes unbounded space: cell coordinates are derived by flooring
//! and looked up in a hash map, so the "unbounded ocean" of the fish model
//! needs no special casing.
//!
//! The grid is the index most amenable to **incremental maintenance**: a
//! moved agent either stays in its bucket (position overwritten in place —
//! the common case when cell ≈ visibility ≫ reachability) or moves to an
//! adjacent bucket (one sorted remove + one sorted insert). Query
//! efficiency never degrades under updates, so [`SpatialIndex::maintain`]
//! is a no-op.
//!
//! Range emission is globally **ascending by payload**: each bucket is
//! kept payload-sorted and probes merge the overlapping buckets by
//! payload, so candidates stream out in id order on any id-ordered pool.
//! That makes the grid's canonical order identical to the cluster
//! collector's, i.e. order-sensitive float-sum models are exactly
//! distributable on the grid (see `brace_scenario::builtin`).

use crate::index::{dense_slots, finish_knn, with_knn_scratch, SpatialIndex};
use crate::kernels::{filter_rect, with_gather_scratch};
use brace_common::{Rect, Vec2};
use std::collections::HashMap;

/// Bucket index over uniform square cells. See module docs.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<(Vec2, u32)>>,
    len: usize,
    /// `payload -> current cell key`, when payloads are dense (enables
    /// `update`); buckets are kept sorted by payload so removal is a binary
    /// search rather than a scan.
    locator: Option<Vec<(i64, i64)>>,
}

/// Default cell size when the caller builds through the generic
/// [`SpatialIndex::build`] (which cannot pass a size): chosen from the data
/// so that an average cell holds a handful of points.
fn auto_cell(points: &[(Vec2, u32)]) -> f64 {
    if points.is_empty() {
        return 1.0;
    }
    let bounds = points.iter().fold(Rect::EMPTY, |b, &(p, _)| b.extended(p));
    let area = (bounds.width().max(1e-9)) * (bounds.height().max(1e-9));
    // Target ~4 points per cell.
    (area * 4.0 / points.len() as f64).sqrt().max(1e-9)
}

impl UniformGrid {
    /// Build with an explicit cell size (normally the visibility bound).
    pub fn with_cell(points: &[(Vec2, u32)], cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell size must be positive");
        let mut cells: HashMap<(i64, i64), Vec<(Vec2, u32)>> = HashMap::new();
        for &(p, payload) in points {
            cells.entry(Self::key(p, cell)).or_default().push((p, payload));
        }
        for bucket in cells.values_mut() {
            bucket.sort_unstable_by_key(|&(_, payload)| payload);
        }
        let locator = dense_slots(points).map(|slots| {
            let mut loc = vec![(i64::MAX, i64::MAX); slots.len()];
            for &(p, payload) in points {
                loc[payload as usize] = Self::key(p, cell);
            }
            loc
        });
        UniformGrid { cell, cells, len: points.len(), locator }
    }

    #[inline]
    fn key(p: Vec2, cell: f64) -> (i64, i64) {
        ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
    }

    /// The configured cell side length.
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of non-empty cells (diagnostic for load-skew analysis).
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// Visit every point of the buckets overlapping `rect` in globally
    /// ascending payload order. Buckets stay payload-sorted through
    /// `update`s, so the typical ≤3×3 overlap is an allocation-free k-way
    /// merge of sorted runs; wider rectangles (and the sparse-occupancy
    /// fallback, which scans every occupied cell) gather into a per-thread
    /// scratch and sort by payload once. Shared by the scalar
    /// [`SpatialIndex::range`] (inline containment test) and the batched
    /// [`SpatialIndex::range_batch`] (gather, then one lane-kernel filter
    /// pass) so both emit candidates from exactly the same sequence.
    ///
    /// Payloads are pool row indices, and every single-node pool stores
    /// rows in id order — so ascending-payload emission *is* id-sorted
    /// emission, the cluster collector's canonical order. That makes
    /// order-sensitive float-sum models exactly distributable on the grid
    /// (see `brace_scenario::builtin`); before this merge the emission was
    /// bucket-major, an order no distributed reduction can reproduce.
    fn for_merged_points(&self, rect: &Rect, mut f: impl FnMut(Vec2, u32)) {
        if rect.is_empty() || self.len == 0 {
            return;
        }
        let (x0, y0) = Self::key(rect.lo, self.cell);
        let (x1, y1) = Self::key(rect.hi, self.cell);
        // Guard against absurd query rectangles producing gigantic loops:
        // iterate cells only when the cell count is smaller than the point
        // count; otherwise scan the occupied cells directly (hash-map
        // iteration order must never leak into results — the payload sort
        // below canonicalizes it away).
        let cell_count = (x1 - x0 + 1).saturating_mul(y1 - y0 + 1);
        let sparse = cell_count as usize > self.cells.len();
        const MERGE_WIDTH: usize = 16;
        let mut runs: [&[(Vec2, u32)]; MERGE_WIDTH] = [&[]; MERGE_WIDTH];
        let mut n_runs = 0;
        let mut overflow = sparse;
        if !sparse {
            'collect: for cx in x0..=x1 {
                for cy in y0..=y1 {
                    if let Some(bucket) = self.cells.get(&(cx, cy)) {
                        if n_runs == MERGE_WIDTH {
                            overflow = true;
                            break 'collect;
                        }
                        runs[n_runs] = bucket;
                        n_runs += 1;
                    }
                }
            }
        }
        if overflow {
            // Wide rectangle or degenerate occupancy: one gather + one
            // payload sort beats an O(points × buckets) min-scan here.
            with_merge_scratch(|pairs| {
                pairs.clear();
                if sparse {
                    pairs.extend(self.cells.values().flatten().copied());
                } else {
                    for cx in x0..=x1 {
                        for cy in y0..=y1 {
                            if let Some(bucket) = self.cells.get(&(cx, cy)) {
                                pairs.extend(bucket.iter().copied());
                            }
                        }
                    }
                }
                pairs.sort_unstable_by_key(|&(_, payload)| payload);
                for &(p, payload) in pairs.iter() {
                    f(p, payload);
                }
            });
            return;
        }
        // Common case: merge the payload-sorted runs with a linear
        // min-scan over ≤16 cursors — no allocation, no per-probe sort.
        let mut cursors = [0usize; MERGE_WIDTH];
        loop {
            let mut best: Option<(u32, usize)> = None;
            for (i, run) in runs[..n_runs].iter().enumerate() {
                if let Some(&(_, payload)) = run.get(cursors[i]) {
                    if best.is_none_or(|(b, _)| payload < b) {
                        best = Some((payload, i));
                    }
                }
            }
            let Some((_, i)) = best else { return };
            let (p, payload) = runs[i][cursors[i]];
            cursors[i] += 1;
            f(p, payload);
        }
    }
}

brace_common::tls_scratch!(
    /// Reusable per-thread point buffer for range probes too wide for the
    /// fixed-width bucket merge, which must still emit in ascending
    /// payload order without a per-probe allocation.
    fn with_merge_scratch -> Vec<(Vec2, u32)>
);

impl SpatialIndex for UniformGrid {
    /// Emission is globally **ascending by payload** (buckets stay
    /// payload-sorted through `update`s and range probes merge them by
    /// payload), so the order is a pure function of the matching point set
    /// alone — not even the cell size can perturb it. Since payloads are
    /// id-ordered pool rows on every single-node pool, this is exactly the
    /// id-sorted order the cluster collector canonicalizes to, making the
    /// grid exactly distributable for order-sensitive float reductions.
    const RANGE_CANONICAL: bool = true;

    fn build(points: &[(Vec2, u32)]) -> Self {
        UniformGrid::with_cell(points, auto_cell(points))
    }

    fn range(&self, rect: &Rect, out: &mut Vec<u32>) {
        self.for_merged_points(rect, |p, payload| {
            if rect.contains(p) {
                out.push(payload);
            }
        });
    }

    /// Batched range: gather the merged (payload-ascending) candidate
    /// stream into the thread's SoA columns, then run the containment test
    /// as one lane-kernel pass. The shared merge order and the
    /// order-preserving filter make the emitted sequence exactly equal to
    /// [`SpatialIndex::range`]'s (the canonical-order contract).
    fn range_batch(&self, rect: &Rect, out: &mut Vec<u32>) {
        with_gather_scratch(|s| {
            s.clear();
            self.for_merged_points(rect, |p, payload| {
                s.push(p.x, p.y, payload);
            });
            filter_rect(&s.xs, &s.ys, &s.payloads, rect, out);
        });
    }

    fn nearest(&self, q: Vec2, exclude: Option<u32>) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        // Expanding ring search over cells; falls back to a full scan once
        // the ring is larger than the populated area.
        let (qx, qy) = Self::key(q, self.cell);
        let mut best: Option<(f64, u32)> = None;
        let mut ring = 0i64;
        loop {
            let mut saw_any = false;
            for cx in (qx - ring)..=(qx + ring) {
                for cy in (qy - ring)..=(qy + ring) {
                    // Only the ring boundary (inner cells were already done).
                    if ring > 0 && cx != qx - ring && cx != qx + ring && cy != qy - ring && cy != qy + ring {
                        continue;
                    }
                    if let Some(bucket) = self.cells.get(&(cx, cy)) {
                        saw_any = true;
                        for &(p, payload) in bucket {
                            if Some(payload) == exclude {
                                continue;
                            }
                            let d = p.dist2(q);
                            if best.is_none_or(|(bd, _)| d < bd) {
                                best = Some((d, payload));
                            }
                        }
                    }
                }
            }
            // A hit in ring r guarantees the true nearest is within ring
            // r+1 (cell geometry), so scan one extra ring then stop.
            if let Some((bd, _)) = best {
                let safe_radius = (ring as f64) * self.cell;
                if bd.sqrt() <= safe_radius || ring as usize > self.cells.len() {
                    return best.map(|(_, p)| p);
                }
            }
            if !saw_any && ring > 0 && (ring as u64) > 2 * self.len as u64 + 2 {
                // Degenerate spread; brute force the remainder.
                for (_, bucket) in self.cells.iter() {
                    for &(p, payload) in bucket {
                        if Some(payload) == exclude {
                            continue;
                        }
                        let d = p.dist2(q);
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, payload));
                        }
                    }
                }
                return best.map(|(_, p)| p);
            }
            ring += 1;
        }
    }

    /// Grid k-NN: gather-and-select over the occupied cells. Correct but
    /// not ring-pruned — the KD-tree is the index of choice for k-NN
    /// probes; the grid's implementation exists so every index satisfies
    /// the full trait (ablations can still measure the difference). This
    /// stays a *single* pass on purpose: a batched form would first gather
    /// the bucket points into SoA columns, exactly the unprofitable
    /// gather-per-probe pattern `RANGE_BATCH_NATIVE` exists to avoid (the
    /// scan's k-NN runs the lane kernel because its columns need no
    /// gather). The canonical `(distance, payload)` selection makes the
    /// result independent of the hash map's iteration order.
    fn k_nearest_into(&self, q: Vec2, k: usize, exclude: Option<u32>, out: &mut Vec<u32>) {
        out.clear();
        if k == 0 {
            return;
        }
        with_knn_scratch(|scratch| {
            scratch.clear();
            scratch.extend(
                self.cells
                    .values()
                    .flatten()
                    .filter(|&&(_, payload)| Some(payload) != exclude)
                    .map(|&(p, payload)| (p.dist2(q), payload)),
            );
            finish_knn(scratch, k, out);
        });
    }

    fn update(&mut self, moved: &[(u32, Vec2)]) -> bool {
        if self.locator.is_none() {
            return false;
        }
        for &(payload, new) in moved {
            let old_key = match self.locator.as_ref().unwrap().get(payload as usize) {
                Some(&key) if key != (i64::MAX, i64::MAX) => key,
                _ => return false,
            };
            let new_key = Self::key(new, self.cell);
            if new_key == old_key {
                // Same bucket (the common case with cell ≈ visibility ≫
                // reachability): overwrite the position in place.
                let bucket = self.cells.get_mut(&old_key).expect("locator points at a live bucket");
                let i = bucket.binary_search_by_key(&payload, |&(_, pl)| pl).expect("payload in its bucket");
                bucket[i].0 = new;
            } else {
                let bucket = self.cells.get_mut(&old_key).expect("locator points at a live bucket");
                let i = bucket.binary_search_by_key(&payload, |&(_, pl)| pl).expect("payload in its bucket");
                bucket.remove(i);
                if bucket.is_empty() {
                    self.cells.remove(&old_key);
                }
                let bucket = self.cells.entry(new_key).or_default();
                let i = bucket.binary_search_by_key(&payload, |&(_, pl)| pl).unwrap_err();
                bucket.insert(i, (new, payload));
                self.locator.as_mut().unwrap()[payload as usize] = new_key;
            }
        }
        true
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ScanIndex;
    use brace_common::DetRng;

    fn random_points(n: usize, seed: u64) -> Vec<(Vec2, u32)> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n).map(|i| (Vec2::new(rng.range(-50.0, 50.0), rng.range(-50.0, 50.0)), i as u32)).collect()
    }

    #[test]
    fn grid_range_matches_scan() {
        let pts = random_points(400, 11);
        let grid = UniformGrid::with_cell(&pts, 7.0);
        let scan = ScanIndex::build(&pts);
        let mut rng = DetRng::seed_from_u64(12);
        for _ in 0..50 {
            let c = Vec2::new(rng.range(-60.0, 60.0), rng.range(-60.0, 60.0));
            let rect = Rect::centered(c, rng.range(0.0, 25.0));
            let mut a = Vec::new();
            let mut b = Vec::new();
            grid.range(&rect, &mut a);
            scan.range(&rect, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn grid_nearest_matches_scan() {
        let pts = random_points(200, 13);
        let grid = UniformGrid::with_cell(&pts, 5.0);
        let scan = ScanIndex::build(&pts);
        let mut rng = DetRng::seed_from_u64(14);
        for _ in 0..100 {
            let q = Vec2::new(rng.range(-70.0, 70.0), rng.range(-70.0, 70.0));
            let a = grid.nearest(q, None).unwrap();
            let b = scan.nearest(q, None).unwrap();
            let da = pts[a as usize].0.dist2(q);
            let db = pts[b as usize].0.dist2(q);
            assert!((da - db).abs() < 1e-12, "grid {da} vs scan {db}");
        }
    }

    #[test]
    fn grid_handles_negative_coordinates() {
        let pts = vec![(Vec2::new(-10.5, -0.1), 0), (Vec2::new(-9.9, -0.2), 1)];
        let grid = UniformGrid::with_cell(&pts, 1.0);
        let mut out = Vec::new();
        grid.range(&Rect::from_bounds(-11.0, -10.0, -1.0, 0.0), &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn auto_cell_build_works() {
        let pts = random_points(100, 15);
        let grid = UniformGrid::build(&pts);
        assert_eq!(grid.len(), 100);
        assert!(grid.cell_size() > 0.0);
        let mut out = Vec::new();
        grid.range(&Rect::EVERYTHING.intersection(&Rect::from_bounds(-50.0, 50.0, -50.0, 50.0)), &mut out);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn empty_grid() {
        let grid = UniformGrid::build(&[]);
        assert!(grid.is_empty());
        assert_eq!(grid.nearest(Vec2::ZERO, None), None);
    }

    #[test]
    fn nearest_with_exclusion() {
        let pts = vec![(Vec2::ZERO, 0), (Vec2::new(1.0, 0.0), 1)];
        let grid = UniformGrid::with_cell(&pts, 1.0);
        assert_eq!(grid.nearest(Vec2::new(0.1, 0.0), Some(0)), Some(1));
    }

    #[test]
    fn far_query_still_finds_nearest() {
        let pts = vec![(Vec2::new(1000.0, 1000.0), 7)];
        let grid = UniformGrid::with_cell(&pts, 1.0);
        assert_eq!(grid.nearest(Vec2::ZERO, None), Some(7));
    }

    /// The canonical-order guarantee itself: every probe — narrow (k-way
    /// merge), wide (gather + sort) and sparse-occupancy fallback — emits
    /// payloads in globally ascending order, and `range_batch` emits the
    /// exact same sequence.
    #[test]
    fn grid_range_emits_ascending_payloads_on_every_path() {
        let pts = random_points(400, 21);
        let grid = UniformGrid::with_cell(&pts, 7.0);
        let mut rng = DetRng::seed_from_u64(22);
        let mut probes: Vec<Rect> = (0..40)
            .map(|_| {
                let c = Vec2::new(rng.range(-60.0, 60.0), rng.range(-60.0, 60.0));
                Rect::centered(c, rng.range(0.0, 8.0)) // ≤ 3×3 buckets: merge path
            })
            .collect();
        probes.push(Rect::centered(Vec2::ZERO, 40.0)); // > 16 buckets: gather + sort
        probes.push(Rect::from_bounds(-1e9, 1e9, -1e9, 1e9)); // sparse fallback
        for rect in probes {
            let (mut scalar, mut batched) = (Vec::new(), Vec::new());
            grid.range(&rect, &mut scalar);
            grid.range_batch(&rect, &mut batched);
            assert!(scalar.windows(2).all(|w| w[0] < w[1]), "non-ascending emission for {rect:?}: {scalar:?}");
            assert_eq!(scalar, batched, "range_batch sequence diverged for {rect:?}");
        }
    }

    /// Ascending emission survives incremental updates that shuffle points
    /// across buckets (remove + sorted insert keeps every bucket sorted).
    #[test]
    fn grid_emission_stays_ascending_after_updates() {
        let pts = random_points(120, 23);
        let mut grid = UniformGrid::with_cell(&pts, 5.0);
        let mut rng = DetRng::seed_from_u64(24);
        for round in 0..10 {
            let moved: Vec<(u32, Vec2)> = (0..40)
                .map(|_| {
                    let payload = rng.range(0.0, 120.0) as u32 % 120;
                    (payload, Vec2::new(rng.range(-50.0, 50.0), rng.range(-50.0, 50.0)))
                })
                .collect();
            assert!(grid.update(&moved));
            let rect = Rect::centered(Vec2::new(rng.range(-40.0, 40.0), rng.range(-40.0, 40.0)), 9.0);
            let mut out = Vec::new();
            grid.range(&rect, &mut out);
            assert!(out.windows(2).all(|w| w[0] < w[1]), "round {round}: non-ascending {out:?}");
        }
    }
}
