//! Spatial substrate for BRACE.
//!
//! The paper's central abstraction is that a simulation tick is a *spatial
//! self-join*: each agent must see exactly the agents inside its visible
//! region. This crate supplies everything spatial that the engine and the
//! MapReduce runtime need:
//!
//! * [`index`] — the [`SpatialIndex`] abstraction with
//!   three implementations: a brute-force scan (the paper's "no indexing"
//!   baseline), a [`KdTree`] (the paper's prototype used a
//!   KD-tree, citing Bentley), and a [`UniformGrid`] bucket index whose
//!   buckets are bucket-major SoA column runs in one contiguous arena —
//!   kernel-native (`RANGE_BATCH_NATIVE`) and canonical
//!   (`RANGE_CANONICAL`), maintained incrementally under motion.
//! * [`partition`] — the spatial partitioning function `P : L → P` of the
//!   paper's Appendix A: a rectilinear grid whose column boundaries can be
//!   moved by the load balancer, owned regions, partition visible regions
//!   and replica-target enumeration; [`quadtree`] provides the paper's
//!   other named candidate, an adaptive quadtree.
//! * [`join`] — reference spatial self-join implementations used to
//!   cross-validate the indexes and as the formal ground truth in tests.
//! * [`kernels`] — fixed-width lane kernels (range filter, squared
//!   distances) behind the indexes' batched probe paths
//!   (`SpatialIndex::range_batch`), proven bit-identical to the scalar
//!   loops by the kernel conformance suite in `tests/properties.rs`.

pub mod grid;
pub mod index;
pub mod join;
pub mod kdtree;
pub mod kernels;
pub mod partition;
pub mod quadtree;

pub use grid::UniformGrid;
pub use index::{IndexKind, ScanIndex, SpatialIndex};
pub use kdtree::KdTree;
pub use partition::{GridPartitioning, Partitioner};
pub use quadtree::QuadTreePartitioning;
