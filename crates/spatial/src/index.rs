//! The spatial-index abstraction.
//!
//! BRACE's reducers answer one query shape billions of times: *"which agents
//! lie inside this axis-aligned rectangle?"* (the compiled form of a BRASIL
//! `foreach` under a `#range` visibility constraint) — plus nearest-neighbor
//! probes for models like MITSIM's lead/rear-vehicle lookup. The engine is
//! generic over [`SpatialIndex`] so the paper's indexing-on/off experiments
//! (Figures 3 and 4) are a one-line configuration change, and so the KD-tree
//! can be compared against a uniform grid in the ablation benchmarks.
//!
//! Positions are immutable during the query phase (the state-effect
//! pattern guarantees states are frozen within a tick), so no index needs to
//! support updates mid-tick. *Between* ticks, however, the reachability
//! bound limits how far any agent can move, so rebuilding from scratch every
//! tick wastes the work of the previous build. Indexes that can exploit this
//! implement [`SpatialIndex::update`] (apply a batch of per-payload position
//! changes in place) and [`SpatialIndex::maintain`] (amortized
//! restructuring once accumulated motion exceeds a budget); the executor
//! charges only the agents that actually moved and falls back to a full
//! rebuild when `update` reports the index cannot maintain itself.

use brace_common::{Rect, Vec2};

/// A read-only spatial index over a set of points, each carrying a `u32`
/// payload (the index of the agent in the tick's agent table).
pub trait SpatialIndex: Send + Sync {
    /// True when [`SpatialIndex::range`] emits candidates in an order that
    /// is a pure function of the current point set (same points in the
    /// same payload order ⇒ same emission order), independent of the
    /// history of [`SpatialIndex::update`] calls. Canonical indexes let
    /// the executor skip its per-probe candidate sort: a maintained index
    /// and a fresh rebuild already aggregate float effects identically.
    const RANGE_CANONICAL: bool = false;

    /// Build an index over `points`. Payloads need not be unique or dense.
    fn build(points: &[(Vec2, u32)]) -> Self
    where
        Self: Sized;

    /// Append the payloads of every point inside the closed rectangle
    /// `rect` to `out`, in unspecified order.
    fn range(&self, rect: &Rect, out: &mut Vec<u32>);

    /// True when [`SpatialIndex::range_batch`] filters the index's **own**
    /// SoA columns with no per-probe gather (the scan; the grid since its
    /// buckets became bucket-major column runs in one arena). The
    /// executor's batched mode uses `range_batch` as its default probe only
    /// for such indexes: a gather-based batched filter (KD boundary
    /// leaves; the grid before the arena) adds a second memory pass over
    /// every candidate, which on memory-bound cores costs more than the
    /// lane compares save for the small per-probe candidate sets indexes
    /// exist to produce — the gather-era grid measured 0.7–0.9× query
    /// throughput on the reference container, where the arena-native grid
    /// measures 1.15–1.3× and the native scan path 2–8×. Gather-based
    /// paths remain correct and stay exercised by the conformance suite.
    const RANGE_BATCH_NATIVE: bool = false;

    /// Batched form of [`SpatialIndex::range`]: emit coarse candidates
    /// (whole buckets, boundary leaves, whole columns) into gather columns
    /// and run the containment test as a lane kernel
    /// ([`crate::kernels::filter_rect`]) instead of a branch per point.
    /// Candidates are identical to `range`'s: for canonical indexes the
    /// emitted *sequence* matches exactly (filtering preserves gather
    /// order), for non-canonical indexes the *set* matches (callers sort,
    /// exactly as they must for `range`). The default forwards to `range`
    /// for indexes without a batched path.
    fn range_batch(&self, rect: &Rect, out: &mut Vec<u32>) {
        self.range(rect, out);
    }

    /// Payload of a point nearest to `q` in Euclidean distance (ties are
    /// broken arbitrarily), excluding points whose payload equals `exclude`
    /// (so an agent can ask for its nearest *other* agent). `None` when no
    /// eligible point exists.
    fn nearest(&self, q: Vec2, exclude: Option<u32>) -> Option<u32>;

    /// The `k` nearest points to `q` by Euclidean distance, sorted
    /// ascending into `out` (cleared first), excluding payload `exclude`.
    /// Fewer than `k` results when fewer points exist. This is the probe
    /// behind the paper's nearest-neighbor-indexing extension (its
    /// "planned future work"): MITSIM-style models look up lead/rear
    /// vehicles by proximity rather than fixed range. Ties are broken by
    /// ascending payload, so the result is a pure function of the point
    /// *set* — independent of build history, which is what lets
    /// incrementally maintained indexes answer bit-identically to freshly
    /// rebuilt ones. Taking the caller's buffer means a caller probing
    /// once per agent per tick performs no per-probe allocation (the
    /// `Nearest` probe path of the executor).
    fn k_nearest_into(&self, q: Vec2, k: usize, exclude: Option<u32>, out: &mut Vec<u32>);

    /// Apply a batch of position changes: each `(payload, new_pos)` moves
    /// every point carrying `payload` to `new_pos`. Returns `true` when the
    /// index applied the batch in place; `false` when it does not support
    /// in-place maintenance (or its internal payload map cannot represent
    /// the workload), in which case the caller must rebuild. After a
    /// successful `update`, every query answers exactly as a fresh build
    /// over the moved points would (candidate *sets*; intra-probe order may
    /// differ).
    fn update(&mut self, _moved: &[(u32, Vec2)]) -> bool {
        false
    }

    /// Amortized restructuring hook for indexes whose query efficiency
    /// (not correctness) degrades under [`SpatialIndex::update`]: once the
    /// accumulated motion since the last restructure exceeds
    /// `motion_budget`, the index rebuilds its stale regions. The budget is
    /// policy owned by the caller — the executor passes a fraction of the
    /// schema's visibility bound, the scale at which inflated bounding
    /// boxes start admitting extra probe candidates.
    fn maintain(&mut self, _motion_budget: f64) {}

    /// Number of indexed points.
    fn len(&self) -> usize;

    /// True when no points are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which index the engine should build each tick. This enum exists so that
/// configuration is data (serializable into experiment manifests) rather
/// than a type parameter, while the hot loops still run against the
/// concrete, monomorphized index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// No index: the query phase scans every agent for every agent. This is
    /// the quadratic baseline of Figures 3 and 4.
    Scan,
    /// KD-tree with orthogonal range queries (the paper's choice).
    #[default]
    KdTree,
    /// Uniform grid (bucket) index; ablation alternative.
    Grid,
}

/// Map `payload -> slot` for point sets whose payloads are unique and
/// dense enough (max payload < 4 × point count) — the executor's row
/// payloads always are. `None` when the payload space is sparse or
/// duplicated, in which case in-place maintenance is unsupported and the
/// caller rebuilds. Shared by every index's [`SpatialIndex::update`].
pub(crate) fn dense_slots(points: &[(Vec2, u32)]) -> Option<Vec<u32>> {
    let max = points.iter().map(|&(_, p)| p).max()?;
    if max as usize >= 4 * points.len().max(16) {
        return None;
    }
    let mut slots = vec![u32::MAX; max as usize + 1];
    for (i, &(_, p)) in points.iter().enumerate() {
        if slots[p as usize] != u32::MAX {
            return None; // duplicate payload
        }
        slots[p as usize] = i as u32;
    }
    Some(slots)
}

brace_common::tls_scratch!(
    /// Reusable per-thread `(dist², payload)` buffer for k-NN gathering, so
    /// [`SpatialIndex::k_nearest_into`] implementations allocate nothing
    /// per probe after warm-up.
    pub(crate) fn with_knn_scratch -> Vec<(f64, u32)>
);

brace_common::tls_scratch!(
    /// Reusable per-thread squared-distance column for batched k-NN
    /// gathering (the output of [`crate::kernels::dist2`]).
    pub(crate) fn with_dist2_scratch -> Vec<f64>
);

/// Canonical k-NN ordering: ascending distance, ties by ascending payload.
#[inline]
pub(crate) fn knn_cmp(a: &(f64, u32), b: &(f64, u32)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
}

/// Keep the canonical first `k` of `scratch` (see [`knn_cmp`]), sorted, and
/// append their payloads to `out`.
pub(crate) fn finish_knn(scratch: &mut Vec<(f64, u32)>, k: usize, out: &mut Vec<u32>) {
    if scratch.len() > k {
        scratch.select_nth_unstable_by(k, knn_cmp);
        scratch.truncate(k);
    }
    scratch.sort_unstable_by(knn_cmp);
    out.extend(scratch.iter().map(|&(_, p)| p));
}

/// Brute-force "index": linear scan. The `build` step is free; every query
/// is O(n). With n agents each running one range query per tick the tick
/// cost is O(n²) — exactly the no-indexing degradation the paper reports.
///
/// Storage is struct-of-arrays (`xs`/`ys`/`payloads` columns): every probe
/// touches every point, so the range filter runs as one lane kernel over
/// the flat coordinate columns ([`crate::kernels::filter_rect`]) with no
/// per-probe gather at all.
#[derive(Debug, Clone, Default)]
pub struct ScanIndex {
    xs: Vec<f64>,
    ys: Vec<f64>,
    payloads: Vec<u32>,
    /// `payload -> slot`, when payloads are dense (enables `update`).
    slots: Option<Vec<u32>>,
}

impl SpatialIndex for ScanIndex {
    /// The scan preserves insertion order and `update` overwrites slots in
    /// place, so emission order never depends on update history.
    const RANGE_CANONICAL: bool = true;

    /// The batched filter runs directly over the scan's own columns — no
    /// per-probe gather, so it is the executor's default probe here.
    const RANGE_BATCH_NATIVE: bool = true;

    fn build(points: &[(Vec2, u32)]) -> Self {
        ScanIndex {
            xs: points.iter().map(|&(p, _)| p.x).collect(),
            ys: points.iter().map(|&(p, _)| p.y).collect(),
            payloads: points.iter().map(|&(_, pl)| pl).collect(),
            slots: dense_slots(points),
        }
    }

    fn range(&self, rect: &Rect, out: &mut Vec<u32>) {
        // Lockstep iterators, not indexing: three independent columns would
        // otherwise pay a bounds check per element.
        for ((&x, &y), &payload) in self.xs.iter().zip(&self.ys).zip(&self.payloads) {
            if rect.contains(Vec2::new(x, y)) {
                out.push(payload);
            }
        }
    }

    /// The flagship batched path: the columns are already SoA, so the lane
    /// kernel filters them directly — no gather, no per-point branch.
    fn range_batch(&self, rect: &Rect, out: &mut Vec<u32>) {
        crate::kernels::filter_rect(&self.xs, &self.ys, &self.payloads, rect, out);
    }

    fn nearest(&self, q: Vec2, exclude: Option<u32>) -> Option<u32> {
        let mut best: Option<(f64, u32)> = None;
        for ((&x, &y), &payload) in self.xs.iter().zip(&self.ys).zip(&self.payloads) {
            if Some(payload) == exclude {
                continue;
            }
            let d = Vec2::new(x, y).dist2(q);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, payload));
            }
        }
        best.map(|(_, payload)| payload)
    }

    fn k_nearest_into(&self, q: Vec2, k: usize, exclude: Option<u32>, out: &mut Vec<u32>) {
        out.clear();
        if k == 0 {
            return;
        }
        // Squared distances as one lane kernel over the columns, then the
        // canonical (distance, payload) selection — element-for-element the
        // same arithmetic as the per-point path, so results are identical.
        with_dist2_scratch(|d2| {
            crate::kernels::dist2(&self.xs, &self.ys, q.x, q.y, d2);
            with_knn_scratch(|scratch| {
                scratch.clear();
                scratch.extend(
                    d2.iter()
                        .zip(&self.payloads)
                        .filter(|&(_, &payload)| Some(payload) != exclude)
                        .map(|(&d, &payload)| (d, payload)),
                );
                finish_knn(scratch, k, out);
            });
        });
    }

    fn update(&mut self, moved: &[(u32, Vec2)]) -> bool {
        let Some(slots) = &self.slots else { return false };
        for &(payload, new) in moved {
            match slots.get(payload as usize) {
                Some(&slot) if slot != u32::MAX => {
                    self.xs[slot as usize] = new.x;
                    self.ys[slot as usize] = new.y;
                }
                _ => return false,
            }
        }
        true
    }

    fn len(&self) -> usize {
        self.payloads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<(Vec2, u32)> {
        vec![(Vec2::new(0.0, 0.0), 0), (Vec2::new(1.0, 1.0), 1), (Vec2::new(2.0, 2.0), 2), (Vec2::new(-1.0, 3.0), 3)]
    }

    #[test]
    fn scan_range_finds_exact_set() {
        let idx = ScanIndex::build(&pts());
        let mut out = Vec::new();
        idx.range(&Rect::from_bounds(0.0, 1.5, 0.0, 1.5), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn scan_range_boundary_inclusive() {
        let idx = ScanIndex::build(&pts());
        let mut out = Vec::new();
        idx.range(&Rect::from_bounds(1.0, 2.0, 1.0, 2.0), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn scan_nearest_with_exclusion() {
        let idx = ScanIndex::build(&pts());
        assert_eq!(idx.nearest(Vec2::new(0.1, 0.1), None), Some(0));
        assert_eq!(idx.nearest(Vec2::new(0.1, 0.1), Some(0)), Some(1));
    }

    #[test]
    fn scan_empty() {
        let idx = ScanIndex::build(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.nearest(Vec2::ZERO, None), None);
        let mut out = Vec::new();
        idx.range(&Rect::EVERYTHING, &mut out);
        assert!(out.is_empty());
    }
}
