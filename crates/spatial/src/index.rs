//! The spatial-index abstraction.
//!
//! BRACE's reducers answer one query shape billions of times: *"which agents
//! lie inside this axis-aligned rectangle?"* (the compiled form of a BRASIL
//! `foreach` under a `#range` visibility constraint) — plus nearest-neighbor
//! probes for models like MITSIM's lead/rear-vehicle lookup. The engine is
//! generic over [`SpatialIndex`] so the paper's indexing-on/off experiments
//! (Figures 3 and 4) are a one-line configuration change, and so the KD-tree
//! can be compared against a uniform grid in the ablation benchmarks.
//!
//! Indexes are rebuilt per tick from the positions of the current tick's
//! agents. Positions are immutable during the query phase (the state-effect
//! pattern guarantees states are frozen within a tick), so no index needs to
//! support updates mid-tick.

use brace_common::{Rect, Vec2};

/// A read-only spatial index over a set of points, each carrying a `u32`
/// payload (the index of the agent in the tick's agent table).
pub trait SpatialIndex: Send + Sync {
    /// Build an index over `points`. Payloads need not be unique or dense.
    fn build(points: &[(Vec2, u32)]) -> Self
    where
        Self: Sized;

    /// Append the payloads of every point inside the closed rectangle
    /// `rect` to `out`, in unspecified order.
    fn range(&self, rect: &Rect, out: &mut Vec<u32>);

    /// Payload of a point nearest to `q` in Euclidean distance (ties are
    /// broken arbitrarily), excluding points whose payload equals `exclude`
    /// (so an agent can ask for its nearest *other* agent). `None` when no
    /// eligible point exists.
    fn nearest(&self, q: Vec2, exclude: Option<u32>) -> Option<u32>;

    /// The `k` nearest points to `q` by Euclidean distance, sorted
    /// ascending, excluding payload `exclude`. Fewer than `k` results when
    /// fewer points exist. This is the probe behind the paper's
    /// nearest-neighbor-indexing extension (its "planned future work"):
    /// MITSIM-style models look up lead/rear vehicles by proximity rather
    /// than fixed range.
    fn k_nearest(&self, q: Vec2, k: usize, exclude: Option<u32>) -> Vec<u32>;

    /// Number of indexed points.
    fn len(&self) -> usize;

    /// True when no points are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which index the engine should build each tick. This enum exists so that
/// configuration is data (serializable into experiment manifests) rather
/// than a type parameter, while the hot loops still run against the
/// concrete, monomorphized index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// No index: the query phase scans every agent for every agent. This is
    /// the quadratic baseline of Figures 3 and 4.
    Scan,
    /// KD-tree with orthogonal range queries (the paper's choice).
    #[default]
    KdTree,
    /// Uniform grid (bucket) index; ablation alternative.
    Grid,
}

/// Brute-force "index": linear scan. The `build` step is free; every query
/// is O(n). With n agents each running one range query per tick the tick
/// cost is O(n²) — exactly the no-indexing degradation the paper reports.
#[derive(Debug, Clone, Default)]
pub struct ScanIndex {
    points: Vec<(Vec2, u32)>,
}

impl SpatialIndex for ScanIndex {
    fn build(points: &[(Vec2, u32)]) -> Self {
        ScanIndex { points: points.to_vec() }
    }

    fn range(&self, rect: &Rect, out: &mut Vec<u32>) {
        for &(p, payload) in &self.points {
            if rect.contains(p) {
                out.push(payload);
            }
        }
    }

    fn nearest(&self, q: Vec2, exclude: Option<u32>) -> Option<u32> {
        let mut best: Option<(f64, u32)> = None;
        for &(p, payload) in &self.points {
            if Some(payload) == exclude {
                continue;
            }
            let d = p.dist2(q);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, payload));
            }
        }
        best.map(|(_, payload)| payload)
    }

    fn k_nearest(&self, q: Vec2, k: usize, exclude: Option<u32>) -> Vec<u32> {
        let mut all: Vec<(f64, u32)> = self
            .points
            .iter()
            .filter(|&&(_, payload)| Some(payload) != exclude)
            .map(|&(p, payload)| (p.dist2(q), payload))
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0));
        all.truncate(k);
        all.into_iter().map(|(_, p)| p).collect()
    }

    fn len(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<(Vec2, u32)> {
        vec![(Vec2::new(0.0, 0.0), 0), (Vec2::new(1.0, 1.0), 1), (Vec2::new(2.0, 2.0), 2), (Vec2::new(-1.0, 3.0), 3)]
    }

    #[test]
    fn scan_range_finds_exact_set() {
        let idx = ScanIndex::build(&pts());
        let mut out = Vec::new();
        idx.range(&Rect::from_bounds(0.0, 1.5, 0.0, 1.5), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn scan_range_boundary_inclusive() {
        let idx = ScanIndex::build(&pts());
        let mut out = Vec::new();
        idx.range(&Rect::from_bounds(1.0, 2.0, 1.0, 2.0), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn scan_nearest_with_exclusion() {
        let idx = ScanIndex::build(&pts());
        assert_eq!(idx.nearest(Vec2::new(0.1, 0.1), None), Some(0));
        assert_eq!(idx.nearest(Vec2::new(0.1, 0.1), Some(0)), Some(1));
    }

    #[test]
    fn scan_empty() {
        let idx = ScanIndex::build(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.nearest(Vec2::ZERO, None), None);
        let mut out = Vec::new();
        idx.range(&Rect::EVERYTHING, &mut out);
        assert!(out.is_empty());
    }
}
