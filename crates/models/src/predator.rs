//! The predator simulation — the paper's non-local-effects workload.
//!
//! "We designed a new predator simulation, inspired by artificial society
//! simulations. In this simulation, a fish can 'spawn' new fish and 'bite'
//! other fish, possibly killing them, so density naturally approaches an
//! equilibrium value at which births and deaths are balanced" (Appendix C).
//!
//! Biting is the canonical **non-local effect assignment**: a bigger fish
//! assigns a `hurt` effect *to its victim*. The paper programs the behavior
//! two ways in otherwise identical scripts — non-locally (biters push hurt)
//! and locally (victims pull hurt) — because effect inversion was not yet
//! implemented in their compiler. This module provides both hand-coded
//! forms behind one parameter ([`PredatorParams::nonlocal`]); the BRASIL
//! version in [`scripts`](crate::scripts) additionally demonstrates the
//! *automatic* inversion (`brasil::invert_effects`). Figure 5 measures the
//! throughput difference: the non-local form needs the second reduce pass,
//! the inverted form does not.

use brace_common::{AgentId, DetRng, FieldId, Vec2};
use brace_core::behavior::{Behavior, NeighborBatch, Neighbors, UpdateCtx};
use brace_core::effect::EffectWriter;
use brace_core::kernels::with_lane_scratch;
use brace_core::{Agent, AgentRef, AgentSchema, Combinator};

/// Model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PredatorParams {
    /// Bite reach (also the visibility bound).
    pub reach: f64,
    /// Movement per tick.
    pub speed: f64,
    /// Size advantage required to bite: attacker.size > victim.size + this.
    pub size_advantage: f64,
    /// Hurt inflicted per bite, scaled by the size difference.
    pub bite_strength: f64,
    /// Accumulated hurt at which a fish dies this tick.
    pub death_threshold: f64,
    /// Per-tick probability that a healthy fish spawns a child.
    pub spawn_probability: f64,
    /// Crowding limit: no spawning when more neighbors than this are
    /// visible (keeps density at an equilibrium).
    pub crowd_limit: f64,
    /// Growth per tick survived.
    pub growth: f64,
    /// Use non-local effect assignments (biters push hurt). `false` = the
    /// hand-inverted local form (victims pull hurt).
    pub nonlocal: bool,
    /// Batch-engagement override for the bite-scan kernel
    /// ([`bite_kernel`]). `None` (default) applies the engine-wide cost
    /// rule (`brace_core::behavior::batch_engaged`) to
    /// [`BITE_KERNEL_COST`] — which stays scalar for the same reason as
    /// traffic's gap scan: one subtract and one multiply per candidate is
    /// too cheap to amortize the candidate gather on the reference
    /// container. Results are bit-identical either way (the kernel
    /// conformance contract), so this is pure scheduling policy.
    pub batch_engagement: Option<bool>,
}

impl Default for PredatorParams {
    fn default() -> Self {
        PredatorParams {
            reach: 2.0,
            speed: 0.5,
            size_advantage: 0.3,
            bite_strength: 1.0,
            death_threshold: 2.0,
            spawn_probability: 0.04,
            crowd_limit: 8.0,
            growth: 0.01,
            nonlocal: true,
            batch_engagement: None,
        }
    }
}

/// State slots.
pub mod state {
    /// Body size (bite dominance).
    pub const SIZE: u16 = 0;
    /// Heading angle (radians) for the random walk.
    pub const HEADING: u16 = 1;
}

/// Effect slots.
pub mod effect {
    /// Accumulated hurt this tick (Sum).
    pub const HURT: u16 = 0;
    /// Visible-neighbor count (Sum) for crowding control.
    pub const CROWD: u16 = 1;
}

/// Whether `a` (attacker) bites `v` (victim) — a pure predicate shared by
/// both forms so they are inversions of each other *by construction*.
#[inline]
fn bites(p: &PredatorParams, attacker_size: f64, victim_size: f64) -> bool {
    attacker_size > victim_size + p.size_advantage
}

/// Hurt inflicted for a successful bite.
#[inline]
fn bite_damage(p: &PredatorParams, attacker_size: f64, victim_size: f64) -> f64 {
    p.bite_strength * (attacker_size - victim_size)
}

/// Per-candidate cost of the bite scan, in the analyzer's ALU-op units
/// (the scale the BRASIL compiler scores its lane programs on): one
/// subtract and one multiply per role — below
/// `brace_core::behavior::BATCH_COST_THRESHOLD`, so [`bite_kernel`] stays
/// off the default path, like traffic's gap scan.
pub const BITE_KERNEL_COST: u32 = 4;

/// Lane kernel behind [`PredatorBehavior`]'s batched query — the bite
/// scan's vectorizable half: per candidate, the damage the querying fish
/// would inflict (`strength × (my_size − size)`) and the damage it would
/// receive (`strength × (size − my_size)`), exactly [`bite_damage`]'s
/// arithmetic in both role assignments. The order-sensitive half — the
/// [`bites`] predicate gating which (if either) damage is emitted, and the
/// emission itself in canonical candidate order — stays a scalar fold over
/// these columns, so batched ≡ scalar bitwise.
pub fn bite_kernel(sizes: &[f64], my_size: f64, strength: f64, dealt: &mut Vec<f64>, received: &mut Vec<f64>) {
    let n = sizes.len();
    dealt.clear();
    dealt.resize(n, 0.0);
    received.clear();
    received.resize(n, 0.0);
    // Lockstep iterators so the vectorizer sees no bounds checks.
    for (&s, (d, r)) in sizes.iter().zip(dealt.iter_mut().zip(received.iter_mut())) {
        *d = strength * (my_size - s);
        *r = strength * (s - my_size);
    }
}

/// The predator model as a BRACE behavior.
#[derive(Debug, Clone)]
pub struct PredatorBehavior {
    params: PredatorParams,
    schema: AgentSchema,
}

impl PredatorBehavior {
    pub fn new(params: PredatorParams) -> Self {
        let schema = AgentSchema::builder("Predator")
            .state("size")
            .state("heading")
            .effect("hurt", Combinator::Sum)
            .effect("crowd", Combinator::Sum)
            .visibility(params.reach)
            .reachability(params.speed)
            .nonlocal_effects(params.nonlocal)
            .build()
            .expect("static schema is valid");
        PredatorBehavior { params, schema }
    }

    pub fn params(&self) -> &PredatorParams {
        &self.params
    }

    /// `n` fish scattered over a `side × side` square with random sizes.
    pub fn population(&self, n: usize, side: f64, seed: u64) -> Vec<Agent> {
        let mut rng = DetRng::seed_from_u64(seed).stream(0xB17E);
        (0..n)
            .map(|i| {
                let pos = Vec2::new(rng.range(0.0, side), rng.range(0.0, side));
                let mut a = Agent::new(AgentId::new(i as u64), pos, &self.schema);
                a.state[state::SIZE as usize] = rng.range(0.5, 1.5);
                a.state[state::HEADING as usize] = rng.range(0.0, std::f64::consts::TAU);
                a
            })
            .collect()
    }
}

impl Behavior for PredatorBehavior {
    fn schema(&self) -> &AgentSchema {
        &self.schema
    }

    fn query(&self, me: AgentRef<'_>, nbrs: &Neighbors<'_>, eff: &mut EffectWriter<'_>, _rng: &mut DetRng) {
        let p = &self.params;
        let my_size = me.state(state::SIZE);
        for nb in nbrs.iter() {
            let other_size = nb.agent.state(state::SIZE);
            eff.local(FieldId::new(effect::CROWD), 1.0);
            if p.nonlocal {
                // Non-local form: I push hurt onto my victim.
                if bites(p, my_size, other_size) {
                    eff.remote(nb.row, FieldId::new(effect::HURT), bite_damage(p, my_size, other_size));
                }
            } else {
                // Inverted (local) form: I pull hurt from each neighbor
                // that would bite me — the roles in the predicate swap.
                if bites(p, other_size, my_size) {
                    eff.local(FieldId::new(effect::HURT), bite_damage(p, other_size, my_size));
                }
            }
        }
    }

    fn batch_profitable(&self) -> bool {
        brace_core::behavior::batch_engaged(BITE_KERNEL_COST, self.params.batch_engagement)
    }

    /// Batched query: gather sizes, run [`bite_kernel`] over the candidate
    /// column, then fold in candidate order — the same [`bites`] gating,
    /// over lane-computed damages, as the scalar path.
    // The fold walks four parallel columns by index; iterating any single
    // one (clippy's suggestion) would obscure that.
    #[allow(clippy::needless_range_loop)]
    fn query_batch(
        &self,
        me: AgentRef<'_>,
        batch: &mut NeighborBatch<'_>,
        eff: &mut EffectWriter<'_>,
        _rng: &mut DetRng,
    ) {
        let p = &self.params;
        let my_size = me.state(state::SIZE);
        let g = batch.gather(&[state::SIZE]);
        with_lane_scratch(|s| {
            bite_kernel(g.state(0), my_size, p.bite_strength, &mut s.a, &mut s.b);
            let sizes = g.state(0);
            for i in 0..g.len() {
                if g.rows[i] == g.me {
                    continue;
                }
                eff.local(FieldId::new(effect::CROWD), 1.0);
                if p.nonlocal {
                    if bites(p, my_size, sizes[i]) {
                        eff.remote(g.rows[i], FieldId::new(effect::HURT), s.a[i]);
                    }
                } else if bites(p, sizes[i], my_size) {
                    eff.local(FieldId::new(effect::HURT), s.b[i]);
                }
            }
        });
    }

    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        let p = &self.params;
        let hurt = me.effect(FieldId::new(effect::HURT));
        let crowd = me.effect(FieldId::new(effect::CROWD));
        if hurt >= p.death_threshold {
            me.alive = false;
            return;
        }
        // Survived: grow a little, wander, maybe reproduce.
        me.state[state::SIZE as usize] += p.growth;
        let heading = me.state[state::HEADING as usize] + ctx.rng.range(-0.5, 0.5);
        me.state[state::HEADING as usize] = heading;
        me.pos += Vec2::new(heading.cos(), heading.sin()) * p.speed;
        if crowd < p.crowd_limit && hurt == 0.0 && ctx.rng.chance(p.spawn_probability) {
            let child_size = (me.state[state::SIZE as usize] * 0.6).max(0.4);
            let offset = Vec2::new(ctx.rng.range(-0.5, 0.5), ctx.rng.range(-0.5, 0.5));
            let child_heading = ctx.rng.range(0.0, std::f64::consts::TAU);
            ctx.spawn(me.pos + offset, vec![child_size, child_heading]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bite scan's cost sits below the shared engagement threshold, so
    /// the scalar path stays the default; `Some(true)` pins the kernel on.
    #[test]
    fn batch_engagement_follows_the_shared_cost_rule() {
        use brace_core::behavior::{batch_engaged, Behavior};
        assert!(!batch_engaged(BITE_KERNEL_COST, None));
        assert!(!PredatorBehavior::new(PredatorParams::default()).batch_profitable());
        let on = PredatorParams { batch_engagement: Some(true), ..PredatorParams::default() };
        assert!(PredatorBehavior::new(on).batch_profitable());
    }

    use brace_core::Simulation;

    fn behavior(nonlocal: bool) -> PredatorBehavior {
        PredatorBehavior::new(PredatorParams { nonlocal, ..Default::default() })
    }

    /// Pin the bite kernel's scalar-tail handling at candidate counts
    /// straddling the lane width (0, 1, L−1, L, L+1, 2L−1): every element
    /// must match [`bite_damage`]'s per-candidate definition bit for bit,
    /// in both role assignments.
    #[test]
    fn bite_kernel_tail_counts_match_scalar_definition() {
        const L: usize = brace_spatial::kernels::LANES;
        let p = PredatorParams::default();
        let my_size = 1.1;
        for n in [0, 1, L - 1, L, L + 1, 2 * L - 1] {
            let sizes: Vec<f64> = (0..n).map(|i| 0.4 + i as f64 * 0.23).collect();
            let (mut dealt, mut received) = (Vec::new(), Vec::new());
            bite_kernel(&sizes, my_size, p.bite_strength, &mut dealt, &mut received);
            assert_eq!(dealt.len(), n);
            for i in 0..n {
                let d = bite_damage(&p, my_size, sizes[i]);
                let r = bite_damage(&p, sizes[i], my_size);
                assert_eq!(dealt[i].to_bits(), d.to_bits(), "count {n} element {i}");
                assert_eq!(received[i].to_bits(), r.to_bits(), "count {n} element {i}");
            }
        }
    }

    #[test]
    fn schema_flags_follow_form() {
        assert!(behavior(true).schema().has_nonlocal_effects());
        assert!(!behavior(false).schema().has_nonlocal_effects());
    }

    #[test]
    fn big_fish_bites_small_fish() {
        let b = behavior(true);
        let schema = b.schema().clone();
        let mut big = Agent::new(AgentId::new(0), Vec2::ZERO, &schema);
        big.state[state::SIZE as usize] = 2.0;
        let mut small = Agent::new(AgentId::new(1), Vec2::new(1.0, 0.0), &schema);
        small.state[state::SIZE as usize] = 0.5;
        let mut sim = Simulation::builder(b).agents(vec![big, small]).seed(1).build().unwrap();
        sim.step();
        // Damage 1.5 < threshold 2.0: the small fish survives but was hurt
        // (its spawn chance was suppressed; we assert survival + no death).
        assert_eq!(sim.agents().len(), 2);
        let mut sim2 = {
            let b = behavior(true);
            let schema = b.schema().clone();
            let mut big = Agent::new(AgentId::new(0), Vec2::ZERO, &schema);
            big.state[state::SIZE as usize] = 3.0;
            let mut small = Agent::new(AgentId::new(1), Vec2::new(1.0, 0.0), &schema);
            small.state[state::SIZE as usize] = 0.5;
            Simulation::builder(b).agents(vec![big, small]).seed(1).build().unwrap()
        };
        sim2.step();
        // Damage 2.5 >= threshold: the small fish dies.
        assert_eq!(sim2.agents().len(), 1);
        assert_eq!(sim2.agents()[0].id, AgentId::new(0));
    }

    #[test]
    fn local_and_nonlocal_forms_agree() {
        // The two forms are inversions of each other; on any population the
        // aggregated hurt (and hence deaths) must match exactly — bite
        // damage sums are order-independent per victim up to float
        // commutativity, and every term is identical.
        let run = |nonlocal: bool| {
            let b = behavior(nonlocal);
            let pop = b.population(150, 15.0, 42);
            let mut sim = Simulation::builder(b).agents(pop).seed(9).build().unwrap();
            sim.run(10);
            let mut out: Vec<(u64, f64)> =
                sim.agents().iter().map(|a| (a.id.raw(), a.state[state::SIZE as usize])).collect();
            out.sort_by_key(|x| x.0);
            (out, sim.agents().len())
        };
        let (a, na) = run(true);
        let (b, nb) = run(false);
        assert_eq!(na, nb, "population trajectories must match");
        assert_eq!(a.len(), b.len());
        for ((ida, sa), (idb, sb)) in a.iter().zip(&b) {
            assert_eq!(ida, idb);
            assert!((sa - sb).abs() < 1e-9, "agent {ida}: {sa} vs {sb}");
        }
    }

    #[test]
    fn population_reaches_equilibrium() {
        // Births and deaths must roughly balance: after a long run the
        // population should be positive and not exploding.
        let b = behavior(true);
        let pop = b.population(200, 20.0, 3);
        let mut sim = Simulation::builder(b).agents(pop).seed(3).build().unwrap();
        sim.run(120);
        let n = sim.agents().len();
        assert!(n > 20, "population collapsed to {n}");
        assert!(n < 3000, "population exploded to {n}");
    }

    #[test]
    fn spawning_creates_fresh_ids() {
        let b = behavior(true);
        let pop = b.population(50, 8.0, 5);
        let max_id = pop.iter().map(|a| a.id.raw()).max().unwrap();
        let mut sim = Simulation::builder(b).agents(pop).seed(5).build().unwrap();
        sim.run(30);
        let spawned = sim.agents().iter().filter(|a| a.id.raw() > max_id).count();
        assert!(spawned > 0, "expansion requires spawns");
        // Ids unique.
        let mut ids: Vec<u64> = sim.agents().iter().map(|a| a.id.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sim.agents().len());
    }

    #[test]
    fn crowding_suppresses_spawns() {
        // A dense cluster must not grow.
        let params = PredatorParams { spawn_probability: 0.5, ..Default::default() };
        let b = PredatorBehavior::new(params);
        let schema = b.schema().clone();
        let agents: Vec<Agent> = (0..20)
            .map(|i| {
                let mut a = Agent::new(AgentId::new(i), Vec2::new((i % 5) as f64 * 0.3, (i / 5) as f64 * 0.3), &schema);
                a.state[state::SIZE as usize] = 1.0; // equal sizes: no biting
                a
            })
            .collect();
        let mut sim = Simulation::builder(b).agents(agents).seed(6).build().unwrap();
        sim.step();
        assert_eq!(sim.agents().len(), 20, "crowded cluster must not spawn");
    }
}
