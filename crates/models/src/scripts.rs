//! The evaluation models written in BRASIL.
//!
//! [`FIGURE2_FISH`] is the paper's Figure 2 verbatim (modulo surface-syntax
//! normalization); it parses, type-checks and inverts, demonstrating the
//! compiler pipeline on the paper's own example. [`FISH_SCHOOL`] is a
//! numerically hardened variant actually used in simulations (the original
//! divides by zero for coincident fish — NIL semantics skip those
//! assignments, but a directional force makes better physics).
//! [`PREDATOR`] is the Figure 5 workload: biting as a **non-local** effect
//! assignment, which `brasil::invert_effects` rewrites into the local form
//! automatically — the optimization whose payoff Figure 5 measures.

use brace_common::Result;
use brasil::{invert_effects, BrasilBehavior, Pipeline, Script};

/// The paper's Figure 2, normalized to this implementation's surface
/// syntax (update rule and `#range` tag in one declaration; explicit
/// divide-by-zero guard is *not* added — NIL semantics handle it).
pub const FIGURE2_FISH: &str = r#"
class Fish {
    // The fish location
    public state float x : x + vx #range[-1, 1];
    public state float y : y + vy #range[-1, 1];
    // The latest fish velocity
    public state float vx : vx + rand() + avoidx / count * vx;
    public state float vy : vy + rand() + avoidy / count * vy;
    // Used to update our velocity
    private effect float avoidx : sum;
    private effect float avoidy : sum;
    private effect int count : sum;
    /** The query-phase for this fish. */
    public void run() {
        // Use "forces" to repel fish too close
        foreach (Fish p : Extent<Fish>) {
            p.avoidx <- 1 / abs(x - p.x);
            p.avoidy <- 1 / abs(y - p.y);
            p.count <- 1;
        }
    }
}
"#;

/// Runnable fish-school script: directional repulsion, bounded speed,
/// local effects only.
pub const FISH_SCHOOL: &str = r#"
class Fish {
    public state float x : x + vx #range[-1, 1];
    public state float y : y + vy #range[-1, 1];
    public state float vx : clamp(vx * 0.9 + (rand() - 0.5) * 0.1 + avoidx / max(count, 1), 0 - 1, 1);
    public state float vy : clamp(vy * 0.9 + (rand() - 0.5) * 0.1 + avoidy / max(count, 1), 0 - 1, 1);
    private effect float avoidx : sum;
    private effect float avoidy : sum;
    private effect int count : sum;
    public void run() {
        foreach (Fish p : Extent<Fish>) {
            avoidx <- (x - p.x) / max((x - p.x) * (x - p.x) + (y - p.y) * (y - p.y), 0.04);
            avoidy <- (y - p.y) / max((x - p.x) * (x - p.x) + (y - p.y) * (y - p.y), 0.04);
            count <- 1;
        }
    }
}
"#;

/// The predator workload of Figure 5: biting pushes a `hurt` effect onto
/// the victim — a non-local assignment forcing the two-reduce-pass
/// schedule until effect inversion eliminates it.
pub const PREDATOR: &str = r#"
class Fish {
    public state float x : x + (rand() - 0.5) #range[-2, 2];
    public state float y : y + (rand() - 0.5) #range[-2, 2];
    public state float size : size + 0.01;
    public state float pain : pain * 0.5 + hurt;
    private effect float hurt : sum;
    private effect float crowd : sum;
    public void run() {
        foreach (Fish p : Extent<Fish>) {
            crowd <- 1;
            if (size > p.size + 0.3) {
                p.hurt <- size - p.size;
            }
        }
    }
}
"#;

/// A simplified car-following-only traffic script (the full MITSIM lane
/// model needs argmin-style neighbor selection, outside the BRASIL
/// aggregate subset — see DESIGN.md); used by the quickstart example.
pub const CAR_FOLLOWING: &str = r#"
class Car {
    public state float x : x + vel #range[-40, 40];
    public state float vel : clamp(vel + 0.25 * (28 - vel) - press / max(ahead, 1), 0, 36);
    private effect float press : sum;
    private effect float ahead : sum;
    public void run() {
        foreach (Car p : Extent<Car>) {
            if (p.x > x) {
                // Pressure from each leader, strongest when close.
                press <- clamp(40 - (p.x - x), 0, 40) * 0.2;
                ahead <- 1;
            }
        }
    }
}
"#;

/// Compile the runnable fish-school behavior.
pub fn fish_school() -> Result<BrasilBehavior> {
    fish_school_opt(true)
}

/// Fish school with the optimizer pipeline on or off (A/B measurement).
pub fn fish_school_opt(optimize: bool) -> Result<BrasilBehavior> {
    let script = if optimize { Script::compile(FISH_SCHOOL)? } else { Script::compile_unoptimized(FISH_SCHOOL)? };
    Ok(script.behavior("Fish").expect("class Fish exists"))
}

/// Compile the predator behavior; `inverted` applies effect inversion
/// (Theorem 2/3), turning the non-local script into a local one.
pub fn predator(inverted: bool) -> Result<BrasilBehavior> {
    predator_opt(inverted, true)
}

/// Predator with both knobs exposed. Inversion is only numerically (not
/// bit-) equivalent, so A/B baselines must share the `inverted` setting
/// and differ only in `optimize`.
pub fn predator_opt(inverted: bool, optimize: bool) -> Result<BrasilBehavior> {
    let script = Script::compile_unoptimized(PREDATOR)?;
    let class = script.classes()[0].clone();
    let class = match (inverted, optimize) {
        (true, true) => Pipeline::with_inversion().run(class).0,
        (true, false) => invert_effects(class)?,
        (false, true) => brasil::optimize(class),
        (false, false) => class,
    };
    Ok(BrasilBehavior::new(class))
}

/// Compile the car-following example.
pub fn car_following() -> Result<BrasilBehavior> {
    car_following_opt(true)
}

/// Car following with the optimizer pipeline on or off (A/B measurement).
pub fn car_following_opt(optimize: bool) -> Result<BrasilBehavior> {
    let script = if optimize { Script::compile(CAR_FOLLOWING)? } else { Script::compile_unoptimized(CAR_FOLLOWING)? };
    Ok(script.behavior("Car").expect("class Car exists"))
}

/// Source and inversion setting for a registry scenario name — the lookup
/// `brace compile` uses to pretty-print a scenario's plan.
pub fn scenario_script(name: &str) -> Option<(&'static str, bool)> {
    match name {
        "brasil-fish" => Some((FISH_SCHOOL, false)),
        "brasil-predator" => Some((PREDATOR, true)),
        "brasil-car" => Some((CAR_FOLLOWING, false)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brace_common::{AgentId, DetRng, Vec2};
    use brace_core::{Agent, Behavior, Simulation};

    #[test]
    fn figure2_parses_checks_and_inverts() {
        let script = Script::compile(FIGURE2_FISH).unwrap();
        let class = script.classes()[0].clone();
        assert!(class.schema().has_nonlocal_effects());
        assert_eq!(class.schema().visibility(), 1.0);
        let inverted = invert_effects(class).unwrap();
        assert!(!inverted.schema().has_nonlocal_effects());
    }

    #[test]
    fn fish_school_script_runs() {
        let behavior = fish_school().unwrap();
        let schema = behavior.schema().clone();
        let mut rng = DetRng::seed_from_u64(1);
        let agents: Vec<Agent> = (0..80)
            .map(|i| Agent::new(AgentId::new(i), Vec2::new(rng.range(0.0, 8.0), rng.range(0.0, 8.0)), &schema))
            .collect();
        let mut sim = Simulation::builder(behavior).agents(agents).seed(2).build().unwrap();
        sim.run(20);
        assert_eq!(sim.agents().len(), 80);
        for a in sim.agents() {
            assert!(!a.pos.is_nan());
            assert!(a.state[0].abs() <= 1.0 + 1e-9, "vx bounded");
        }
        // Repulsion must spread the school.
        let spread: f64 = sim.agents().iter().map(|a| a.pos.norm()).fold(0.0, f64::max);
        assert!(spread > 6.0);
    }

    #[test]
    fn predator_nonlocal_and_inverted_agree() {
        let run = |inverted: bool| {
            let behavior = predator(inverted).unwrap();
            let schema = behavior.schema().clone();
            let mut rng = DetRng::seed_from_u64(7);
            let agents: Vec<Agent> = (0..120)
                .map(|i| {
                    let mut a =
                        Agent::new(AgentId::new(i), Vec2::new(rng.range(0.0, 12.0), rng.range(0.0, 12.0)), &schema);
                    a.state[0] = rng.range(0.5, 1.5); // size
                    a
                })
                .collect();
            let mut sim = Simulation::builder(behavior).agents(agents).seed(11).build().unwrap();
            sim.run(8);
            sim.agents().iter().map(|a| (a.id, a.state.clone())).collect::<Vec<_>>()
        };
        let a = run(false);
        let b = run(true);
        assert_eq!(a.len(), b.len());
        for ((id_a, sa), (id_b, sb)) in a.iter().zip(&b) {
            assert_eq!(id_a, id_b);
            for (va, vb) in sa.iter().zip(sb) {
                let scale = va.abs().max(vb.abs()).max(1.0);
                assert!((va - vb).abs() < 1e-9 * scale, "{id_a}: {va} vs {vb}");
            }
        }
    }

    #[test]
    fn predator_schema_flags() {
        assert!(predator(false).unwrap().schema().has_nonlocal_effects());
        assert!(!predator(true).unwrap().schema().has_nonlocal_effects());
    }

    #[test]
    fn car_following_keeps_order_and_speed() {
        let behavior = car_following().unwrap();
        let schema = behavior.schema().clone();
        let agents: Vec<Agent> = (0..30)
            .map(|i| {
                let mut a = Agent::new(AgentId::new(i), Vec2::new(i as f64 * 30.0, 0.0), &schema);
                a.state[0] = 20.0;
                a
            })
            .collect();
        let mut sim = Simulation::builder(behavior).agents(agents).seed(3).build().unwrap();
        sim.run(40);
        for a in sim.agents() {
            let v = a.state[0];
            assert!((0.0..=36.0).contains(&v), "vel {v}");
        }
    }
}
