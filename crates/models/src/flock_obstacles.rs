//! Flocking around static obstacles — a local-effects scenario proving the
//! registry generalizes beyond the paper's three workloads.
//!
//! A Couzin-style zonal flock (repulsion inside a personal zone,
//! attraction + alignment inside the visible zone) shares its world with a
//! deterministic field of static circular obstacles. Obstacles are *model
//! data*, not agents: they live in the behavior (shared by every worker
//! through the same `Arc`), so they cost nothing to replicate and exercise
//! the common pattern of simulations over a fixed environment (road
//! networks, terrain, walls).
//!
//! Obstacle handling runs entirely in the update phase — steering away from
//! any obstacle inside the avoidance range, and refusing a step that would
//! land inside one (the mover keeps its position and turns away instead).
//! Because an agent only ever *declines* to enter, the no-agent-inside-an-
//! obstacle invariant holds inductively from the initial population — the
//! scenario's post-run sanity check. All effects are local float sums
//! computed wholly by each agent's own query, so a distributed run is
//! bit-identical to a single-node run.

use brace_common::{AgentId, DetRng, FieldId, Vec2};
use brace_core::behavior::{Behavior, Neighbors, UpdateCtx};
use brace_core::effect::EffectWriter;
use brace_core::{Agent, AgentRef, AgentSchema, Combinator};

/// Model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FlockObstaclesParams {
    /// Personal (repulsion) zone radius.
    pub alpha: f64,
    /// Visible (attraction/alignment) radius; also the visibility bound.
    pub rho: f64,
    /// Flight speed per tick (also the reachability bound).
    pub speed: f64,
    /// Random heading perturbation magnitude.
    pub jitter: f64,
    /// Side of the square world the obstacles are scattered over.
    pub side: f64,
    /// Number of static circular obstacles.
    pub obstacles: usize,
    /// Obstacle radius range (min, max).
    pub obstacle_radius: (f64, f64),
    /// Distance from an obstacle's surface at which avoidance steering
    /// starts.
    pub avoid_range: f64,
    /// Avoidance steering weight relative to the social vector.
    pub avoid_weight: f64,
    /// Seed for the deterministic obstacle field.
    pub obstacle_seed: u64,
}

impl Default for FlockObstaclesParams {
    fn default() -> Self {
        FlockObstaclesParams {
            alpha: 1.0,
            rho: 5.0,
            speed: 0.6,
            jitter: 0.05,
            side: 60.0,
            obstacles: 12,
            obstacle_radius: (1.5, 4.0),
            avoid_range: 3.0,
            avoid_weight: 2.0,
            obstacle_seed: 0x0B57,
        }
    }
}

/// State slots.
pub mod state {
    /// Heading x component (unit vector).
    pub const HX: u16 = 0;
    /// Heading y component.
    pub const HY: u16 = 1;
}

/// Effect slots.
pub mod effect {
    /// Repulsion vector (sum over personal-zone neighbors).
    pub const REP_X: u16 = 0;
    pub const REP_Y: u16 = 1;
    /// Attraction vector (sum over visible neighbors).
    pub const ATT_X: u16 = 2;
    pub const ATT_Y: u16 = 3;
    /// Alignment vector (sum of neighbor headings).
    pub const ALI_X: u16 = 4;
    pub const ALI_Y: u16 = 5;
    /// Personal-zone neighbor count.
    pub const N_REP: u16 = 6;
    /// Visible neighbor count.
    pub const N_VIS: u16 = 7;
}

/// A static circular obstacle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obstacle {
    pub center: Vec2,
    pub radius: f64,
}

/// The obstacle-field flock as a BRACE behavior.
#[derive(Debug, Clone)]
pub struct FlockObstaclesBehavior {
    params: FlockObstaclesParams,
    schema: AgentSchema,
    obstacles: Vec<Obstacle>,
}

impl FlockObstaclesBehavior {
    pub fn new(params: FlockObstaclesParams) -> Self {
        assert!(params.rho > params.alpha, "visible zone must exceed the personal zone");
        let schema = AgentSchema::builder("FlockObstacles")
            .state("hx")
            .state("hy")
            .effect("rep_x", Combinator::Sum)
            .effect("rep_y", Combinator::Sum)
            .effect("att_x", Combinator::Sum)
            .effect("att_y", Combinator::Sum)
            .effect("ali_x", Combinator::Sum)
            .effect("ali_y", Combinator::Sum)
            .effect("n_rep", Combinator::Sum)
            .effect("n_vis", Combinator::Sum)
            .visibility(params.rho)
            .reachability(params.speed)
            .build()
            .expect("static schema is valid");
        // Deterministic obstacle field: same params ⇒ same world, on every
        // node, forever.
        let mut rng = DetRng::seed_from_u64(params.obstacle_seed).stream(0x0B5C);
        let (r_lo, r_hi) = params.obstacle_radius;
        let obstacles = (0..params.obstacles)
            .map(|_| Obstacle {
                center: Vec2::new(rng.range(0.0, params.side), rng.range(0.0, params.side)),
                radius: rng.range(r_lo, r_hi),
            })
            .collect();
        FlockObstaclesBehavior { params, schema, obstacles }
    }

    pub fn params(&self) -> &FlockObstaclesParams {
        &self.params
    }

    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// True when `pos` lies strictly inside any obstacle.
    pub fn inside_obstacle(&self, pos: Vec2) -> bool {
        self.obstacles.iter().any(|o| pos.dist2(o.center) < o.radius * o.radius)
    }

    /// `n` birds at deterministic random free positions (rejection-sampled
    /// off the obstacles) with random unit headings.
    pub fn population(&self, n: usize, seed: u64) -> Vec<Agent> {
        let mut rng = DetRng::seed_from_u64(seed).stream(0xF10C);
        (0..n)
            .map(|i| {
                let pos = loop {
                    let p = Vec2::new(rng.range(0.0, self.params.side), rng.range(0.0, self.params.side));
                    if !self.inside_obstacle(p) {
                        break p;
                    }
                };
                let heading = rng.range(0.0, std::f64::consts::TAU);
                let mut a = Agent::new(AgentId::new(i as u64), pos, &self.schema);
                a.state[state::HX as usize] = heading.cos();
                a.state[state::HY as usize] = heading.sin();
                a
            })
            .collect()
    }
}

impl Behavior for FlockObstaclesBehavior {
    fn schema(&self) -> &AgentSchema {
        &self.schema
    }

    fn query(&self, me: AgentRef<'_>, nbrs: &Neighbors<'_>, eff: &mut EffectWriter<'_>, _rng: &mut DetRng) {
        let p = &self.params;
        let (alpha2, rho2) = (p.alpha * p.alpha, p.rho * p.rho);
        let my_pos = me.pos();
        for nb in nbrs.iter() {
            let npos = nb.agent.pos();
            let (d2, ux, uy) = crate::fish::candidate_force(my_pos.x, my_pos.y, npos.x, npos.y);
            if d2 > rho2 {
                continue;
            }
            if d2 <= alpha2 {
                eff.local(FieldId::new(effect::REP_X), -ux);
                eff.local(FieldId::new(effect::REP_Y), -uy);
                eff.local(FieldId::new(effect::N_REP), 1.0);
            } else {
                eff.local(FieldId::new(effect::ATT_X), ux);
                eff.local(FieldId::new(effect::ATT_Y), uy);
                eff.local(FieldId::new(effect::ALI_X), nb.agent.state(state::HX));
                eff.local(FieldId::new(effect::ALI_Y), nb.agent.state(state::HY));
                eff.local(FieldId::new(effect::N_VIS), 1.0);
            }
        }
    }

    fn update(&self, me: &mut Agent, ctx: &mut UpdateCtx<'_>) {
        let p = &self.params;
        let n_rep = me.effect(FieldId::new(effect::N_REP));
        let social = if n_rep > 0.0 {
            Vec2::new(me.effect(FieldId::new(effect::REP_X)), me.effect(FieldId::new(effect::REP_Y)))
        } else if me.effect(FieldId::new(effect::N_VIS)) > 0.0 {
            let att = Vec2::new(me.effect(FieldId::new(effect::ATT_X)), me.effect(FieldId::new(effect::ATT_Y)));
            let ali = Vec2::new(me.effect(FieldId::new(effect::ALI_X)), me.effect(FieldId::new(effect::ALI_Y)));
            att.normalized() + ali.normalized()
        } else {
            Vec2::new(me.state[state::HX as usize], me.state[state::HY as usize])
        };
        // Obstacle avoidance: steer away from every obstacle whose surface
        // is within the avoidance range, hardest when nearly touching.
        let mut avoid = Vec2::ZERO;
        for o in &self.obstacles {
            let away = me.pos - o.center;
            let gap = away.norm() - o.radius;
            if gap < p.avoid_range {
                let urgency = 1.0 - (gap.max(0.0) / p.avoid_range);
                avoid += away.normalized() * urgency;
            }
        }
        let jitter = Vec2::new(ctx.rng.range(-p.jitter, p.jitter), ctx.rng.range(-p.jitter, p.jitter));
        let mut heading = (social.normalized() + avoid * p.avoid_weight + jitter).normalized();
        if heading == Vec2::ZERO {
            heading = Vec2::new(me.state[state::HX as usize], me.state[state::HY as usize]);
        }
        let next = me.pos + heading * p.speed;
        if self.inside_obstacle(next) {
            // Refuse the step: keep the position, face away from the
            // nearest blocking obstacle so next tick's step leads outward.
            // Never entering (rather than projecting out) is what makes the
            // stay-outside invariant inductive — a projection could exceed
            // the reachability crop and get clamped back inside.
            let blocker = self
                .obstacles
                .iter()
                .filter(|o| next.dist2(o.center) < o.radius * o.radius)
                .min_by(|a, b| next.dist2(a.center).total_cmp(&next.dist2(b.center)))
                .expect("inside_obstacle found a blocker");
            let out = (me.pos - blocker.center).normalized();
            if out != Vec2::ZERO {
                heading = out;
            }
        } else {
            me.pos = next;
        }
        me.state[state::HX as usize] = heading.x;
        me.state[state::HY as usize] = heading.y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brace_core::Simulation;

    fn behavior() -> FlockObstaclesBehavior {
        FlockObstaclesBehavior::new(FlockObstaclesParams::default())
    }

    #[test]
    fn obstacle_field_is_deterministic() {
        assert_eq!(behavior().obstacles(), behavior().obstacles());
        assert_eq!(behavior().obstacles().len(), 12);
    }

    #[test]
    fn population_starts_outside_obstacles() {
        let b = behavior();
        for a in b.population(300, 1) {
            assert!(!b.inside_obstacle(a.pos));
        }
    }

    #[test]
    fn no_agent_ever_enters_an_obstacle() {
        let b = behavior();
        let checker = behavior();
        let pop = b.population(250, 2);
        let mut sim = Simulation::builder(b).agents(pop).seed(3).build().unwrap();
        for _ in 0..30 {
            sim.step();
            for a in sim.agents() {
                assert!(!checker.inside_obstacle(a.pos), "agent {} inside an obstacle at {}", a.id, a.pos);
            }
        }
    }

    #[test]
    fn headings_stay_unit_length() {
        let b = behavior();
        let pop = b.population(100, 4);
        let mut sim = Simulation::builder(b).agents(pop).seed(5).build().unwrap();
        sim.run(20);
        for a in sim.agents() {
            let h = Vec2::new(a.state[0], a.state[1]);
            assert!((h.norm() - 1.0).abs() < 1e-6, "heading norm {}", h.norm());
        }
    }

    #[test]
    fn flock_coheres_without_collapsing() {
        let b = behavior();
        let pop = b.population(200, 6);
        let mut sim = Simulation::builder(b).agents(pop).seed(7).build().unwrap();
        sim.run(40);
        let world = sim.agents();
        assert_eq!(world.len(), 200);
        for a in &world {
            assert!(!a.pos.is_nan());
        }
        // Repulsion keeps pairs from stacking exactly.
        for w in world.windows(2) {
            assert!(w[0].pos != w[1].pos || w[0].id == w[1].id);
        }
    }
}
